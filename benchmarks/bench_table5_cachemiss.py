"""Table V: last-level cache misses of hash vs sliding hash (trace-
driven LRU simulation of the kernels' real table accesses)."""

from repro.experiments.table5 import run_table5, table5_text


def test_table5(benchmark, scale):
    benchmark.group = "paper-tables"
    results = benchmark.pedantic(
        run_table5,
        kwargs={"scale": scale, "max_accesses": 400_000},
        rounds=1, iterations=1,
    )
    print()
    print(table5_text(results))
    by_case = {r.case: r for r in results}
    # Paper: sliding hash has far fewer misses when tables spill (b);
    # roughly parity when they fit (a, d).
    assert by_case["b"].model_ratio > 1.5
    assert by_case["a"].model_ratio < 2.5
    assert by_case["d"].model_ratio < 2.5


if __name__ == "__main__":
    print(table5_text(run_table5()))
