"""Fig 3: strong scaling of the SpKAdd algorithms (three workloads)."""

import pytest

from repro.experiments.fig3 import run_fig3


@pytest.mark.parametrize("workload", ["a_er", "b_rmat", "c_eukarya"])
def test_fig3(benchmark, scale, workload):
    benchmark.group = "paper-figures"
    res = benchmark.pedantic(
        run_fig3, kwargs={"workload": workload, "scale": scale},
        rounds=1, iterations=1,
    )
    print()
    print(res.to_text())
    # hash-family is fastest at full thread count (ER, Eukarya); on the
    # reduced RMAT panel SPA can take the lead (concentrated-skew
    # caveat, EXPERIMENTS.md) — still a work-efficient k-way method.
    final = {m: s[-1] for m, s in res.seconds.items()}
    fastest = min(final, key=final.get)
    allowed = ("hash", "sliding_hash") if workload != "b_rmat" else (
        "hash", "sliding_hash", "spa")
    assert fastest in allowed
    # k-way methods scale: time at 48t well below time at 1t
    for meth in ("hash", "heap"):
        assert res.seconds[meth][-1] < res.seconds[meth][0] / 4
    # the 2-way tree is never faster than hash at high thread counts
    # (RMAT exempted: see the concentrated-skew caveat above)
    if workload != "b_rmat":
        assert res.seconds["2way_tree"][-1] > res.seconds["hash"][-1]


def test_fig3_static_vs_dynamic_rmat(benchmark, scale):
    """Section III-A: static scheduling hurts on skewed (RMAT) inputs."""
    benchmark.group = "paper-figures"
    res = benchmark.pedantic(
        run_fig3, kwargs={"workload": "b_rmat", "scale": scale,
                          "methods": ("hash",)},
        rounds=1, iterations=1,
    )
    dynamic = res.seconds["hash"][-1]
    static = res.static_seconds["hash"][-1]
    print(f"\nRMAT hash @48t: dynamic={dynamic:.4f}s static={static:.4f}s "
          f"(imbalance penalty {static / dynamic:.2f}x)")
    assert static >= dynamic


if __name__ == "__main__":
    for w in ("a_er", "b_rmat", "c_eukarya"):
        print(run_fig3(w).to_text())
