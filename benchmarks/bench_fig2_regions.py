"""Fig 2: best-algorithm winner maps over the (k, d) plane."""

import os

from repro.experiments.fig2 import run_fig2


def _d_values(pattern, scale):
    # keep the sweep tractable at bench scale: subsample the d axis
    if pattern == "er":
        full = [16 * 4**i for i in range(7)]  # 16 .. 65536
    else:
        full = [16 * 2**i for i in range(7)]  # 16 .. 1024
    return full


def test_fig2_er(benchmark, scale):
    benchmark.group = "paper-figures"
    wm = benchmark.pedantic(
        run_fig2,
        kwargs={
            "pattern": "er", "scale": scale, "n_cols": 8,
            "d_values": _d_values("er", scale),
            "k_values": (4, 16, 64, 128),
        },
        rounds=1, iterations=1,
    )
    print()
    print(wm.to_text())
    # Paper: hash/sliding hash dominate the ER plane
    assert wm.hash_family_share() >= 0.6
    # The dense upper-right corner belongs to the cache-bounded
    # accumulators: sliding hash, or SPA at near-dense outputs (the
    # paper's Section IV-B observation (b): "SPA is as efficient as the
    # hash SpKAdd for denser matrices").
    big = wm.winners[(128, wm.d_values[-1])]
    assert big in ("sliding_hash", "spa")
    # sliding hash owns a contiguous band before full density
    assert any(
        wm.winners[(128, d)] == "sliding_hash" for d in wm.d_values
    )


def test_fig2_rmat(benchmark, scale):
    benchmark.group = "paper-figures"
    wm = benchmark.pedantic(
        run_fig2,
        kwargs={
            "pattern": "rmat", "scale": scale, "n_cols": 8,
            "d_values": _d_values("rmat", scale),
            "k_values": (4, 16, 64, 128),
        },
        rounds=1, iterations=1,
    )
    print()
    print(wm.to_text())
    # Paper: k-way accumulators win for k >= 8; 2-way tree / heap can
    # win k=4.  At reduced column counts RMAT's skew is concentrated
    # (see EXPERIMENTS.md), which lets SPA take some dense cells from
    # the hash family — both are the paper's work-efficient k-way side.
    share_large_k = sum(
        1
        for (k, d), w in wm.winners.items()
        if k >= 16 and w in ("hash", "sliding_hash", "spa")
    ) / sum(1 for (k, _d) in wm.winners if k >= 16)
    assert share_large_k >= 0.6
    # pairwise methods never win the large-k half
    assert not any(
        w in ("2way_incremental", "scipy_incremental", "scipy_tree")
        for (k, _d), w in wm.winners.items() if k >= 64
    )


if __name__ == "__main__":
    for pattern in ("er", "rmat"):
        print(run_fig2(pattern, n_cols=8).to_text())
