"""Streaming/batched SpKAdd (the paper's Section V future work).

Sweeps the batch size: batch=1 degenerates to 2-way incremental,
batch=k to plain in-memory hash SpKAdd; intermediate sizes trade
memory residency for extra folds.
"""

import pytest

from repro.core.stats import KernelStats
from repro.core.streaming import spkadd_streaming
from repro.generators import graph_stream_batches

BATCHES = 32


@pytest.fixture(scope="module")
def stream():
    return graph_stream_batches(
        n_vertices=1 << 14, batches=BATCHES, edges_per_batch=20_000,
        skew=0.8, seed=9,
    )


@pytest.mark.parametrize("batch_size", [1, 4, 16, 32])
def test_streaming_batch_sizes(benchmark, stream, batch_size):
    benchmark.group = "streaming"
    st = KernelStats()
    out = benchmark.pedantic(
        spkadd_streaming,
        args=(stream,), kwargs={"batch_size": batch_size, "stats": st},
        rounds=1, iterations=1,
    )
    assert out.nnz > 0


def test_streaming_work_decreases_with_batch(stream):
    """Bigger batches -> fewer 2-way folds -> less total work."""
    ops = {}
    for b in (1, 8, 32):
        st = KernelStats()
        spkadd_streaming(stream, batch_size=b, stats=st)
        ops[b] = st.ops
    print(f"\nstreaming ops by batch size: {ops}")
    assert ops[32] < ops[8] < ops[1]
