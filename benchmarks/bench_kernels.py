"""Real wall-clock benchmarks of the SpKAdd kernels (pytest-benchmark).

These measure OUR implementations' operational speed (vectorized NumPy),
complementing the simulated paper-scale numbers: the relative ordering
of the work-efficient kernels (hash/SPA vs pairwise at large k) is
visible in real time as well.  Hash-family methods run once per
accumulation backend (``fast`` sort/reduce vs ``instrumented`` probing
table) so the backend speedup is part of every benchmark report.
"""

import pytest

from repro.core.api import spkadd
from repro.generators import erdos_renyi_collection, rmat_collection

M, N, D, K = 1 << 15, 64, 32, 32


@pytest.fixture(scope="module")
def er_mats():
    return erdos_renyi_collection(M, N, d=D, k=K, seed=1)


@pytest.fixture(scope="module")
def rmat_mats():
    return rmat_collection(1 << 15, 64, d=16, k=16, seed=2)


@pytest.mark.parametrize("method,backend", [
    ("hash", "fast"), ("hash", "instrumented"),
    ("sliding_hash", "fast"), ("sliding_hash", "instrumented"),
    ("spa", None), ("heap", None), ("2way_tree", None),
    ("2way_incremental", None), ("scipy_tree", None),
    ("scipy_incremental", None),
])
def test_spkadd_er(benchmark, er_mats, method, backend):
    benchmark.group = "spkadd-ER"
    kwargs = {"backend": backend} if backend else {}
    result = benchmark(lambda: spkadd(er_mats, method=method, **kwargs))
    assert result.matrix.nnz > 0


@pytest.mark.parametrize("method,backend", [
    ("hash", "fast"), ("hash", "instrumented"),
    ("spa", None), ("2way_tree", None),
])
def test_spkadd_rmat(benchmark, rmat_mats, method, backend):
    benchmark.group = "spkadd-RMAT"
    kwargs = {"backend": backend} if backend else {}
    result = benchmark(lambda: spkadd(rmat_mats, method=method, **kwargs))
    assert result.matrix.nnz > 0


def test_hash_unsorted_faster_than_sorted(benchmark, er_mats):
    benchmark.group = "spkadd-ER"
    benchmark.extra_info["note"] = "unsorted output skips the final sort"
    result = benchmark(
        lambda: spkadd(
            er_mats, method="hash", sorted_output=False,
            backend="instrumented",
        )
    )
    assert not result.matrix.sorted


@pytest.mark.parametrize("executor", ["thread", "process", "shm"])
def test_parallel_hash(benchmark, er_mats, executor):
    benchmark.group = "spkadd-ER"
    result = benchmark(
        lambda: spkadd(
            er_mats, method="hash", threads=4, executor=executor
        )
    )
    assert result.matrix.nnz > 0
