"""Real wall-clock benchmarks of the SpKAdd kernels (pytest-benchmark).

These measure OUR implementations' operational speed (vectorized NumPy),
complementing the simulated paper-scale numbers: the relative ordering
of the work-efficient kernels (hash/SPA vs pairwise at large k) is
visible in real time as well.
"""

import pytest

from repro.core.api import spkadd
from repro.generators import erdos_renyi_collection, rmat_collection

M, N, D, K = 1 << 15, 64, 32, 32


@pytest.fixture(scope="module")
def er_mats():
    return erdos_renyi_collection(M, N, d=D, k=K, seed=1)


@pytest.fixture(scope="module")
def rmat_mats():
    return rmat_collection(1 << 15, 64, d=16, k=16, seed=2)


@pytest.mark.parametrize("method", [
    "hash", "sliding_hash", "spa", "heap", "2way_tree",
    "2way_incremental", "scipy_tree", "scipy_incremental",
])
def test_spkadd_er(benchmark, er_mats, method):
    benchmark.group = "spkadd-ER"
    result = benchmark(lambda: spkadd(er_mats, method=method))
    assert result.matrix.nnz > 0


@pytest.mark.parametrize("method", ["hash", "spa", "2way_tree"])
def test_spkadd_rmat(benchmark, rmat_mats, method):
    benchmark.group = "spkadd-RMAT"
    result = benchmark(lambda: spkadd(rmat_mats, method=method))
    assert result.matrix.nnz > 0


def test_hash_unsorted_faster_than_sorted(benchmark, er_mats):
    benchmark.group = "spkadd-ER"
    benchmark.extra_info["note"] = "unsorted output skips the final sort"
    result = benchmark(
        lambda: spkadd(er_mats, method="hash", sorted_output=False)
    )
    assert not result.matrix.sorted


def test_parallel_hash(benchmark, er_mats):
    benchmark.group = "spkadd-ER"
    result = benchmark(lambda: spkadd(er_mats, method="hash", threads=4))
    assert result.matrix.nnz > 0
