"""Fig 6 (and Fig 5's SUMMA): SpKAdd inside distributed SpGEMM.

Three configurations per dataset: heap SpKAdd, sorted-hash and
unsorted-hash.  Shape targets from the paper: hash SpKAdd an order of
magnitude cheaper than heap; skipping the intermediate sort saves
~20% of local multiply; computation >= 2x faster overall with hash.
"""

import pytest

from repro.experiments.fig6 import run_fig6


@pytest.mark.parametrize("dataset", ["isolates", "metaclust50"])
def test_fig6(benchmark, scale, dataset):
    benchmark.group = "paper-figures"
    res = benchmark.pedantic(
        run_fig6,
        kwargs={"dataset": dataset, "scale": scale, "m": 8192, "d": 8.0,
                "grid_side": 2},
        rounds=1, iterations=1,
    )
    print()
    print(res.to_text())
    print(f"spkadd speedup vs heap: {res.spkadd_speedup_vs_heap:.1f}x; "
          f"multiply saved by unsorted: "
          f"{res.multiply_saving_unsorted * 100:.1f}%")
    # heap SpKAdd is several times slower than hash (paper: ~10x)
    assert res.spkadd_speedup_vs_heap > 3.0
    # unsorted intermediates save local-multiply time
    assert 0.0 < res.multiply_saving_unsorted < 0.6
    # overall computation with unsorted hash beats heap by >= 1.5x
    heap_total = res.phase_times["heap"].computation
    hash_total = res.phase_times["unsorted_hash"].computation
    assert heap_total / hash_total > 1.5


if __name__ == "__main__":
    for ds in ("isolates", "metaclust50"):
        print(run_fig6(ds, m=8192, d=8.0, grid_side=2).to_text())
