"""Fig 6 (and Fig 5's SUMMA): SpKAdd inside distributed SpGEMM.

Three configurations per dataset: heap SpKAdd, sorted-hash and
unsorted-hash.  Shape targets from the paper: hash SpKAdd an order of
magnitude cheaper than heap; skipping the intermediate sort saves
~20% of local multiply; computation >= 2x faster overall with hash.

``test_promoted_summa`` covers the production path the refactor adds:
the same SUMMA dataflow on ``ExecutionPlan.production()`` (fast
kernels, shm merges, rank concurrency + overlap), asserted bit-
identical to the serial paper plan.  The figure benchmarks above stay
pinned to the paper plan inside :func:`run_fig6`.
"""

import pytest

from repro.distributed import ExecutionPlan, ProcessGrid, summa_spgemm
from repro.experiments.fig6 import run_fig6
from repro.generators import rmat


@pytest.mark.parametrize("dataset", ["isolates", "metaclust50"])
def test_fig6(benchmark, scale, dataset):
    benchmark.group = "paper-figures"
    res = benchmark.pedantic(
        run_fig6,
        kwargs={"dataset": dataset, "scale": scale, "m": 8192, "d": 8.0,
                "grid_side": 2},
        rounds=1, iterations=1,
    )
    print()
    print(res.to_text())
    print(f"spkadd speedup vs heap: {res.spkadd_speedup_vs_heap:.1f}x; "
          f"multiply saved by unsorted: "
          f"{res.multiply_saving_unsorted * 100:.1f}%")
    # heap SpKAdd is several times slower than hash (paper: ~10x)
    assert res.spkadd_speedup_vs_heap > 3.0
    # unsorted intermediates save local-multiply time
    assert 0.0 < res.multiply_saving_unsorted < 0.6
    # overall computation with unsorted hash beats heap by >= 1.5x
    heap_total = res.phase_times["heap"].computation
    hash_total = res.phase_times["unsorted_hash"].computation
    assert heap_total / hash_total > 1.5


def test_promoted_summa(benchmark, scale):
    benchmark.group = "spgemm-workload"
    A = rmat(4096, 4096, d=8.0, seed=23)
    grid = ProcessGrid(2, 2)
    ref = summa_spgemm(
        A, A, grid=grid, stages=16, sorted_intermediates=False
    ).assemble()

    def promoted():
        return summa_spgemm(
            A, A, grid=grid, stages=16, sorted_intermediates=False,
            plan=ExecutionPlan.production(),
        ).assemble()

    got = benchmark.pedantic(promoted, rounds=3, iterations=1, warmup_rounds=1)
    assert got.indptr.tobytes() == ref.indptr.tobytes()
    assert got.indices.tobytes() == ref.indices.tobytes()
    assert got.data.tobytes() == ref.data.tobytes()


if __name__ == "__main__":
    for ds in ("isolates", "metaclust50"):
        print(run_fig6(ds, m=8192, d=8.0, grid_side=2).to_text())
