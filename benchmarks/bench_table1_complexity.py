"""Table I: measured work vs the complexity formulas (regenerates the
complexity summary empirically)."""

from repro.experiments.table1 import run_table1, table1_text


def test_table1(benchmark):
    benchmark.group = "paper-tables"
    checks = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    print()
    print(table1_text(checks))
    # the O(.) bounds are tight: constant measured/formula ratio per alg
    by_method = {}
    for c in checks:
        by_method.setdefault(c.method, []).append(c.ratio)
    for meth, ratios in by_method.items():
        spread = max(ratios) / min(ratios)
        assert spread < 2.0, (meth, ratios)


if __name__ == "__main__":
    print(table1_text(run_table1()))
