"""Benchmark configuration.

All paper-reproduction benches run at a reduced scale controlled by the
``REPRO_SCALE_M`` / ``REPRO_SCALE_N`` environment variables (see
``repro.experiments.config``).  Benches default to a fast preset here so
``pytest benchmarks/ --benchmark-only`` completes in minutes; export
``REPRO_SCALE_M=16 REPRO_SCALE_N=16`` for the fidelity scale used in
EXPERIMENTS.md.
"""

import os

import pytest

os.environ.setdefault("REPRO_SCALE_M", "32")
os.environ.setdefault("REPRO_SCALE_N", "64")


@pytest.fixture(scope="session")
def scale():
    from repro.experiments.config import ReproScale

    return ReproScale.from_env()
