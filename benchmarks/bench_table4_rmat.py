"""Table IV: the 8-algorithm runtime grid on RMAT (skewed) matrices."""

from repro.experiments.tables34 import run_table4


def test_table4(benchmark, scale):
    benchmark.group = "paper-tables"
    grid = benchmark.pedantic(
        run_table4, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    print()
    print(grid.to_text())
    # k-way accumulators (hash family or SPA) win at large k on skewed
    # inputs; note the scale caveat in EXPERIMENTS.md — reducing the
    # column count concentrates RMAT's skew, which advantages SPA over
    # sliding hash in the heaviest cells relative to the paper.
    for d in grid.d_values:
        assert grid.winner(d, 128) in ("hash", "sliding_hash", "spa"), d
    assert grid.winner(16, 32) in ("hash", "sliding_hash")
    # the heap and the off-the-shelf baselines never win
    for d in grid.d_values:
        for k in grid.k_values:
            assert grid.winner(d, k) not in (
                "heap", "scipy_incremental", "scipy_tree",
            )
    # pairwise incremental degrades fastest with k
    inc = grid.model["2way_incremental"]
    assert inc[(64, 128)] > inc[(64, 4)] * 8


if __name__ == "__main__":
    print(run_table4().to_text())
