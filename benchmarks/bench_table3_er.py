"""Table III: the 8-algorithm runtime grid on ER matrices (model vs
paper), plus shape assertions on who wins where."""

from repro.experiments.tables34 import run_table3


def test_table3(benchmark, scale):
    benchmark.group = "paper-tables"
    grid = benchmark.pedantic(
        run_table3, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    print()
    print(grid.to_text())
    # Shape checks (the paper's green cells):
    # hash-family methods win every column at k >= 32
    for d in grid.d_values:
        for k in grid.k_values:
            if k >= 32:
                assert grid.winner(d, k) in ("hash", "sliding_hash"), (d, k)
    # sliding hash wins the heaviest cell (out-of-cache tables)
    assert grid.winner(8192, 128) == "sliding_hash"
    # the MKL stand-ins are never competitive
    for d in grid.d_values:
        for k in grid.k_values:
            assert grid.winner(d, k) not in (
                "scipy_incremental", "scipy_tree",
            )


if __name__ == "__main__":
    print(run_table3().to_text())
