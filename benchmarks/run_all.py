#!/usr/bin/env python
"""Wall-clock benchmark driver emitting a machine-readable BENCH_PR.json.

Every PR runs ``python benchmarks/run_all.py --quick`` and commits the
resulting ``BENCH_PR.json`` so the repo carries its own performance
trajectory: per-kernel wall-clock seconds, abstract op counts (where the
backend meters them), and the headline fast-vs-instrumented speedup of
the hash kernel.

Modes
-----
``--quick``
    One ER workload at the ISSUE-1 acceptance point (k=8 matrices,
    m=2^16 rows): every method once per relevant backend, plus the
    thread/process/shm executor series on the hash kernel, 3 repeats,
    best-of.  Finishes in well under a minute — suitable for CI.
default (no flag)
    Adds the RMAT pattern, a larger k, and thread sweeps.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py --quick
    PYTHONPATH=src python benchmarks/run_all.py --out BENCH_PR.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

# Allow running straight from a checkout without installing.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

import repro  # noqa: E402
from repro.generators import (  # noqa: E402
    erdos_renyi_collection,
    rmat_collection,
)

#: the ISSUE-1 acceptance workload: k=8 matrices of dimension n=2^16.
QUICK_M, QUICK_N, QUICK_D, QUICK_K = 1 << 16, 4096, 8.0, 8

from repro.core.api import BACKEND_AWARE_METHODS  # noqa: E402


def _time_call(fn, repeats: int):
    """Best-of-``repeats`` wall-clock seconds (and the last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_workload(name, mats, methods, *, threads, repeats, records,
                   executor=None, backends=None, extra_kwargs=None):
    from repro.parallel.executor import resolve_executor

    total_in = sum(A.nnz for A in mats)
    # Serial runs use no pool at all; parallel runs are labelled with the
    # executor that actually serves them (REPRO_EXECUTOR reroutes calls
    # that don't pass one explicitly).
    exec_label = "-" if threads <= 1 else resolve_executor(executor)
    for method in methods:
        method_backends = backends or (
            ("fast", "instrumented") if method in BACKEND_AWARE_METHODS else (None,)
        )
        for backend in method_backends:
            kwargs = {"backend": backend} if backend else {}
            if executor is not None:
                kwargs["executor"] = executor
            if extra_kwargs:
                kwargs.update(extra_kwargs)
            wall, res = _time_call(
                lambda: repro.spkadd(
                    mats, method=method, threads=threads, **kwargs
                ),
                repeats,
            )
            rec = {
                "workload": name,
                "method": method,
                "backend": backend or "-",
                "executor": exec_label,
                "threads": threads,
                "wall_s": round(wall, 6),
                "input_nnz": total_in,
                "output_nnz": res.matrix.nnz,
                "ops": float(res.stats.ops),
                "probes": float(res.stats.probes),
            }
            records.append(rec)
            print(
                f"  {name:14s} {method:18s} {rec['backend']:13s} "
                f"{rec['executor']:8s} "
                f"T={threads} {wall * 1e3:9.1f} ms  "
                f"ops={rec['ops']:.3g}"
            )


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI preset: one ER workload, core methods only")
    ap.add_argument("--out", default="BENCH_PR.json",
                    help="output JSON path (default: BENCH_PR.json)")
    ap.add_argument("--repeats", type=int, default=3)
    args = ap.parse_args(argv)

    records = []
    t_start = time.time()

    print(f"ER workload: k={QUICK_K}, m={QUICK_M}, n={QUICK_N}, d={QUICK_D}")
    er = erdos_renyi_collection(
        QUICK_M, QUICK_N, d=QUICK_D, k=QUICK_K, seed=11
    )
    quick_methods = ["hash", "sliding_hash", "spa", "heap", "scipy_tree"]
    bench_workload(
        "er_k8_n65536", er, quick_methods,
        threads=1, repeats=args.repeats, records=records,
    )

    # Executor series: the same hash/fast workload on every worker-pool
    # flavour — the shm engine's zero-copy transport vs the pickling
    # process pool vs the GIL-sharing thread pool.
    exec_threads = 4
    print(f"executor series: hash/fast, T={exec_threads}")
    for executor in ("thread", "process", "shm"):
        bench_workload(
            "er_k8_n65536", er, ["hash"],
            threads=exec_threads, repeats=args.repeats, records=records,
            executor=executor, backends=("fast",),
        )

    # Pool-lifecycle series: executor="process" routes through the
    # persistent pool registry, so only the first call after a teardown
    # pays the forkserver pool spawn.  Pair each cold call (registry
    # emptied first — the pre-ISSUE-5 per-call cost) with a warm call
    # reusing the pool the cold call just built; pairing cancels machine
    # drift out of the ratio.
    from repro.parallel.pools import shutdown_pools

    print(f"pool series: hash/fast, cold vs persistent process pool, "
          f"T={exec_threads} (paired)")
    pool_wall = {"cold": float("inf"), "warm": float("inf")}
    for _ in range(max(args.repeats, 5)):
        shutdown_pools(kind="process")
        for leg in ("cold", "warm"):
            t0 = time.perf_counter()
            pool_res = repro.spkadd(
                er, method="hash", threads=exec_threads,
                executor="process", backend="fast",
            )
            pool_wall[leg] = min(pool_wall[leg], time.perf_counter() - t0)
    for leg in ("cold", "warm"):
        records.append({
            "workload": f"er_k8_n65536_{leg}pool",
            "method": "hash",
            "backend": "fast",
            "executor": "process",
            "threads": exec_threads,
            "wall_s": round(pool_wall[leg], 6),
            "input_nnz": sum(A.nnz for A in er),
            "output_nnz": pool_res.matrix.nnz,
            "ops": float(pool_res.stats.ops),
            "probes": float(pool_res.stats.probes),
        })
        print(f"  er_k8_n65536_{leg}pool   hash fast process "
              f"T={exec_threads} {pool_wall[leg] * 1e3:9.1f} ms")

    # Result-placement series: the shm engine's zero-copy default
    # (segment-backed arrays, no final memcpy) vs materialize=True (the
    # old copy-out contract), paired on one warm pool.
    print(f"result series: hash/fast shm zero-copy vs materialized, "
          f"T={exec_threads} (paired)")
    result_wall = {"zerocopy": float("inf"), "materialized": float("inf")}
    repro.spkadd(er, method="hash", threads=exec_threads, executor="shm",
                 backend="fast")  # warm the shm pool
    for _ in range(max(args.repeats, 8)):
        for leg, mat_flag in (("zerocopy", False), ("materialized", True)):
            t0 = time.perf_counter()
            result_res = repro.spkadd(
                er, method="hash", threads=exec_threads, executor="shm",
                backend="fast", materialize=mat_flag,
            )
            result_wall[leg] = min(
                result_wall[leg], time.perf_counter() - t0
            )
    for leg in ("zerocopy", "materialized"):
        records.append({
            "workload": f"er_k8_n65536_{leg}",
            "method": "hash",
            "backend": "fast",
            "executor": "shm",
            "threads": exec_threads,
            "wall_s": round(result_wall[leg], 6),
            "input_nnz": sum(A.nnz for A in er),
            "output_nnz": result_res.matrix.nnz,
            "ops": float(result_res.stats.ops),
            "probes": float(result_res.stats.probes),
        })
        print(f"  er_k8_n65536_{leg:12s} hash fast shm "
              f"T={exec_threads} {result_wall[leg] * 1e3:9.1f} ms")

    # Resilience-overhead series: the same happy-path shm workload with
    # the resilience layer at its default policy (retry budget, fallback
    # chain armed, a generous deadline) vs ResiliencePolicy.disabled().
    # No fault fires on either leg, so the ratio isolates the layer's
    # bookkeeping — per-attempt fault lookups, deadline checks, the
    # retry loop's wave accounting.  Paired legs cancel machine drift.
    from repro.parallel.resilience import ResiliencePolicy

    print(f"resilience series: hash/fast shm, policy on vs off, "
          f"T={exec_threads} (paired)")
    resil_legs = {
        "enabled": ResiliencePolicy(deadline_s=600.0),
        "disabled": ResiliencePolicy.disabled(),
    }
    resil_wall = {name: float("inf") for name in resil_legs}
    for _ in range(max(args.repeats, 8)):
        for leg, policy in resil_legs.items():
            t0 = time.perf_counter()
            resil_res = repro.spkadd(
                er, method="hash", threads=exec_threads, executor="shm",
                backend="fast", resilience=policy,
            )
            resil_wall[leg] = min(
                resil_wall[leg], time.perf_counter() - t0
            )
    for leg in ("enabled", "disabled"):
        records.append({
            "workload": f"er_k8_n65536_resil_{leg}",
            "method": "hash",
            "backend": "fast",
            "executor": "shm",
            "threads": exec_threads,
            "wall_s": round(resil_wall[leg], 6),
            "input_nnz": sum(A.nnz for A in er),
            "output_nnz": resil_res.matrix.nnz,
            "ops": float(resil_res.stats.ops),
            "probes": float(resil_res.stats.probes),
        })
        print(f"  er_k8_n65536_resil_{leg:8s} hash fast shm "
              f"T={exec_threads} {resil_wall[leg] * 1e3:9.1f} ms")

    # Dtype series: the identical workload with float32 values through
    # the shm engine — the value pipeline preserves the narrow dtype end
    # to end, halving the bytes published/staged/scattered per entry.
    er_f32 = [A.astype(np.float32) for A in er]
    print(f"dtype series: hash/fast float32, shm, T={exec_threads}")
    bench_workload(
        "er_k8_n65536_f32", er_f32, ["hash"],
        threads=exec_threads, repeats=args.repeats, records=records,
        executor="shm", backends=("fast",),
    )

    # Index-width series: one workload at both index widths through the
    # shm engine.  The values are float32 on BOTH legs — the paper's
    # 4-byte-value + 4-byte-index entry layout on the narrow leg vs the
    # same values with 8-byte indices on the wide one, so the legs
    # differ *only* in index width.  A denser collection (k=16, d=32)
    # keeps byte movement, not per-call pool overhead, dominant.  The
    # generator already stores int32 (the bounds fit); the wide leg
    # casts the inputs up.  Explicit index_dtype on both legs so a
    # REPRO_INDEX_DTYPE pin on a CI leg cannot collapse the comparison.
    #
    # The legs are timed PAIRED (repeats alternate i32/i64) rather than
    # as two sequential best-of blocks: on a busy CI box the machine
    # drifts between blocks by more than the ~12% effect, and pairing
    # cancels that drift out of the ratio.
    idx_threads = 2
    er_idx = [
        A.astype(np.float32)
        for A in erdos_renyi_collection(QUICK_M, QUICK_N, d=32.0, k=16,
                                        seed=13)
    ]
    er_idx64 = [A.with_index_dtype(np.int64) for A in er_idx]
    print(f"index series: hash/fast float32 values, int32 vs int64 "
          f"indices, shm, k=16, d=32, T={idx_threads} (paired)")
    idx_legs = {
        "er_k16_d32_f32_i32idx": (er_idx, "int32"),
        "er_k16_d32_f32_i64idx": (er_idx64, "int64"),
    }
    idx_wall = {name: float("inf") for name in idx_legs}
    idx_out = {}
    for name, (leg_mats, leg_dtype) in idx_legs.items():  # warm the pool
        idx_out[name] = repro.spkadd(
            leg_mats, method="hash", threads=idx_threads, executor="shm",
            backend="fast", index_dtype=leg_dtype,
        )
    for _ in range(max(args.repeats, 8)):
        for name, (leg_mats, leg_dtype) in idx_legs.items():
            t0 = time.perf_counter()
            idx_out[name] = repro.spkadd(
                leg_mats, method="hash", threads=idx_threads,
                executor="shm", backend="fast", index_dtype=leg_dtype,
            )
            idx_wall[name] = min(
                idx_wall[name], time.perf_counter() - t0
            )
    for name, (leg_mats, _) in idx_legs.items():
        res = idx_out[name]
        records.append({
            "workload": name,
            "method": "hash",
            "backend": "fast",
            "executor": "shm",
            "threads": idx_threads,
            "wall_s": round(idx_wall[name], 6),
            "input_nnz": sum(A.nnz for A in leg_mats),
            "output_nnz": res.matrix.nnz,
            "ops": float(res.stats.ops),
            "probes": float(res.stats.probes),
        })
        print(f"  {name:22s} hash fast shm T={idx_threads} "
              f"{idx_wall[name] * 1e3:9.1f} ms  "
              f"idx={res.matrix.indices.dtype}")

    # Gateway series: B concurrent small requests through the serving
    # layer, micro-batching on vs off.  The batched gateway fuses the
    # burst into one k = B*k_each kernel call (the paper's advantage
    # grows with k; the batcher manufactures the high-k regime), the
    # unbatched one runs B separate k=k_each calls.  Two servers live
    # side by side on separate sockets and the repeat loop alternates
    # legs, so machine drift cancels out of the ratio.
    import os as _os
    import uuid as _uuid
    from concurrent.futures import ThreadPoolExecutor as _ClientPool

    from repro.serve import GatewayClient, GatewayConfig, start_in_thread

    gw_burst, gw_k = 32, 4
    gw_reqs = [
        erdos_renyi_collection(256, 16, d=4.0, k=gw_k, seed=100 + i)
        for i in range(gw_burst)
    ]
    gw_expect = repro.spkadd(gw_reqs[0]).matrix
    gw_in_nnz = sum(A.nnz for req in gw_reqs for A in req)
    gw_legs = {
        "microbatch": {"batch_max": gw_burst, "batch_window_s": 0.05},
        "per_request": {"batch_max": 1, "batch_window_s": 0.0},
    }
    print(f"gateway series: {gw_burst} concurrent k={gw_k} requests, "
          f"micro-batched vs per-request (paired)")
    gw_wall = {leg: float("inf") for leg in gw_legs}
    gw_handles, gw_clients, gw_out = {}, {}, {}
    try:
        for leg, knobs in gw_legs.items():
            cfg = GatewayConfig(
                socket_path=(f"/tmp/repro-bench-gw-{_os.getpid()}-"
                             f"{_uuid.uuid4().hex[:6]}.sock"),
                executor="thread", threads=2, max_queue=2 * gw_burst,
                **knobs,
            )
            gw_handles[leg] = start_in_thread(cfg)
            gw_clients[leg] = [
                GatewayClient(cfg.socket_path) for _ in range(gw_burst)
            ]
        with _ClientPool(max_workers=gw_burst) as submit_pool:
            def _storm(leg):
                futures = [
                    submit_pool.submit(client.submit, req)
                    for client, req in zip(gw_clients[leg], gw_reqs)
                ]
                return [f.result() for f in futures]

            for leg in gw_legs:  # warm: connects, lazy imports, pools
                gw_out[leg] = _storm(leg)
            for _ in range(max(args.repeats, 5)):
                for leg in gw_legs:
                    t0 = time.perf_counter()
                    gw_out[leg] = _storm(leg)
                    gw_wall[leg] = min(
                        gw_wall[leg], time.perf_counter() - t0
                    )
        gw_stats = gw_clients["microbatch"][0].stats()
        first = gw_out["microbatch"][0]
        if not (np.array_equal(first.indices, gw_expect.indices)
                and np.array_equal(first.data, gw_expect.data)):
            raise AssertionError("gateway response != serial spkadd")
    finally:
        for clients in gw_clients.values():
            for client in clients:
                client.close()
        for handle in gw_handles.values():
            handle.stop()
    for leg in gw_legs:
        records.append({
            "workload": f"gateway_b{gw_burst}_k{gw_k}_{leg}",
            "method": "hash",
            "backend": "-",
            "executor": "gateway",
            "threads": 2,
            "wall_s": round(gw_wall[leg], 6),
            "input_nnz": gw_in_nnz,
            "output_nnz": sum(r.nnz for r in gw_out[leg]),
            "ops": 0.0,
            "probes": 0.0,
        })
        print(f"  gateway_b{gw_burst}_k{gw_k}_{leg:12s} "
              f"{gw_wall[leg] * 1e3:9.1f} ms")
    print(f"  fused_k_max={gw_stats['fused_k_max']} "
          f"(per-request k={gw_k})")

    # SpGEMM workload series: the promoted SUMMA path (fast kernels, shm
    # merges, rank concurrency + multiply/merge overlap) vs the
    # pre-refactor serial paper path (rank-by-rank, instrumented merges)
    # on an RMAT 2^14 squaring.  Legs alternate within each repeat
    # (paired) so machine drift cancels out of the ratio, and the
    # promoted leg's result is checked bit-identical to the serial one —
    # the speedup may not come from computing something else.
    from repro.distributed import ExecutionPlan, ProcessGrid, summa_spgemm
    from repro.generators import rmat

    spg_m, spg_d, spg_stages = 1 << 14, 4.0, 16
    spg_A = rmat(spg_m, spg_m, d=spg_d, seed=21)
    spg_grid = ProcessGrid(2, 2)
    spg_legs = {
        "serial": dict(plan=ExecutionPlan.paper()),
        "fast_shm": dict(plan=ExecutionPlan.production(),
                         sorted_intermediates=False),
    }
    print(f"spgemm series: SUMMA rmat m=2^14 d={spg_d} stages={spg_stages}, "
          "promoted fast/shm vs serial paper path (paired)")
    spg_wall = {leg: float("inf") for leg in spg_legs}
    spg_out = {}
    spg_repeats = 2 if args.quick else max(args.repeats, 3)
    for _ in range(spg_repeats):
        for leg, leg_kw in spg_legs.items():
            t0 = time.perf_counter()
            spg_out[leg] = summa_spgemm(
                spg_A, spg_A, grid=spg_grid, stages=spg_stages, **leg_kw
            )
            spg_wall[leg] = min(spg_wall[leg], time.perf_counter() - t0)
    spg_mats = {leg: r.assemble() for leg, r in spg_out.items()}
    if not (
        spg_mats["fast_shm"].indptr.tobytes()
        == spg_mats["serial"].indptr.tobytes()
        and spg_mats["fast_shm"].indices.tobytes()
        == spg_mats["serial"].indices.tobytes()
        and spg_mats["fast_shm"].data.tobytes()
        == spg_mats["serial"].data.tobytes()
    ):
        raise AssertionError("promoted SUMMA result != serial reference")
    for leg in spg_legs:
        records.append({
            "workload": f"spgemm_rmat16384_{leg}",
            "method": "summa_hash",
            "backend": "instrumented" if leg == "serial" else "fast",
            "executor": "-" if leg == "serial" else "shm",
            "threads": 1 if leg == "serial" else 4,
            "wall_s": round(spg_wall[leg], 6),
            "input_nnz": 2 * spg_A.nnz,
            "output_nnz": spg_mats[leg].nnz,
            "ops": float(sum(r.spkadd_stats.ops for r in spg_out[leg].ranks)),
            "probes": float(
                sum(r.spkadd_stats.probes for r in spg_out[leg].ranks)
            ),
        })
        print(f"  spgemm_rmat16384_{leg:9s} summa_hash "
              f"{spg_wall[leg] * 1e3:9.1f} ms")

    if not args.quick:
        # Protein-surrogate SpGEMM (the paper's HipMCL squaring shape):
        # same paired promoted-vs-serial comparison on a symmetrized
        # similarity surrogate.
        from repro.experiments.fig6 import _square_surrogate

        prot_A = _square_surrogate(4096, 8.0, sigma=1.0, seed=61)
        print("spgemm series: SUMMA protein surrogate m=4096 d=8 "
              "stages=32, promoted vs serial (paired)")
        prot_wall = {leg: float("inf") for leg in spg_legs}
        prot_out = {}
        for _ in range(max(args.repeats, 3)):
            for leg, leg_kw in spg_legs.items():
                t0 = time.perf_counter()
                prot_out[leg] = summa_spgemm(
                    prot_A, prot_A, grid=spg_grid, stages=32, **leg_kw
                )
                prot_wall[leg] = min(
                    prot_wall[leg], time.perf_counter() - t0
                )
        for leg in spg_legs:
            records.append({
                "workload": f"spgemm_protein4096_{leg}",
                "method": "summa_hash",
                "backend": "instrumented" if leg == "serial" else "fast",
                "executor": "-" if leg == "serial" else "shm",
                "threads": 1 if leg == "serial" else 4,
                "wall_s": round(prot_wall[leg], 6),
                "input_nnz": 2 * prot_A.nnz,
                "output_nnz": prot_out[leg].assemble().nnz,
                "ops": float(
                    sum(r.spkadd_stats.ops for r in prot_out[leg].ranks)
                ),
                "probes": float(
                    sum(r.spkadd_stats.probes for r in prot_out[leg].ranks)
                ),
            })
            print(f"  spgemm_protein4096_{leg:9s} summa_hash "
                  f"{prot_wall[leg] * 1e3:9.1f} ms")

    if not args.quick:
        print("RMAT workload: k=16, m=2^15, n=64, d=16")
        rm = rmat_collection(1 << 15, 64, d=16.0, k=16, seed=12)
        bench_workload(
            "rmat_k16_m32768", rm,
            ["hash", "sliding_hash", "spa", "heap", "2way_tree"],
            threads=1, repeats=args.repeats, records=records,
        )
        for threads in (2, 4):
            bench_workload(
                "er_k8_n65536", er, ["hash"],
                threads=threads, repeats=args.repeats, records=records,
            )

    def wall_of(method, backend, *, threads=1, executor=None,
                workload="er_k8_n65536"):
        for r in records:
            if (r["workload"] == workload and r["method"] == method
                    and r["backend"] == backend
                    and r["threads"] == threads
                    and (executor is None or r.get("executor") == executor)):
                return r["wall_s"]
        return None

    fast = wall_of("hash", "fast")
    inst = wall_of("hash", "instrumented")
    speedup = round(inst / fast, 2) if fast and inst else None
    print(f"\nhash fast-vs-instrumented speedup (k=8, m=2^16): {speedup}x")

    shm = wall_of("hash", "fast", threads=4, executor="shm")
    proc = wall_of("hash", "fast", threads=4, executor="process")
    shm_speedup = round(proc / shm, 2) if shm and proc else None
    print(f"hash shm-vs-process executor speedup (k=8, m=2^16, T=4): "
          f"{shm_speedup}x")

    persist_speedup = (
        round(pool_wall["cold"] / pool_wall["warm"], 2)
        if pool_wall["warm"] not in (0, float("inf")) else None
    )
    print(f"hash process persistent-vs-cold pool speedup (k=8, m=2^16, "
          f"T={exec_threads}): {persist_speedup}x")

    zerocopy_speedup = (
        round(result_wall["materialized"] / result_wall["zerocopy"], 2)
        if result_wall["zerocopy"] not in (0, float("inf")) else None
    )
    print(f"hash shm zero-copy result speedup (k=8, m=2^16, "
          f"T={exec_threads}): {zerocopy_speedup}x")

    shm_f32 = wall_of("hash", "fast", threads=4, executor="shm",
                      workload="er_k8_n65536_f32")
    f32_speedup = round(shm / shm_f32, 2) if shm and shm_f32 else None
    print(f"hash shm float32-vs-float64 speedup (k=8, m=2^16, T=4): "
          f"{f32_speedup}x")

    shm_i32 = wall_of("hash", "fast", threads=2, executor="shm",
                      workload="er_k16_d32_f32_i32idx")
    shm_i64 = wall_of("hash", "fast", threads=2, executor="shm",
                      workload="er_k16_d32_f32_i64idx")
    idx_speedup = (
        round(shm_i64 / shm_i32, 2) if shm_i32 and shm_i64 else None
    )
    print(f"hash shm int32-vs-int64 index speedup (k=16, m=2^16, d=32, "
          f"float32 values, T=2): {idx_speedup}x")

    gateway_speedup = (
        round(gw_wall["per_request"] / gw_wall["microbatch"], 2)
        if gw_wall["microbatch"] not in (0, float("inf")) else None
    )
    print(f"gateway micro-batch vs per-request speedup "
          f"(B={gw_burst}, k={gw_k}): {gateway_speedup}x")

    resilience_ratio = (
        round(resil_wall["disabled"] / resil_wall["enabled"], 2)
        if resil_wall["enabled"] not in (0, float("inf")) else None
    )
    print(f"resilience happy-path overhead ratio (disabled/enabled wall, "
          f"shm, T={exec_threads}): {resilience_ratio}")

    spgemm_speedup = (
        round(spg_wall["serial"] / spg_wall["fast_shm"], 2)
        if spg_wall["fast_shm"] not in (0, float("inf")) else None
    )
    print(f"spgemm promoted fast/shm vs serial paper path speedup "
          f"(rmat m=2^14, stages={spg_stages}): {spgemm_speedup}x")

    payload = {
        "schema": 8,
        "preset": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "elapsed_s": round(time.time() - t_start, 1),
        "headline": {
            "hash_fast_vs_instrumented_speedup": speedup,
            "hash_shm_vs_process_speedup": shm_speedup,
            "hash_shm_float32_vs_float64_speedup": f32_speedup,
            "hash_shm_int32_vs_int64_index_speedup": idx_speedup,
            "hash_process_persistent_vs_cold_pool_speedup": persist_speedup,
            "hash_shm_zero_copy_result_speedup": zerocopy_speedup,
            "resilience_overhead_ratio": resilience_ratio,
            "gateway_microbatch_vs_per_request_speedup": gateway_speedup,
            "spgemm_fast_shm_vs_serial_speedup": spgemm_speedup,
        },
        "results": records,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
