"""Fig 4: sliding-hash runtime vs hash-table size (six panels).

The U-shape and the cache-determined optimum are the paper's key
explanatory result; panel (e)/(f) show the AMD EPYC optimum sitting
left of Skylake's because its LLC is 4x smaller.
"""

import pytest

from repro.experiments.fig4 import run_fig4


@pytest.mark.parametrize("panel", ["a", "b", "c", "d"])
def test_fig4_skylake(benchmark, scale, panel):
    benchmark.group = "paper-figures"
    sweep = benchmark.pedantic(
        run_fig4, kwargs={"panel": panel, "scale": scale},
        rounds=1, iterations=1,
    )
    print()
    print(sweep.to_text())
    print(f"optimum (paper-scale entries): "
          f"{sweep.optimum_entries * scale.scale_m}")
    # U-shape: the optimum strictly beats the smallest table swept
    assert min(sweep.total) < sweep.total[0]


@pytest.mark.parametrize("panel", ["e", "f"])
def test_fig4_epyc(benchmark, scale, panel):
    benchmark.group = "paper-figures"
    sweep = benchmark.pedantic(
        run_fig4, kwargs={"panel": panel, "scale": scale},
        rounds=1, iterations=1,
    )
    print()
    print(sweep.to_text())
    assert min(sweep.total) < sweep.total[0]


def test_fig4_epyc_optimum_left_of_skylake(benchmark, scale):
    """Smaller LLC -> smaller optimal table (paper's (e) vs (b))."""
    benchmark.group = "paper-figures"

    def both():
        return run_fig4("b", scale=scale), run_fig4("e", scale=scale)

    sky, epyc = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\noptimum: skylake={sky.optimum_entries} "
          f"epyc={epyc.optimum_entries} (reduced-scale entries)")
    assert epyc.optimum_entries <= sky.optimum_entries


if __name__ == "__main__":
    for p in "abcdef":
        print(run_fig4(p).to_text())
