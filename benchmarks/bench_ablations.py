"""Ablations of the design choices DESIGN.md calls out.

1. Symbolic-phase data structure (hash vs exact-sort vs SPA-based).
2. Load balancing: static vs dynamic-by-nnz scheduling on skewed input.
3. Hash function: multiplicative masking vs alternative multipliers.
4. Sorted vs unsorted outputs (the cost of Algorithm 5 line 15).
5. Row-partitioned (sliding) SPA — the paper's suggested extension.
"""

import numpy as np
import pytest

from repro.core.hash_add import hash_symbolic, spkadd_hash
from repro.core.spa_add import spkadd_sliding_spa, spkadd_spa
from repro.core.stats import KernelStats
from repro.core.symbolic import exact_output_col_nnz, symbolic_nnz
from repro.generators import erdos_renyi_collection, rmat_collection
from repro.parallel.executor import simulate_parallel_time
from repro.util.hashing import hash_indices

M, N, D, K = 1 << 15, 64, 32, 32


@pytest.fixture(scope="module")
def er_mats():
    return erdos_renyi_collection(M, N, d=D, k=K, seed=5)


@pytest.fixture(scope="module")
def rmat_mats():
    return rmat_collection(1 << 15, 128, d=16, k=16, seed=6)


# ------------------------------------------------------- 1. symbolic phase
@pytest.mark.parametrize("method", ["hash", "exact", "spa"])
def test_ablation_symbolic(benchmark, er_mats, method):
    benchmark.group = "ablation-symbolic"
    counts = benchmark(lambda: symbolic_nnz(er_mats, method))
    assert np.array_equal(counts, exact_output_col_nnz(er_mats))


# ------------------------------------------------------ 2. load balancing
def test_ablation_scheduling(benchmark, rmat_mats):
    benchmark.group = "ablation-scheduling"

    def measure():
        st = KernelStats()
        spkadd_hash(rmat_mats, stats=st, block_cols=1)
        costs = st.col_ops
        return (
            simulate_parallel_time(costs, 16, policy="static"),
            simulate_parallel_time(costs, 16, policy="dynamic", chunk=1),
        )

    static, dynamic = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nRMAT makespan on 16 threads: static={static:.0f} "
          f"dynamic={dynamic:.0f} ops (ratio {static / dynamic:.2f}x)")
    # the paper's claim: dynamic-by-nnz balances skewed columns
    assert static >= dynamic


# -------------------------------------------------------- 3. hash function
@pytest.mark.parametrize("prime", [2_654_435_761, 0x9E3779B1, 11400714819323198485])
def test_ablation_hash_multiplier(benchmark, prime):
    benchmark.group = "ablation-hashfn"
    keys = np.random.default_rng(0).integers(0, 1 << 30, 200_000)

    def spread():
        h = hash_indices(keys, 1 << 16, prime=prime & ~1 | 1)
        return len(np.unique(h))

    distinct = benchmark(spread)
    # all multipliers spread well (> 90% of slots hit)
    assert distinct > 0.9 * (1 << 16)


# -------------------------------------------------- 4. sorted vs unsorted
@pytest.mark.parametrize("sorted_output", [True, False])
def test_ablation_sorted_output(benchmark, er_mats, sorted_output):
    benchmark.group = "ablation-sorted"
    out = benchmark(
        lambda: spkadd_hash(er_mats, sorted_output=sorted_output)
    )
    assert out.sorted == sorted_output


# ----------------------------------------------------- 5. sliding SPA
@pytest.mark.parametrize("parts", [1, 4, 16])
def test_ablation_sliding_spa(benchmark, er_mats, parts):
    benchmark.group = "ablation-sliding-spa"
    st = KernelStats()
    out = benchmark.pedantic(
        spkadd_sliding_spa,
        args=(er_mats,), kwargs={"parts": parts, "stats": st},
        rounds=1, iterations=1,
    )
    # partitioning shrinks the accumulator exactly like sliding hash
    assert st.ds_bytes_peak <= (M // parts + 1) * 12
    assert out.nnz == spkadd_spa(er_mats).nnz
