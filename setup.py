"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP 660
editable installs are unavailable; this setup.py lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path.
Metadata mirrors pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "SpKAdd: parallel algorithms for adding a collection of sparse "
        "matrices (reproduction of arXiv:2112.10223)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
