"""Cross-executor conformance suite + shm engine lifecycle tests.

The contract under test: for every SpKAdd method, both kernel backends,
sorted and unsorted outputs, and the full value-dtype axis
(float32/float64/int32/int64 plus a mixed collection), the serial path
and the thread / process / shm executors produce **bit-identical** CSC
arrays (indptr, indices, values) — not merely numerically close — in
the dtype the pipeline resolves for the inputs (dtypes are preserved;
integer sums are exact 64-bit, never a float64 round-trip).  Plus the
shm engine's lifecycle guarantees: no ``/dev/shm`` segment survives a
normal run, a worker exception, or engine reuse, and the engine works
under the ``spawn`` start method.
"""

import multiprocessing

import numpy as np
import pytest

from repro.core.api import spkadd
from repro.core.symbolic import chunk_output_layout
from repro.formats.csc import CSCMatrix
from repro.parallel.executor import (
    EXECUTOR_ENV_VAR,
    _total_col_nnz,
    parallel_spkadd,
    resolve_executor,
)
from repro.parallel.partition import split_weighted
from repro.parallel.shm import (
    SegmentRegistry,
    SharedMemoryPool,
    list_live_segments,
)
from tests.conftest import (
    assert_bit_identical,
    random_collection,
    shuffle_columns,
)

EXECUTORS = ("serial", "thread", "process", "shm")
PARALLEL_EXECUTORS = ("thread", "process", "shm")


def run(mats, executor, *, method="hash", threads=3, **kw):
    if executor == "serial":
        return spkadd(mats, method=method, threads=1, **kw)
    return spkadd(mats, method=method, threads=threads, executor=executor, **kw)


def canonical(mat: CSCMatrix) -> CSCMatrix:
    out = mat.copy()
    out.sort_indices()
    return out


class TestConformance:
    @pytest.mark.parametrize(
        "method", ["hash", "sliding_hash", "spa", "heap", "2way_tree",
                   "scipy_tree"]
    )
    def test_methods_bit_identical_across_executors(self, method):
        mats = random_collection(31, 250, 19, 6)
        ref = run(mats, "serial", method=method)
        for executor in PARALLEL_EXECUTORS:
            got = run(mats, executor, method=method)
            assert_bit_identical(ref.matrix, got.matrix, f"{method}/{executor}")
            assert ref.matrix.sorted == got.matrix.sorted
            assert ref.stats.input_nnz == got.stats.input_nnz
            assert ref.stats.output_nnz == got.stats.output_nnz

    @pytest.mark.parametrize("backend", ["fast", "instrumented"])
    @pytest.mark.parametrize("sorted_output", [True, False])
    def test_hash_backends_and_sortedness(self, backend, sorted_output):
        mats = random_collection(32, 220, 17, 5)
        results = {
            executor: run(
                mats, executor, backend=backend, sorted_output=sorted_output
            ).matrix
            for executor in EXECUTORS
        }
        # The three pools chunk columns identically, so they must agree
        # bit for bit in every configuration.
        for executor in ("process", "shm"):
            assert_bit_identical(
                results["thread"], results[executor],
                f"{backend}/sorted={sorted_output}/{executor}",
            )
        if sorted_output or backend == "fast":
            # Sorted columns are canonical: serial agrees exactly too.
            assert_bit_identical(results["serial"], results["thread"])
        else:
            # Instrumented unsorted output orders a column by table
            # slot, which depends on the (chunk-local) table size — the
            # entry *sets* still match serial bitwise after sorting.
            assert_bit_identical(
                canonical(results["serial"]), canonical(results["thread"])
            )

    #: value-dtype axis -> the dtype the whole pipeline must emit for
    #: it ("mixed" is one int64 + one float32 + float64 addends, which
    #: promotes to float64 per np.result_type).
    DTYPE_AXIS = {
        "float32": ([np.float32] * 5, np.float32),
        "float64": ([np.float64] * 5, np.float64),
        "int32": ([np.int32] * 5, np.int64),
        "int64": ([np.int64] * 5, np.int64),
        "mixed": (
            [np.int64, np.float32, np.float64, np.float64, np.int32],
            np.float64,
        ),
    }

    @staticmethod
    def dtype_collection(input_dtypes, seed=77):
        rng = np.random.default_rng(seed)
        mats = []
        for dt in input_dtypes:
            nnz = int(rng.integers(20, 90))
            mats.append(
                CSCMatrix.from_arrays(
                    (60, 12),
                    rng.integers(0, 60, nnz),
                    rng.integers(0, 12, nnz),
                    rng.integers(-50, 50, nnz),
                    value_dtype=dt,
                )
            )
        return mats

    @pytest.mark.parametrize("backend", ["fast", "instrumented"])
    @pytest.mark.parametrize("axis", sorted(DTYPE_AXIS))
    def test_value_dtypes(self, axis, backend):
        """Inputs' dtype is the output's dtype, bit-identically across
        serial x thread x process x shm on both kernel backends."""
        input_dtypes, expect = self.DTYPE_AXIS[axis]
        mats = self.dtype_collection(input_dtypes)
        ref = run(mats, "serial", backend=backend)
        assert ref.matrix.data.dtype == np.dtype(expect), axis
        for executor in PARALLEL_EXECUTORS:
            got = run(mats, executor, backend=backend)
            assert got.matrix.data.dtype == np.dtype(expect), axis
            assert_bit_identical(ref.matrix, got.matrix, f"{axis}/{executor}")

    @pytest.mark.parametrize("method", ["hash", "sliding_hash", "spa",
                                        "heap", "2way_tree", "scipy_tree"])
    def test_int64_exact_beyond_2_53(self, method):
        """ISSUE acceptance: int64 values above 2**53 (where float64
        loses integers) sum exactly on every method and executor."""
        big = 2**53
        a = CSCMatrix.from_arrays(
            (30, 6),
            np.arange(12) % 30, np.arange(12) % 6,
            np.full(12, big, dtype=np.int64),
        )
        b = CSCMatrix.from_arrays(
            (30, 6),
            np.arange(12) % 30, np.arange(12) % 6,
            np.ones(12, dtype=np.int64),
        )
        mats = [a, b]
        expect = big + 1  # not representable in float64 (rounds to 2**53)
        ref = run(mats, "serial", method=method)
        assert ref.matrix.data.dtype == np.int64
        assert np.all(ref.matrix.data == expect)
        for executor in PARALLEL_EXECUTORS:
            got = run(mats, executor, method=method)
            assert got.matrix.data.dtype == np.int64
            assert np.all(got.matrix.data == expect), f"{method}/{executor}"
            assert_bit_identical(ref.matrix, got.matrix)

    def test_unsorted_inputs(self, rng):
        mats = [
            shuffle_columns(rng, m) for m in random_collection(33, 150, 11, 4)
        ]
        ref = run(mats, "serial")
        for executor in PARALLEL_EXECUTORS:
            assert_bit_identical(ref.matrix, run(mats, executor).matrix)

    def test_ragged_edges(self):
        # k=1, a single column, more chunks than columns, empty addends,
        # and exact cancellation (explicit zeros must be kept as
        # structural nonzeros by every executor).
        rng = np.random.default_rng(5)
        single = [
            CSCMatrix.from_arrays(
                (40, 1), rng.integers(0, 40, 15), np.zeros(15, dtype=np.int64),
                rng.normal(size=15),
            )
        ]
        a = random_collection(34, 90, 7, 1)[0]
        cancel = [a, a.scaled(-1.0)]
        empty_heavy = [a, CSCMatrix.zeros(a.shape), CSCMatrix.zeros(a.shape)]
        for mats in (single, cancel, empty_heavy):
            ref = run(mats, "serial")
            for executor in PARALLEL_EXECUTORS:
                got = run(mats, executor, threads=5)
                assert_bit_identical(ref.matrix, got.matrix)
        assert run(cancel, "shm").matrix.nnz == a.nnz  # zeros kept

    @pytest.mark.parametrize("backend", ["fast", "instrumented"])
    def test_zero_copy_equals_materialized(self, backend):
        """ISSUE-5 acceptance: shm zero-copy results are bit-identical
        to materialized ones (and to the thread pool) on both kernel
        backends."""
        mats = random_collection(41, 210, 15, 5)
        zc = run(mats, "shm", backend=backend)
        mz = run(mats, "shm", backend=backend, materialize=True)
        assert zc.matrix.buffer_owner is not None
        assert mz.matrix.buffer_owner is None
        assert_bit_identical(zc.matrix, mz.matrix, f"{backend}/materialize")
        assert_bit_identical(
            zc.matrix, run(mats, "thread", backend=backend).matrix, backend
        )


class TestShmLifecycle:
    def test_no_segments_after_result_collected(self):
        """Zero-copy results pin their output segment while referenced;
        once the result is garbage-collected /dev/shm is empty again."""
        import gc

        mats = random_collection(35, 200, 13, 5)
        before = list_live_segments()
        res = run(mats, "shm")
        del res
        gc.collect()
        assert list_live_segments() == before

    def test_non_float64_runs_clean_no_worker_error(self):
        """float32 (and exact int64) through the shm engine: the old
        worker-side dtype-mismatch RuntimeError is gone — the scratch
        and output segments are sized from the resolved value dtype —
        and the run leaks no segments once the result is collected."""
        import gc

        for dtype in (np.float32, np.int64):
            mats = TestConformance.dtype_collection([dtype] * 4, seed=91)
            before = list_live_segments()
            got = run(mats, "shm")  # previously raised RuntimeError
            assert got.matrix.data.dtype == np.dtype(dtype)
            assert_bit_identical(got.matrix, run(mats, "thread").matrix)
            del got
            gc.collect()
            assert list_live_segments() == before

    def test_no_segments_after_worker_exception(self):
        mats = random_collection(36, 200, 13, 5)
        before = list_live_segments()
        with pytest.raises(TypeError):
            # An unknown kernel kwarg raises inside the worker, after
            # the engine has created its segments.
            spkadd(mats, method="hash", threads=2, executor="shm",
                   definitely_not_a_kwarg=1)
        assert list_live_segments() == before
        # The engine (and its persistent pool) must stay usable.
        res = run(mats, "shm")
        assert_bit_identical(res.matrix, run(mats, "thread").matrix)

    def test_registry_context_manager_unlinks(self):
        before = list_live_segments()
        with SegmentRegistry() as reg:
            specs = reg.publish([np.arange(10), np.ones(3)])
            assert len(list_live_segments()) == len(before) + 1
            assert np.array_equal(reg.read_out(specs[0]), np.arange(10))
        assert list_live_segments() == before

    def test_spawn_start_method(self):
        # Spec handles travel by name+offset only, so the engine must
        # work where fork is unavailable (Windows/macOS default).
        mats = random_collection(37, 120, 9, 4)
        ranges = [
            (j0, j1)
            for j0, j1 in split_weighted(_total_col_nnz(mats), 4)
            if j1 > j0
        ]
        engine = SharedMemoryPool(
            mp_context=multiprocessing.get_context("spawn")
        )
        try:
            out, stat_items = engine.run(
                mats, "hash", ranges,
                sorted_output=True, kwargs={"backend": "fast"}, threads=2,
            )
        finally:
            # The spawn context makes this pool de-facto private to the
            # engine; discard it rather than leave its workers in an
            # LRU slot of the shared registry.
            engine.shutdown(discard=True)
        assert_bit_identical(out, run(mats, "thread").matrix)
        assert len(stat_items) == len(ranges)
        # Only the zero-copy result still pins a segment.
        import gc

        del out
        gc.collect()
        assert list_live_segments() == []


class TestExecutorSelection:
    def test_trace_sink_rejected_by_all_multiprocess_executors(self):
        # Both process-based pools must fail the same way: same type,
        # before any worker is spawned.
        mats = random_collection(38, 100, 7, 3)
        errors = {}
        for executor in ("process", "shm"):
            with pytest.raises(ValueError, match="trace_sink") as ei:
                parallel_spkadd(
                    mats, "hash", threads=2, executor=executor,
                    backend="instrumented", trace_sink=[],
                )
            errors[executor] = ei.value
        assert type(errors["process"]) is type(errors["shm"])
        # The thread pool still supports traces.
        sink = []
        parallel_spkadd(
            mats, "hash", threads=2, executor="thread",
            backend="instrumented", trace_sink=sink,
        )
        assert sink

    def test_resolve_executor(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
        assert resolve_executor(None) == "thread"
        assert resolve_executor("auto") == "thread"
        assert resolve_executor("shm") == "shm"
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "shm")
        assert resolve_executor(None) == "shm"
        assert resolve_executor("process") == "process"  # explicit wins
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("rocketship")

    def test_resolve_executor_error_names_source(self, monkeypatch):
        """A bad name is blamed on where it came from: the kwarg or the
        REPRO_EXECUTOR environment variable (satellite regression — the
        two used to raise indistinguishable messages)."""
        monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
        with pytest.raises(ValueError, match="executor argument"):
            resolve_executor("rocketship")
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "warp-drive")
        with pytest.raises(
            ValueError, match=f"{EXECUTOR_ENV_VAR} environment variable"
        ):
            resolve_executor(None)
        with pytest.raises(
            ValueError, match=f"{EXECUTOR_ENV_VAR} environment variable"
        ):
            resolve_executor("auto")
        # An explicit bad argument is blamed on the argument even while
        # the environment variable is also bad.
        with pytest.raises(ValueError, match="executor argument"):
            resolve_executor("rocketship")

    def test_env_override_routes_spkadd(self, monkeypatch):
        mats = random_collection(39, 150, 11, 4)
        ref = spkadd(mats, method="hash", threads=2, executor="thread")
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "shm")
        got = spkadd(mats, method="hash", threads=2)
        assert_bit_identical(ref.matrix, got.matrix)
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "warp-drive")
        with pytest.raises(ValueError, match="unknown executor"):
            spkadd(mats, method="hash", threads=2)


class TestSymbolicSizing:
    def test_backend_symbolic_col_nnz_shared(self):
        """Both engines expose the same exact-nnz sizing pass, and it
        predicts the shm executor's preallocated layout exactly."""
        from repro.core.symbolic import exact_output_col_nnz
        from repro.kernels import get_backend

        mats = random_collection(40, 120, 9, 4)
        exact = exact_output_col_nnz(mats)
        for name in ("fast", "instrumented"):
            got = get_backend(name).symbolic_col_nnz(mats)
            assert np.array_equal(got, exact), name
        out = run(mats, "shm").matrix
        assert np.array_equal(np.diff(out.indptr), exact)


class TestChunkOutputLayout:
    def test_layout_matches_counts(self):
        col_nnz = np.array([3, 0, 2, 5, 0, 1], dtype=np.int64)
        ranges = [(0, 2), (2, 5), (5, 6)]
        indptr, offsets = chunk_output_layout(col_nnz, ranges)
        assert list(indptr) == [0, 3, 3, 5, 10, 10, 11]
        assert offsets == [(0, 3), (3, 10), (10, 11)]

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            chunk_output_layout(np.ones(4, dtype=np.int64), [(0, 9)])
