"""Gateway tests: fusion bit-identity, shedding, deadlines, recovery.

The server runs on a background event-loop thread inside the test
process (``start_in_thread``), which keeps the suite hermetic *and*
lets ``faults.inject`` reach the gateway's kernel calls — the chaos
legs drive real worker faults through the service path.
"""

import glob
import os
import threading
import time
import uuid

import numpy as np
import pytest

import repro
from repro.parallel import faults
from repro.serve import (
    GatewayClient,
    GatewayConfig,
    RequestInvalid,
    ShedError,
    start_in_thread,
)
from repro.serve.batcher import BatchKey, fuse_requests, split_result
from tests.conftest import assert_bit_identical, random_collection


def _sock() -> str:
    # AF_UNIX paths are capped at ~107 bytes; tmp_path can blow that.
    return f"/tmp/repro-gw-{os.getpid()}-{uuid.uuid4().hex[:8]}.sock"


def _config(**kw) -> GatewayConfig:
    kw.setdefault("socket_path", _sock())
    kw.setdefault("executor", "thread")  # hermetic + fast for most legs
    kw.setdefault("threads", 2)
    kw.setdefault("batch_window_s", 0.05)
    return GatewayConfig(**kw)


# ---------------------------------------------------------------------------
# Fusion unit tests (no server).
# ---------------------------------------------------------------------------


class _Req:
    def __init__(self, mats, index_dtype=None):
        self.mats = mats
        self.index_dtype = index_dtype


def test_fuse_split_bit_identical_to_serial():
    reqs = [_Req(random_collection(seed=s, m=256, n=8 + s, k=3 + s % 3))
            for s in range(5)]
    fused, spans = fuse_requests(reqs)
    assert len(fused) == sum(len(r.mats) for r in reqs)
    assert fused[0].shape[1] == sum(r.mats[0].shape[1] for r in reqs)
    out = repro.spkadd(fused).matrix
    parts = split_result(out, reqs, spans)
    for req, got in zip(reqs, parts):
        assert_bit_identical(got, repro.spkadd(req.mats).matrix, "fused")


def test_split_recasts_to_solo_index_width():
    """A request pinned to int64 must come back int64 even when the
    fused call resolves int32."""
    reqs = [_Req(random_collection(seed=1, m=64, n=8, k=2)),
            _Req(random_collection(seed=2, m=64, n=8, k=2),
                 index_dtype="int64")]
    fused, spans = fuse_requests(reqs)
    out = repro.spkadd(fused).matrix
    assert out.indices.dtype == np.int32  # the fused call stayed narrow
    parts = split_result(out, reqs, spans)
    assert parts[0].indices.dtype == np.int32
    assert parts[1].indices.dtype == np.int64
    assert_bit_identical(
        parts[1],
        repro.spkadd(reqs[1].mats, index_dtype="int64").matrix,
        "widened",
    )


def test_batch_key_separates_value_dtypes():
    f32 = [m.astype(np.float32) for m in random_collection(3, 64, 8, 2)]
    f64 = random_collection(seed=3, m=64, n=8, k=2)
    key32 = BatchKey.for_request(f32, "hash", "", True)
    key64 = BatchKey.for_request(f64, "hash", "", True)
    assert key32 != key64  # mixing would promote the f32 request


# ---------------------------------------------------------------------------
# End-to-end roundtrips.
# ---------------------------------------------------------------------------


def test_roundtrip_bit_identical_to_serial():
    cfg = _config()
    with start_in_thread(cfg), GatewayClient(cfg.socket_path) as gw:
        for seed in range(4):
            mats = random_collection(seed=seed, m=512, n=24, k=4)
            assert_bit_identical(
                gw.submit(mats), repro.spkadd(mats).matrix, f"seed {seed}"
            )


def test_concurrent_clients_fuse_to_higher_k():
    """N concurrent clients each get their exact serial answer, and the
    server's fused k exceeds any single request's k — the paper's
    grows-with-k advantage, manufactured by the batcher."""
    burst, k_each = 8, 3
    cfg = _config(batch_window_s=0.25, batch_max=burst)
    failures = []
    barrier = threading.Barrier(burst)

    def worker(seed):
        try:
            mats = random_collection(seed=seed, m=256, n=16, k=k_each)
            expect = repro.spkadd(mats).matrix
            barrier.wait(timeout=30)
            with GatewayClient(cfg.socket_path) as gw:
                assert_bit_identical(gw.submit(mats), expect, f"seed {seed}")
        except Exception as err:  # noqa: BLE001 - collected for the assert
            failures.append((seed, err))

    with start_in_thread(cfg):
        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(burst)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        with GatewayClient(cfg.socket_path) as gw:
            stats = gw.stats()
    assert not failures, failures
    assert stats["completed"] == burst
    assert stats["fused_k_max"] > k_each, stats
    assert stats["batched_requests"] >= 2


def test_shm_response_and_release():
    cfg = _config()
    with start_in_thread(cfg), GatewayClient(cfg.socket_path) as gw:
        mats = random_collection(seed=11, m=512, n=24, k=4)
        expect = repro.spkadd(mats).matrix
        res = gw.submit(mats, response="shm")
        seg = glob.glob("/dev/shm/repro*")
        assert seg, "shm response should live in a repro segment"
        assert_bit_identical(res.materialize(), expect, "shm response")
        res.release()
        time.sleep(0.2)  # the release frame is fire-and-forget
        stats = gw.stats()
        assert stats["released_leases"] == 1


def test_shm_transport_request():
    cfg = _config()
    with start_in_thread(cfg), GatewayClient(cfg.socket_path) as gw:
        mats = random_collection(seed=12, m=512, n=24, k=4)
        assert_bit_identical(
            gw.submit(mats, transport="shm"),
            repro.spkadd(mats).matrix,
            "shm transport",
        )


def test_large_requests_take_the_solo_lane():
    cfg = _config(small_nnz=64)  # force everything past the batcher
    with start_in_thread(cfg), GatewayClient(cfg.socket_path) as gw:
        mats = random_collection(seed=13, m=512, n=24, k=4,
                                 nnz_lo=40, nnz_hi=80)
        assert_bit_identical(gw.submit(mats), repro.spkadd(mats).matrix,
                             "solo lane")
        stats = gw.stats()
        assert stats["solo_calls"] == 1
        assert stats["batches"] == 0


# ---------------------------------------------------------------------------
# Typed error frames: invalid, shed, deadline.
# ---------------------------------------------------------------------------


def test_invalid_requests_get_typed_error():
    cfg = _config()
    with start_in_thread(cfg), GatewayClient(cfg.socket_path) as gw:
        mats = random_collection(seed=21, m=128, n=8, k=2)
        with pytest.raises(RequestInvalid, match="threads must be >= 1"):
            gw.submit(mats, threads=0)
        with pytest.raises(RequestInvalid, match="deadline_s must be"):
            gw.submit(mats, deadline_s=-1)
        with pytest.raises(ValueError, match="unknown"):
            gw.submit(mats, method="warp9")
        # a mismatched shape must not reinterpret under mats[0]'s
        # shape and sum silently wrong
        tall = random_collection(seed=23, m=256, n=8, k=1)
        with pytest.raises(ValueError, match="share one shape"):
            gw.submit(mats + tall)
        # the connection survives typed errors
        assert_bit_identical(gw.submit(mats), repro.spkadd(mats).matrix,
                             "after errors")


def test_queue_overflow_sheds_with_typed_error():
    cfg = _config(max_queue=1, batch_max=1, parallel_calls=1)
    with start_in_thread(cfg):
        mats = random_collection(seed=22, m=256, n=16, k=3)
        errs, done = [], []

        def slow_submit():
            with faults.inject(delay_chunk=0, delay_s=1.5):
                with GatewayClient(cfg.socket_path) as gw:
                    done.append(gw.submit(mats))

        t = threading.Thread(target=slow_submit)
        t.start()
        try:
            with GatewayClient(cfg.socket_path) as gw:
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    if gw.stats()["in_flight"] >= 1:
                        break
                    time.sleep(0.01)
                else:
                    pytest.fail("first request never became in-flight")
                with pytest.raises(ShedError, match="capacity"):
                    gw.submit(mats)
                assert gw.stats()["shed"] == 1
        finally:
            t.join()
        assert len(done) == 1  # the slow request still completed


def test_deadline_expires_with_typed_error_within_2x():
    """A hung worker must not hold a request past its budget: the
    deadline surfaces as the typed error, within 2x the budget."""
    budget = 0.4
    cfg = _config(batch_max=1, batch_window_s=0.0)
    with start_in_thread(cfg), GatewayClient(cfg.socket_path) as gw:
        mats = random_collection(seed=23, m=256, n=16, k=3)
        with faults.inject(delay_chunk=0, delay_s=30.0):
            t0 = time.monotonic()
            with pytest.raises(repro.DeadlineExceeded):
                gw.submit(mats, deadline_s=budget)
            elapsed = time.monotonic() - t0
        assert elapsed < 2 * budget, f"deadline overran: {elapsed:.2f}s"
        assert gw.stats()["deadline_expired"] == 1


def test_batch_survives_one_members_tight_deadline():
    """A fused batch whose tightest member expires re-runs the
    survivors solo: batch-mates still get their exact answers."""
    burst = 4
    # batch_max > burst: the flush comes from the 0.3s window, so
    # member 0's 0.05s budget has expired by the time the batch runs.
    cfg = _config(batch_window_s=0.3, batch_max=burst * 2)
    outcomes = {}
    barrier = threading.Barrier(burst)

    def worker(seed):
        mats = random_collection(seed=seed, m=256, n=16, k=3)
        expect = repro.spkadd(mats).matrix
        # member 0's budget expires inside the batch window
        deadline = 0.05 if seed == 0 else None
        barrier.wait(timeout=30)
        try:
            with GatewayClient(cfg.socket_path) as gw:
                got = gw.submit(mats, deadline_s=deadline)
            assert_bit_identical(got, expect, f"seed {seed}")
            outcomes[seed] = "ok"
        except repro.DeadlineExceeded:
            outcomes[seed] = "deadline"
        except Exception as err:  # noqa: BLE001
            outcomes[seed] = err

    with start_in_thread(cfg):
        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(burst)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert outcomes[0] == "deadline", outcomes
    assert all(outcomes[s] == "ok" for s in range(1, burst)), outcomes


def test_injected_worker_fault_recovers_bit_identical():
    """A killed chunk inside the gateway's kernel call retries into the
    exact serial answer — the resilience chain works through the
    service path."""
    cfg = _config(batch_max=1)
    with start_in_thread(cfg), GatewayClient(cfg.socket_path) as gw:
        mats = random_collection(seed=24, m=256, n=16, k=3)
        with faults.inject(kill_chunk=0):
            got = gw.submit(mats)
        assert_bit_identical(got, repro.spkadd(mats).matrix, "post-fault")


# ---------------------------------------------------------------------------
# Transport resilience + resource hygiene.
# ---------------------------------------------------------------------------


def test_client_reconnects_after_server_restart():
    path = _sock()
    mats = random_collection(seed=31, m=256, n=16, k=3)
    expect = repro.spkadd(mats).matrix
    gw = GatewayClient(path)
    try:
        with start_in_thread(GatewayConfig(socket_path=path,
                                           executor="thread")):
            assert_bit_identical(gw.submit(mats), expect, "first server")
        # server gone: the held connection is now dead
        with start_in_thread(GatewayConfig(socket_path=path,
                                           executor="thread")):
            assert_bit_identical(gw.submit(mats), expect, "reconnected")
    finally:
        gw.close()


def test_soak_no_fd_shm_or_child_growth():
    """Sustained mixed traffic must not grow file descriptors,
    ``/dev/shm`` entries, or child processes."""
    import multiprocessing

    cfg = _config(batch_max=4, batch_window_s=0.0)
    mats = random_collection(seed=41, m=256, n=16, k=3)
    expect = repro.spkadd(mats).matrix
    with start_in_thread(cfg), GatewayClient(cfg.socket_path) as gw:
        for _ in range(5):  # warm-up: pools, lazy imports, socket
            gw.submit(mats)
        fd0 = len(os.listdir("/proc/self/fd"))
        shm0 = len(glob.glob("/dev/shm/*"))
        kids0 = len(multiprocessing.active_children())
        for i in range(60):
            if i % 3 == 2:
                res = gw.submit(mats, response="shm")
                assert_bit_identical(res.materialize(), expect, "soak shm")
                res.release()
            else:
                assert_bit_identical(gw.submit(mats), expect, "soak")
        time.sleep(0.2)  # let fire-and-forget releases land
        assert len(os.listdir("/proc/self/fd")) <= fd0 + 2
        assert len(glob.glob("/dev/shm/*")) <= shm0
        assert len(multiprocessing.active_children()) <= kids0
        stats = gw.stats()
        assert stats["in_flight"] == 0
        assert stats["completed"] == 65


def test_disconnect_releases_shm_leases():
    cfg = _config()
    with start_in_thread(cfg):
        mats = random_collection(seed=42, m=256, n=16, k=3)
        with GatewayClient(cfg.socket_path) as gw:
            res = gw.submit(mats, response="shm")
            name = glob.glob("/dev/shm/repro*")
            assert name
            res.matrix = None  # drop views without sending release
            res._attachments.close()
        # connection closed with the lease outstanding
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if not glob.glob("/dev/shm/repro*"):
                break
            time.sleep(0.05)
        assert not glob.glob("/dev/shm/repro*"), "lease leaked"


@pytest.mark.slow
def test_gateway_over_shm_executor_end_to_end():
    """The production configuration: dedicated reservation-pinned shm
    pool behind the gateway."""
    cfg = _config(executor="shm", threads=2)
    with start_in_thread(cfg), GatewayClient(cfg.socket_path) as gw:
        for seed in (51, 52):
            mats = random_collection(seed=seed, m=512, n=24, k=4)
            assert_bit_identical(
                gw.submit(mats), repro.spkadd(mats).matrix, f"shm {seed}"
            )
