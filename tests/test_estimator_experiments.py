"""Tests for the ER estimator, experiment runner and calibration."""

import numpy as np
import pytest

from repro.core.estimator import (
    er_2way_incremental_work,
    er_2way_tree_work,
    er_expected_cf,
    er_expected_output_col_nnz,
    er_heap_work,
    er_kway_work,
    expected_distinct,
)
from repro.core.stats import KernelStats
from repro.experiments.config import PAPER, ReproScale
from repro.experiments.report import format_series, format_table, format_winner_grid
from repro.experiments.runner import synthesize_pairwise_stats, run_method
from repro.generators import erdos_renyi_collection
from repro.machine.costmodel import CostModel
from repro.machine.spec import INTEL_SKYLAKE_8160


class TestEstimator:
    def test_expected_distinct_limits(self):
        assert expected_distinct(100, 0) == 0.0
        assert expected_distinct(100, 1) == pytest.approx(1.0)
        # many draws saturate at m
        assert expected_distinct(100, 100000) == pytest.approx(100, rel=1e-3)

    def test_expected_distinct_matches_simulation(self):
        rng = np.random.default_rng(0)
        m, draws = 1000, 1500
        sim = np.mean([
            len(np.unique(rng.integers(0, m, draws))) for _ in range(50)
        ])
        assert expected_distinct(m, draws) == pytest.approx(sim, rel=0.02)

    def test_output_col_nnz_bounds(self):
        v = er_expected_output_col_nnz(1000, 10, 4)
        assert 10 <= v <= 40

    def test_cf_monotone_in_k(self):
        cfs = [er_expected_cf(10_000, 100, k) for k in (2, 8, 32, 128)]
        assert all(a <= b for a, b in zip(cfs, cfs[1:]))

    def test_cf_at_least_one(self):
        assert er_expected_cf(100, 1, 1) >= 1.0

    def test_work_formulas_ordering(self):
        # k-way < tree = heap < incremental for large k
        d, k, n = 64, 64, 100
        assert er_kway_work(d, k, n) < er_2way_tree_work(d, k, n)
        assert er_2way_tree_work(d, k, n) == er_heap_work(d, k, n)
        assert er_2way_tree_work(d, k, n) < er_2way_incremental_work(d, k, n)


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], [333, None]])
        lines = text.splitlines()
        assert len({len(l) for l in lines}) == 1  # equal widths
        assert "-" in lines[1]

    def test_format_series(self):
        text = format_series("x", [1, 2], {"y": [0.5, 1.5]}, title="t")
        assert text.startswith("t")
        assert "1.5" in text

    def test_winner_grid_legend(self):
        text = format_winner_grid(
            "k", "d", [4], [16], {(4, 16): "hash"},
            abbrev={"hash": "H"},
        )
        assert "legend" in text
        assert "H" in text


class TestScaleConfig:
    def test_time_factor(self):
        sc = ReproScale(16, 32)
        assert sc.time_factor == 512

    def test_dimension_mapping(self):
        sc = ReproScale(16, 16)
        assert sc.m() == PAPER["m"] // 16
        assert sc.n(1024) == 64
        assert sc.d(1024) == 64.0
        assert sc.d(4) == 1.0  # floor at 1

    def test_m_pow2(self):
        sc = ReproScale(16, 16)
        m = sc.m_pow2()
        assert m & (m - 1) == 0
        assert m >= sc.m()

    def test_machine_scaling(self):
        sc = ReproScale(16, 16)
        mc = sc.machine(INTEL_SKYLAKE_8160)
        assert mc.llc_bytes == INTEL_SKYLAKE_8160.llc_bytes // 16


class TestRunner:
    def test_synthesized_pairwise_exact(self):
        """The no-execution pairwise stats equal real execution."""
        from repro.core.pairwise import (
            spkadd_2way_incremental,
            spkadd_2way_tree,
        )

        mats = erdos_renyi_collection(512, 8, d=8, k=6, seed=1)
        inc_s, tree_s = synthesize_pairwise_stats(mats)
        st = KernelStats()
        out = spkadd_2way_incremental(mats, stats=st)
        assert inc_s.ops == st.ops
        assert inc_s.bytes_written == st.bytes_written
        assert inc_s.output_nnz == out.nnz
        st2 = KernelStats()
        out2 = spkadd_2way_tree(mats, stats=st2)
        assert tree_s.ops == st2.ops
        assert tree_s.output_nnz == out2.nnz

    @pytest.mark.parametrize("method", ["hash", "sliding_hash", "heap", "spa"])
    def test_run_method_produces_time(self, method):
        mats = erdos_renyi_collection(1024, 8, d=8, k=4, seed=2)
        cm = CostModel(INTEL_SKYLAKE_8160.scaled(256), threads=4)
        rr = run_method(mats, method, cm, time_factor=2.0)
        assert rr.seconds > 0
        assert rr.output_nnz > 0
        assert rr.stats.input_nnz == sum(m.nnz for m in mats)

    def test_unknown_method(self):
        mats = erdos_renyi_collection(128, 4, d=2, k=2, seed=3)
        cm = CostModel(INTEL_SKYLAKE_8160, threads=1)
        with pytest.raises(ValueError):
            run_method(mats, "banana", cm)


@pytest.mark.slow
class TestCalibration:
    def test_anchor_reproduction(self):
        """Calibrated constants reproduce the Table III anchor column."""
        from repro.experiments.calibration import (
            ANCHOR_D,
            ANCHOR_K,
            TABLE3_ANCHORS,
            calibrated_cost_model,
        )
        from repro.experiments.runner import run_all_methods

        sc = ReproScale(64, 64)
        cm = calibrated_cost_model(
            sc.machine(INTEL_SKYLAKE_8160), PAPER["threads"], scale=sc
        )
        mats = erdos_renyi_collection(
            sc.m(), sc.n(PAPER["n_er"]), d=sc.d(ANCHOR_D), k=ANCHOR_K,
            seed=2021,
        )
        runs = run_all_methods(
            mats, cm, time_factor=sc.time_factor, capacity_factor=sc.scale_m
        )
        for method, target in TABLE3_ANCHORS.items():
            got = runs[method].seconds
            assert got == pytest.approx(target, rel=0.35), method
