"""Tests for the vectorized linear-probing hash engine."""

import numpy as np
import pytest

from repro.core.hashtable import (
    EMPTY,
    hash_accumulate,
    hash_count_distinct,
    segmented_hash_accumulate,
)
from repro.core.reference import hash_add_ref


class TestHashAccumulate:
    def test_unique_keys_preserved(self):
        keys = np.array([5, 17, 3, 99], dtype=np.int64)
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        res = hash_accumulate(keys, vals, 16)
        order = np.argsort(res.keys)
        assert list(res.keys[order]) == [3, 5, 17, 99]
        assert list(res.vals[order]) == [3.0, 1.0, 2.0, 4.0]

    def test_duplicates_summed(self):
        keys = np.array([7, 7, 7, 2], dtype=np.int64)
        vals = np.array([1.0, 10.0, 100.0, 5.0])
        res = hash_accumulate(keys, vals, 16)
        d = dict(zip(res.keys.tolist(), res.vals.tolist()))
        assert d == {7: 111.0, 2: 5.0}

    def test_empty_input(self):
        res = hash_accumulate(
            np.empty(0, dtype=np.int64), np.empty(0), 16
        )
        assert len(res.keys) == 0
        assert res.slot_ops == 0

    def test_all_same_key(self):
        n = 1000
        res = hash_accumulate(
            np.full(n, 42, dtype=np.int64), np.ones(n), 16
        )
        assert list(res.keys) == [42]
        assert res.vals[0] == n
        # one op per entry: insert once, match n-1 times
        assert res.slot_ops == n
        assert res.probes == 0

    def test_high_load_factor_still_correct(self):
        # 15 distinct keys in a 16-slot table: heavy probing
        keys = np.arange(15, dtype=np.int64) * 1337
        res = hash_accumulate(keys, np.ones(15), 16)
        assert sorted(res.keys.tolist()) == sorted(keys.tolist())
        assert res.probes >= 0

    def test_full_table_raises(self):
        keys = np.arange(20, dtype=np.int64)
        with pytest.raises(RuntimeError, match="full"):
            hash_accumulate(keys, np.ones(20), 16)

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            hash_accumulate(np.array([1], dtype=np.int64), np.array([1.0]), 20)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            hash_accumulate(np.array([1, 2], dtype=np.int64), np.array([1.0]))

    def test_ops_match_scalar_reference(self):
        """Vectorized op accounting must equal Algorithm 5's counts."""
        rng = np.random.default_rng(0)
        cols = []
        for _ in range(5):
            r = np.unique(rng.integers(0, 64, rng.integers(5, 25)))
            cols.append((r.tolist(), [1.0] * len(r)))
        ctr = {}
        ref_rows, ref_vals = hash_add_ref(cols, 256, counters=ctr)
        keys = np.concatenate([np.array(r, dtype=np.int64) for r, _ in cols])
        vals = np.concatenate([np.array(v) for _, v in cols])
        res = hash_accumulate(keys, vals, 256)
        order = np.argsort(res.keys)
        assert list(res.keys[order]) == ref_rows
        assert np.allclose(res.vals[order], ref_vals)
        assert res.slot_ops == ctr["slot_ops"]

    def test_trace_capture(self):
        keys = np.array([1, 2, 3, 1, 2], dtype=np.int64)
        res = hash_accumulate(keys, np.ones(5), 16, capture_trace=True)
        assert res.trace is not None
        # every charged slot op appears in the trace
        assert len(res.trace) == res.slot_ops
        assert res.trace.max() < 16

    def test_values_dtype_preserved_float32(self):
        keys = np.array([1, 1], dtype=np.int64)
        vals = np.array([1.5, 2.5], dtype=np.float32)
        res = hash_accumulate(keys, vals, 16)
        assert res.vals.dtype == np.float32
        assert res.vals[0] == 4.0

    def test_integer_values_stay_integer(self):
        """ISSUE satellite: int vals must not silently become float64."""
        keys = np.array([9, 9, 4], dtype=np.int64)
        vals = np.array([2, 3, 7], dtype=np.int32)
        res = hash_accumulate(keys, vals, 16)
        assert res.vals.dtype == np.int64
        d = dict(zip(res.keys.tolist(), res.vals.tolist()))
        assert d == {9: 5, 4: 7}

    def test_integer_sums_exact_beyond_float_precision(self):
        # 2**53 + 1 is not representable in float64; int64 keeps it.
        keys = np.array([1, 1], dtype=np.int64)
        vals = np.array([2**53, 1], dtype=np.int64)
        res = hash_accumulate(keys, vals, 16)
        assert int(res.vals[0]) == 2**53 + 1

    def test_unsigned_values_accumulate_unsigned(self):
        keys = np.array([3, 3], dtype=np.int64)
        vals = np.array([1, 2], dtype=np.uint32)
        res = hash_accumulate(keys, vals, 16)
        assert res.vals.dtype == np.uint64
        assert int(res.vals[0]) == 3

    def test_bool_values_count(self):
        keys = np.array([5, 5, 5], dtype=np.int64)
        vals = np.array([True, True, False])
        res = hash_accumulate(keys, vals, 16)
        assert res.vals.dtype == np.int64
        assert int(res.vals[0]) == 2

    def test_rejects_object_values(self):
        from repro.core.hashtable import accum_dtype

        with pytest.raises(TypeError):
            accum_dtype(np.dtype(object))


class TestHashCountDistinct:
    def test_counts(self):
        keys = np.array([1, 2, 2, 3, 3, 3], dtype=np.int64)
        n, ops, probes, _ = hash_count_distinct(keys, 16)
        assert n == 3
        assert ops == 6

    def test_empty(self):
        n, ops, probes, _ = hash_count_distinct(np.empty(0, dtype=np.int64), 16)
        assert n == 0


class TestSegmented:
    def test_segments_independent(self):
        keys = np.array([1, 1, 2, 1, 1], dtype=np.int64)
        vals = np.ones(5)
        starts = np.array([0, 3, 5])
        sizes = np.array([8, 8])
        k, v, lengths, ops, probes = segmented_hash_accumulate(
            keys, vals, starts, sizes
        )
        # segment 0: {1: 2, 2: 1}; segment 1: {1: 2}
        assert list(lengths) == [2, 1]
        assert len(k) == 3

    def test_empty_segment(self):
        keys = np.array([5], dtype=np.int64)
        starts = np.array([0, 0, 1])
        k, v, lengths, ops, probes = segmented_hash_accumulate(
            keys, np.ones(1), starts, np.array([8, 8])
        )
        assert list(lengths) == [0, 1]

    def test_all_empty(self):
        k, v, lengths, ops, probes = segmented_hash_accumulate(
            np.empty(0, dtype=np.int64), np.empty(0),
            np.array([0, 0, 0]), np.array([8, 8]),
        )
        assert list(lengths) == [0, 0]
        assert k.size == 0 and ops == 0

    def test_batched_matches_per_segment_reference(self):
        """One batched call must reproduce segment-local sums exactly."""
        rng = np.random.default_rng(6)
        keys = rng.integers(0, 50, 200).astype(np.int64)
        vals = rng.normal(size=200)
        starts = np.array([0, 30, 30, 120, 200])
        sizes = np.array([64, 64, 256, 128])
        k, v, lengths, ops, probes = segmented_hash_accumulate(
            keys, vals, starts, sizes
        )
        assert int(lengths.sum()) == k.size
        pos = 0
        for i in range(4):
            lo, hi = int(starts[i]), int(starts[i + 1])
            seg_k = k[pos : pos + lengths[i]]
            seg_v = v[pos : pos + lengths[i]]
            pos += int(lengths[i])
            expect = {}
            for key, val in zip(keys[lo:hi], vals[lo:hi]):
                expect[int(key)] = expect.get(int(key), 0.0) + val
            got = dict(zip(seg_k.tolist(), seg_v.tolist()))
            assert set(got) == set(expect)
            for key in expect:
                assert got[key] == pytest.approx(expect[key])

    def test_ops_are_reported(self):
        keys = np.array([1, 1, 2, 1, 1], dtype=np.int64)
        _, _, _, ops, _ = segmented_hash_accumulate(
            keys, np.ones(5), np.array([0, 3, 5]), np.array([8, 8])
        )
        assert ops >= len(keys)  # at least one slot visit per entry
