"""Chaos suite for the resilient execution layer.

Drives the injection points in :mod:`repro.parallel.faults` against the
real executors and asserts the resilience contract of
:mod:`repro.parallel.resilience`:

* a worker killed mid-call is recovered by chunk retry and the result
  stays **bit-identical** to the serial answer (shm and process
  executors, both kernel backends);
* a per-call deadline is honoured within 2x the requested bound, raises
  the typed ``DeadlineExceeded``, and leaks nothing;
* an executor found unusable (retries exhausted, injected ENOSPC, boot
  timeout) degrades down the fallback chain to a correct answer with a
  one-shot warning, or fails typed when fallback is off;
* deterministic chunk errors keep PR 5's fail-fast contract — they are
  never retried and never degraded around;
* after every recovery, ``/dev/shm``, the child-process set, and the fd
  table return to baseline (no leaks);
* ``sweep_orphans`` unlinks dead-owner segments and leaves live-owner
  segments alone.
"""

import gc
import multiprocessing
import os
import subprocess
import sys
import time
import warnings

import pytest

from repro.core.api import spkadd
from repro.parallel import executor as executor_mod
from repro.parallel import faults
from repro.parallel.resilience import (
    DEADLINE_ENV_VAR,
    FALLBACK_ENV_VAR,
    MAX_RETRIES_ENV_VAR,
    Deadline,
    DeadlineExceeded,
    ExecutorUnusable,
    PoolBootTimeout,
    ResiliencePolicy,
    RetriesExhausted,
    resolve_policy,
)
from repro.parallel.shm import (
    SEGMENT_PREFIX,
    list_live_segments,
    sweep_orphans,
)
from tests.conftest import assert_bit_identical, random_collection


def baseline_result(mats, **kw):
    return spkadd(mats, method="hash", threads=1, **kw)


def open_fds() -> int:
    return len(os.listdir("/proc/self/fd"))


@pytest.fixture
def mats():
    return random_collection(seed=31, m=512, n=48, k=6)


@pytest.fixture
def no_warn_flag(monkeypatch):
    """Reset the process-wide one-shot fallback warning for this test."""
    monkeypatch.setattr(executor_mod, "_FALLBACK_WARNED", False)


# ---------------------------------------------------------------------------
# Policy / deadline / fault-plan resolution.
# ---------------------------------------------------------------------------


class TestPolicyResolution:
    def test_defaults(self, monkeypatch):
        for var in (MAX_RETRIES_ENV_VAR, DEADLINE_ENV_VAR, FALLBACK_ENV_VAR):
            monkeypatch.delenv(var, raising=False)
        p = resolve_policy()
        assert p.max_retries == 2
        assert p.deadline_s is None
        assert p.fallback is None

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv(MAX_RETRIES_ENV_VAR, "5")
        monkeypatch.setenv(DEADLINE_ENV_VAR, "12.5")
        monkeypatch.setenv(FALLBACK_ENV_VAR, "thread,serial")
        p = resolve_policy()
        assert p.max_retries == 5
        assert p.deadline_s == 12.5
        assert p.fallback == ("thread", "serial")

    def test_explicit_deadline_overrides_env(self, monkeypatch):
        monkeypatch.setenv(DEADLINE_ENV_VAR, "12.5")
        assert resolve_policy(deadline=3.0).deadline_s == 3.0

    @pytest.mark.parametrize("raw,expect", [("auto", None), ("off", ())])
    def test_fallback_modes(self, monkeypatch, raw, expect):
        monkeypatch.setenv(FALLBACK_ENV_VAR, raw)
        assert resolve_policy().fallback == expect

    def test_bad_env_names_source(self, monkeypatch):
        monkeypatch.setenv(MAX_RETRIES_ENV_VAR, "many")
        with pytest.raises(ValueError, match=MAX_RETRIES_ENV_VAR):
            resolve_policy()
        monkeypatch.delenv(MAX_RETRIES_ENV_VAR)
        monkeypatch.setenv(FALLBACK_ENV_VAR, "gpu")
        with pytest.raises(ValueError, match=FALLBACK_ENV_VAR):
            resolve_policy()

    def test_chain_semantics(self):
        p = ResiliencePolicy()
        assert p.chain_for("shm") == ("shm", "process", "thread", "serial")
        assert p.chain_for("thread") == ("thread", "serial")
        assert p.chain_for("serial") == ("serial",)
        restricted = ResiliencePolicy(fallback=("serial",))
        assert restricted.chain_for("process") == ("process", "serial")
        disabled = ResiliencePolicy(fallback=())
        assert disabled.chain_for("shm") == ("shm",)

    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(deadline_s=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(fallback=("gpu",))

    def test_backoff_bounded(self):
        p = ResiliencePolicy(backoff_base_s=0.05, backoff_cap_s=0.2,
                             backoff_jitter=0.25)
        for attempt in range(1, 10):
            assert 0.0 <= p.backoff_s(attempt) <= 0.2 * 1.25

    def test_deadline_object(self):
        d = Deadline(0.05)
        assert d.remaining() <= 0.05
        time.sleep(0.06)
        assert d.expired
        with pytest.raises(DeadlineExceeded, match="during assembly"):
            d.check("assembly")
        with pytest.raises(DeadlineExceeded):
            d.sleep(0.01)
        unlimited = Deadline(None)
        assert unlimited.remaining() is None
        unlimited.check("anything")  # never raises

    def test_fault_plan_grammar(self):
        p = faults.parse_plan("kill_chunk=1:3,delay_chunk=0:0.25,"
                              "scatter_raise=2,enospc,boot_hang=1.5")
        assert p.kill_chunk == 1 and p._kill_left == 3
        assert p.delay_chunk == 0 and p.delay_s == 0.25
        assert p._scatter_left == 2 and p._enospc_left == 1
        assert p.boot_hang_s == 1.5
        with pytest.raises(ValueError, match=faults.FAULTS_ENV_VAR):
            faults.parse_plan("explode=1")

    def test_fault_counters_consumed(self):
        p = faults.FaultPlan(kill_chunk=2)
        assert p.take_chunk_fault(1, can_kill=True) is None
        assert p.take_chunk_fault(2, can_kill=True) == {"kill": True}
        assert p.take_chunk_fault(2, can_kill=True) is None  # spent
        degraded = faults.FaultPlan(kill_chunk=0).take_chunk_fault(
            0, can_kill=False
        )
        assert "raise" in degraded and "kill" not in degraded


# ---------------------------------------------------------------------------
# Worker-crash chunk retry: bit-identical recovery, no leaks.
# ---------------------------------------------------------------------------


class TestKillRetry:
    @pytest.mark.parametrize("executor", ["process", "shm"])
    @pytest.mark.parametrize("backend", ["fast", "instrumented"])
    def test_single_kill_recovers_bit_identical(
        self, mats, executor, backend
    ):
        base = baseline_result(mats, backend=backend)
        seg_before = list_live_segments()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # recovery must not degrade
            with faults.inject(kill_chunk=1):
                res = spkadd(
                    mats, method="hash", threads=2, executor=executor,
                    backend=backend, materialize=True,
                )
        assert_bit_identical(
            res.matrix, base.matrix, f"{executor}/{backend} kill-retry"
        )
        del res
        gc.collect()
        assert list_live_segments() == seg_before

    def test_kill_leaves_no_children_fds_segments(self, mats):
        base = baseline_result(mats)
        # Warm the pool so the baseline counts include resident workers.
        spkadd(mats, method="hash", threads=2, executor="shm",
               materialize=True)
        children = len(multiprocessing.active_children())
        fds = open_fds()
        seg_before = list_live_segments()
        for trial in range(3):
            with faults.inject(kill_chunk=trial % 2):
                res = spkadd(mats, method="hash", threads=2,
                             executor="shm", materialize=True)
            assert_bit_identical(res.matrix, base.matrix, f"trial {trial}")
        del res
        gc.collect()
        assert list_live_segments() == seg_before
        assert len(multiprocessing.active_children()) <= children
        # A couple of fds of slack: the pool rebuild may settle its pipes
        # lazily, but repeated recoveries must not accumulate.
        assert open_fds() <= fds + 4

    def test_worker_sigkill_shm_baseline_regression(self, mats):
        """Satellite regression: a SIGKILLed worker mid-scatter must not
        leak the output segment — ``/dev/shm`` returns to baseline."""
        base = baseline_result(mats)
        seg_before = list_live_segments()
        with faults.inject(kill_chunk=0, delay_chunk=0, delay_s=0.05):
            res = spkadd(mats, method="hash", threads=2, executor="shm",
                         materialize=True)
        assert_bit_identical(res.matrix, base.matrix, "post-SIGKILL")
        del res
        gc.collect()
        assert list_live_segments() == seg_before

    def test_thread_injected_transient_retried(self, mats):
        base = baseline_result(mats)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with faults.inject(kill_chunk=2):  # degrades to a raise
                res = spkadd(mats, method="hash", threads=2,
                             executor="thread")
        assert_bit_identical(res.matrix, base.matrix, "thread retry")

    def test_serial_injected_transient_retried(self, mats):
        base = baseline_result(mats)
        with faults.inject(kill_chunk=0):
            res = spkadd(mats, method="hash", threads=2, executor="serial")
        assert_bit_identical(res.matrix, base.matrix, "serial retry")

    def test_scatter_fault_retried_bit_identical(self, mats):
        base = baseline_result(mats)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with faults.inject(scatter_raise=1):
                res = spkadd(mats, method="hash", threads=2,
                             executor="shm", materialize=True)
        assert_bit_identical(res.matrix, base.matrix, "scatter retry")

    def test_env_fault_plan_fresh_per_call(self, mats, monkeypatch):
        base = baseline_result(mats)
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "kill_chunk=0")
        for call in range(2):  # fresh counters: both calls are faulted
            res = spkadd(mats, method="hash", threads=2, executor="process")
            assert_bit_identical(res.matrix, base.matrix, f"env call {call}")

    def test_deterministic_errors_not_retried(self, mats):
        """PR 5 fail-fast contract: a deterministic chunk error is never
        retried and never degraded around."""
        calls = []
        original = executor_mod._run_chunk

        def counting(method, j0, views, sorted_output, kwargs):
            calls.append(j0)
            raise TypeError("deterministic kernel bug")

        try:
            executor_mod._run_chunk = counting
            with pytest.raises(TypeError, match="deterministic"):
                spkadd(mats, method="hash", threads=2, executor="thread")
        finally:
            executor_mod._run_chunk = original
        # Fail-fast: at most one submission wave, no per-chunk retries.
        assert len(calls) <= 8


# ---------------------------------------------------------------------------
# Deadlines.
# ---------------------------------------------------------------------------


class TestDeadline:
    @pytest.mark.parametrize("executor", ["thread", "shm"])
    def test_delayed_chunk_deadline(self, mats, executor):
        # Warm pools first so the measured window is the wait, not a boot.
        spkadd(mats, method="hash", threads=2, executor=executor,
               materialize=True)
        seg_before = list_live_segments()
        t0 = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            with faults.inject(delay_chunk=0, delay_s=3.0):
                spkadd(mats, method="hash", threads=2, executor=executor,
                       deadline=0.5, materialize=True)
        elapsed = time.monotonic() - t0
        assert elapsed < 1.0, f"deadline held {elapsed:.2f}s (2x bound)"
        gc.collect()
        assert list_live_segments() == seg_before

    def test_deadline_env_var(self, mats, monkeypatch):
        monkeypatch.setenv(DEADLINE_ENV_VAR, "0.4")
        with pytest.raises(DeadlineExceeded):
            with faults.inject(delay_chunk=0, delay_s=3.0):
                spkadd(mats, method="hash", threads=2, executor="thread")

    def test_deadline_not_swallowed_by_fallback(self, mats):
        """An expired budget fails the call — it must not trigger a
        (slower) fallback stage."""
        with pytest.raises(DeadlineExceeded):
            with faults.inject(delay_chunk=0, delay_s=3.0):
                spkadd(mats, method="hash", threads=2, executor="thread",
                       deadline=0.3)

    def test_generous_deadline_is_invisible(self, mats):
        base = baseline_result(mats)
        res = spkadd(mats, method="hash", threads=2, executor="thread",
                     deadline=300.0)
        assert_bit_identical(res.matrix, base.matrix, "live deadline")


# ---------------------------------------------------------------------------
# Fallback chain.
# ---------------------------------------------------------------------------


class TestFallback:
    def test_exhausted_retries_degrade_to_serial(self, mats, no_warn_flag):
        """kill_count=2 with max_retries=0: the process stage dies once
        and gives up, the thread stage eats the second (degraded) kill
        and gives up, and the serial floor — fault budget spent — must
        produce the correct answer."""
        base = baseline_result(mats)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with faults.inject(kill_chunk=0, kill_count=2):
                res = spkadd(
                    mats, method="hash", threads=2, executor="process",
                    resilience=ResiliencePolicy(max_retries=0),
                )
        assert_bit_identical(res.matrix, base.matrix, "serial floor")
        messages = [str(w.message) for w in caught
                    if issubclass(w.category, RuntimeWarning)]
        assert any("unusable" in m for m in messages), messages
        # One-shot: the warning fires once per process, not per hop.
        assert sum("unusable" in m for m in messages) == 1

    def test_fallback_off_raises_typed(self, mats):
        with faults.inject(kill_chunk=0, kill_count=10):
            with pytest.raises(RetriesExhausted) as exc:
                spkadd(
                    mats, method="hash", threads=2, executor="process",
                    resilience=ResiliencePolicy(max_retries=1, fallback=()),
                )
        assert exc.value.executor == "process"
        assert isinstance(exc.value, ExecutorUnusable)

    def test_fallback_env_off(self, mats, monkeypatch):
        monkeypatch.setenv(FALLBACK_ENV_VAR, "off")
        monkeypatch.setenv(MAX_RETRIES_ENV_VAR, "0")
        with faults.inject(kill_chunk=0, kill_count=10):
            with pytest.raises(RetriesExhausted):
                spkadd(mats, method="hash", threads=2, executor="process")

    def test_enospc_falls_back_clean(self, mats, no_warn_flag):
        base = baseline_result(mats)
        seg_before = list_live_segments()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with faults.inject(enospc=1):
                res = spkadd(mats, method="hash", threads=2, executor="shm")
        assert_bit_identical(res.matrix, base.matrix, "post-ENOSPC")
        assert any("unusable" in str(w.message) for w in caught)
        del res
        gc.collect()
        assert list_live_segments() == seg_before

    def test_boot_timeout_typed(self, monkeypatch):
        monkeypatch.setattr(executor_mod, "_FORKSERVER_BOOTED", False)
        monkeypatch.setenv("REPRO_BOOT_TIMEOUT", "0.2")
        with faults.inject(boot_hang_s=1.0):
            with pytest.raises(PoolBootTimeout) as exc:
                executor_mod._ensure_forkserver_running()
        assert exc.value.executor == "process"
        assert isinstance(exc.value, (ExecutorUnusable, TimeoutError))
        # Let the hung boot thread finish before the next test uses the
        # fork server (it completes the real boot after the hang).
        time.sleep(1.2)

    def test_boot_timeout_degrades_to_thread(
        self, mats, monkeypatch, no_warn_flag
    ):
        import repro

        base = baseline_result(mats)
        # Drop warm pools so the process stage must re-acquire one (and
        # so hit the bounded forkserver boot).
        repro.shutdown_pools()
        monkeypatch.setattr(executor_mod, "_FORKSERVER_BOOTED", False)
        monkeypatch.setenv("REPRO_BOOT_TIMEOUT", "0.2")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with faults.inject(boot_hang_s=1.0):
                res = spkadd(mats, method="hash", threads=2,
                             executor="process")
        assert_bit_identical(res.matrix, base.matrix, "post-boot-timeout")
        assert any("unusable" in str(w.message) for w in caught)
        time.sleep(1.2)  # drain the hung boot thread

    def test_serial_executor_explicit(self, mats):
        base = baseline_result(mats)
        res = spkadd(mats, method="hash", threads=4, executor="serial")
        assert_bit_identical(res.matrix, base.matrix, "explicit serial")


# ---------------------------------------------------------------------------
# Orphan sweeper.
# ---------------------------------------------------------------------------


@pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="needs a /dev/shm filesystem"
)
class TestSweeper:
    def test_dead_owner_swept_live_owner_kept(self):
        # A segment "created" by a process that no longer exists…
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        dead_name = f"{SEGMENT_PREFIX}{proc.pid:x}_deadbeef0000"
        # …and one owned by this live process.
        live_name = f"{SEGMENT_PREFIX}{os.getpid():x}_cafebabe0000"
        for name in (dead_name, live_name):
            with open(os.path.join("/dev/shm", name), "wb") as fh:
                fh.write(b"\0" * 16)
        try:
            swept = sweep_orphans()
            assert dead_name in swept
            assert live_name not in swept
            assert not os.path.exists(os.path.join("/dev/shm", dead_name))
            assert os.path.exists(os.path.join("/dev/shm", live_name))
        finally:
            for name in (dead_name, live_name):
                try:
                    os.unlink(os.path.join("/dev/shm", name))
                except FileNotFoundError:
                    pass

    def test_malformed_names_ignored(self):
        name = f"{SEGMENT_PREFIX}notahexpid"
        path = os.path.join("/dev/shm", name)
        with open(path, "wb") as fh:
            fh.write(b"\0")
        try:
            assert name not in sweep_orphans()
            assert os.path.exists(path)
        finally:
            os.unlink(path)

    def test_sweeper_exported_at_top_level(self):
        import repro

        assert repro.sweep_orphans is sweep_orphans


# ---------------------------------------------------------------------------
# Recovery soak: repeated chaos leaves nothing behind.
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestChaosSoak:
    def test_mixed_faults_no_growth(self, mats):
        base = baseline_result(mats)
        spkadd(mats, method="hash", threads=2, executor="shm",
               materialize=True)  # warm
        children = len(multiprocessing.active_children())
        fds = open_fds()
        seg_before = list_live_segments()
        plans = [
            dict(kill_chunk=0),
            dict(scatter_raise=1),
            dict(delay_chunk=1, delay_s=0.01),
            dict(kill_chunk=3, delay_chunk=0, delay_s=0.01),
        ]
        for trial, plan in enumerate(plans * 2):
            with faults.inject(**plan):
                res = spkadd(mats, method="hash", threads=2,
                             executor="shm", materialize=True)
            assert_bit_identical(res.matrix, base.matrix, f"soak {trial}")
        del res
        gc.collect()
        assert list_live_segments() == seg_before
        assert len(multiprocessing.active_children()) <= children
        assert open_fds() <= fds + 4
