"""Tests for repro.util.hashing."""

import numpy as np
import pytest

from repro.util.hashing import (
    HASH_PRIME,
    hash_indices,
    multiplicative_hash,
    next_pow2,
    table_size_for,
)


class TestNextPow2:
    def test_zero_and_one(self):
        assert next_pow2(0) == 1
        assert next_pow2(1) == 1

    def test_exact_powers_unchanged(self):
        for e in range(12):
            assert next_pow2(1 << e) == 1 << e

    def test_rounds_up(self):
        assert next_pow2(3) == 4
        assert next_pow2(5) == 8
        assert next_pow2(1025) == 2048

    def test_large(self):
        assert next_pow2((1 << 40) - 3) == 1 << 40


class TestTableSizeFor:
    def test_power_of_two(self):
        for n in [0, 1, 7, 100, 12345]:
            size = table_size_for(n)
            assert size & (size - 1) == 0

    def test_strictly_greater_than_keys(self):
        for n in [1, 16, 100, 4096]:
            assert table_size_for(n) > n

    def test_load_factor_bounded(self):
        for n in [3, 24, 97, 1000, 5000]:
            assert n <= 0.75 * table_size_for(n)

    def test_min_size(self):
        assert table_size_for(0) >= 16
        assert table_size_for(0, min_size=4) >= 4


class TestMultiplicativeHash:
    def test_in_range(self):
        for key in [0, 1, 17, 123456, 2**31]:
            h = multiplicative_hash(key, 256)
            assert 0 <= h < 256

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            multiplicative_hash(1, 100)

    def test_deterministic(self):
        assert multiplicative_hash(42, 64) == multiplicative_hash(42, 64)

    def test_matches_paper_formula(self):
        # HASH(r) = (a * r) & (2^q - 1)
        r, q = 1234, 10
        assert multiplicative_hash(r, 1 << q) == (HASH_PRIME * r) & ((1 << q) - 1)


class TestHashIndices:
    def test_matches_scalar(self):
        keys = np.array([0, 1, 5, 99, 12345, 2**40], dtype=np.int64)
        vec = hash_indices(keys, 512)
        for k, h in zip(keys, vec):
            assert int(h) == multiplicative_hash(int(k), 512)

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            hash_indices(np.arange(4), 100)

    def test_output_range(self):
        keys = np.arange(10_000, dtype=np.int64)
        h = hash_indices(keys, 1024)
        assert h.min() >= 0 and h.max() < 1024

    def test_spreads_keys(self):
        # sequential keys should not all collide
        h = hash_indices(np.arange(1024, dtype=np.int64), 1024)
        assert len(np.unique(h)) > 512
