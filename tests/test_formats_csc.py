"""Tests for the CSC format substrate."""

import numpy as np
import pytest

from repro.formats.csc import CSCMatrix


def dense_fixture():
    d = np.zeros((6, 4))
    d[0, 0] = 1.0
    d[3, 0] = 2.0
    d[1, 1] = -1.5
    d[5, 3] = 4.0
    d[2, 3] = 0.5
    return d


class TestConstruction:
    def test_from_arrays_roundtrip(self):
        d = dense_fixture()
        mat = CSCMatrix.from_dense(d)
        assert np.array_equal(mat.to_dense(), d)

    def test_from_arrays_sums_duplicates(self):
        mat = CSCMatrix.from_arrays(
            (4, 2), [1, 1, 2], [0, 0, 1], [1.0, 2.0, 5.0]
        )
        assert mat.nnz == 2
        assert mat.to_dense()[1, 0] == 3.0

    def test_from_arrays_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            CSCMatrix.from_arrays((2, 2), [2], [0], [1.0])
        with pytest.raises(ValueError):
            CSCMatrix.from_arrays((2, 2), [0], [5], [1.0])

    def test_from_columns(self):
        cols = [
            (np.array([0, 3]), np.array([1.0, 2.0])),
            (np.array([], dtype=np.int64), np.array([])),
            (np.array([2]), np.array([-1.0])),
        ]
        mat = CSCMatrix.from_columns((5, 3), cols)
        assert mat.nnz == 3
        r, v = mat.col(0)
        assert list(r) == [0, 3]
        r, v = mat.col(1)
        assert len(r) == 0

    def test_from_columns_wrong_count(self):
        with pytest.raises(ValueError):
            CSCMatrix.from_columns((5, 3), [(np.array([0]), np.array([1.0]))])

    def test_zeros(self):
        z = CSCMatrix.zeros((7, 5))
        assert z.nnz == 0
        assert z.shape == (7, 5)
        assert np.all(z.to_dense() == 0)


class TestValidation:
    def test_bad_indptr_start(self):
        with pytest.raises(ValueError):
            CSCMatrix((2, 2), np.array([1, 1, 1]), np.array([], dtype=np.int64), np.array([]))

    def test_decreasing_indptr(self):
        with pytest.raises(ValueError):
            CSCMatrix(
                (2, 2), np.array([0, 2, 1]),
                np.array([0, 1], dtype=np.int64), np.array([1.0, 2.0]),
            )

    def test_indptr_nnz_mismatch(self):
        with pytest.raises(ValueError):
            CSCMatrix(
                (2, 2), np.array([0, 1, 3]),
                np.array([0, 1], dtype=np.int64), np.array([1.0, 2.0]),
            )

    def test_sorted_flag_checked(self):
        with pytest.raises(ValueError):
            CSCMatrix(
                (4, 1), np.array([0, 2]),
                np.array([2, 0], dtype=np.int64), np.array([1.0, 2.0]),
                sorted=True,
            )

    def test_unsorted_accepted_when_flagged(self):
        mat = CSCMatrix(
            (4, 1), np.array([0, 2]),
            np.array([2, 0], dtype=np.int64), np.array([1.0, 2.0]),
            sorted=False,
        )
        assert not mat.sorted


class TestAccess:
    def test_col_view_is_zero_copy(self):
        mat = CSCMatrix.from_dense(dense_fixture())
        rows, vals = mat.col(0)
        assert rows.base is mat.indices or rows.base is None

    def test_col_nnz(self):
        mat = CSCMatrix.from_dense(dense_fixture())
        assert list(mat.col_nnz()) == [2, 1, 0, 2]

    def test_col_block_rebased(self):
        mat = CSCMatrix.from_dense(dense_fixture())
        indptr, idx, dat = mat.col_block(1, 4)
        assert indptr[0] == 0
        assert int(indptr[-1]) == 3

    def test_row_range_of_col_sorted(self):
        mat = CSCMatrix.from_dense(dense_fixture())
        rows, vals = mat.row_range_of_col(3, 0, 3)
        assert list(rows) == [2]
        rows, vals = mat.row_range_of_col(3, 2, 6)
        assert list(rows) == [2, 5]

    def test_row_range_of_col_unsorted(self):
        mat = CSCMatrix(
            (4, 1), np.array([0, 2]),
            np.array([2, 0], dtype=np.int64), np.array([1.0, 2.0]),
            sorted=False,
        )
        rows, _ = mat.row_range_of_col(0, 0, 1)
        assert list(rows) == [0]


class TestStructure:
    def test_select_columns(self):
        mat = CSCMatrix.from_dense(dense_fixture())
        sub = mat.select_columns(1, 3)
        assert sub.shape == (6, 2)
        assert np.array_equal(sub.to_dense(), dense_fixture()[:, 1:3])

    def test_col_view_matches_select(self):
        mat = CSCMatrix.from_dense(dense_fixture())
        assert np.array_equal(
            mat.col_view(1, 3).to_dense(), mat.select_columns(1, 3).to_dense()
        )

    def test_embed_columns(self):
        mat = CSCMatrix.from_dense(dense_fixture())
        emb = mat.embed_columns(10, 4)
        assert emb.shape == (6, 10)
        assert np.array_equal(emb.to_dense()[:, 4:8], dense_fixture())
        assert np.all(emb.to_dense()[:, :4] == 0)

    def test_embed_out_of_range(self):
        mat = CSCMatrix.from_dense(dense_fixture())
        with pytest.raises(ValueError):
            mat.embed_columns(5, 3)

    def test_scaled(self):
        mat = CSCMatrix.from_dense(dense_fixture())
        assert np.allclose(mat.scaled(2.0).to_dense(), 2 * dense_fixture())

    def test_drop_explicit_zeros(self):
        mat = CSCMatrix.from_arrays(
            (3, 2), [0, 1, 2], [0, 0, 1], [1.0, 0.0, 2.0]
        )
        dropped = mat.drop_explicit_zeros()
        assert dropped.nnz == 2
        assert np.array_equal(dropped.to_dense(), mat.to_dense())

    def test_sort_indices(self):
        mat = CSCMatrix(
            (4, 2), np.array([0, 2, 3]),
            np.array([3, 0, 1], dtype=np.int64), np.array([1.0, 2.0, 3.0]),
            sorted=False,
        )
        dense_before = mat.to_dense().copy()
        mat.sort_indices()
        assert mat.sorted
        assert mat._check_sorted()
        assert np.array_equal(mat.to_dense(), dense_before)

    def test_equality(self):
        a = CSCMatrix.from_dense(dense_fixture())
        b = CSCMatrix.from_dense(dense_fixture())
        assert a == b
        b.data[0] += 1.0
        assert not (a == b)

    def test_copy_independent(self):
        a = CSCMatrix.from_dense(dense_fixture())
        b = a.copy()
        b.data[0] = 99.0
        assert a.data[0] != 99.0

    def test_nbytes_positive(self):
        assert CSCMatrix.from_dense(dense_fixture()).nbytes > 0
