"""Tests for ``repro.lint`` — the AST invariant checker.

Three layers:

* per-rule fixtures: each rule fires on a minimal violating snippet,
  stays silent on the compliant spelling, and honors the
  ``# repro-lint: disable=RULE`` escape hatch;
* CLI/meta tests: the real tree is clean, ``--list-rules`` is stable
  JSON, and exit codes match;
* the mypy gate (skipped when mypy isn't installed, as in the
  default container — CI installs it).
"""

import json
import os
import subprocess
import sys

import pytest

from repro.lint import RULES, check_source, rule_listing
from repro.lint.cli import DEFAULT_ROOTS, find_repo_root, lint_paths

REPO_ROOT = find_repo_root(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def rules_hit(path, source):
    return sorted({v.rule for v in check_source(path, source)})


# ---------------------------------------------------------------------------
# rule-set stability
# ---------------------------------------------------------------------------


def test_rule_ids_are_stable():
    assert [r.id for r in RULES] == [
        "L001",
        "L002",
        "L003",
        "L004",
        "L005",
        "L006",
    ]


def test_rule_listing_is_json_serializable():
    listing = rule_listing()
    assert [entry["id"] for entry in listing] == [r.id for r in RULES]
    for entry in listing:
        assert entry["title"]
        assert entry["rationale"]
        assert entry["fixit"]
    json.dumps(listing)  # must round-trip


def test_syntax_error_reports_parse_violation():
    violations = check_source("src/repro/broken.py", "def oops(:\n")
    assert [v.rule for v in violations] == ["PARSE"]


# ---------------------------------------------------------------------------
# L001 — raw shared-memory allocation
# ---------------------------------------------------------------------------

L001_BAD = """\
from multiprocessing.shared_memory import SharedMemory

def grab(nbytes):
    return SharedMemory(create=True, size=nbytes)
"""

L001_ATTACH_OK = """\
from multiprocessing.shared_memory import SharedMemory

def attach(name):
    return SharedMemory(name=name, create=False)
"""


def test_l001_fires_on_create_true_outside_shm_module():
    assert rules_hit("src/repro/parallel/executor.py", L001_BAD) == ["L001"]


def test_l001_allows_the_shm_module_itself():
    assert rules_hit("src/repro/parallel/shm.py", L001_BAD) == []


def test_l001_ignores_attach_only_use():
    assert rules_hit("src/repro/parallel/executor.py", L001_ATTACH_OK) == []


def test_l001_disable_comment():
    src = L001_BAD.replace(
        "create=True, size=nbytes)",
        "create=True, size=nbytes)  # repro-lint: disable=L001",
    )
    assert rules_hit("src/repro/parallel/executor.py", src) == []


# ---------------------------------------------------------------------------
# L002 — decentralized REPRO_* env reads
# ---------------------------------------------------------------------------

L002_BAD_GET = """\
import os

def backend_name():
    return os.environ.get("REPRO_BACKEND")
"""

L002_BAD_SUBSCRIPT = """\
import os

def deadline_raw():
    return os.environ["REPRO_DEADLINE"]
"""

L002_GOOD = """\
from repro import env

def backend_name():
    return env.get("REPRO_BACKEND")
"""


def test_l002_fires_on_environ_get():
    assert rules_hit("src/repro/kernels/registry.py", L002_BAD_GET) == ["L002"]


def test_l002_fires_on_environ_subscript():
    assert rules_hit("src/repro/parallel/executor.py", L002_BAD_SUBSCRIPT) == [
        "L002"
    ]


def test_l002_allows_env_module_itself():
    assert rules_hit("src/repro/env.py", L002_BAD_GET) == []


def test_l002_silent_on_registry_reads():
    assert rules_hit("src/repro/kernels/registry.py", L002_GOOD) == []


def test_l002_ignores_non_repro_variables():
    src = 'import os\n\ndef path():\n    return os.environ.get("PATH")\n'
    assert rules_hit("src/repro/parallel/executor.py", src) == []


# ---------------------------------------------------------------------------
# L003 — float dtype literals at allocation sites
# ---------------------------------------------------------------------------

L003_BAD = """\
import numpy as np

def scratch(n):
    return np.zeros(n, dtype=np.float64)
"""

L003_GOOD = """\
import numpy as np

def scratch(n, value_dtype):
    return np.zeros(n, dtype=value_dtype)
"""


def test_l003_fires_on_float64_literal_in_kernels():
    assert rules_hit("src/repro/kernels/fast.py", L003_BAD) == ["L003"]


def test_l003_fires_on_string_dtype_literal():
    src = L003_BAD.replace("np.float64", '"float32"')
    assert rules_hit("src/repro/core/blocks.py", src) == ["L003"]


def test_l003_silent_on_resolved_dtype():
    assert rules_hit("src/repro/kernels/fast.py", L003_GOOD) == []


def test_l003_out_of_scope_paths_are_ignored():
    # experiments/ may allocate plotting buffers however it likes.
    assert rules_hit("src/repro/experiments/runner.py", L003_BAD) == []


def test_l003_integer_dtype_literals_are_allowed():
    src = L003_BAD.replace("np.float64", "np.int64")
    assert rules_hit("src/repro/kernels/fast.py", src) == []


def test_l003_disable_comment():
    src = L003_BAD.replace(
        "dtype=np.float64)", "dtype=np.float64)  # repro-lint: disable=L003"
    )
    assert rules_hit("src/repro/kernels/fast.py", src) == []


# ---------------------------------------------------------------------------
# L004 — fork safety
# ---------------------------------------------------------------------------

L004_BAD_IMPORT_TIME_POOL = """\
from concurrent.futures import ProcessPoolExecutor

POOL = ProcessPoolExecutor(max_workers=4)
"""

L004_BAD_FORK_CONTEXT = """\
import multiprocessing as mp

def ctx():
    return mp.get_context("fork")
"""

L004_GOOD_GUARDED = """\
from concurrent.futures import ProcessPoolExecutor

def main():
    with ProcessPoolExecutor(max_workers=4) as pool:
        pool.map(abs, range(4))

if __name__ == "__main__":
    main()
"""

L004_BAD_UNGUARDED_EXAMPLE = """\
def main():
    print("hi")

main()
"""


def test_l004_fires_on_import_time_pool():
    assert rules_hit(
        "src/repro/parallel/pools.py", L004_BAD_IMPORT_TIME_POOL
    ) == ["L004"]


def test_l004_fires_on_fork_start_method():
    assert rules_hit("src/repro/parallel/executor.py", L004_BAD_FORK_CONTEXT) == [
        "L004"
    ]


def test_l004_silent_on_guarded_example():
    assert rules_hit("examples/demo.py", L004_GOOD_GUARDED) == []


def test_l004_fires_on_unguarded_example_entry_point():
    assert rules_hit("examples/demo.py", L004_BAD_UNGUARDED_EXAMPLE) == ["L004"]


def test_l004_unguarded_call_fine_outside_examples():
    # registration-at-import is the norm inside src/.
    assert rules_hit("src/repro/kernels/registry.py", L004_BAD_UNGUARDED_EXAMPLE) == []


# ---------------------------------------------------------------------------
# L005 — deadline threading
# ---------------------------------------------------------------------------

L005_BAD_NO_PARAM = """\
from repro.parallel.resilience import collect_resilient

def drain(futures):
    return collect_resilient(futures)
"""

L005_BAD_NOT_THREADED = """\
from repro.parallel.pools import lease_pool

def run(work, deadline=None):
    with lease_pool("process", 4) as pool:
        return list(pool.map(abs, work))
"""

L005_GOOD = """\
from repro.parallel.resilience import collect_resilient

def drain(futures, *, deadline=None):
    return collect_resilient(futures, deadline=deadline)
"""


def test_l005_fires_on_blocking_call_without_deadline_param():
    assert rules_hit("src/repro/parallel/runner.py", L005_BAD_NO_PARAM) == ["L005"]


def test_l005_fires_when_deadline_not_threaded_through():
    assert rules_hit("src/repro/parallel/runner.py", L005_BAD_NOT_THREADED) == [
        "L005"
    ]


def test_l005_silent_when_deadline_threaded():
    assert rules_hit("src/repro/parallel/runner.py", L005_GOOD) == []


def test_l005_private_helpers_exempt():
    src = L005_BAD_NO_PARAM.replace("def drain", "def _drain")
    assert rules_hit("src/repro/parallel/runner.py", src) == []


def test_l005_out_of_scope_paths_are_ignored():
    assert rules_hit("src/repro/experiments/runner.py", L005_BAD_NO_PARAM) == []


# ---------------------------------------------------------------------------
# L006 — typed, self-describing raises
# ---------------------------------------------------------------------------

L006_BAD_RUNTIME = """\
def release(token):
    raise RuntimeError("already released")
"""

L006_BAD_VAGUE_VALUE = """\
def check(threads):
    if threads < 1:
        raise ValueError("bad threads")
"""

L006_GOOD_NAMED = """\
def check(threads):
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
"""


def test_l006_fires_on_raw_runtimeerror():
    assert rules_hit("src/repro/serve/client.py", L006_BAD_RUNTIME) == ["L006"]


def test_l006_fires_on_vague_valueerror():
    assert rules_hit("src/repro/parallel/scheduler.py", L006_BAD_VAGUE_VALUE) == [
        "L006"
    ]


def test_l006_silent_when_message_names_the_offender():
    assert rules_hit("src/repro/parallel/scheduler.py", L006_GOOD_NAMED) == []


def test_l006_out_of_scope_paths_are_ignored():
    assert rules_hit("src/repro/core/hashtable.py", L006_BAD_RUNTIME) == []


def test_l006_reraise_is_fine():
    src = "def f():\n    try:\n        g()\n    except Exception:\n        raise\n"
    assert rules_hit("src/repro/parallel/executor.py", src) == []


# ---------------------------------------------------------------------------
# meta: the real tree is clean, and the CLI agrees
# ---------------------------------------------------------------------------


def test_real_tree_is_clean():
    roots = [
        p for p in DEFAULT_ROOTS if os.path.isdir(os.path.join(REPO_ROOT, p))
    ]
    violations, n_files = lint_paths(roots, REPO_ROOT)
    assert n_files > 50  # sanity: we actually walked the tree
    assert violations == [], "\n" + "\n".join(v.format() for v in violations)


def test_cli_exit_codes(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")

    clean = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--quiet"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    assert clean.returncode == 0, clean.stdout + clean.stderr

    bad = tmp_path / "bad.py"
    bad.write_text('import os\nVAL = os.environ.get("REPRO_BACKEND")\n')
    dirty = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(bad)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    assert dirty.returncode == 1
    assert "L002" in dirty.stdout


def test_cli_list_rules_json():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--list-rules"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0
    listing = json.loads(proc.stdout)
    assert [entry["id"] for entry in listing] == [r.id for r in RULES]


def test_cli_github_annotations(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    bad = tmp_path / "bad.py"
    bad.write_text('import os\nVAL = os.environ.get("REPRO_BACKEND")\n')
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--github", str(bad)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert proc.stdout.startswith("::error file=")
    assert "L002" in proc.stdout


# ---------------------------------------------------------------------------
# mypy gate (runs where mypy is installed; CI always installs it)
# ---------------------------------------------------------------------------


def test_mypy_gate_passes():
    pytest.importorskip("mypy")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
