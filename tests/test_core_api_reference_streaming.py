"""Tests for the spkadd facade, reference transcriptions and streaming."""

import numpy as np
import pytest

import repro
from repro.core.api import SpKAddResult, available_methods, spkadd
from repro.core.reference import (
    col_add_2way,
    hash_add_ref,
    hash_symbolic_ref,
    heap_add_ref,
    sliding_hash_add_ref,
    sliding_hash_symbolic_ref,
    spa_add_ref,
    spkadd_2way_incremental_ref,
    spkadd_kway_ref,
)
from repro.core.scipy_baseline import spkadd_scipy_incremental, spkadd_scipy_tree
from repro.core.streaming import StreamingAccumulator, spkadd_streaming
from repro.formats.ops import matrices_equal, sum_with_scipy
from tests.conftest import random_collection


class TestApi:
    def test_all_methods_registered(self):
        expected = {
            "2way_incremental", "2way_tree", "scipy_incremental",
            "scipy_tree", "heap", "spa", "hash", "sliding_hash",
        }
        assert set(available_methods()) == expected

    @pytest.mark.parametrize("method", [
        "2way_incremental", "2way_tree", "scipy_incremental", "scipy_tree",
        "heap", "spa", "hash", "sliding_hash",
    ])
    def test_every_method_matches_oracle(self, small_collection, method):
        res = spkadd(small_collection, method=method)
        got = res.matrix.copy()
        got.sort_indices()
        assert matrices_equal(got, sum_with_scipy(small_collection))
        assert isinstance(res, SpKAddResult)
        assert res.method == method

    def test_unknown_method(self, small_collection):
        with pytest.raises(ValueError, match="unknown method"):
            spkadd(small_collection, method="quantum")

    def test_two_phase_stats_present(self, small_collection):
        res = spkadd(small_collection, method="hash")
        assert res.stats_symbolic is not None
        res = spkadd(small_collection, method="heap")
        assert res.stats_symbolic is None

    def test_threads_parallel_equivalence(self, small_collection):
        ref = sum_with_scipy(small_collection)
        for method in ("hash", "spa", "heap"):
            res = spkadd(small_collection, method=method, threads=3)
            got = res.matrix.copy()
            got.sort_indices()
            assert matrices_equal(got, ref), method

    def test_machine_sets_sliding_cache(self, small_collection):
        from repro.machine.spec import INTEL_SKYLAKE_8160

        tiny = INTEL_SKYLAKE_8160.scaled(100_000)
        res = spkadd(
            small_collection, method="sliding_hash",
            machine=tiny, threads=8,
        )
        assert res.stats.parts > 1

    def test_top_level_reexports(self):
        assert repro.spkadd is spkadd
        assert "hash" in repro.available_methods()

    def test_compression_factor(self, small_collection):
        res = spkadd(small_collection, method="hash")
        cf = res.compression_factor
        total = sum(m.nnz for m in small_collection)
        assert cf == pytest.approx(total / res.matrix.nnz)


class TestScipyBaseline:
    def test_incremental(self, small_collection):
        got = spkadd_scipy_incremental(small_collection)
        assert matrices_equal(got, sum_with_scipy(small_collection))

    def test_tree(self, small_collection):
        got = spkadd_scipy_tree(small_collection)
        assert matrices_equal(got, sum_with_scipy(small_collection))

    def test_stats_model_incremental_heavier(self, small_collection):
        from repro.core.stats import KernelStats

        st_i, st_t = KernelStats(), KernelStats()
        spkadd_scipy_incremental(small_collection, stats=st_i)
        spkadd_scipy_tree(small_collection, stats=st_t)
        assert st_i.ops > st_t.ops


class TestReference:
    def test_col_add_2way(self):
        out_r, out_v = col_add_2way(
            ([0, 2, 5], [1.0, 2.0, 3.0]), ([2, 7], [10.0, 20.0])
        )
        assert out_r == [0, 2, 5, 7]
        assert out_v == [1.0, 12.0, 3.0, 20.0]

    def test_heap_add_ref_sorted_output(self):
        cols = [([3, 9], [1.0, 1.0]), ([1, 3], [2.0, 2.0]), ([9], [5.0])]
        r, v = heap_add_ref(cols)
        assert r == [1, 3, 9]
        assert v == [2.0, 3.0, 6.0]

    def test_spa_add_ref(self):
        cols = [([0, 4], [1.0, 1.0]), ([4, 2], [1.0, 7.0])]
        r, v = spa_add_ref(cols, 6)
        assert r == [0, 2, 4]
        assert v == [1.0, 7.0, 2.0]

    def test_hash_symbolic_ref_counts(self):
        cols = [([1, 2], [1.0, 1.0]), ([2, 3], [1.0, 1.0])]
        assert hash_symbolic_ref(cols) == 3

    def test_sliding_refs_match_plain(self):
        rng = np.random.default_rng(1)
        cols = []
        for _ in range(4):
            r = np.unique(rng.integers(0, 40, 12))
            cols.append((r.tolist(), [1.0] * len(r)))
        plain_r, plain_v = hash_add_ref(cols)
        slid_r, slid_v = sliding_hash_add_ref(
            cols, 40, threads=4, cache_bytes=64
        )
        assert slid_r == plain_r
        assert slid_v == plain_v
        assert sliding_hash_symbolic_ref(
            cols, 40, threads=4, cache_bytes=64
        ) == len(plain_r)

    @pytest.mark.parametrize("method", ["heap", "spa", "hash", "sliding_hash"])
    def test_kway_refs_match_oracle(self, tiny_collection, method):
        got = spkadd_kway_ref(
            tiny_collection, method, threads=2, cache_bytes=512
        )
        assert matrices_equal(got, sum_with_scipy(tiny_collection))

    def test_2way_ref_matches_oracle(self, tiny_collection):
        got = spkadd_2way_incremental_ref(tiny_collection)
        assert matrices_equal(got, sum_with_scipy(tiny_collection))

    def test_kway_ref_unknown(self, tiny_collection):
        with pytest.raises(ValueError):
            spkadd_kway_ref(tiny_collection, "nope")


class TestStreaming:
    def test_matches_oracle(self, small_collection):
        got = spkadd_streaming(small_collection, batch_size=3)
        assert matrices_equal(got, sum_with_scipy(small_collection))

    def test_batch_of_one(self, small_collection):
        got = spkadd_streaming(small_collection, batch_size=1)
        assert matrices_equal(got, sum_with_scipy(small_collection))

    def test_batch_larger_than_stream(self, small_collection):
        got = spkadd_streaming(small_collection, batch_size=100)
        assert matrices_equal(got, sum_with_scipy(small_collection))

    def test_empty_stream_raises(self):
        with pytest.raises(ValueError):
            spkadd_streaming([], batch_size=2)

    def test_bad_batch_size(self, small_collection):
        with pytest.raises(ValueError):
            spkadd_streaming(small_collection, batch_size=0)

    def test_accumulator_incremental_reads(self, small_collection):
        acc = StreamingAccumulator(batch_size=4)
        partial_after_5 = None
        for i, m in enumerate(small_collection):
            acc.push(m)
            if i == 4:
                partial_after_5 = acc.result()
        assert partial_after_5 is not None
        assert matrices_equal(
            partial_after_5, sum_with_scipy(small_collection[:5])
        )
        final = acc.result()
        assert matrices_equal(final, sum_with_scipy(small_collection))
        assert acc.pushed == len(small_collection)

    def test_accumulator_empty_raises(self):
        with pytest.raises(ValueError):
            StreamingAccumulator().result()

    @pytest.mark.parametrize("backend", ["fast", "instrumented"])
    def test_backend_kwarg_results_identical(self, small_collection, backend):
        got = spkadd_streaming(
            small_collection, batch_size=3, backend=backend
        )
        assert matrices_equal(got, sum_with_scipy(small_collection))
        acc = StreamingAccumulator(batch_size=3, backend=backend)
        for m in small_collection:
            acc.push(m)
        assert matrices_equal(acc.result(), sum_with_scipy(small_collection))

    def test_default_backend_is_fast(self, small_collection, monkeypatch):
        """Streaming defaults to the registry's fast engine (ROADMAP):
        no slot ops are metered, unlike an instrumented run."""
        from repro.kernels.registry import BACKEND_ENV_VAR

        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        acc = StreamingAccumulator(batch_size=100)
        for m in small_collection:
            acc.push(m)
        acc.result()
        assert acc.stats.ops == 0
        inst = StreamingAccumulator(batch_size=100, backend="instrumented")
        for m in small_collection:
            inst.push(m)
        inst.result()
        assert inst.stats.ops > 0

    def test_env_var_overrides_default(self, small_collection, monkeypatch):
        from repro.kernels.registry import BACKEND_ENV_VAR

        monkeypatch.setenv(BACKEND_ENV_VAR, "instrumented")
        acc = StreamingAccumulator(batch_size=100)
        for m in small_collection:
            acc.push(m)
        acc.result()
        assert acc.stats.ops > 0

    def test_kernel_and_backend_conflict(self):
        with pytest.raises(ValueError, match="kernel= or backend="):
            StreamingAccumulator(
                kernel=lambda ms, **kw: ms[0], backend="fast"
            )
        with pytest.raises(ValueError, match="kernel= or backend="):
            spkadd_streaming(
                [], kernel=lambda ms, **kw: ms[0], backend="fast"
            )
