"""Tests for partitioning, scheduling and the parallel executor."""

import numpy as np
import pytest

from repro.parallel.partition import row_partition_bounds, split_even, split_weighted
from repro.parallel.scheduler import (
    dynamic_schedule,
    schedule_makespan,
    static_schedule,
)
from repro.parallel.executor import parallel_spkadd, simulate_parallel_time
from repro.formats.ops import matrices_equal, sum_with_scipy
from tests.conftest import random_collection


class TestPartition:
    def test_row_bounds_cover(self):
        b = row_partition_bounds(100, 7)
        assert b[0] == 0 and b[-1] == 100
        assert np.all(np.diff(b) >= 1)

    def test_row_bounds_paper_formula(self):
        # r1 = i*m/parts
        b = row_partition_bounds(10, 3)
        assert list(b) == [0, 3, 6, 10]

    def test_row_bounds_single(self):
        assert list(row_partition_bounds(5, 1)) == [0, 5]

    def test_row_bounds_invalid(self):
        with pytest.raises(ValueError):
            row_partition_bounds(5, 0)

    def test_split_even_covers_disjoint(self):
        pieces = split_even(17, 4)
        assert pieces[0][0] == 0 and pieces[-1][1] == 17
        for (a0, a1), (b0, b1) in zip(pieces, pieces[1:]):
            assert a1 == b0

    def test_split_weighted_balances(self):
        w = np.array([100, 1, 1, 1, 1, 1, 1, 100], dtype=float)
        pieces = split_weighted(w, 2)
        loads = [w[a:b].sum() for a, b in pieces]
        assert max(loads) <= 0.75 * w.sum()

    def test_split_weighted_zero_weights(self):
        pieces = split_weighted(np.zeros(10), 3)
        assert pieces[-1][1] == 10

    def test_split_weighted_contiguous(self):
        w = np.random.default_rng(0).random(50)
        pieces = split_weighted(w, 7)
        assert pieces[0][0] == 0 and pieces[-1][1] == 50
        for (a0, a1), (b0, b1) in zip(pieces, pieces[1:]):
            assert a1 == b0


class TestScheduler:
    def test_static_one_chunk_per_thread(self):
        s = static_schedule(100, 4)
        assert len(s.assignments) == 4
        assert all(len(chunks) == 1 for chunks in s.assignments)

    def test_static_imbalance_on_skew(self):
        # all the cost in the first quarter: static gives one thread all
        costs = np.zeros(100)
        costs[:25] = 1.0
        s = static_schedule(100, 4)
        assert s.imbalance(costs) == pytest.approx(4.0)

    def test_dynamic_fixes_skew(self):
        costs = np.zeros(100)
        costs[:25] = 1.0
        d = dynamic_schedule(costs, 4, chunk=1)
        assert d.imbalance(costs) < 1.5

    def test_dynamic_covers_all_columns(self):
        costs = np.random.default_rng(0).random(37)
        d = dynamic_schedule(costs, 5, chunk=3)
        covered = sorted(
            (j0, j1) for chunks in d.assignments for j0, j1 in chunks
        )
        assert covered[0][0] == 0 and covered[-1][1] == 37
        total = sum(j1 - j0 for j0, j1 in covered)
        assert total == 37

    def test_makespan_at_least_average(self):
        costs = np.random.default_rng(1).random(64)
        for policy in ("static", "dynamic"):
            ms = schedule_makespan(costs, 4, policy=policy)
            assert ms >= costs.sum() / 4 - 1e-12

    def test_makespan_single_thread(self):
        costs = np.ones(10)
        assert schedule_makespan(costs, 1) == pytest.approx(10.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            dynamic_schedule(np.ones(4), 0)
        with pytest.raises(ValueError):
            dynamic_schedule(np.ones(4), 2, chunk=0)
        with pytest.raises(ValueError):
            schedule_makespan(np.ones(4), 2, policy="magic")


class TestExecutor:
    @pytest.mark.parametrize("method", ["hash", "spa", "heap", "sliding_hash"])
    def test_parallel_matches_sequential(self, method):
        mats = random_collection(21, 300, 23, 7)
        ref = sum_with_scipy(mats)
        res = parallel_spkadd(mats, method, threads=4)
        got = res.matrix.copy()
        got.sort_indices()
        assert matrices_equal(got, ref)

    def test_parallel_2way(self):
        mats = random_collection(22, 200, 11, 5)
        res = parallel_spkadd(mats, "2way_tree", threads=3)
        assert matrices_equal(res.matrix, sum_with_scipy(mats))

    def test_stats_merged(self):
        mats = random_collection(23, 300, 23, 7)
        seq = parallel_spkadd(mats, "hash", threads=1)
        par = parallel_spkadd(mats, "hash", threads=4)
        assert par.stats.input_nnz == seq.stats.input_nnz
        assert par.stats.output_nnz == seq.stats.output_nnz
        assert par.stats.col_out_nnz is not None
        assert int(par.stats.col_out_nnz.sum()) == par.matrix.nnz

    def test_more_threads_than_columns(self):
        mats = random_collection(24, 100, 3, 4)
        res = parallel_spkadd(mats, "hash", threads=8)
        assert matrices_equal(res.matrix, sum_with_scipy(mats))

    def test_simulate_parallel_time_monotone(self):
        costs = np.random.default_rng(2).random(256)
        times = [
            simulate_parallel_time(costs, t, policy="dynamic")
            for t in (1, 2, 4, 8)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(times, times[1:]))

    def test_simulate_static_worse_on_skew(self):
        costs = np.zeros(128)
        costs[:16] = 1.0
        st = simulate_parallel_time(costs, 8, policy="static")
        dy = simulate_parallel_time(costs, 8, policy="dynamic", chunk=1)
        assert st > dy
