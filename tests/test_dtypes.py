"""Dtype-generic value pipeline: formats -> kernels -> executors.

ISSUE-3 regression suite.  The contract: the dtype of the inputs is the
dtype of the output, end to end — scipy interop preserves the source
dtype (no ``.astype(float64)`` round-trip), COO keeps its values' dtype,
kernels accumulate in the resolved accumulator dtype (integer sums are
exact 64-bit), and the ``value_dtype=`` override on the facade /
streaming layer applies the documented promotion rules.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.api import spkadd
from repro.core.merge2 import merge_sorted_keyed
from repro.core.streaming import StreamingAccumulator, spkadd_streaming
from repro.formats.convert import from_scipy, to_scipy
from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.kernels import get_backend, resolve_value_dtype

#: 2**53 is where float64 stops representing every integer; values above
#: it detect any float64 round-trip bit-exactly.
BIG = 2**53


def int_collection(k, dtype=np.int64, lo=-50, hi=50, seed=5, shape=(40, 9)):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(k):
        nnz = int(rng.integers(10, 60))
        out.append(
            CSCMatrix.from_arrays(
                shape,
                rng.integers(0, shape[0], nnz),
                rng.integers(0, shape[1], nnz),
                rng.integers(lo, hi, nnz).astype(dtype),
            )
        )
    return out


class TestResolveValueDtype:
    def test_preservation_and_promotion(self):
        assert resolve_value_dtype([np.float64]) == np.float64
        assert resolve_value_dtype([np.float32]) == np.float32
        assert resolve_value_dtype([np.float32, np.float32]) == np.float32
        # integer inputs accumulate in the exact wide integer
        assert resolve_value_dtype([np.int32]) == np.int64
        assert resolve_value_dtype([np.int64, np.int32]) == np.int64
        assert resolve_value_dtype([np.uint32]) == np.uint64
        # mixed int + float promotes to float
        assert resolve_value_dtype([np.int64, np.float64]) == np.float64
        # empty -> the historical default
        assert resolve_value_dtype([]) == np.float64

    def test_override_wins_and_widens(self):
        mats = [np.float64, np.float64]
        assert resolve_value_dtype(mats, np.float32) == np.float32
        assert resolve_value_dtype(mats, "int32") == np.int64
        assert resolve_value_dtype((), np.uint16) == np.uint64

    def test_accepts_matrices_or_dtypes(self):
        m = CSCMatrix.from_arrays(
            (3, 3), [0, 1], [0, 1], np.array([1, 2], dtype=np.int32)
        )
        assert resolve_value_dtype([m]) == np.int64
        assert resolve_value_dtype([m, np.float32]) == np.float64

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            resolve_value_dtype((), np.dtype("datetime64[s]"))

    def test_exposed_on_backends(self):
        mats = int_collection(3, np.int32)
        for name in ("fast", "instrumented"):
            eng = get_backend(name)
            assert eng.result_value_dtype(mats) == np.int64
            assert eng.result_value_dtype(mats, np.float32) == np.float32


class TestFormatPreservation:
    def test_from_arrays_preserves(self):
        for dt in (np.float32, np.int32, np.int64):
            m = CSCMatrix.from_arrays(
                (4, 4), [0, 1], [2, 3], np.array([1, 2], dtype=dt)
            )
            assert m.data.dtype == dt
        # explicit cast still available
        m = CSCMatrix.from_arrays(
            (4, 4), [0], [0], np.array([1], dtype=np.int32),
            value_dtype=np.float64,
        )
        assert m.data.dtype == np.float64

    def test_from_arrays_int64_beyond_2_53_exact(self):
        vals = np.array([BIG + 1, BIG + 3, 1], dtype=np.int64)
        m = CSCMatrix.from_arrays((5, 2), [0, 0, 4], [0, 0, 1], vals)
        # duplicates at (0,0) summed exactly in int64
        assert m.data.dtype == np.int64
        assert set(m.data.tolist()) == {2 * BIG + 4, 1}

    def test_from_columns_infers(self):
        cols = [
            (np.array([0, 2]), np.array([1, 2], dtype=np.int64)),
            (np.array([], dtype=np.int64), np.array([], dtype=np.float32)),
        ]
        m = CSCMatrix.from_columns((4, 2), cols)
        assert m.data.dtype == np.int64  # empty columns don't promote
        empty = CSCMatrix.from_columns(
            (4, 1), [(np.array([], dtype=np.int64), np.array([]))]
        )
        assert empty.data.dtype == np.float64  # all-empty fallback

    def test_astype(self):
        m = CSCMatrix.from_arrays((4, 2), [0, 1], [0, 1], [1.5, 2.5])
        same = m.astype(np.float64)
        assert same is m  # no-op returns self
        f32 = m.astype(np.float32)
        assert f32.data.dtype == np.float32
        assert f32.indices is m.indices  # index arrays shared
        assert np.allclose(f32.to_dense(), m.to_dense())
        forced = m.astype(np.float64, copy=True)
        assert forced is not m and forced.data is not m.data

    def test_coo_preserves_and_follows(self):
        vals = np.array([BIG + 1, 1, 2], dtype=np.int64)
        coo = COOMatrix((4, 4), [1, 1, 2], [3, 3, 0], vals)
        assert coo.vals.dtype == np.int64
        dedup = coo.sum_duplicates()
        assert dedup.vals.dtype == np.int64
        assert set(dedup.vals.tolist()) == {BIG + 2, 2}
        dense = dedup.to_dense()
        assert dense.dtype == np.int64
        assert dense[1, 3] == BIG + 2
        f32 = COOMatrix((2, 2), [0], [0], np.array([1.5], dtype=np.float32))
        assert f32.to_dense().dtype == np.float32

    def test_csr_preserves(self):
        m = CSRMatrix.from_arrays(
            (3, 3), [0, 2], [1, 2], np.array([7, 8], dtype=np.int32)
        )
        assert m.data.dtype == np.int32


class TestScipyRoundTrip:
    @pytest.mark.parametrize("fmt,cls", [("csc", CSCMatrix),
                                         ("csr", CSRMatrix)])
    def test_int64_beyond_2_53_roundtrips_exactly(self, fmt, cls):
        """ISSUE satellite: the old ``.astype(np.float64)`` dropped the
        source dtype and corrupted int64 values above 2**53."""
        vals = np.array([BIG + 1, BIG + 3, -7], dtype=np.int64)
        s = sp.coo_matrix(
            (vals, ([0, 3, 4], [1, 2, 0])), shape=(5, 5)
        )
        ours = from_scipy(s, fmt)
        assert isinstance(ours, cls)
        assert ours.data.dtype == np.int64
        assert sorted(ours.data.tolist()) == sorted(vals.tolist())
        back = to_scipy(ours)
        assert back.data.dtype == np.int64
        assert (abs(back - s.tocsc() if fmt == "csc" else back - s.tocsr())
                .nnz == 0)

    @pytest.mark.parametrize("dtype", [np.float32, np.int32, np.uint64])
    def test_other_dtypes_preserved(self, dtype):
        s = sp.random(6, 6, density=0.3, random_state=7, format="csc")
        s = s.astype(dtype)
        assert from_scipy(s, "csc").data.dtype == dtype
        assert from_scipy(s, "coo").vals.dtype == dtype


class TestFacadeOverride:
    def test_preservation_default(self):
        mats = int_collection(4, np.int64, lo=BIG, hi=BIG + 10)
        res = spkadd(mats, method="hash")
        assert res.matrix.data.dtype == np.int64
        dense = sum(A.to_dense() for A in mats)
        assert np.array_equal(res.matrix.to_dense(), dense)

    def test_float32_override(self):
        mats = [A.astype(np.float64) for A in int_collection(3)]
        res = spkadd(mats, value_dtype=np.float32)
        assert res.matrix.data.dtype == np.float32

    def test_int_request_widens(self):
        mats = int_collection(3, np.int32)
        res = spkadd(mats, value_dtype="int32")
        assert res.matrix.data.dtype == np.int64

    def test_override_applies_to_every_method(self):
        mats = [A.astype(np.float64) for A in int_collection(3)]
        for method in ("hash", "sliding_hash", "heap", "spa",
                       "2way_tree", "2way_incremental"):
            res = spkadd(mats, method=method, value_dtype=np.float32)
            assert res.matrix.data.dtype == np.float32, method

    def test_override_with_threads(self):
        mats = [A.astype(np.float64) for A in int_collection(4, seed=9)]
        ref = spkadd(mats, value_dtype=np.float32)
        for executor in ("thread", "process", "shm"):
            got = spkadd(
                mats, threads=3, executor=executor, value_dtype=np.float32
            )
            assert got.matrix.data.dtype == np.float32
            assert np.array_equal(
                ref.matrix.data.view(np.uint8),
                got.matrix.data.view(np.uint8),
            ), executor

    def test_mixed_collection_promotes(self):
        a = int_collection(1, np.int64)[0]
        b = a.astype(np.float32)
        res = spkadd([a, b])
        assert res.matrix.data.dtype == np.float64

    def test_k1_add_free_paths_resolve_dtype(self):
        """k=1 collections take add-free short-circuits (no merge ever
        runs); they must still emit the resolved dtype so executors
        agree — the shm scratch is sized from it."""
        m = int_collection(1, np.int32)[0]
        for method in ("2way_incremental", "2way_tree", "scipy_tree",
                       "scipy_incremental", "hash", "heap", "spa"):
            res = spkadd([m], method=method)
            assert res.matrix.data.dtype == np.int64, method
        for executor in ("thread", "process", "shm"):
            got = spkadd([m], method="2way_tree", threads=2,
                         executor=executor)
            assert got.matrix.data.dtype == np.int64, executor

    @pytest.mark.parametrize("method", ["scipy_tree", "scipy_incremental"])
    def test_scipy_baseline_resolved_dtype_and_exact(self, method):
        """The MKL-role baselines accumulate in the resolved dtype too:
        int32 inputs widen to exact int64 (scipy's raw + would wrap past
        2**31) and the output dtype matches every executor."""
        half = 2**30 * 3 // 2  # 2 * half overflows int32
        mats = [
            CSCMatrix.from_arrays(
                (8, 4), [0, 5], [1, 2], np.array([half, -7], dtype=np.int32)
            )
            for _ in range(2)
        ]
        ref = spkadd(mats, method=method)
        assert ref.matrix.data.dtype == np.int64
        assert set(ref.matrix.data.tolist()) == {2 * half, -14}
        if method == "scipy_tree":  # registry method usable in parallel
            for executor in ("thread", "process", "shm"):
                got = spkadd(mats, method=method, threads=2,
                             executor=executor)
                assert got.matrix.data.dtype == np.int64, executor
                assert np.array_equal(ref.matrix.data, got.matrix.data)


class TestPairwiseAndStreaming:
    def test_merge_widens_integer_sums(self):
        ka = np.array([1, 5], dtype=np.int64)
        va = np.array([BIG, 3], dtype=np.int64)
        kb = np.array([1, 7], dtype=np.int64)
        vb = np.array([1, 2], dtype=np.int32)
        keys, vals = merge_sorted_keyed(ka, va, kb, vb)
        assert vals.dtype == np.int64
        assert dict(zip(keys.tolist(), vals.tolist())) == {
            1: BIG + 1, 5: 3, 7: 2
        }
        # empty side still lands on the accumulator dtype
        _, v = merge_sorted_keyed(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int32), kb, vb
        )
        assert v.dtype == np.int64

    def test_streaming_preserves_int64_exact(self):
        mats = int_collection(7, np.int64, lo=BIG, hi=BIG + 10, seed=13)
        got = spkadd_streaming(mats, batch_size=3)
        assert got.data.dtype == np.int64
        assert np.array_equal(
            got.to_dense(), sum(A.to_dense() for A in mats)
        )

    def test_streaming_k1_resolves_like_facade(self):
        """A length-1 stream takes the add-free batch path; its output
        dtype must still match the facade's resolved dtype."""
        m = int_collection(1, np.int32)[0]
        got = spkadd_streaming([m])
        assert got.data.dtype == np.int64
        assert np.array_equal(got.to_dense(), m.to_dense())
        acc = StreamingAccumulator()
        acc.push(m)
        assert acc.result().data.dtype == np.int64

    def test_streaming_override_and_accumulator(self):
        mats = [A.astype(np.float64) for A in int_collection(5, seed=17)]
        got = spkadd_streaming(mats, batch_size=2, value_dtype=np.float32)
        assert got.data.dtype == np.float32
        acc = StreamingAccumulator(batch_size=2, value_dtype=np.float32)
        for m in mats:
            acc.push(m)
        res = acc.result()
        assert res.data.dtype == np.float32
        assert np.array_equal(
            res.data.view(np.uint8), got.data.view(np.uint8)
        )


class TestHeapImplIdentity:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64,
                                       np.int32, np.int64])
    def test_merge_and_heapq_bit_identical(self, dtype):
        """The vectorized merge and the literal heapq loop accumulate
        strictly left to right in the resolved dtype, so they agree to
        the last bit on every dtype — reduceat's unspecified inner
        association used to leak ulp differences into duplicate-heavy
        float columns."""
        from repro.core.heap_add import spkadd_heap

        for seed in range(10):
            rng = np.random.default_rng(seed)
            mats = []
            for _ in range(4):
                nnz = int(rng.integers(5, 60))
                mats.append(CSCMatrix.from_arrays(
                    (20, 5),
                    rng.integers(0, 20, nnz), rng.integers(0, 5, nnz),
                    (rng.normal(size=nnz) * 20).astype(dtype),
                ))
            a = spkadd_heap(mats, impl="merge")
            b = spkadd_heap(mats, impl="heapq")
            assert a.data.dtype == b.data.dtype
            assert np.array_equal(a.indptr, b.indptr)
            assert np.array_equal(a.indices, b.indices)
            assert np.array_equal(
                a.data.view(np.uint8), b.data.view(np.uint8)
            ), (dtype, seed)


class TestCLI:
    def test_demo_value_dtype_flag(self, capsys):
        from repro.__main__ import main

        rc = main([
            "demo", "--m", "64", "--n", "8", "--k", "3", "--d", "2",
            "--value-dtype", "float32",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "value_dtype=float32" in out
        assert "dtype=float32" in out
