"""Shared fixtures and helpers for the SpKAdd reproduction tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats.csc import CSCMatrix


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running reproduction tests"
    )
    config.addinivalue_line(
        "markers",
        "stress: multiprocess stress tests run under a hard timeout",
    )


def assert_bit_identical(a: CSCMatrix, b: CSCMatrix, label: str = "") -> None:
    """The cross-executor identity contract: same dtypes, same arrays,
    values compared bitwise (catches sign-of-zero / last-ulp drift that
    allclose-style checks would wave through)."""
    assert a.shape == b.shape, label
    assert a.indptr.dtype == b.indptr.dtype, label
    assert a.indices.dtype == b.indices.dtype, label
    assert a.data.dtype == b.data.dtype, label
    assert np.array_equal(a.indptr, b.indptr), label
    assert np.array_equal(a.indices, b.indices), label
    assert np.array_equal(
        a.data.view(np.uint8), b.data.view(np.uint8)
    ), label


def random_csc(
    rng: np.random.Generator,
    m: int,
    n: int,
    nnz: int,
    *,
    sorted_cols: bool = True,
) -> CSCMatrix:
    """A random CSC matrix with ~nnz entries (duplicates summed)."""
    rows = rng.integers(0, m, nnz)
    cols = rng.integers(0, n, nnz)
    vals = rng.normal(size=nnz)
    mat = CSCMatrix.from_arrays((m, n), rows, cols, vals)
    if not sorted_cols:
        mat = shuffle_columns(rng, mat)
    return mat


def shuffle_columns(rng: np.random.Generator, mat: CSCMatrix) -> CSCMatrix:
    """Permute entries within each column (makes columns unsorted)."""
    indices = mat.indices.copy()
    data = mat.data.copy()
    for j in range(mat.shape[1]):
        lo, hi = int(mat.indptr[j]), int(mat.indptr[j + 1])
        perm = rng.permutation(hi - lo)
        indices[lo:hi] = indices[lo:hi][perm]
        data[lo:hi] = data[lo:hi][perm]
    return CSCMatrix(
        mat.shape, mat.indptr.copy(), indices, data, sorted=False, check=False
    )


def random_collection(
    seed: int, m: int, n: int, k: int, nnz_lo: int = 5, nnz_hi: int = 80
):
    """k random same-shape matrices for SpKAdd tests."""
    rng = np.random.default_rng(seed)
    return [
        random_csc(rng, m, n, int(rng.integers(nnz_lo, nnz_hi)))
        for _ in range(k)
    ]


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_collection():
    """Nine 200x17 matrices — the default SpKAdd test workload."""
    return random_collection(7, 200, 17, 9)


@pytest.fixture
def tiny_collection():
    """Three 12x4 matrices — for loop-level reference kernels."""
    return random_collection(3, 12, 4, 3, nnz_lo=2, nnz_hi=10)
