"""Tests for repro.util rng/timer/checks."""

import numpy as np
import pytest

from repro.formats.csc import CSCMatrix
from repro.util.checks import check_nonempty, check_same_shape, require
from repro.util.rng import default_rng, spawn_rngs
from repro.util.timer import Timer


class TestRng:
    def test_int_seed_reproducible(self):
        a = default_rng(42).random(5)
        b = default_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert default_rng(g) is g

    def test_spawn_count(self):
        assert len(spawn_rngs(0, 7)) == 7

    def test_spawned_rngs_independent(self):
        r1, r2 = spawn_rngs(0, 2)
        assert not np.array_equal(r1.random(10), r2.random(10))

    def test_spawn_reproducible(self):
        a = [g.random() for g in spawn_rngs(3, 4)]
        b = [g.random() for g in spawn_rngs(3, 4)]
        assert a == b


class TestTimer:
    def test_measures_nonnegative(self):
        with Timer() as t:
            sum(range(100))
        assert t.elapsed >= 0

    def test_lap_monotone(self):
        t = Timer()
        t.restart()
        a = t.lap()
        b = t.lap()
        assert b >= a


class TestChecks:
    def test_require_passes(self):
        require(True, "ok")

    def test_require_raises(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_nonempty(self):
        with pytest.raises(ValueError):
            check_nonempty([])

    def test_same_shape_ok(self):
        mats = [CSCMatrix.zeros((3, 4)), CSCMatrix.zeros((3, 4))]
        assert check_same_shape(mats) == (3, 4)

    def test_same_shape_mismatch(self):
        mats = [CSCMatrix.zeros((3, 4)), CSCMatrix.zeros((4, 3))]
        with pytest.raises(ValueError):
            check_same_shape(mats)
