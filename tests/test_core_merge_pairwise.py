"""Tests for the 2-way merge primitive and pairwise SpKAdd."""

import numpy as np
import pytest

from repro.core.merge2 import merge_cost, merge_sorted_keyed
from repro.core.pairwise import (
    add_pair,
    spkadd_2way_incremental,
    spkadd_2way_tree,
)
from repro.core.stats import KernelStats
from repro.formats.csc import CSCMatrix
from repro.formats.ops import matrices_equal, sum_with_scipy
from tests.conftest import random_collection, shuffle_columns


class TestMergeSortedKeyed:
    def test_disjoint(self):
        k, v = merge_sorted_keyed(
            np.array([1, 3], dtype=np.int64), np.array([1.0, 3.0]),
            np.array([2, 4], dtype=np.int64), np.array([2.0, 4.0]),
        )
        assert list(k) == [1, 2, 3, 4]
        assert list(v) == [1.0, 2.0, 3.0, 4.0]

    def test_overlapping_keys_summed(self):
        k, v = merge_sorted_keyed(
            np.array([1, 2, 3], dtype=np.int64), np.array([1.0, 1.0, 1.0]),
            np.array([2, 3, 4], dtype=np.int64), np.array([10.0, 10.0, 10.0]),
        )
        assert list(k) == [1, 2, 3, 4]
        assert list(v) == [1.0, 11.0, 11.0, 10.0]

    def test_one_empty(self):
        ka = np.array([5], dtype=np.int64)
        k, v = merge_sorted_keyed(
            ka, np.array([2.0]), np.empty(0, dtype=np.int64), np.empty(0)
        )
        assert list(k) == [5]
        k, v = merge_sorted_keyed(
            np.empty(0, dtype=np.int64), np.empty(0), ka, np.array([2.0])
        )
        assert list(k) == [5]

    def test_identical_runs(self):
        ka = np.arange(10, dtype=np.int64)
        k, v = merge_sorted_keyed(ka, np.ones(10), ka.copy(), np.ones(10))
        assert np.array_equal(k, ka)
        assert np.all(v == 2.0)

    def test_merge_cost(self):
        assert merge_cost(3, 4) == 7


class TestAddPair:
    def test_matches_dense(self, rng):
        from tests.conftest import random_csc

        a = random_csc(rng, 30, 8, 40)
        b = random_csc(rng, 30, 8, 40)
        out = add_pair(a, b)
        assert np.allclose(out.to_dense(), a.to_dense() + b.to_dense())

    def test_requires_sorted(self, rng):
        from tests.conftest import random_csc

        a = random_csc(rng, 30, 8, 40)
        b = shuffle_columns(rng, random_csc(rng, 30, 8, 40))
        with pytest.raises(ValueError, match="sorted"):
            add_pair(a, b)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            add_pair(CSCMatrix.zeros((2, 2)), CSCMatrix.zeros((3, 2)))

    def test_stats_counts(self, rng):
        from tests.conftest import random_csc

        a = random_csc(rng, 30, 8, 40)
        b = random_csc(rng, 30, 8, 40)
        st = KernelStats()
        out = add_pair(a, b, st)
        assert st.ops == a.nnz + b.nnz
        assert st.bytes_written == out.nnz * 8


class TestPairwiseSpKAdd:
    def test_incremental_matches_oracle(self, small_collection):
        got = spkadd_2way_incremental(small_collection)
        assert matrices_equal(got, sum_with_scipy(small_collection))

    def test_tree_matches_oracle(self, small_collection):
        got = spkadd_2way_tree(small_collection)
        assert matrices_equal(got, sum_with_scipy(small_collection))

    def test_single_matrix(self, small_collection):
        one = [small_collection[0]]
        assert matrices_equal(
            spkadd_2way_incremental(one), small_collection[0]
        )
        assert matrices_equal(spkadd_2way_tree(one), small_collection[0])

    def test_odd_k(self):
        mats = random_collection(11, 50, 6, 5)
        assert matrices_equal(spkadd_2way_tree(mats), sum_with_scipy(mats))

    def test_incremental_work_exceeds_tree(self):
        """The paper's core observation: O(k^2) vs O(k lg k)."""
        mats = random_collection(13, 100, 8, 16, nnz_lo=30, nnz_hi=40)
        st_inc, st_tree = KernelStats(), KernelStats()
        spkadd_2way_incremental(mats, stats=st_inc)
        spkadd_2way_tree(mats, stats=st_tree)
        assert st_inc.ops > st_tree.ops
        assert st_inc.bytes_read > st_tree.bytes_read

    def test_presort_flag(self, rng):
        from tests.conftest import random_csc

        mats = [
            shuffle_columns(rng, random_csc(rng, 40, 5, 30)) for _ in range(3)
        ]
        with pytest.raises(ValueError):
            spkadd_2way_incremental(mats)
        got = spkadd_2way_incremental(mats, presort=True)
        assert matrices_equal(got, sum_with_scipy(mats))

    def test_empty_list_raises(self):
        with pytest.raises(ValueError):
            spkadd_2way_incremental([])

    def test_intermediate_accounting(self):
        mats = random_collection(17, 60, 4, 4)
        st = KernelStats()
        out = spkadd_2way_incremental(mats, stats=st)
        # intermediates exclude the final output
        assert st.output_nnz == out.nnz
        assert st.intermediate_nnz >= 0
