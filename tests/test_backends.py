"""Cross-backend equivalence: the fast engine must match the paper one.

The ``fast`` sort/reduce backend claims *bit-identical* matrices to the
``instrumented`` probing hash table — not merely close: both reduce
duplicates of a key in first-occurrence order, so even float sums agree
exactly.  These tests assert that across methods, sortedness, thread
counts, executors, and generated + property-based workloads, plus the
registry/resolution rules themselves.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.api import spkadd
from repro.core.hash_add import hash_symbolic, spkadd_hash
from repro.core.sliding_hash import spkadd_sliding_hash
from repro.formats.ops import matrices_equal
from repro.generators import erdos_renyi_collection, rmat_collection
from repro.kernels import (
    BACKEND_ENV_VAR,
    available_backends,
    get_backend,
    resolve_backend,
    sort_reduce,
)
from tests.conftest import random_collection
from tests.test_property_based import COMMON, matrix_collection


@pytest.fixture(autouse=True)
def _clean_backend_env(monkeypatch):
    """Resolution-rule assertions assume no ambient REPRO_BACKEND."""
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)


def canon(mat):
    out = mat.copy()
    out.sort_indices()
    return out


def assert_bit_identical(a, b, context=""):
    a, b = canon(a), canon(b)
    assert a.shape == b.shape, context
    assert np.array_equal(a.indptr, b.indptr), context
    assert np.array_equal(a.indices, b.indices), context
    # exact — not allclose: the backends must agree to the last bit
    assert np.array_equal(a.data, b.data), context


class TestRegistry:
    def test_available(self):
        assert set(available_backends()) >= {"fast", "instrumented"}

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("quantum")

    def test_resolution_defaults(self):
        assert resolve_backend(None).name == "instrumented"
        assert resolve_backend(None, default="fast").name == "fast"
        assert resolve_backend("fast").name == "fast"
        assert resolve_backend("auto", default="fast").name == "fast"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "fast")
        assert resolve_backend(None).name == "fast"
        # explicit argument beats the environment
        assert resolve_backend("instrumented").name == "instrumented"

    def test_trace_forces_instrumented(self):
        assert resolve_backend(None, need_trace=True).name == "instrumented"
        with pytest.raises(ValueError, match="trace"):
            resolve_backend("fast", need_trace=True)

    def test_fast_rejects_trace_capture(self):
        fb = get_backend("fast")
        with pytest.raises(ValueError, match="trace"):
            fb.accumulate(
                np.array([1], dtype=np.int64), np.array([1.0]),
                capture_trace=True,
            )

    def test_facade_rejects_backend_for_non_hash(self, small_collection):
        with pytest.raises(ValueError, match="backend"):
            spkadd(small_collection, method="heap", backend="fast")

    def test_facade_env_override(self, small_collection, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "instrumented")
        res = spkadd(small_collection, method="hash")
        assert res.stats.ops > 0  # instrumented engine metered slot ops


class TestSortReduce:
    def test_duplicates_first_occurrence_order(self):
        keys = np.array([7, 7, 2, 7], dtype=np.int64)
        vals = np.array([1.0, 10.0, 5.0, 100.0])
        k, v = sort_reduce(keys, vals)
        assert list(k) == [2, 7]
        assert list(v) == [5.0, 111.0]

    def test_empty(self):
        k, v = sort_reduce(np.empty(0, dtype=np.int64), np.empty(0))
        assert k.size == 0 and v.size == 0

    def test_integer_dtype_preserved(self):
        k, v = sort_reduce(
            np.array([3, 3], dtype=np.int64), np.array([1, 2], dtype=np.int32)
        )
        assert v.dtype == np.int64
        assert list(v) == [3]

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            sort_reduce(np.array([1, 2], dtype=np.int64), np.array([1.0]))


WORKLOADS = [
    ("er", lambda: erdos_renyi_collection(1 << 10, 24, d=8.0, k=8, seed=3)),
    ("rmat", lambda: rmat_collection(1 << 10, 32, d=8.0, k=8, seed=4)),
]


class TestCrossBackendEquivalence:
    """ISSUE satellite: fast == instrumented on ER/RMAT inputs for all
    hash-family methods x sorted_output x threads."""

    @pytest.mark.parametrize("pattern", [w[0] for w in WORKLOADS])
    @pytest.mark.parametrize("method", ["hash", "sliding_hash"])
    @pytest.mark.parametrize("sorted_output", [True, False])
    @pytest.mark.parametrize("threads", [1, 4])
    def test_generated_workloads(self, pattern, method, sorted_output, threads):
        mats = dict(WORKLOADS)[pattern]()
        results = {}
        for backend in ("instrumented", "fast"):
            res = spkadd(
                mats, method=method, threads=threads,
                sorted_output=sorted_output, backend=backend,
            )
            results[backend] = res.matrix
            assert res.stats.input_nnz == sum(A.nnz for A in mats)
            assert res.stats.output_nnz == res.matrix.nnz
        assert_bit_identical(
            results["fast"], results["instrumented"],
            f"{pattern}/{method}/sorted={sorted_output}/T={threads}",
        )

    @pytest.mark.parametrize("method", ["hash", "sliding_hash"])
    def test_process_executor_matches(self, method):
        mats = random_collection(31, 400, 19, 6)
        thread = spkadd(
            mats, method=method, threads=3, backend="fast",
        )
        process = spkadd(
            mats, method=method, threads=3, backend="fast",
            executor="process",
        )
        assert_bit_identical(thread.matrix, process.matrix, method)
        assert thread.stats.input_nnz == process.stats.input_nnz

    def test_direct_kernel_backends_match(self):
        mats = random_collection(32, 500, 13, 9)
        assert_bit_identical(
            spkadd_hash(mats, backend="fast"),
            spkadd_hash(mats, backend="instrumented"),
        )
        assert_bit_identical(
            spkadd_sliding_hash(mats, table_entries=32, backend="fast"),
            spkadd_sliding_hash(mats, table_entries=32, backend="instrumented"),
        )

    def test_fast_symbolic_counts_match(self):
        mats = random_collection(33, 300, 11, 5)
        assert np.array_equal(
            hash_symbolic(mats, backend="fast"),
            hash_symbolic(mats, backend="instrumented"),
        )

    def test_fused_fills_two_phase_stats(self, small_collection):
        res = spkadd(small_collection, method="hash", backend="fast")
        sym = res.stats_symbolic
        assert sym is not None
        assert sym.output_nnz == res.matrix.nnz
        assert sym.input_nnz == sum(A.nnz for A in small_collection)
        assert np.array_equal(sym.col_out_nnz, res.stats.col_out_nnz)

    def test_fast_precomputed_symbolic(self, small_collection):
        nnz = hash_symbolic(small_collection)
        got = spkadd_hash(small_collection, col_out_nnz=nnz, backend="fast")
        assert_bit_identical(
            got, spkadd_hash(small_collection, backend="instrumented")
        )


@settings(**COMMON)
@given(matrix_collection(), st.booleans(), st.integers(1, 4))
def test_property_cross_backend(mats, sorted_output, threads):
    """Property: every random collection sums bit-identically on both
    backends, any sortedness, any thread count."""
    fast = spkadd(
        mats, method="hash", threads=threads,
        sorted_output=sorted_output, backend="fast",
    ).matrix
    inst = spkadd(
        mats, method="hash", threads=threads,
        sorted_output=sorted_output, backend="instrumented",
    ).matrix
    assert_bit_identical(fast, inst)


@settings(**COMMON)
@given(matrix_collection())
def test_property_sliding_cross_backend(mats):
    fast = spkadd_sliding_hash(mats, table_entries=16, backend="fast")
    inst = spkadd_sliding_hash(mats, table_entries=16, backend="instrumented")
    assert_bit_identical(fast, inst)
