"""Tests for KernelStats bookkeeping, the block gather layer and the CLI."""

import subprocess
import sys

import numpy as np
import pytest

from repro.core.blocks import (
    assemble_from_block_outputs,
    choose_block_cols,
    composite_keys,
    gather_block,
    iter_col_blocks,
    split_keys,
)
from repro.core.stats import KernelStats
from repro.formats.csc import CSCMatrix
from repro.formats.ops import matrices_equal
from tests.conftest import random_collection


class TestKernelStats:
    def test_table_traffic_accumulates(self):
        st = KernelStats()
        st.add_table_traffic(1024, 10)
        st.add_table_traffic(1024, 5)
        st.add_table_traffic(2048, 1)
        assert st.table_traffic == {1024: 15.0, 2048: 1.0}
        assert st.total_table_accesses == 16.0

    def test_negative_traffic_ignored(self):
        st = KernelStats()
        st.add_table_traffic(64, 0)
        st.add_table_traffic(64, -5)
        assert st.table_traffic == {}

    def test_avg_probe_length(self):
        st = KernelStats(ops=100, probes=25)
        assert st.avg_probe_length == 0.25
        assert KernelStats().avg_probe_length == 0.0

    def test_merge_scalars(self):
        a = KernelStats(ops=10, probes=1, input_nnz=5, bytes_read=100)
        b = KernelStats(ops=20, probes=2, input_nnz=7, bytes_written=50)
        a.merge(b)
        assert a.ops == 30 and a.probes == 3
        assert a.input_nnz == 12
        assert a.total_bytes == 150

    def test_merge_col_arrays_added(self):
        a = KernelStats(col_ops=np.array([1.0, 2.0]))
        b = KernelStats(col_ops=np.array([10.0, 20.0]))
        a.merge(b)
        assert list(a.col_ops) == [11.0, 22.0]

    def test_merge_takes_max_of_peaks(self):
        a = KernelStats(ds_bytes_peak=100, parts=2)
        a.merge(KernelStats(ds_bytes_peak=50, parts=5))
        assert a.ds_bytes_peak == 100
        assert a.parts == 5

    def test_summary_contains_algorithm(self):
        st = KernelStats(algorithm="hash", k=4, n_cols=2)
        assert "hash" in st.summary()


class TestBlocks:
    def test_iter_col_blocks_cover(self):
        spans = list(iter_col_blocks(10, 3))
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_choose_block_cols_bounds(self):
        mats = random_collection(1, 100, 16, 4)
        bc = choose_block_cols(mats)
        assert 1 <= bc <= 16

    def test_choose_block_cols_empty(self):
        assert choose_block_cols([CSCMatrix.zeros((5, 7))]) == 7

    def test_gather_block_counts(self):
        mats = random_collection(2, 50, 8, 3)
        cols, rows, vals, in_nnz = gather_block(mats, 2, 6)
        assert rows.size == sum(
            int(m.col_nnz()[2:6].sum()) for m in mats
        )
        assert int(in_nnz.sum()) == rows.size
        assert cols.min() >= 0 and cols.max() < 4

    def test_composite_keys_roundtrip(self):
        cols = np.array([0, 1, 3], dtype=np.int64)
        rows = np.array([5, 0, 49], dtype=np.int64)
        keys = composite_keys(cols, rows, 50)
        c2, r2 = split_keys(keys, 50)
        assert np.array_equal(c2, cols)
        assert np.array_equal(r2, rows)

    def test_assemble_out_of_order_blocks(self):
        # blocks arriving out of order must still stitch correctly
        b0 = (0, np.array([0, 1]), np.array([2, 3]), np.array([1.0, 2.0]))
        b1 = (2, np.array([0]), np.array([1]), np.array([5.0]))
        out = assemble_from_block_outputs((4, 3), [b1, b0], sorted=True)
        dense = out.to_dense()
        assert dense[2, 0] == 1.0 and dense[3, 1] == 2.0 and dense[1, 2] == 5.0


class TestCLI:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True, text=True, timeout=300,
        )

    def test_demo(self):
        proc = self.run_cli(
            "demo", "--m", "512", "--n", "8", "--d", "4", "--k", "4"
        )
        assert proc.returncode == 0, proc.stderr[-500:]
        assert "hash" in proc.stdout

    def test_platforms(self):
        proc = self.run_cli("platforms")
        assert proc.returncode == 0
        assert "Skylake" in proc.stdout

    def test_requires_command(self):
        proc = self.run_cli()
        assert proc.returncode != 0
