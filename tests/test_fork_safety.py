"""Fork-safety stress test for the mixed thread/process/shm workload.

ROADMAP (PR 3) recorded a rare CI hang: a fork-based worker pool forked
while another thread held a lock (thread pools and a persistent shm
pool coexisting in one process), deadlocking the child on the inherited
mutex.  The executors now default to the ``forkserver`` start method —
the fork server process is single-threaded, so its forks can't inherit
a held lock — and this test is the regression harness: it interleaves

* thread-pool SpKAdd calls running concurrently on a live
  ``ThreadPoolExecutor`` (threads exist while other pools start),
* fresh per-call process pools (``executor="process"``),
* the persistent shared-memory engine (``executor="shm"``),

for several rounds in one child interpreter, under a **hard subprocess
timeout**: if any interleaving deadlocks, the test fails with the
timeout instead of hanging CI.  Output bit-identity is asserted every
round so the stress doubles as a conformance check.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

#: the interleaving driver, run in its own interpreter so the hard
#: timeout can kill a deadlocked process tree without taking pytest
#: down with it.
STRESS_SCRIPT = """\
import numpy as np
from concurrent.futures import ThreadPoolExecutor

from repro.core.api import spkadd
from repro.generators import erdos_renyi_collection
from repro.parallel.shm import list_live_segments


def main():
    mats = erdos_renyi_collection(500, 37, d=4.0, k=4, seed=21)
    ref = spkadd(mats, method="hash").matrix
    for round_no in range(4):
        # Keep a thread pool alive (its workers hold the GIL and
        # arbitrary locks at arbitrary times) WHILE both process-based
        # executors start and run workers — the historical hazard.
        with ThreadPoolExecutor(max_workers=4) as tp:
            thread_futs = [
                tp.submit(
                    spkadd, mats, method="hash", threads=2,
                    executor="thread",
                )
                for _ in range(2)
            ]
            fresh_proc = spkadd(
                mats, method="hash", threads=2, executor="process"
            )
            persistent_shm = spkadd(
                mats, method="hash", threads=2, executor="shm"
            )
            results = [f.result() for f in thread_futs]
        results += [fresh_proc, persistent_shm]
        for res in results:
            assert res.matrix.indices.dtype == ref.indices.dtype
            assert np.array_equal(res.matrix.indptr, ref.indptr)
            assert np.array_equal(res.matrix.indices, ref.indices)
            assert np.array_equal(res.matrix.data, ref.data)
    # Zero-copy shm results pin their output segment while referenced;
    # drop them before checking that nothing leaked.
    import gc

    del results, res, fresh_proc, persistent_shm
    gc.collect()
    assert list_live_segments() == []
    print("STRESS-OK")


if __name__ == "__main__":
    main()
"""

#: generous wall-clock budget: the full interleave takes a few seconds;
#: a deadlock burns the whole budget and fails loudly.
HARD_TIMEOUT_S = 240


@pytest.mark.stress
def test_interleaved_pools_complete_under_hard_timeout(tmp_path):
    script = tmp_path / "stress_driver.py"
    script.write_text(STRESS_SCRIPT)
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    # The fix under test is the default start method; make sure a
    # caller's REPRO_MP_START=fork doesn't mask it.
    env.pop("REPRO_MP_START", None)
    try:
        proc = subprocess.run(
            [sys.executable, str(script)],
            timeout=HARD_TIMEOUT_S,
            capture_output=True,
            text=True,
            env=env,
        )
    except subprocess.TimeoutExpired:
        pytest.fail(
            f"mixed thread/process/shm interleave did not finish within "
            f"{HARD_TIMEOUT_S}s — the fork-while-threads-hold-locks hang "
            "is back (see README 'Process pools and fork safety')"
        )
    assert proc.returncode == 0, proc.stderr
    assert "STRESS-OK" in proc.stdout


@pytest.mark.stress
def test_interleave_also_safe_under_explicit_forkserver(tmp_path):
    """Pin REPRO_MP_START=forkserver explicitly (the satellite's exact
    configuration) rather than relying on it being the default."""
    script = tmp_path / "stress_driver_fs.py"
    script.write_text(STRESS_SCRIPT)
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_MP_START"] = "forkserver"
    try:
        proc = subprocess.run(
            [sys.executable, str(script)],
            timeout=HARD_TIMEOUT_S,
            capture_output=True,
            text=True,
            env=env,
        )
    except subprocess.TimeoutExpired:
        pytest.fail(
            f"forkserver-pinned interleave did not finish within "
            f"{HARD_TIMEOUT_S}s"
        )
    assert proc.returncode == 0, proc.stderr
    assert "STRESS-OK" in proc.stdout
