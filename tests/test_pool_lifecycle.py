"""Pool lifecycle + zero-copy result suite (ISSUE-5).

Three contracts under test:

* **Persistent pools** — both process-based executors draw workers from
  the :mod:`repro.parallel.pools` registry: repeated calls reuse one
  warm pool (no child-process / fd / ``/dev/shm`` growth across a soak
  loop), a broken pool is rebuilt on the next call, and
  ``shutdown_pools()`` / the registry context manager release workers
  deterministically.
* **Fail-fast chunk errors** — the first poisoned chunk cancels the
  chunks still queued and propagates immediately on both the process
  and shm paths, instead of waiting out every healthy sibling
  (regression drivers run in a child interpreter under a hard timeout,
  with ``REPRO_MP_START=fork`` so the parent-side poison patch is
  inherited by the workers).
* **Zero-copy result lifetime** — a shm result's segment stays alive
  exactly as long as some view of it does: present while the matrix (or
  any NumPy view derived from its arrays) is referenced, unlinked from
  ``/dev/shm`` when the last reference dies; ``materialize=True`` /
  ``REPRO_SHM_RESULTS`` restore the private-copy contract.
"""

import gc
import multiprocessing
import os
import subprocess
import sys
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core.api import spkadd
from repro.parallel.pools import (
    PoolRegistry,
    active_pools,
    discard_pool,
    get_pool,
    shutdown_pools,
)
from repro.parallel.shm import (
    SHM_RESULTS_ENV_VAR,
    list_live_segments,
    resolve_shm_results,
)
from tests.conftest import assert_bit_identical, random_collection

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


# ---------------------------------------------------------------------------
# Persistent pool registry.
# ---------------------------------------------------------------------------


class TestPoolRegistry:
    def test_same_key_reuses_pool(self):
        a = get_pool("process", 2)
        b = get_pool("process", 2)
        assert a is b

    def test_kind_threads_and_context_key_separately(self):
        base = get_pool("process", 2)
        assert get_pool("shm", 2) is not base
        assert get_pool("process", 3) is not base
        assert get_pool("process", 2) is base  # still resident (cap 2)
        spawn = multiprocessing.get_context("spawn")
        other = get_pool("process", 2, spawn)
        try:
            assert other is not base
        finally:
            discard_pool(other)

    def test_lru_eviction_bounds_residency_per_kind(self):
        from repro.parallel.pools import DEFAULT_MAX_POOLS_PER_KIND

        shutdown_pools(kind="process")
        widths = (2, 3, 4)
        pools = [get_pool("process", t) for t in widths]
        keys = sorted(k for k in active_pools() if k[0] == "process")
        assert len(keys) == DEFAULT_MAX_POOLS_PER_KIND
        # The least-recently-used width was evicted, the newest survive.
        assert {k[1] for k in keys} == set(widths[-DEFAULT_MAX_POOLS_PER_KIND:])
        with pytest.raises(RuntimeError):  # evicted pool was shut down
            pools[0].submit(int, "1")
        assert pools[-1].submit(int, "7").result() == 7

    def test_leased_pool_survives_eviction_pressure(self):
        """A pool checked out with lease_pool() must not be LRU-evicted
        mid-call, however many other widths are acquired meanwhile."""
        from repro.parallel.pools import lease_pool

        shutdown_pools(kind="process")
        with lease_pool("process", 2) as leased:
            for t in (3, 4, 5):  # enough churn to evict every unleased pool
                get_pool("process", t)
            # Still registered and still accepting work mid-lease.
            assert any(
                k[0] == "process" and k[1] == 2 for k in active_pools()
            )
            assert leased.submit(int, "7").result() == 7
        # Once released it becomes an ordinary eviction candidate.
        for t in (3, 4):
            get_pool("process", t)
        assert not any(
            k[0] == "process" and k[1] == 2 for k in active_pools()
        )

    def test_executor_process_reuses_registry_pool(self):
        mats = random_collection(50, 150, 11, 4)
        ref = spkadd(mats, method="hash", threads=2, executor="thread")
        got1 = spkadd(mats, method="hash", threads=2, executor="process")
        pool = active_pools().get(("process", 2, "forkserver"))
        got2 = spkadd(mats, method="hash", threads=2, executor="process")
        if pool is not None:  # forkserver platforms: the pool survived
            assert active_pools().get(("process", 2, "forkserver")) is pool
        assert_bit_identical(ref.matrix, got1.matrix)
        assert_bit_identical(ref.matrix, got2.matrix)

    def test_discard_replaces_pool(self):
        pool = get_pool("process", 2)
        discard_pool(pool)
        fresh = get_pool("process", 2)
        assert fresh is not pool
        assert fresh.submit(int, "7").result() == 7

    def test_broken_pool_rebuilt_and_executor_recovers(self):
        mats = random_collection(51, 150, 11, 4)
        ref = spkadd(mats, method="hash", threads=2, executor="thread")
        pool = get_pool("process", 2)
        with pytest.raises(BrokenProcessPool):
            # Kill a worker mid-task: the executor is now poisoned.
            pool.submit(os._exit, 13).result()
        # Health rebuild: the registry never hands out the corpse.
        fresh = get_pool("process", 2)
        assert fresh is not pool
        # And the public executor path works end to end again.
        got = spkadd(mats, method="hash", threads=2, executor="process")
        assert_bit_identical(ref.matrix, got.matrix)

    def test_shutdown_pools_kind_filter(self):
        get_pool("process", 2)
        shm = get_pool("shm", 2)
        shutdown_pools(kind="process")
        keys = set(active_pools())
        assert not any(k[0] == "process" for k in keys)
        assert any(k[0] == "shm" for k in keys)
        assert get_pool("shm", 2) is shm  # untouched by the filter
        shutdown_pools()
        assert active_pools() == {}

    def test_shutdown_pools_defers_leased_pool(self):
        """shutdown_pools() arriving while a call is in flight must not
        cancel it: the leased pool keeps accepting the call's work and
        is closed when the lease releases."""
        from repro.parallel.pools import lease_pool

        shutdown_pools(kind="process")
        with lease_pool("process", 2) as pool:
            shutdown_pools(kind="process")
            assert not any(k[0] == "process" for k in active_pools())
            # Mid-call submits still succeed (the scatter-wave case).
            assert pool.submit(int, "7").result() == 7
        with pytest.raises(RuntimeError):  # closed once the call ended
            pool.submit(int, "1")

    def test_discard_defers_while_leased(self):
        """discard_pool() on a pool another call has leased must not
        cancel that call; the pool closes when the lease releases."""
        from repro.parallel.pools import lease_pool

        shutdown_pools(kind="process")
        with lease_pool("process", 2) as pool:
            discard_pool(pool)
            assert not any(
                k[0] == "process" and k[1] == 2 for k in active_pools()
            )
            assert pool.submit(int, "7").result() == 7  # still serving
        with pytest.raises(RuntimeError):  # closed at lease release
            pool.submit(int, "1")

    def test_engine_shutdown_discard_releases_private_pool(self):
        """shutdown(discard=True) is the targeted teardown for engines
        whose context makes the pool de-facto private."""
        from repro.parallel.executor import _total_col_nnz
        from repro.parallel.partition import split_weighted
        from repro.parallel.shm import SharedMemoryPool

        before = list_live_segments()
        spawn = multiprocessing.get_context("spawn")
        engine = SharedMemoryPool(mp_context=spawn)
        mats = random_collection(67, 100, 9, 3)
        ranges = [
            (j0, j1)
            for j0, j1 in split_weighted(_total_col_nnz(mats), 3)
            if j1 > j0
        ]
        out, _ = engine.run(
            mats, "hash", ranges,
            sorted_output=True, kwargs={"backend": "fast"}, threads=2,
        )
        assert ("shm", 2, "spawn") in active_pools()
        engine.shutdown(discard=True)
        assert ("shm", 2, "spawn") not in active_pools()
        del out
        gc.collect()
        assert list_live_segments() == before

    def test_private_registry_context_manager(self):
        with PoolRegistry() as reg:
            pool = reg.get("process", 2)
            assert pool.submit(int, "5").result() == 5
            assert reg.active()
        # __exit__ shut the pool down; it accepts no further work.
        with pytest.raises(RuntimeError):
            pool.submit(int, "5")
        assert reg.active() == {}

    def test_shutdown_then_spkadd_rebuilds(self):
        mats = random_collection(52, 120, 9, 3)
        ref = spkadd(mats, method="hash", threads=2, executor="thread")
        for executor in ("process", "shm"):
            shutdown_pools()
            got = spkadd(mats, method="hash", threads=2, executor=executor)
            assert_bit_identical(ref.matrix, got.matrix)


# ---------------------------------------------------------------------------
# Fail-fast chunk errors (satellite regression).
#
# The drivers run in a child interpreter with REPRO_MP_START=fork: fork
# workers inherit the parent's patched ``_run_chunk`` (task functions
# are pickled by reference and resolved against the child's module
# state), which lets the test poison one chunk and slow another without
# test seams in production code.  The old collection loop waited on the
# slow chunk's future before surfacing the poisoned one.
# ---------------------------------------------------------------------------

FAILFAST_SCRIPT = """\
import multiprocessing
import os
import sys
import time

import repro.parallel.executor as ex
from repro.generators import erdos_renyi_collection
from repro.parallel.shm import list_live_segments

SLEEP_S = 8.0


def poisoned_run_chunk(method, j0, views, sorted_output, kwargs):
    if j0 == 0:
        time.sleep(SLEEP_S)  # a healthy-but-slow sibling chunk
    raise RuntimeError(f"poisoned chunk at column {j0}")


def main(executor):
    ex._run_chunk = poisoned_run_chunk
    mats = erdos_renyi_collection(3000, 64, d=4.0, k=4, seed=3)
    t0 = time.perf_counter()
    try:
        ex.parallel_spkadd(mats, "hash", threads=2, executor=executor)
    except RuntimeError as err:
        elapsed = time.perf_counter() - t0
        assert "poisoned chunk" in str(err), err
        assert elapsed < SLEEP_S / 2.0, (
            f"poisoned-chunk error took {elapsed:.1f}s to propagate — "
            "the executor drained the slow sibling before raising"
        )
        assert list_live_segments() == []
        print(f"FAILFAST-OK {elapsed:.2f}s")
        sys.stdout.flush()
        # Skip interpreter teardown: the deliberately-slow chunk is
        # still running in a worker and a normal exit would join it —
        # and kill the workers first, or the orphans would keep the
        # captured stdout/stderr pipes open until the sleep finishes.
        for child in multiprocessing.active_children():
            child.terminate()
        os._exit(0)
    raise SystemExit("poisoned chunk did not raise")


if __name__ == "__main__":
    main(sys.argv[1])
"""

FAILFAST_TIMEOUT_S = 120


@pytest.mark.stress
@pytest.mark.parametrize("executor", ["process", "shm"])
def test_poisoned_chunk_fails_fast(executor, tmp_path):
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    script = tmp_path / "failfast_driver.py"
    script.write_text(FAILFAST_SCRIPT)
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_MP_START"] = "fork"
    try:
        proc = subprocess.run(
            [sys.executable, str(script), executor],
            timeout=FAILFAST_TIMEOUT_S,
            capture_output=True,
            text=True,
            env=env,
        )
    except subprocess.TimeoutExpired:
        pytest.fail(
            f"{executor} fail-fast driver did not finish within "
            f"{FAILFAST_TIMEOUT_S}s"
        )
    assert proc.returncode == 0, proc.stderr
    assert "FAILFAST-OK" in proc.stdout, proc.stdout + proc.stderr


def test_worker_error_keeps_engines_usable():
    """In-process companion to the drivers: a failing chunk (unknown
    kernel kwarg) propagates as the worker's error, leaks nothing, and
    leaves both persistent engines serving the next call."""
    mats = random_collection(53, 150, 11, 4)
    ref = spkadd(mats, method="hash", threads=2, executor="thread")
    for executor in ("process", "shm"):
        before = list_live_segments()
        with pytest.raises(TypeError):
            spkadd(mats, method="hash", threads=2, executor=executor,
                   definitely_not_a_kwarg=1)
        assert list_live_segments() == before, executor
        got = spkadd(mats, method="hash", threads=2, executor=executor)
        assert_bit_identical(ref.matrix, got.matrix)


# ---------------------------------------------------------------------------
# Soak: repeated calls, no resource growth.
# ---------------------------------------------------------------------------


def _fd_count() -> int:
    return len(os.listdir("/proc/self/fd"))


@pytest.mark.stress
@pytest.mark.parametrize("executor", ["process", "shm"])
def test_soak_no_resource_growth(executor):
    if not os.path.isdir("/proc/self/fd"):
        pytest.skip("/proc not available")
    mats = random_collection(54, 400, 23, 5)
    for _ in range(3):  # warm: registry pool built, forkserver up
        spkadd(mats, method="hash", threads=2, executor=executor)
    gc.collect()
    children = len(multiprocessing.active_children())
    fds = _fd_count()
    segments = list_live_segments()
    for _ in range(10):
        res = spkadd(mats, method="hash", threads=2, executor=executor)
        del res
    gc.collect()
    assert len(multiprocessing.active_children()) <= children, (
        "worker process count grew across repeated calls"
    )
    assert _fd_count() <= fds, "open fd count grew across repeated calls"
    assert list_live_segments() == segments, "/dev/shm entries leaked"


# ---------------------------------------------------------------------------
# Zero-copy result lifetime.
# ---------------------------------------------------------------------------


class TestZeroCopyLifetime:
    def run_shm(self, mats, **kw):
        return spkadd(mats, method="hash", threads=3, executor="shm", **kw)

    def test_result_is_segment_backed_and_bit_identical(self):
        mats = random_collection(55, 200, 13, 5)
        before = set(list_live_segments())
        res = self.run_shm(mats)
        assert res.matrix.buffer_owner is not None
        assert res.matrix.is_shm_backed
        live = set(list_live_segments()) - before
        assert live == {res.matrix.buffer_owner.segment_name}
        ref = spkadd(mats, method="hash", threads=3, executor="thread")
        assert_bit_identical(ref.matrix, res.matrix)

    def test_segment_unlinks_when_last_reference_dies(self):
        mats = random_collection(56, 200, 13, 5)
        before = set(list_live_segments())
        res = self.run_shm(mats)
        name = res.matrix.buffer_owner.segment_name
        assert name in list_live_segments()
        # A derived NumPy view (not the matrix, not the base array)
        # must keep the segment alive on its own.
        tail = res.matrix.indices[5:]
        expect = res.matrix.indices[5:].copy()
        del res
        gc.collect()
        assert name in list_live_segments(), "segment died under a live view"
        assert np.array_equal(tail, expect)  # still readable
        del tail
        gc.collect()
        assert name not in list_live_segments(), "segment outlived its views"

    def test_col_view_marks_shared_backing(self):
        mats = random_collection(57, 150, 12, 4)
        res = self.run_shm(mats)
        view = res.matrix.col_view(2, 7)
        assert view.buffer_owner is res.matrix.buffer_owner

    def test_materialize_kwarg_returns_private_copy(self):
        mats = random_collection(58, 180, 13, 4)
        before = list_live_segments()
        zc = self.run_shm(mats)
        mz = self.run_shm(mats, materialize=True)
        assert mz.matrix.buffer_owner is None
        assert not mz.matrix.is_shm_backed
        assert_bit_identical(zc.matrix, mz.matrix)
        del zc
        gc.collect()
        # The materialized result holds no segment.
        assert list_live_segments() == before

    def test_matrix_materialize_method(self):
        mats = random_collection(59, 150, 11, 4)
        res = self.run_shm(mats)
        name = res.matrix.buffer_owner.segment_name
        private = res.matrix.materialize()
        assert private.buffer_owner is None
        assert_bit_identical(res.matrix, private)
        assert private.materialize() is private  # already private: no-op
        del res
        gc.collect()
        assert name not in list_live_segments()
        assert private.nnz >= 0  # still fully usable after the segment died

    def test_env_pin_materializes(self, monkeypatch):
        mats = random_collection(60, 150, 11, 4)
        monkeypatch.setenv(SHM_RESULTS_ENV_VAR, "materialize")
        res = self.run_shm(mats)
        assert res.matrix.buffer_owner is None
        # Explicit argument beats the pin.
        res = self.run_shm(mats, materialize=False)
        assert res.matrix.buffer_owner is not None

    def test_env_invalid_value_names_source(self, monkeypatch):
        mats = random_collection(61, 100, 9, 3)
        monkeypatch.setenv(SHM_RESULTS_ENV_VAR, "teleport")
        before = list_live_segments()
        with pytest.raises(ValueError, match=SHM_RESULTS_ENV_VAR):
            self.run_shm(mats)
        assert list_live_segments() == before  # failed before any segment

    def test_zero_copy_result_pickles_as_private(self):
        """Pickling a segment-backed matrix must transport the array
        values and drop the (segment-bound, unpicklable) owner — the
        round trip is a private, fully-usable matrix."""
        import pickle

        mats = random_collection(62, 150, 11, 4)
        res = self.run_shm(mats)
        assert res.matrix.is_shm_backed
        clone = pickle.loads(pickle.dumps(res.matrix))
        assert clone.buffer_owner is None
        assert_bit_identical(res.matrix, clone)
        name = res.matrix.buffer_owner.segment_name
        del res
        gc.collect()
        assert name not in list_live_segments()
        assert clone.nnz >= 0  # private copy survives the segment

    def test_sort_indices_drops_shared_backing(self):
        """Sorting an unsorted zero-copy result rebuilds its arrays in
        private memory; the stale owner marker must go with them (the
        dropped arrays' finalizers release the segment)."""
        mats = random_collection(66, 150, 11, 4)
        res = spkadd(mats, method="hash", threads=3, executor="shm",
                     backend="instrumented", sorted_output=False)
        m = res.matrix
        assert m.is_shm_backed and not m.sorted
        m.sort_indices()
        assert m.sorted
        assert not m.is_shm_backed  # arrays are private copies now
        gc.collect()
        ref = spkadd(mats, method="hash", threads=3, executor="thread")
        assert np.array_equal(m.indptr, ref.matrix.indptr)
        assert np.array_equal(m.indices, ref.matrix.indices)

    def test_zero_copy_result_copy_protocol(self):
        """copy.copy shares the segment-backed arrays and must keep the
        shared-backing marker; copy.deepcopy duplicates into private
        memory and must drop it."""
        import copy as copy_mod

        mats = random_collection(65, 150, 11, 4)
        res = self.run_shm(mats)
        shallow = copy_mod.copy(res.matrix)
        assert shallow.indices is res.matrix.indices  # shared arrays
        assert shallow.is_shm_backed
        assert shallow.buffer_owner is res.matrix.buffer_owner
        deep = copy_mod.deepcopy(res.matrix)
        assert deep.indices is not res.matrix.indices
        assert not deep.is_shm_backed
        assert_bit_identical(res.matrix, deep)

    def test_zero_copy_result_feeds_process_executor(self):
        """A zero-copy shm result used as an *input* to the process
        executor crosses the pickle transport (chunk views inherit the
        buffer_owner marker) — it must ship cleanly."""
        mats = random_collection(63, 150, 11, 4)
        partial = self.run_shm(mats[:2]).matrix
        assert partial.is_shm_backed
        ref = spkadd([partial] + mats[2:], method="hash", threads=2,
                     executor="thread")
        got = spkadd([partial] + mats[2:], method="hash", threads=2,
                     executor="process")
        assert_bit_identical(ref.matrix, got.matrix)

    def test_engine_shutdown_leaves_shared_healthy_pool(self):
        """SharedMemoryPool.shutdown() must not tear a healthy pool out
        from under other engines sharing the registry key; only broken
        pools are discarded."""
        from repro.parallel.shm import SharedMemoryPool

        mats = random_collection(64, 150, 11, 4)
        ref = spkadd(mats, method="hash", threads=2, executor="thread")
        first = spkadd(mats, method="hash", threads=2, executor="shm")
        assert_bit_identical(ref.matrix, first.matrix)
        pool = active_pools().get(("shm", 2, "forkserver"))
        other = SharedMemoryPool()
        other._pool = pool  # simulate a second engine on the same key
        other.shutdown()
        if pool is not None:
            assert active_pools().get(("shm", 2, "forkserver")) is pool
        # The default engine keeps working on the (still live) pool.
        again = spkadd(mats, method="hash", threads=2, executor="shm")
        assert_bit_identical(ref.matrix, again.matrix)

    def test_resolve_shm_results_rules(self, monkeypatch):
        monkeypatch.delenv(SHM_RESULTS_ENV_VAR, raising=False)
        assert resolve_shm_results(None) is False
        assert resolve_shm_results(True) is True
        assert resolve_shm_results(False) is False
        for raw, expect in [
            ("zero-copy", False), ("zero_copy", False), ("ZeroCopy", False),
            ("materialize", True), ("copy", True),
        ]:
            monkeypatch.setenv(SHM_RESULTS_ENV_VAR, raw)
            assert resolve_shm_results(None) is expect, raw
        monkeypatch.setenv(SHM_RESULTS_ENV_VAR, "materialize")
        assert resolve_shm_results(False) is False  # argument wins
