"""Index-dtype-generic pipeline: formats -> kernels -> executors.

ISSUE-4 regression suite, the index-side mirror of ``test_dtypes.py``.
The contract: one index width per call — int32 whenever the matrix
dimensions and the summed input nnz fit, int64 otherwise
(``repro.kernels.resolve_index_dtype``) — emitted identically by every
method, backend, and executor; format constructors and scipy round
trips preserve integer index dtypes; and outputs whose bounds overflow
int32 transparently promote to int64 instead of wrapping, including
through the shm engine's symbolic sizing.

The suite is environment-robust: expected widths are computed through
the resolution rule itself, so the CI legs pinning
``REPRO_INDEX_DTYPE=int64`` run the same assertions at the wide width.
"""

import numpy as np
import pytest
import scipy.sparse as sp

import repro.formats.compressed as fc
from repro.core.api import spkadd
from repro.core.streaming import StreamingAccumulator, spkadd_streaming
from repro.core.symbolic import chunk_output_layout, exact_output_col_nnz
from repro.formats.compressed import (
    INDEX_DTYPE_ENV_VAR,
    build_indptr,
    min_index_dtype,
    resolve_index_dtype,
)
from repro.formats.convert import from_scipy, to_scipy
from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.kernels import get_backend
from tests.conftest import assert_bit_identical

EXECUTORS = ("serial", "thread", "process", "shm")
PARALLEL_EXECUTORS = ("thread", "process", "shm")


def run(mats, executor, *, method="hash", threads=3, **kw):
    if executor == "serial":
        return spkadd(mats, method=method, threads=1, **kw)
    return spkadd(mats, method=method, threads=threads, executor=executor, **kw)


def index_collection(input_dtypes, seed=31, shape=(70, 11)):
    """One matrix per entry of ``input_dtypes``, indices stored in it."""
    rng = np.random.default_rng(seed)
    mats = []
    for dt in input_dtypes:
        nnz = int(rng.integers(25, 90))
        mats.append(
            CSCMatrix.from_arrays(
                shape,
                rng.integers(0, shape[0], nnz).astype(dt),
                rng.integers(0, shape[1], nnz).astype(dt),
                rng.normal(size=nnz),
            )
        )
    return mats


class TestResolveIndexDtype:
    @pytest.fixture(autouse=True)
    def _unpinned(self, monkeypatch):
        """These tests check the pure rule; drop any CI-leg env pin."""
        monkeypatch.delenv(INDEX_DTYPE_ENV_VAR, raising=False)

    def test_default_rule_small_is_int32(self):
        mats = index_collection([np.int64, np.int32])
        assert resolve_index_dtype(mats) == np.int32
        assert resolve_index_dtype(shape=(100, 10), nnz=50) == np.int32

    def test_default_rule_widens_on_bounds(self):
        cap = fc.INT32_INDEX_CAPACITY
        assert resolve_index_dtype(nnz=cap) == np.int32
        assert resolve_index_dtype(nnz=cap + 1) == np.int64
        assert resolve_index_dtype(shape=(cap + 1, 1)) == np.int64
        assert resolve_index_dtype(shape=(1, cap + 1)) == np.int64

    def test_override_pins_and_widens_narrow_requests(self):
        mats = index_collection([np.int32])
        assert resolve_index_dtype(mats, "int64") == np.int64
        assert resolve_index_dtype(mats, np.int32) == np.int32
        # narrower requests widen to the narrowest supported width
        assert resolve_index_dtype(mats, np.int16) == np.int32

    def test_safe_widening_guard_beats_override(self):
        assert resolve_index_dtype((), "int32", nnz=2**31) == np.int64
        assert (
            resolve_index_dtype((), "int32", shape=(2**31 + 5, 2))
            == np.int64
        )

    def test_rejects_non_signed_integer(self):
        with pytest.raises(TypeError):
            resolve_index_dtype((), np.float64)
        with pytest.raises(TypeError):
            resolve_index_dtype((), np.uint32)

    def test_env_pin_and_explicit_beats_env(self, monkeypatch):
        mats = index_collection([np.int32])
        monkeypatch.setenv(INDEX_DTYPE_ENV_VAR, "int64")
        assert resolve_index_dtype(mats) == np.int64
        assert resolve_index_dtype(mats, "int32") == np.int32
        monkeypatch.setenv(INDEX_DTYPE_ENV_VAR, "int32")
        assert resolve_index_dtype(mats) == np.int32
        # the guard applies to the env pin too
        assert resolve_index_dtype((), nnz=2**31) == np.int64

    def test_exposed_on_backends(self):
        mats = index_collection([np.int64, np.int32])
        for name in ("fast", "instrumented"):
            eng = get_backend(name)
            assert eng.result_index_dtype(mats) == resolve_index_dtype(mats)
            assert eng.result_index_dtype(mats, "int64") == np.int64

    def test_min_index_dtype(self):
        assert min_index_dtype(0) == np.int32
        assert min_index_dtype(fc.INT32_INDEX_CAPACITY) == np.int32
        assert min_index_dtype(fc.INT32_INDEX_CAPACITY + 1) == np.int64


class TestFormatPreservation:
    def test_from_arrays_preserves_integer_index_dtypes(self):
        for dt in (np.int32, np.int64):
            m = CSCMatrix.from_arrays(
                (40, 6),
                np.array([0, 5, 39], dtype=dt),
                np.array([1, 1, 5], dtype=dt),
                [1.0, 2.0, 3.0],
            )
            assert m.indices.dtype == dt
            assert m.indptr.dtype == dt
            r = CSRMatrix.from_arrays(
                (40, 6),
                np.array([0, 5, 39], dtype=dt),
                np.array([1, 1, 5], dtype=dt),
                [1.0, 2.0, 3.0],
            )
            assert r.indices.dtype == dt
            assert r.indptr.dtype == dt

    def test_from_arrays_python_lists_default_int64(self):
        m = CSCMatrix.from_arrays((4, 4), [0, 1], [2, 3], [1.0, 2.0])
        assert m.indices.dtype == np.int64

    def test_from_arrays_explicit_cast(self):
        m = CSCMatrix.from_arrays(
            (4, 4), [0, 1], [2, 3], [1.0, 2.0], index_dtype=np.int32
        )
        assert m.indices.dtype == np.int32
        assert m.indptr.dtype == np.int32

    def test_from_columns_infers_and_casts(self):
        cols = [
            (np.array([0, 2], dtype=np.int32), np.array([1.0, 2.0])),
            (np.array([], dtype=np.int32), np.array([])),
        ]
        m = CSCMatrix.from_columns((4, 2), cols)
        assert m.indices.dtype == np.int32
        mixed = CSCMatrix.from_columns(
            (4, 2),
            [
                (np.array([0], dtype=np.int32), np.array([1.0])),
                (np.array([1], dtype=np.int64), np.array([1.0])),
            ],
        )
        assert mixed.indices.dtype == np.int64  # result_type of the columns
        empty = CSCMatrix.from_columns(
            (4, 1), [(np.array([], dtype=np.float64), np.array([]))]
        )
        assert empty.indices.dtype == np.int64  # all-empty fallback

    def test_coo_preserves(self):
        coo = COOMatrix(
            (9, 9),
            np.array([1, 1, 2], dtype=np.int32),
            np.array([3, 3, 0], dtype=np.int32),
            [1.0, 2.0, 3.0],
        )
        assert coo.rows.dtype == np.int32
        assert coo.cols.dtype == np.int32
        dedup = coo.sum_duplicates()
        assert dedup.rows.dtype == np.int32

    def test_with_index_dtype_casts_and_checks(self):
        m = CSCMatrix.from_arrays((300, 3), [0, 299], [0, 2], [1.0, 2.0])
        assert m.with_index_dtype(np.int64) is m  # already int64
        narrow = m.with_index_dtype(np.int32)
        assert narrow.indices.dtype == np.int32
        assert narrow.indptr.dtype == np.int32
        assert np.array_equal(narrow.indices, m.indices)
        assert narrow.data is m.data  # values shared
        with pytest.raises(OverflowError):
            m.with_index_dtype(np.int8)  # row id 299 does not fit
        with pytest.raises(TypeError):
            m.with_index_dtype(np.float32)

    def test_build_indptr_width(self):
        ids = np.array([0, 1, 1, 2], dtype=np.int32)
        assert build_indptr(ids, 3).dtype == np.int64  # historical default
        p = build_indptr(ids, 3, index_dtype=np.int32)
        assert p.dtype == np.int32
        assert list(p) == [0, 1, 3, 4]

    def test_zeros_index_dtype(self):
        z = CSCMatrix.zeros((5, 5), index_dtype=np.int32)
        assert z.indices.dtype == np.int32
        assert z.indptr.dtype == np.int32


class TestScipyRoundTrip:
    @pytest.mark.parametrize("fmt,cls", [("csc", CSCMatrix), ("csr", CSRMatrix)])
    def test_int32_preserved_both_ways(self, fmt, cls):
        """scipy stores int32 indices for small matrices; the old
        converter widened them to int64, doubling index bytes."""
        s = sp.random(50, 20, density=0.2, random_state=3, format=fmt)
        assert s.indices.dtype == np.int32  # scipy's own width choice
        ours = from_scipy(s, fmt)
        assert isinstance(ours, cls)
        assert ours.indices.dtype == np.int32
        assert ours.indptr.dtype == np.int32
        back = to_scipy(ours)
        assert back.indices.dtype == np.int32
        assert (abs(back - (s.tocsc() if fmt == "csc" else s.tocsr()))).nnz == 0

    def test_int64_scipy_preserved(self):
        s = sp.random(30, 10, density=0.2, random_state=4, format="csc")
        s.indices = s.indices.astype(np.int64)
        s.indptr = s.indptr.astype(np.int64)
        ours = from_scipy(s, "csc")
        assert ours.indices.dtype == np.int64


class TestConformance:
    #: index-dtype axis: the width the *inputs* are stored in.  The
    #: emitted width is bounds-resolved (identical across the axis),
    #: which is exactly what the cross-axis bit-identity check proves.
    INDEX_AXIS = {
        "int32": [np.int32] * 5,
        "int64": [np.int64] * 5,
        "mixed": [np.int32, np.int64, np.int32, np.int64, np.int32],
    }

    @pytest.mark.parametrize("backend", ["fast", "instrumented"])
    @pytest.mark.parametrize("axis", sorted(INDEX_AXIS))
    def test_index_axis_bit_identical_across_executors(self, axis, backend):
        mats = index_collection(self.INDEX_AXIS[axis])
        expect = resolve_index_dtype(mats)
        ref = run(mats, "serial", backend=backend)
        assert ref.matrix.indices.dtype == expect, axis
        assert ref.matrix.indptr.dtype == expect, axis
        for executor in PARALLEL_EXECUTORS:
            got = run(mats, executor, backend=backend)
            assert_bit_identical(ref.matrix, got.matrix, f"{axis}/{executor}")

    def test_axis_choices_agree_with_each_other(self):
        """Storing the same logical inputs at different widths must not
        change a single output bit (dtype included)."""
        base = index_collection(self.INDEX_AXIS["int64"])
        as32 = [A.with_index_dtype(np.int32) for A in base]
        r64 = run(base, "serial")
        r32 = run(as32, "serial")
        assert_bit_identical(r64.matrix, r32.matrix)

    @pytest.mark.parametrize(
        "method", ["hash", "sliding_hash", "spa", "heap", "2way_tree",
                   "scipy_tree"]
    )
    def test_methods_share_one_width(self, method):
        mats = index_collection(self.INDEX_AXIS["mixed"], seed=77)
        expect = resolve_index_dtype(mats)
        ref = run(mats, "serial", method=method)
        assert ref.matrix.indices.dtype == expect, method
        assert ref.matrix.indptr.dtype == expect, method
        for executor in PARALLEL_EXECUTORS:
            got = run(mats, executor, method=method)
            assert_bit_identical(ref.matrix, got.matrix, f"{method}/{executor}")

    def test_unsorted_inputs_conform(self):
        rng = np.random.default_rng(8)
        mats = []
        for A in index_collection(self.INDEX_AXIS["int32"], seed=9):
            indices = A.indices.copy()
            data = A.data.copy()
            for j in range(A.shape[1]):
                lo, hi = int(A.indptr[j]), int(A.indptr[j + 1])
                perm = rng.permutation(hi - lo)
                indices[lo:hi] = indices[lo:hi][perm]
                data[lo:hi] = data[lo:hi][perm]
            mats.append(
                CSCMatrix(A.shape, A.indptr.copy(), indices, data,
                          sorted=False, check=False)
            )
        assert mats[0].indices.dtype == np.int32
        ref = run(mats, "serial")
        assert ref.matrix.indices.dtype == resolve_index_dtype(mats)
        for executor in PARALLEL_EXECUTORS:
            assert_bit_identical(ref.matrix, run(mats, executor).matrix)


class TestOverride:
    def test_override_applies_to_every_method(self):
        mats = index_collection([np.int32] * 3, seed=5)
        for method in ("hash", "sliding_hash", "heap", "spa", "2way_tree",
                       "2way_incremental", "scipy_tree", "scipy_incremental"):
            res = spkadd(mats, method=method, index_dtype="int64")
            assert res.matrix.indices.dtype == np.int64, method
            assert res.matrix.indptr.dtype == np.int64, method

    def test_override_with_threads_bit_identical(self):
        mats = index_collection([np.int32] * 4, seed=6)
        ref = spkadd(mats, method="hash", index_dtype="int64")
        assert ref.matrix.indices.dtype == np.int64
        for executor in PARALLEL_EXECUTORS:
            got = spkadd(mats, method="hash", threads=3, executor=executor,
                         index_dtype="int64")
            assert_bit_identical(ref.matrix, got.matrix, executor)

    def test_streaming_override(self):
        mats = index_collection([np.int64] * 5, seed=7)
        got = spkadd_streaming(mats, batch_size=2, index_dtype="int64")
        assert got.indices.dtype == np.int64
        acc = StreamingAccumulator(batch_size=2, index_dtype="int64")
        for m in mats:
            acc.push(m)
        res = acc.result()
        assert res.indices.dtype == np.int64
        assert np.array_equal(res.indices, got.indices)
        assert np.array_equal(res.data, got.data)

    def test_streaming_default_resolves(self, monkeypatch):
        monkeypatch.delenv(INDEX_DTYPE_ENV_VAR, raising=False)
        mats = index_collection([np.int64] * 3, seed=11)
        got = spkadd_streaming(mats, batch_size=2)
        assert got.indices.dtype == np.int32  # small bounds resolve narrow

    def test_cli_index_dtype_flag(self, capsys):
        from repro.__main__ import main

        rc = main([
            "demo", "--m", "64", "--n", "8", "--k", "3", "--d", "2",
            "--index-dtype", "int64",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "index_dtype=int64" in out
        assert "idx=int64" in out


class TestOverflowPromotion:
    """The int32 -> int64 safe-widening guard, exercised two ways: at
    the real 2**31 boundary on the layout arithmetic (cheap — only the
    counts are large), and end-to-end through every executor with the
    module's int32 capacity lowered so promotion triggers without
    materializing 2**31 entries."""

    def test_layout_promotes_at_real_boundary(self):
        col_nnz = np.array([2**30, 2**30, 2**30, 2**30], dtype=np.int64)
        indptr, offsets = chunk_output_layout(
            col_nnz, [(0, 2), (2, 4)], index_dtype=np.int32
        )
        assert indptr.dtype == np.int64  # promoted, not wrapped
        assert int(indptr[-1]) == 2**32
        assert offsets == [(0, 2**31), (2**31, 2**32)]
        narrow, _ = chunk_output_layout(
            np.array([5, 5], dtype=np.int64), [(0, 2)], index_dtype=np.int32
        )
        assert narrow.dtype == np.int32

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_promotes_on_every_executor(self, executor, monkeypatch):
        mats = index_collection([np.int32] * 4, seed=13)
        total_in = sum(A.nnz for A in mats)
        ref = run(mats, executor, index_dtype="int32")
        # Lower the capacity below this call's bound: the same int32
        # request must now transparently promote.
        monkeypatch.setattr(fc, "INT32_INDEX_CAPACITY", total_in - 1)
        got = run(mats, executor, index_dtype="int32")
        assert got.matrix.indices.dtype == np.int64, executor
        assert got.matrix.indptr.dtype == np.int64, executor
        assert np.array_equal(got.matrix.indices, ref.matrix.indices)
        assert np.array_equal(got.matrix.indptr, ref.matrix.indptr)
        assert np.array_equal(got.matrix.data, ref.matrix.data)

    def test_shm_symbolic_sizing_promotes(self, monkeypatch):
        """The shm engine's preallocated output layout (symbolic
        sizing) must come out in the promoted width and still predict
        the exact per-column counts."""
        mats = index_collection([np.int32] * 4, seed=17)
        exact = exact_output_col_nnz(mats)
        monkeypatch.setattr(
            fc, "INT32_INDEX_CAPACITY", sum(A.nnz for A in mats) - 1
        )
        out = run(mats, "shm").matrix
        assert out.indptr.dtype == np.int64
        assert out.indices.dtype == np.int64
        assert np.array_equal(np.diff(out.indptr), exact)

    def test_assemble_widens_indptr(self, monkeypatch):
        from repro.core.blocks import assemble_from_block_outputs

        monkeypatch.setattr(fc, "INT32_INDEX_CAPACITY", 3)
        out = assemble_from_block_outputs(
            (10, 2),
            [(0, np.array([0, 0, 1, 1]), np.array([1, 2, 0, 3]),
              np.ones(4))],
            sorted=True,
            index_dtype=np.int32,
        )
        assert out.indptr.dtype == np.int64  # 4 entries > lowered capacity

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_concat_results_at_int32_layout_boundary(
        self, executor, monkeypatch
    ):
        """ISSUE-5 satellite regression: ``_concat_results`` stitches
        chunk ``indptr`` slices (rebased by a global offset) into the
        call-resolved ``indptr``.  Pin the capacity to *exactly* the
        call's bound, so the resolution keeps the narrowest width it
        possibly can and the largest pointer entries land right at the
        top of the layout — the assignment must cast through the
        resolved dtype, never wrap."""
        mats = index_collection([np.int32] * 4, seed=23)
        total_in = sum(A.nnz for A in mats)
        ref = run(mats, executor)
        monkeypatch.setattr(fc, "INT32_INDEX_CAPACITY", total_in)
        expect = resolve_index_dtype(mats)
        got = run(mats, executor)
        assert got.matrix.indptr.dtype == expect, executor
        assert got.matrix.indices.dtype == expect, executor
        assert int(got.matrix.indptr[-1]) == got.matrix.nnz
        assert np.array_equal(got.matrix.indptr, ref.matrix.indptr)
        assert np.array_equal(got.matrix.indices, ref.matrix.indices)
        assert np.array_equal(got.matrix.data, ref.matrix.data)
        # One past the boundary the same call must widen instead.
        monkeypatch.setattr(fc, "INT32_INDEX_CAPACITY", total_in - 1)
        wide = run(mats, executor)
        assert wide.matrix.indptr.dtype == np.int64, executor
        assert np.array_equal(wide.matrix.indptr, ref.matrix.indptr)
