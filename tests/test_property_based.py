"""Property-based tests (hypothesis) for core invariants.

Strategies build small random matrix collections; properties assert the
paper's algebraic invariants hold for *every* kernel:

* every SpKAdd method equals the scipy oracle;
* symbolic counts equal exact union sizes;
* nnz(B) <= sum nnz(A_i) (cf >= 1);
* hash accumulation is insertion-order independent;
* format conversions are lossless;
* sliding partitioning never changes the result.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.api import spkadd
from repro.core.hash_add import hash_symbolic
from repro.core.hashtable import hash_accumulate
from repro.core.sliding_hash import spkadd_sliding_hash
from repro.core.symbolic import exact_output_col_nnz
from repro.formats.convert import coo_to_csc, csc_to_coo, csc_to_csr, csr_to_csc
from repro.formats.csc import CSCMatrix
from repro.formats.ops import matrices_equal, sum_with_scipy

COMMON = dict(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def csc_matrix(draw, max_m=40, max_n=8, max_nnz=60):
    m = draw(st.integers(1, max_m))
    n = draw(st.integers(1, max_n))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(
        st.lists(st.integers(0, m - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz)
    )
    vals = draw(
        st.lists(
            st.floats(-100, 100, allow_nan=False, width=32),
            min_size=nnz, max_size=nnz,
        )
    )
    return CSCMatrix.from_arrays(
        (m, n), np.array(rows, dtype=np.int64),
        np.array(cols, dtype=np.int64), np.array(vals, dtype=np.float64),
    )


#: dtypes the value-pipeline fuzz draws from; ints exercise the exact
#: integer accumulators, float32 the narrow float path.
VALUE_DTYPES = (np.float64, np.float32, np.int64, np.int32)

#: index widths the index-pipeline fuzz stores inputs in; the emitted
#: width is bounds-resolved, so any mix must produce one output width.
INDEX_DTYPES = (np.int64, np.int32)


@st.composite
def matrix_collection(draw, max_k=6, dtype_axis=False, index_axis=False,
                      int_values=False):
    m = draw(st.integers(2, 40))
    n = draw(st.integers(1, 6))
    k = draw(st.integers(1, max_k))
    mats = []
    for _ in range(k):
        nnz = draw(st.integers(0, 40))
        rows = np.asarray(
            draw(st.lists(st.integers(0, m - 1), min_size=nnz, max_size=nnz)),
            dtype=np.int64,
        )
        cols = np.asarray(
            draw(st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz)),
            dtype=np.int64,
        )
        if int_values:
            # Integer values sum exactly, so oracle comparisons can be
            # equality rather than tolerance.
            vals = np.asarray(
                draw(st.lists(st.integers(-20, 20), min_size=nnz,
                              max_size=nnz)),
                dtype=np.int64,
            )
        else:
            vals = np.asarray(
                draw(
                    st.lists(
                        st.floats(-10, 10, allow_nan=False, width=32),
                        min_size=nnz, max_size=nnz,
                    )
                ),
                dtype=np.float64,
            )
        if dtype_axis:
            # Per-matrix dtype: mixed collections must promote the same
            # way on every backend and executor.
            vals = vals.astype(draw(st.sampled_from(VALUE_DTYPES)))
        if index_axis:
            idt = draw(st.sampled_from(INDEX_DTYPES))
            rows = rows.astype(idt)
            cols = cols.astype(idt)
        mats.append(CSCMatrix.from_arrays((m, n), rows, cols, vals))
    return mats


def dense_sum(mats):
    return sum(m.to_dense() for m in mats)


@settings(**COMMON)
@given(matrix_collection())
def test_every_method_matches_oracle(mats):
    # Dense-value comparison: our kernels keep explicit zeros produced
    # by cancellation (structural nnz semantics), scipy prunes them.
    expect = dense_sum(mats)
    for method in ("2way_tree", "heap", "spa", "hash", "sliding_hash"):
        got = spkadd(mats, method=method).matrix
        assert np.allclose(got.to_dense(), expect, atol=1e-6), method


@settings(**COMMON)
@given(matrix_collection())
def test_output_nnz_bounded_by_input(mats):
    total_in = sum(m.nnz for m in mats)
    out = spkadd(mats, method="hash").matrix
    assert out.nnz <= total_in


@settings(**COMMON)
@given(matrix_collection())
def test_symbolic_equals_exact(mats):
    assert np.array_equal(
        hash_symbolic(mats), exact_output_col_nnz(mats)
    )


@settings(**COMMON)
@given(matrix_collection())
def test_sliding_partitioning_invariant(mats):
    """Any partition count gives the identical sum."""
    expect = dense_sum(mats)
    for entries in (4, 64):
        got = spkadd_sliding_hash(mats, table_entries=entries)
        assert np.allclose(got.to_dense(), expect, atol=1e-6)


@settings(**COMMON)
@given(
    st.lists(
        st.tuples(st.integers(0, 50), st.floats(-5, 5, allow_nan=False)),
        min_size=0, max_size=80,
    ),
    st.randoms(),
)
def test_hash_accumulate_order_independent(pairs, rnd):
    """Hash accumulation is a commutative reduction: any insertion
    order yields the same key->sum mapping."""
    keys = np.array([p[0] for p in pairs], dtype=np.int64)
    vals = np.array([p[1] for p in pairs], dtype=np.float64)
    res1 = hash_accumulate(keys, vals, 128)
    perm = np.array(rnd.sample(range(len(pairs)), len(pairs)), dtype=np.int64)
    res2 = hash_accumulate(keys[perm], vals[perm], 128)
    d1 = dict(zip(res1.keys.tolist(), res1.vals.tolist()))
    d2 = dict(zip(res2.keys.tolist(), res2.vals.tolist()))
    assert set(d1) == set(d2)
    for k in d1:
        assert abs(d1[k] - d2[k]) < 1e-9


@settings(**COMMON)
@given(csc_matrix())
def test_format_roundtrips(mat):
    assert matrices_equal(coo_to_csc(csc_to_coo(mat)), mat)
    assert matrices_equal(csr_to_csc(csc_to_csr(mat)), mat)


@settings(**COMMON)
@given(csc_matrix())
def test_column_split_concat_identity(mat):
    n = mat.shape[1]
    if n < 2:
        return
    cut = n // 2
    left = mat.select_columns(0, cut)
    right = mat.select_columns(cut, n)
    rebuilt = np.concatenate([left.to_dense(), right.to_dense()], axis=1)
    assert np.array_equal(rebuilt, mat.to_dense())


@settings(**COMMON)
@given(matrix_collection(), st.integers(1, 4))
def test_parallel_equals_sequential(mats, threads):
    seq = spkadd(mats, method="hash").matrix
    par = spkadd(mats, method="hash", threads=threads).matrix
    assert matrices_equal(seq, par)


@settings(**COMMON)
@given(matrix_collection(), st.integers(1, 5))
def test_streaming_batch_size_invariant(mats, batch):
    from repro.core.streaming import spkadd_streaming

    expect = dense_sum(mats)
    got = spkadd_streaming(mats, batch_size=batch)
    assert np.allclose(got.to_dense(), expect, atol=1e-6)


# ---------------------------------------------------------------------------
# Shared-memory executor: fuzz ragged chunk boundaries.  The strategies
# deliberately generate empty columns, all-empty addends, k=1, and chunk
# counts far above the column count; the shm path must stay bitwise
# identical to the thread path through all of it.
# ---------------------------------------------------------------------------

SHM_COMMON = dict(
    deadline=None,
    max_examples=10,
    suppress_health_check=[HealthCheck.too_slow],
)


def assert_bitwise_equal(a, b):
    assert a.shape == b.shape
    assert a.data.dtype == b.data.dtype
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.data.view(np.uint8), b.data.view(np.uint8))


@settings(**SHM_COMMON)
@given(matrix_collection(), st.integers(2, 5), st.integers(1, 3))
def test_shm_ragged_chunks_match_thread(mats, threads, chunks_per_thread):
    ref = spkadd(
        mats, method="hash", threads=threads, executor="thread",
        chunks_per_thread=chunks_per_thread,
    )
    got = spkadd(
        mats, method="hash", threads=threads, executor="shm",
        chunks_per_thread=chunks_per_thread,
    )
    assert_bitwise_equal(ref.matrix, got.matrix)
    assert ref.stats.output_nnz == got.stats.output_nnz


@settings(**SHM_COMMON)
@given(csc_matrix(max_m=30, max_n=6, max_nnz=40), st.integers(1, 4),
       st.integers(2, 4))
def test_shm_cancellation_and_duplicates(mat, copies, threads):
    """Duplicate-heavy collections with exact cancellation: addends
    alternate +A, -A so every partial sum cancels exactly, leaving all
    explicit zeros — which SpKAdd keeps as structural nonzeros,
    identically on every executor."""
    mats = [mat, mat.scaled(-1.0)] * copies
    ref = spkadd(mats, method="hash", threads=threads, executor="thread")
    got = spkadd(mats, method="hash", threads=threads, executor="shm")
    assert_bitwise_equal(ref.matrix, got.matrix)
    assert got.matrix.nnz == mat.nnz  # cancelled entries stay structural
    if got.matrix.nnz:
        assert np.all(got.matrix.data == 0.0)


@settings(**SHM_COMMON)
@given(matrix_collection(max_k=4, dtype_axis=True), st.integers(2, 4))
def test_shm_dtype_axis_bitwise_and_resolved(mats, threads):
    """Fuzz the value-dtype axis: per-matrix dtypes drawn independently
    (mixed collections included).  Every executor must produce the
    resolved dtype and bitwise-identical values."""
    from repro.kernels import resolve_value_dtype

    expect = resolve_value_dtype(mats)
    ref = spkadd(mats, method="hash").matrix
    assert ref.data.dtype == expect
    for executor in ("thread", "process", "shm"):
        got = spkadd(
            mats, method="hash", threads=threads, executor=executor
        ).matrix
        assert got.data.dtype == expect
        assert_bitwise_equal(ref, got)


@settings(**COMMON)
@given(matrix_collection(max_k=4, index_axis=True, int_values=True),
       st.randoms())
def test_index_dtype_axis_resolved_and_exact(mats, rnd):
    """Fuzz the index-dtype axis: inputs stored at random i32/i64
    widths, sorted or unsorted.  The output's indices/indptr must carry
    the call-resolved width and the sum must equal the scipy baseline
    exactly (integer values — no tolerance)."""
    from repro.kernels import resolve_index_dtype

    if rnd.random() < 0.5:
        # Shuffle entries within columns: the hash kernel tolerates
        # unsorted inputs and the width contract must too.
        shuffled = []
        for A in mats:
            indices = A.indices.copy()
            data = A.data.copy()
            for j in range(A.shape[1]):
                lo, hi = int(A.indptr[j]), int(A.indptr[j + 1])
                perm = rnd.sample(range(hi - lo), hi - lo)
                indices[lo:hi] = indices[lo:hi][perm]
                data[lo:hi] = data[lo:hi][perm]
            shuffled.append(
                CSCMatrix(A.shape, A.indptr.copy(), indices, data,
                          sorted=False, check=False)
            )
        mats = shuffled
    expect = resolve_index_dtype(mats)
    got = spkadd(mats, method="hash").matrix
    assert got.indices.dtype == expect
    assert got.indptr.dtype == expect
    # scipy prunes summed cancellations; compare densely (exact for
    # integer values) instead of structurally.
    scipy_dense = sum_with_scipy(mats).to_dense()
    assert np.array_equal(got.to_dense(), scipy_dense)


@settings(**SHM_COMMON)
@given(matrix_collection(max_k=3, index_axis=True), st.integers(2, 4))
def test_shm_index_axis_bitwise(mats, threads):
    """Mixed-width inputs through every executor: one resolved output
    width, bit-identical arrays."""
    from repro.kernels import resolve_index_dtype

    expect = resolve_index_dtype(mats)
    ref = spkadd(mats, method="hash").matrix
    assert ref.indices.dtype == expect
    for executor in ("thread", "process", "shm"):
        got = spkadd(
            mats, method="hash", threads=threads, executor=executor
        ).matrix
        assert got.indices.dtype == expect
        assert got.indptr.dtype == ref.indptr.dtype
        assert_bitwise_equal(ref, got)


@settings(**SHM_COMMON)
@given(matrix_collection(max_k=3), st.integers(2, 4))
def test_shm_all_zero_and_empty_chunks(mats, threads):
    """Pad the collection with all-zero addends (empty column blocks in
    every chunk) and compare against the serial oracle."""
    shape = mats[0].shape
    from repro.formats.csc import CSCMatrix as C

    padded = [C.zeros(shape)] + mats + [C.zeros(shape)]
    got = spkadd(padded, method="hash", threads=threads, executor="shm")
    ref = spkadd(padded, method="hash")
    assert_bitwise_equal(ref.matrix, got.matrix)
