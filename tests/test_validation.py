"""Request-validation contracts (PR 7's satellite bugfixes).

Three silent-acceptance bugs, now loud:

* ``threads=0`` / negative thread counts used to fall through to a
  silent serial run — ``spkadd`` and ``parallel_spkadd`` now reject
  them (and ``chunks_per_thread < 1``) with a clear ``ValueError``,
  and the CLI rejects them at the parser;
* policy errors sourced from the environment now *name their source*
  (``REPRO_MAX_RETRIES=-3`` says so), and the ``deadline=`` kwarg path
  names the argument;
* every resilience env knob is validated eagerly in
  ``resolve_policy`` — ``REPRO_BOOT_TIMEOUT=abc`` fails the thread run
  that would never have read it, instead of the first unlucky shm run.
"""

import pytest

import repro
from repro.parallel.executor import parallel_spkadd
from repro.parallel.resilience import (
    BOOT_TIMEOUT_ENV_VAR,
    DEADLINE_ENV_VAR,
    FALLBACK_ENV_VAR,
    MAX_RETRIES_ENV_VAR,
    resolve_policy,
    validate_resilience_env,
)
from tests.conftest import random_collection


@pytest.fixture()
def mats():
    return random_collection(seed=7, m=128, n=16, k=4)


# ---------------------------------------------------------------------------
# threads / chunks_per_thread validation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("bad", [0, -1, -2])
def test_spkadd_rejects_nonpositive_threads(mats, bad):
    with pytest.raises(ValueError, match=f"threads must be >= 1, got {bad}"):
        repro.spkadd(mats, threads=bad)


@pytest.mark.parametrize("executor", ["thread", "serial"])
@pytest.mark.parametrize("bad", [0, -2])
def test_parallel_spkadd_rejects_nonpositive_threads(mats, executor, bad):
    with pytest.raises(ValueError, match="threads must be >= 1"):
        parallel_spkadd(mats, threads=bad, executor=executor)


@pytest.mark.parametrize("bad", [0, -3])
def test_parallel_spkadd_rejects_nonpositive_chunks(mats, bad):
    with pytest.raises(
        ValueError, match=f"chunks_per_thread must be >= 1, got {bad}"
    ):
        parallel_spkadd(mats, threads=2, chunks_per_thread=bad)


def test_threads_one_still_runs(mats):
    res = repro.spkadd(mats, threads=1)
    assert res.matrix.nnz >= 0


def test_cli_rejects_nonpositive_threads(capsys):
    from repro.__main__ import build_parser

    parser = build_parser()
    with pytest.raises(SystemExit) as exc:
        parser.parse_args(["demo", "--threads", "0"])
    assert exc.value.code == 2
    assert "must be >= 1, got 0" in capsys.readouterr().err


def test_cli_rejects_non_integer_threads(capsys):
    from repro.__main__ import build_parser

    with pytest.raises(SystemExit):
        build_parser().parse_args(["demo", "--threads", "two"])
    assert "must be an integer >= 1" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# env-sourced policy errors name their source
# ---------------------------------------------------------------------------


def test_env_max_retries_error_names_env_var(monkeypatch):
    monkeypatch.setenv(MAX_RETRIES_ENV_VAR, "-3")
    with pytest.raises(ValueError) as exc:
        resolve_policy()
    msg = str(exc.value)
    assert "max_retries must be >= 0, got -3" in msg
    assert MAX_RETRIES_ENV_VAR in msg


def test_env_deadline_error_names_env_var(monkeypatch):
    monkeypatch.setenv(DEADLINE_ENV_VAR, "-5")
    with pytest.raises(ValueError) as exc:
        resolve_policy()
    msg = str(exc.value)
    assert "deadline" in msg and "positive" in msg
    assert DEADLINE_ENV_VAR in msg


def test_deadline_kwarg_error_names_argument():
    with pytest.raises(ValueError) as exc:
        resolve_policy(deadline=-2.5)
    msg = str(exc.value)
    assert "deadline= argument" in msg
    assert DEADLINE_ENV_VAR not in msg


def test_spkadd_surfaces_env_source_in_message(mats, monkeypatch):
    monkeypatch.setenv(MAX_RETRIES_ENV_VAR, "-1")
    with pytest.raises(ValueError, match=MAX_RETRIES_ENV_VAR):
        repro.spkadd(mats, threads=2, executor="thread")


# ---------------------------------------------------------------------------
# eager validation of every resilience knob
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "var,value",
    [
        (MAX_RETRIES_ENV_VAR, "abc"),
        (MAX_RETRIES_ENV_VAR, "-2"),
        (DEADLINE_ENV_VAR, "soon"),
        (DEADLINE_ENV_VAR, "0"),
        (BOOT_TIMEOUT_ENV_VAR, "abc"),
        (BOOT_TIMEOUT_ENV_VAR, "-1"),
        (FALLBACK_ENV_VAR, "thread,warp9"),
    ],
)
def test_resolve_policy_validates_every_env_knob(monkeypatch, var, value):
    monkeypatch.setenv(var, value)
    with pytest.raises(ValueError, match=var):
        resolve_policy()


def test_boot_timeout_checked_even_on_thread_runs(mats, monkeypatch):
    """The regression: a thread/serial run never *reads* the boot
    timeout, but a garbage value must still fail it eagerly."""
    monkeypatch.setenv(BOOT_TIMEOUT_ENV_VAR, "abc")
    with pytest.raises(ValueError, match=BOOT_TIMEOUT_ENV_VAR):
        repro.spkadd(mats, threads=2, executor="thread")


def test_validate_resilience_env_passes_on_good_values(monkeypatch):
    monkeypatch.setenv(MAX_RETRIES_ENV_VAR, "3")
    monkeypatch.setenv(DEADLINE_ENV_VAR, "10.5")
    monkeypatch.setenv(BOOT_TIMEOUT_ENV_VAR, "30")
    monkeypatch.setenv(FALLBACK_ENV_VAR, "thread,serial")
    validate_resilience_env()
    policy = resolve_policy()
    assert policy.max_retries == 3
    assert policy.deadline_s == 10.5


def test_explicit_policy_skips_env_resolution_but_not_validation(
    monkeypatch, mats
):
    """An explicit policy wins over the env for its *values*, but a
    corrupt knob still fails fast: silent misconfiguration is the bug
    class this PR removes."""
    from repro.parallel.resilience import ResiliencePolicy

    monkeypatch.setenv(BOOT_TIMEOUT_ENV_VAR, "nope")
    with pytest.raises(ValueError, match=BOOT_TIMEOUT_ENV_VAR):
        repro.spkadd(
            mats, threads=2, executor="thread",
            resilience=ResiliencePolicy(max_retries=0, fallback=()),
        )
