"""Tests for the distributed substrate: grids, local SpGEMM, SUMMA."""

import numpy as np
import pytest

from repro.distributed.comm import CommLog
from repro.distributed.grid import BlockDistribution, ProcessGrid, block_bounds
from repro.distributed.spgemm_local import LocalSpGEMMStats, local_spgemm
from repro.distributed.summa import ExecutionPlan, summa_spgemm
from repro.distributed.timing import spgemm_phase_times
from repro.formats.convert import from_scipy, to_scipy
from repro.formats.csc import CSCMatrix
from repro.formats.ops import matrices_equal
from repro.generators import erdos_renyi, rmat
from repro.machine.spec import CORI_KNL


def spgemm_oracle(A, B):
    return from_scipy((to_scipy(A) @ to_scipy(B)).tocsc(), "csc")


def assert_bit_identical(a, b, label=""):
    """The promotion contract: same dtypes, same index arrays, values
    compared bitwise (catches sign-of-zero / last-ulp drift that
    allclose-style checks would wave through)."""
    assert a.shape == b.shape, label
    assert a.indptr.dtype == b.indptr.dtype, label
    assert a.indices.dtype == b.indices.dtype, label
    assert a.data.dtype == b.data.dtype, label
    assert np.array_equal(a.indptr, b.indptr), label
    assert np.array_equal(a.indices, b.indices), label
    assert np.array_equal(a.data.view(np.uint8), b.data.view(np.uint8)), label


class TestGrid:
    def test_rank_coords_roundtrip(self):
        g = ProcessGrid(3, 5)
        for i in range(3):
            for j in range(5):
                assert g.coords(g.rank(i, j)) == (i, j)

    def test_bounds_checks(self):
        g = ProcessGrid(2, 2)
        with pytest.raises(IndexError):
            g.rank(2, 0)
        with pytest.raises(IndexError):
            g.coords(4)

    def test_block_bounds(self):
        assert list(block_bounds(10, 3)) == [0, 3, 6, 10]


class TestBlockDistribution:
    def test_roundtrip(self):
        mat = erdos_renyi(100, 60, d=5, seed=0)
        for br, bc in [(1, 1), (2, 3), (4, 4), (7, 2)]:
            dist = BlockDistribution.distribute(mat, br, bc)
            assert matrices_equal(dist.reassemble(), mat)

    def test_block_shapes(self):
        mat = erdos_renyi(100, 60, d=5, seed=0)
        dist = BlockDistribution.distribute(mat, 2, 3)
        assert dist.block(0, 0).shape == (50, 20)
        assert dist.block(1, 2).shape == (50, 20)

    def test_nnz_conserved(self):
        mat = erdos_renyi(64, 64, d=4, seed=1)
        dist = BlockDistribution.distribute(mat, 3, 3)
        total = sum(
            dist.block(i, j).nnz for i in range(3) for j in range(3)
        )
        assert total == mat.nnz


class TestLocalSpGEMM:
    @pytest.mark.parametrize("acc", ["hash", "sort"])
    @pytest.mark.parametrize("sorted_output", [True, False])
    def test_matches_scipy(self, acc, sorted_output):
        A = rmat(128, 128, d=6, seed=1)
        B = rmat(128, 128, d=6, seed=2)
        C = local_spgemm(A, B, accumulator=acc, sorted_output=sorted_output)
        got = C.copy()
        got.sort_indices()
        assert matrices_equal(got, spgemm_oracle(A, B), atol=1e-9)

    def test_rectangular(self):
        A = erdos_renyi(64, 32, d=4, seed=3)
        B = erdos_renyi(32, 16, d=4, seed=4)
        C = local_spgemm(A, B)
        got = C.copy()
        got.sort_indices()
        assert matrices_equal(got, spgemm_oracle(A, B), atol=1e-9)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            local_spgemm(CSCMatrix.zeros((4, 4)), CSCMatrix.zeros((5, 4)))

    def test_empty_result(self):
        C = local_spgemm(CSCMatrix.zeros((4, 3)), CSCMatrix.zeros((3, 2)))
        assert C.nnz == 0 and C.shape == (4, 2)

    def test_flop_count(self):
        A = erdos_renyi(64, 32, d=4, seed=5)
        B = erdos_renyi(32, 16, d=4, seed=6)
        st = LocalSpGEMMStats()
        local_spgemm(A, B, stats=st)
        expected = int(np.sum(A.col_nnz()[B.indices]))
        assert st.flops == expected

    def test_sort_charged_only_when_sorted(self):
        A = rmat(64, 64, d=4, seed=7)
        st_sorted, st_unsorted = LocalSpGEMMStats(), LocalSpGEMMStats()
        local_spgemm(A, A, sorted_output=True, stats=st_sorted)
        local_spgemm(A, A, sorted_output=False, stats=st_unsorted)
        assert st_sorted.sort_entries > 0
        assert st_unsorted.sort_entries == 0

    def test_unknown_accumulator(self):
        A = CSCMatrix.zeros((4, 4))
        with pytest.raises(ValueError):
            local_spgemm(A, A, accumulator="tree")


class TestSumma:
    @pytest.mark.parametrize("method,sorted_im", [
        ("hash", None), ("hash", True), ("heap", None), ("spa", None),
    ])
    def test_matches_direct_spgemm(self, method, sorted_im):
        A = rmat(128, 128, d=5, seed=8)
        B = rmat(128, 128, d=5, seed=9)
        res = summa_spgemm(
            A, B, grid=ProcessGrid(2, 2), stages=4,
            spkadd_method=method, sorted_intermediates=sorted_im,
        )
        got = res.assemble()
        got.sort_indices()
        assert matrices_equal(got, spgemm_oracle(A, B), atol=1e-9)

    def test_heap_requires_sorted(self):
        A = rmat(64, 64, d=4, seed=10)
        with pytest.raises(ValueError, match="sorted"):
            summa_spgemm(
                A, A, grid=ProcessGrid(2, 2),
                spkadd_method="heap", sorted_intermediates=False,
            )

    def test_stage_count_is_spkadd_k(self):
        A = rmat(64, 64, d=4, seed=11)
        res = summa_spgemm(A, A, grid=ProcessGrid(2, 2), stages=6)
        assert res.stages == 6
        assert all(r.spkadd_stats.k == 6 for r in res.ranks)

    def test_comm_log_counts_broadcasts(self):
        A = rmat(64, 64, d=4, seed=12)
        log = CommLog()
        summa_spgemm(A, A, grid=ProcessGrid(2, 2), stages=4, comm=log)
        # per stage: 2 row bcasts (A) + 2 col bcasts (B)
        assert len(log.events) == 4 * 4
        assert log.total_bytes > 0
        assert log.estimated_seconds > 0

    def test_unsorted_multiply_cheaper(self):
        A = rmat(128, 128, d=6, seed=13)
        r_sorted = summa_spgemm(
            A, A, grid=ProcessGrid(2, 2), stages=4,
            spkadd_method="hash", sorted_intermediates=True,
        )
        r_unsorted = summa_spgemm(
            A, A, grid=ProcessGrid(2, 2), stages=4,
            spkadd_method="hash", sorted_intermediates=False,
        )
        t_s = spgemm_phase_times(r_sorted, CORI_KNL)
        t_u = spgemm_phase_times(r_unsorted, CORI_KNL)
        assert t_u.local_multiply < t_s.local_multiply
        # results identical either way
        a = r_sorted.assemble(); a.sort_indices()
        b = r_unsorted.assemble(); b.sort_indices()
        assert matrices_equal(a, b, atol=1e-9)

    def test_phase_totals(self):
        A = rmat(64, 64, d=4, seed=14)
        res = summa_spgemm(A, A, grid=ProcessGrid(2, 2), stages=4)
        totals = res.phase_totals()
        assert totals["flops_total"] > 0
        assert totals["spkadd_ops_total"] > 0


def _operands(value_dtype):
    """The conformance workload: a skewed square times its transpose-ish
    partner, cast to the requested value dtype."""
    A = rmat(128, 128, d=5, seed=31)
    B = rmat(128, 128, d=5, seed=32)
    if value_dtype == np.int64:
        # Exact integer payloads: bit-identity must hold trivially, and
        # the promoted path must keep the resolved int64 accumulation.
        cast = lambda M: CSCMatrix(
            M.shape, M.indptr, M.indices,
            np.rint(M.data * 8).astype(np.int64), sorted=M.sorted, check=False,
        )
    else:
        cast = lambda M: CSCMatrix(
            M.shape, M.indptr, M.indices,
            M.data.astype(value_dtype), sorted=M.sorted, check=False,
        )
    return cast(A), cast(B)


class TestPromotedConformance:
    """The promoted SUMMA path is *bit-identical* to the serial paper
    reference — same indptr/indices bytes, same value bytes — across
    kernel backends, merge executors, value dtypes, and intermediate
    sortedness.  This is the contract that lets production runs use the
    fast/shm stack while the figures stay pinned to the paper plan."""

    GRID = (2, 2)
    STAGES = 6

    def _reference(self, value_dtype):
        A, B = _operands(value_dtype)
        res = summa_spgemm(
            A, B, grid=ProcessGrid(*self.GRID), stages=self.STAGES
        )
        return res.assemble()

    @pytest.mark.parametrize("backend", ["fast", "instrumented"])
    @pytest.mark.parametrize("executor", ["serial", "thread", "shm"])
    @pytest.mark.parametrize(
        "value_dtype", [np.float32, np.float64, np.int64],
        ids=["f32", "f64", "i64"],
    )
    @pytest.mark.parametrize("sorted_im", [True, False],
                             ids=["sorted", "unsorted"])
    def test_bit_identical_to_serial_reference(
        self, backend, executor, value_dtype, sorted_im
    ):
        A, B = _operands(value_dtype)
        plan = ExecutionPlan(
            backend=backend, executor=executor,
            threads=1 if executor == "serial" else 2,
            rank_parallelism=2, overlap=True,
        )
        res = summa_spgemm(
            A, B, grid=ProcessGrid(*self.GRID), stages=self.STAGES,
            plan=plan, sorted_intermediates=sorted_im,
        )
        assert res.plan is plan
        assert_bit_identical(
            res.assemble(), self._reference(value_dtype),
            f"{backend}/{executor}/{np.dtype(value_dtype)}/"
            f"{'sorted' if sorted_im else 'unsorted'}",
        )

    def test_loose_kwargs_build_promoted_plan(self):
        A, B = _operands(np.float64)
        res = summa_spgemm(
            A, B, grid=ProcessGrid(*self.GRID), stages=self.STAGES,
            backend="fast", executor="thread",
        )
        assert res.plan.threads > 1 and res.plan.overlap
        assert_bit_identical(
            res.assemble(), self._reference(np.float64), "loose kwargs"
        )

    def test_paper_plan_ignores_backend_env(self, monkeypatch):
        # Figure runs pin backend="instrumented" in the plan, so the
        # env knob cannot silently swap the engine and zero the stats.
        monkeypatch.setenv("REPRO_BACKEND", "fast")
        A, B = _operands(np.float64)
        res = summa_spgemm(
            A, B, grid=ProcessGrid(*self.GRID), stages=self.STAGES
        )
        assert all(r.multiply.hash_ops > 0 for r in res.ranks)
        assert all(r.spkadd_stats.ops > 0 for r in res.ranks)

    def test_deadline_exceeded_raises(self):
        from repro.parallel.resilience import DeadlineExceeded

        A, B = _operands(np.float64)
        with pytest.raises(DeadlineExceeded):
            summa_spgemm(
                A, B, grid=ProcessGrid(*self.GRID), stages=self.STAGES,
                plan=ExecutionPlan(deadline=1e-9),
            )


class TestPromotedChaos:
    def test_worker_kill_mid_merge_recovers_bit_identically(self):
        # A worker killed on its first merge chunk must be retried by
        # the resilience layer and the run must still produce the exact
        # serial-reference bytes.
        from repro.parallel import faults

        A, B = _operands(np.float64)
        ref = summa_spgemm(
            A, B, grid=ProcessGrid(2, 2), stages=6
        ).assemble()
        with faults.inject(kill_chunk=0):
            res = summa_spgemm(
                A, B, grid=ProcessGrid(2, 2), stages=6,
                plan=ExecutionPlan.production(
                    threads=2, rank_parallelism=2
                ),
                sorted_intermediates=False,
            )
        assert_bit_identical(res.assemble(), ref, "chaos recovery")


class TestValidation:
    def test_grid_rejects_nonpositive_extents(self):
        with pytest.raises(ValueError, match="rows"):
            ProcessGrid(0, 2)
        with pytest.raises(ValueError, match="cols"):
            ProcessGrid(2, -1)

    def test_stages_validated(self):
        A = rmat(64, 64, d=4, seed=15)
        with pytest.raises(ValueError, match="stages"):
            summa_spgemm(A, A, grid=ProcessGrid(2, 2), stages=0)
        with pytest.raises(ValueError, match="stages"):
            summa_spgemm(A, A, grid=ProcessGrid(2, 2), stages=65)

    def test_plan_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="threads"):
            ExecutionPlan(threads=0)
        with pytest.raises(ValueError, match="rank_parallelism"):
            ExecutionPlan(rank_parallelism=-1)
        with pytest.raises(ValueError, match="executor"):
            ExecutionPlan(executor="bogus")
        with pytest.raises(ValueError, match="backend"):
            ExecutionPlan(backend="bogus")

    def test_plan_and_loose_kwargs_conflict(self):
        A = rmat(64, 64, d=4, seed=16)
        with pytest.raises(ValueError, match="plan"):
            summa_spgemm(
                A, A, grid=ProcessGrid(2, 2),
                plan=ExecutionPlan.paper(), backend="fast",
            )


class TestCommDtypeAccounting:
    def test_narrow_dtypes_halve_broadcast_volume(self):
        # The comm log accounts blocks at their *actual* dtype widths:
        # the same sparsity pattern in float32 values moves fewer bytes
        # than in float64, and the events record the itemsizes.
        A64 = rmat(128, 128, d=5, seed=17)
        A32 = CSCMatrix(
            A64.shape, A64.indptr, A64.indices,
            A64.data.astype(np.float32), sorted=A64.sorted, check=False,
        )
        logs = {}
        for name, A in (("f64", A64), ("f32", A32)):
            log = CommLog()
            summa_spgemm(A, A, grid=ProcessGrid(2, 2), stages=4, comm=log)
            logs[name] = log
        assert logs["f32"].total_bytes < logs["f64"].total_bytes
        ev32 = logs["f32"].events[0]
        assert ev32.value_itemsize == 4
        assert ev32.index_itemsize in (4, 8)
        assert all(e.entries >= 0 for e in logs["f32"].events)
        # identical sparsity => identical entry counts, byte delta is
        # exactly the value-width delta (indices are int32 both ways).
        for e64, e32 in zip(logs["f64"].events, logs["f32"].events):
            assert e64.entries == e32.entries
            assert e64.bytes - e32.bytes == 4 * e64.entries
