"""Tests for the distributed substrate: grids, local SpGEMM, SUMMA."""

import numpy as np
import pytest

from repro.distributed.comm import CommLog
from repro.distributed.grid import BlockDistribution, ProcessGrid, block_bounds
from repro.distributed.spgemm_local import LocalSpGEMMStats, local_spgemm
from repro.distributed.summa import summa_spgemm
from repro.distributed.timing import spgemm_phase_times
from repro.formats.convert import from_scipy, to_scipy
from repro.formats.csc import CSCMatrix
from repro.formats.ops import matrices_equal
from repro.generators import erdos_renyi, rmat
from repro.machine.spec import CORI_KNL


def spgemm_oracle(A, B):
    return from_scipy((to_scipy(A) @ to_scipy(B)).tocsc(), "csc")


class TestGrid:
    def test_rank_coords_roundtrip(self):
        g = ProcessGrid(3, 5)
        for i in range(3):
            for j in range(5):
                assert g.coords(g.rank(i, j)) == (i, j)

    def test_bounds_checks(self):
        g = ProcessGrid(2, 2)
        with pytest.raises(IndexError):
            g.rank(2, 0)
        with pytest.raises(IndexError):
            g.coords(4)

    def test_block_bounds(self):
        assert list(block_bounds(10, 3)) == [0, 3, 6, 10]


class TestBlockDistribution:
    def test_roundtrip(self):
        mat = erdos_renyi(100, 60, d=5, seed=0)
        for br, bc in [(1, 1), (2, 3), (4, 4), (7, 2)]:
            dist = BlockDistribution.distribute(mat, br, bc)
            assert matrices_equal(dist.reassemble(), mat)

    def test_block_shapes(self):
        mat = erdos_renyi(100, 60, d=5, seed=0)
        dist = BlockDistribution.distribute(mat, 2, 3)
        assert dist.block(0, 0).shape == (50, 20)
        assert dist.block(1, 2).shape == (50, 20)

    def test_nnz_conserved(self):
        mat = erdos_renyi(64, 64, d=4, seed=1)
        dist = BlockDistribution.distribute(mat, 3, 3)
        total = sum(
            dist.block(i, j).nnz for i in range(3) for j in range(3)
        )
        assert total == mat.nnz


class TestLocalSpGEMM:
    @pytest.mark.parametrize("acc", ["hash", "sort"])
    @pytest.mark.parametrize("sorted_output", [True, False])
    def test_matches_scipy(self, acc, sorted_output):
        A = rmat(128, 128, d=6, seed=1)
        B = rmat(128, 128, d=6, seed=2)
        C = local_spgemm(A, B, accumulator=acc, sorted_output=sorted_output)
        got = C.copy()
        got.sort_indices()
        assert matrices_equal(got, spgemm_oracle(A, B), atol=1e-9)

    def test_rectangular(self):
        A = erdos_renyi(64, 32, d=4, seed=3)
        B = erdos_renyi(32, 16, d=4, seed=4)
        C = local_spgemm(A, B)
        got = C.copy()
        got.sort_indices()
        assert matrices_equal(got, spgemm_oracle(A, B), atol=1e-9)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            local_spgemm(CSCMatrix.zeros((4, 4)), CSCMatrix.zeros((5, 4)))

    def test_empty_result(self):
        C = local_spgemm(CSCMatrix.zeros((4, 3)), CSCMatrix.zeros((3, 2)))
        assert C.nnz == 0 and C.shape == (4, 2)

    def test_flop_count(self):
        A = erdos_renyi(64, 32, d=4, seed=5)
        B = erdos_renyi(32, 16, d=4, seed=6)
        st = LocalSpGEMMStats()
        local_spgemm(A, B, stats=st)
        expected = int(np.sum(A.col_nnz()[B.indices]))
        assert st.flops == expected

    def test_sort_charged_only_when_sorted(self):
        A = rmat(64, 64, d=4, seed=7)
        st_sorted, st_unsorted = LocalSpGEMMStats(), LocalSpGEMMStats()
        local_spgemm(A, A, sorted_output=True, stats=st_sorted)
        local_spgemm(A, A, sorted_output=False, stats=st_unsorted)
        assert st_sorted.sort_entries > 0
        assert st_unsorted.sort_entries == 0

    def test_unknown_accumulator(self):
        A = CSCMatrix.zeros((4, 4))
        with pytest.raises(ValueError):
            local_spgemm(A, A, accumulator="tree")


class TestSumma:
    @pytest.mark.parametrize("method,sorted_im", [
        ("hash", None), ("hash", True), ("heap", None), ("spa", None),
    ])
    def test_matches_direct_spgemm(self, method, sorted_im):
        A = rmat(128, 128, d=5, seed=8)
        B = rmat(128, 128, d=5, seed=9)
        res = summa_spgemm(
            A, B, grid=ProcessGrid(2, 2), stages=4,
            spkadd_method=method, sorted_intermediates=sorted_im,
        )
        got = res.assemble()
        got.sort_indices()
        assert matrices_equal(got, spgemm_oracle(A, B), atol=1e-9)

    def test_heap_requires_sorted(self):
        A = rmat(64, 64, d=4, seed=10)
        with pytest.raises(ValueError, match="sorted"):
            summa_spgemm(
                A, A, grid=ProcessGrid(2, 2),
                spkadd_method="heap", sorted_intermediates=False,
            )

    def test_stage_count_is_spkadd_k(self):
        A = rmat(64, 64, d=4, seed=11)
        res = summa_spgemm(A, A, grid=ProcessGrid(2, 2), stages=6)
        assert res.stages == 6
        assert all(r.spkadd_stats.k == 6 for r in res.ranks)

    def test_comm_log_counts_broadcasts(self):
        A = rmat(64, 64, d=4, seed=12)
        log = CommLog()
        summa_spgemm(A, A, grid=ProcessGrid(2, 2), stages=4, comm=log)
        # per stage: 2 row bcasts (A) + 2 col bcasts (B)
        assert len(log.events) == 4 * 4
        assert log.total_bytes > 0
        assert log.estimated_seconds > 0

    def test_unsorted_multiply_cheaper(self):
        A = rmat(128, 128, d=6, seed=13)
        r_sorted = summa_spgemm(
            A, A, grid=ProcessGrid(2, 2), stages=4,
            spkadd_method="hash", sorted_intermediates=True,
        )
        r_unsorted = summa_spgemm(
            A, A, grid=ProcessGrid(2, 2), stages=4,
            spkadd_method="hash", sorted_intermediates=False,
        )
        t_s = spgemm_phase_times(r_sorted, CORI_KNL)
        t_u = spgemm_phase_times(r_unsorted, CORI_KNL)
        assert t_u.local_multiply < t_s.local_multiply
        # results identical either way
        a = r_sorted.assemble(); a.sort_indices()
        b = r_unsorted.assemble(); b.sort_indices()
        assert matrices_equal(a, b, atol=1e-9)

    def test_phase_totals(self):
        A = rmat(64, 64, d=4, seed=14)
        res = summa_spgemm(A, A, grid=ProcessGrid(2, 2), stages=4)
        totals = res.phase_totals()
        assert totals["flops_total"] > 0
        assert totals["spkadd_ops_total"] > 0
