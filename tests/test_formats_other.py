"""Tests for CSR, COO, conversions and structural ops."""

import numpy as np
import pytest

from repro.formats.coo import COOMatrix
from repro.formats.convert import (
    coo_to_csc,
    coo_to_csr,
    csc_to_coo,
    csc_to_csr,
    csr_to_coo,
    csr_to_csc,
    from_scipy,
    to_scipy,
    transpose_csc,
)
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.ops import (
    canonicalize,
    compression_factor,
    matrices_equal,
    sum_with_scipy,
)


def dense():
    rng = np.random.default_rng(3)
    d = rng.normal(size=(8, 5))
    d[rng.random((8, 5)) > 0.35] = 0.0
    return d


class TestCSR:
    def test_roundtrip(self):
        d = dense()
        assert np.array_equal(CSRMatrix.from_dense(d).to_dense(), d)

    def test_rows_major(self):
        mat = CSRMatrix.from_dense(dense())
        cols, vals = mat.row(2)
        assert np.array_equal(mat.to_dense()[2][cols], vals)

    def test_row_nnz(self):
        d = dense()
        mat = CSRMatrix.from_dense(d)
        assert np.array_equal(mat.row_nnz(), (d != 0).sum(axis=1))

    def test_duplicates_summed(self):
        mat = CSRMatrix.from_arrays((3, 3), [0, 0], [1, 1], [1.0, 4.0])
        assert mat.nnz == 1
        assert mat.to_dense()[0, 1] == 5.0

    def test_equality(self):
        a = CSRMatrix.from_dense(dense())
        b = CSRMatrix.from_dense(dense())
        assert a == b


class TestCOO:
    def test_parallel_array_check(self):
        with pytest.raises(ValueError):
            COOMatrix((3, 3), [0, 1], [0], [1.0])

    def test_range_check(self):
        with pytest.raises(ValueError):
            COOMatrix((2, 2), [3], [0], [1.0])

    def test_sum_duplicates(self):
        coo = COOMatrix((3, 3), [1, 1, 0], [2, 2, 0], [1.0, 2.0, 5.0])
        s = coo.sum_duplicates()
        assert s.nnz == 2
        assert s.to_dense()[1, 2] == 3.0

    def test_to_dense_accumulates(self):
        coo = COOMatrix((2, 2), [0, 0], [0, 0], [1.0, 1.0])
        assert coo.to_dense()[0, 0] == 2.0


class TestConversions:
    def test_all_roundtrips(self):
        d = dense()
        csc = CSCMatrix.from_dense(d)
        assert np.array_equal(coo_to_csc(csc_to_coo(csc)).to_dense(), d)
        csr = csc_to_csr(csc)
        assert np.array_equal(csr.to_dense(), d)
        assert np.array_equal(csr_to_csc(csr).to_dense(), d)
        assert np.array_equal(coo_to_csr(csr_to_coo(csr)).to_dense(), d)

    def test_transpose(self):
        d = dense()
        t = transpose_csc(CSCMatrix.from_dense(d))
        assert np.array_equal(t.to_dense(), d.T)

    def test_scipy_roundtrip_csc(self):
        d = dense()
        mat = CSCMatrix.from_dense(d)
        back = from_scipy(to_scipy(mat), "csc")
        assert matrices_equal(mat, back)

    def test_scipy_roundtrip_csr(self):
        d = dense()
        mat = CSRMatrix.from_dense(d)
        assert np.array_equal(from_scipy(to_scipy(mat), "csr").to_dense(), d)

    def test_scipy_coo(self):
        d = dense()
        coo = csc_to_coo(CSCMatrix.from_dense(d))
        assert np.array_equal(from_scipy(to_scipy(coo), "coo").to_dense(), d)

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError):
            from_scipy(to_scipy(CSCMatrix.zeros((2, 2))), "banana")


class TestOps:
    def test_matrices_equal_ignores_column_order_within_tolerance(self):
        d = dense()
        a = CSCMatrix.from_dense(d)
        b = a.copy()
        b.data = b.data + 1e-14
        assert matrices_equal(a, b)

    def test_matrices_equal_shape_mismatch(self):
        assert not matrices_equal(CSCMatrix.zeros((2, 2)), CSCMatrix.zeros((2, 3)))

    def test_matrices_equal_structural(self):
        a = CSCMatrix.from_arrays((3, 1), [0, 1], [0, 0], [1.0, 2.0])
        b = CSCMatrix.from_arrays((3, 1), [0, 1], [0, 0], [9.0, 9.0])
        assert matrices_equal(a, b, structural=True)
        assert not matrices_equal(a, b)

    def test_sum_with_scipy_matches_dense(self):
        rng = np.random.default_rng(0)
        mats = [
            CSCMatrix.from_arrays(
                (10, 4), rng.integers(0, 10, 20), rng.integers(0, 4, 20),
                rng.normal(size=20),
            )
            for _ in range(5)
        ]
        total = sum_with_scipy(mats)
        expect = sum(m.to_dense() for m in mats)
        assert np.allclose(total.to_dense(), expect)

    def test_canonicalize_sorts(self):
        mat = CSCMatrix(
            (4, 1), np.array([0, 2]),
            np.array([2, 0], dtype=np.int64), np.array([1.0, 2.0]),
            sorted=False,
        )
        assert canonicalize(mat).sorted

    def test_compression_factor(self):
        assert compression_factor(100, 50) == 2.0
        assert compression_factor(0, 0) == 1.0
        assert compression_factor(10, 0) == float("inf")
