"""Tests for the machine model: specs, caches, cost model, tracer."""

import numpy as np
import pytest

from repro.core.stats import KernelStats
from repro.machine.cache import (
    LRUCache,
    analytic_miss_fraction,
    direct_mapped_misses,
    expected_cold_misses,
)
from repro.machine.costmodel import (
    CostModel,
    SimulatedTime,
    algorithm_family,
)
from repro.machine.spec import (
    AMD_EPYC_7551,
    CORI_KNL,
    INTEL_SKYLAKE_8160,
    PLATFORMS,
)
from repro.machine.tracer import replay_table_traces


class TestSpec:
    def test_table2_values(self):
        assert INTEL_SKYLAKE_8160.llc_bytes == 32 * 1024 * 1024
        assert INTEL_SKYLAKE_8160.cores == 48
        assert AMD_EPYC_7551.llc_bytes == 8 * 1024 * 1024
        assert AMD_EPYC_7551.cores == 64
        assert CORI_KNL.cores == 68
        assert CORI_KNL.l2_bytes == 0

    def test_scaled_divides_capacities(self):
        s = INTEL_SKYLAKE_8160.scaled(16)
        assert s.llc_bytes == INTEL_SKYLAKE_8160.llc_bytes // 16
        assert s.l1_bytes == INTEL_SKYLAKE_8160.l1_bytes // 16
        # clock and bandwidth unchanged (uniform time extrapolation)
        assert s.clock_hz == INTEL_SKYLAKE_8160.clock_hz
        assert s.mem_bw_bytes_s == INTEL_SKYLAKE_8160.mem_bw_bytes_s

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            INTEL_SKYLAKE_8160.scaled(0)

    def test_bw_saturates(self):
        mc = INTEL_SKYLAKE_8160
        assert mc.bw_at(1) == pytest.approx(mc.core_bw)
        assert mc.bw_at(1000) == mc.mem_bw_bytes_s

    def test_llc_share(self):
        assert INTEL_SKYLAKE_8160.llc_share_bytes(48) == (32 << 20) // 48

    def test_platform_registry(self):
        assert set(PLATFORMS) == {"skylake", "epyc", "knl"}


class TestAnalyticMiss:
    def test_fits_no_miss(self):
        assert analytic_miss_fraction(100, 200) == 0.0

    def test_double_half_miss(self):
        assert analytic_miss_fraction(200, 100) == pytest.approx(0.5)

    def test_degenerate(self):
        assert analytic_miss_fraction(0, 100) == 0.0
        assert analytic_miss_fraction(100, 0) == 1.0

    def test_cold_misses(self):
        assert expected_cold_misses(640, 64, 2) == 20
        assert expected_cold_misses(0, 64, 5) == 0


class TestDirectMapped:
    def test_no_conflicts(self):
        # distinct lines, each its own set: all cold misses
        assert direct_mapped_misses(np.arange(32), 64) == 32

    def test_repeat_hits(self):
        addrs = np.tile(np.arange(8), 10)
        assert direct_mapped_misses(addrs, 64) == 8

    def test_conflict_thrashing(self):
        # lines 0 and 64 map to the same set of a 64-set cache
        addrs = np.array([0, 64] * 50)
        assert direct_mapped_misses(addrs, 64) == 100

    def test_empty(self):
        assert direct_mapped_misses(np.empty(0, dtype=np.int64), 16) == 0


class TestLRU:
    def test_cold_then_hit(self):
        c = LRUCache(64 * 64, 64, ways=4)
        assert c.access_lines(np.arange(32)) == 32
        c.reset_stats()
        c.access_lines(np.arange(32))
        assert c.misses == 0 and c.hits == 32

    def test_capacity_eviction(self):
        c = LRUCache(8 * 64, 64, ways=8)  # 8 lines fully associative
        c.access_lines(np.arange(9))      # line 0 evicted
        c.reset_stats()
        c.access_lines(np.array([0]))
        assert c.misses == 1

    def test_lru_policy(self):
        c = LRUCache(4 * 64, 64, ways=4)  # one set, 4 ways
        c.access_lines(np.array([0, 4, 8, 12]))  # fill
        c.access_lines(np.array([0]))            # refresh 0
        c.access_lines(np.array([16]))           # evicts LRU = 4
        c.reset_stats()
        c.access_lines(np.array([0]))
        assert c.misses == 0
        c.access_lines(np.array([4]))
        assert c.misses == 1

    def test_access_bytes(self):
        c = LRUCache(1024, 64, ways=2)
        c.access_bytes(np.array([0, 8, 16]))  # same line
        assert c.misses == 1 and c.hits == 2


class TestCostModel:
    def make_stats(self, **kw):
        st = KernelStats(algorithm="hash", k=8, n_cols=16)
        st.ops = 1_000_000
        st.bytes_read = 8_000_000
        st.bytes_written = 1_000_000
        st.add_table_traffic(32 * 1024, 1_000_000)
        for key, val in kw.items():
            setattr(st, key, val)
        return st

    def test_family_resolution(self):
        assert algorithm_family("hash") == "hash"
        assert algorithm_family("hash_symbolic") == "hash_symbolic"
        assert algorithm_family("sliding_hash[T=4]") == "sliding_hash"
        assert algorithm_family("heap[merge]") == "heap"
        assert algorithm_family("unknown_thing") == "default"

    def test_more_threads_faster(self):
        st = self.make_stats()
        t1 = CostModel(INTEL_SKYLAKE_8160, 1).time(st).total
        t8 = CostModel(INTEL_SKYLAKE_8160, 8).time(st).total
        assert t8 < t1

    def test_bigger_table_slower(self):
        mc = CostModel(INTEL_SKYLAKE_8160, 48)
        small = self.make_stats()
        big = self.make_stats()
        big.table_traffic = {512 * 1024 * 1024: 1_000_000.0}
        assert mc.time(big).total > mc.time(small).total

    def test_imbalance_needs_col_ops(self):
        st = self.make_stats()
        st.col_ops = np.zeros(16)
        st.col_ops[0] = 1000.0
        static = CostModel(INTEL_SKYLAKE_8160, 8, schedule="static")
        assert static.time(st).imbalance > 1.5

    def test_spa_init_term(self):
        st = self.make_stats()
        st.algorithm = "spa"
        st.ds_bytes_peak = 4_000_000 * 12
        t = CostModel(INTEL_SKYLAKE_8160, 48).time(st)
        assert t.init > 0.05  # the paper's ~0.12s floor at m=4M

    def test_pairwise_launch_overhead(self):
        st = self.make_stats()
        st.algorithm = "2way_incremental"
        st.k = 128
        t = CostModel(INTEL_SKYLAKE_8160, 48).time(st)
        st.k = 4
        t4 = CostModel(INTEL_SKYLAKE_8160, 48).time(st)
        assert t.fixed > t4.fixed

    def test_extrapolate_components(self):
        t = SimulatedTime(compute=1.0, init=0.5, fixed=0.25)
        assert t.extrapolate(10, 2) == pytest.approx(10 + 1.0 + 0.25)

    def test_bandwidth_floor(self):
        st = self.make_stats()
        st.bytes_read = 1e12  # enormous streaming
        t = CostModel(INTEL_SKYLAKE_8160, 48).time(st)
        assert t.total >= 1e12 / INTEL_SKYLAKE_8160.mem_bw_bytes_s

    def test_two_phase_additive(self):
        st = self.make_stats()
        cm = CostModel(INTEL_SKYLAKE_8160, 4)
        one = cm.time(st).total
        two = cm.time_two_phase(st, st).total
        assert two == pytest.approx(2 * one, rel=1e-6)


class TestTracer:
    def test_replay_counts(self):
        traces = [(1024, 8, np.arange(1024)), (1024, 8, np.arange(1024))]
        rep = replay_table_traces(traces, INTEL_SKYLAKE_8160, threads=1)
        assert rep["accesses"] == 2048
        # second pass over an in-LLC table: mostly hits
        assert rep["misses"] < 300

    def test_replay_thrashing_when_small_share(self):
        tiny = INTEL_SKYLAKE_8160.scaled(10000)
        slots = np.random.default_rng(0).integers(0, 1 << 16, 20_000)
        rep = replay_table_traces(
            [(1 << 16, 8, slots)], tiny, threads=8
        )
        assert rep["miss_rate"] > 0.5

    def test_sampling_scales(self):
        slots = np.random.default_rng(0).integers(0, 4096, 50_000)
        rep = replay_table_traces(
            [(4096, 8, slots)], INTEL_SKYLAKE_8160, max_accesses=5_000
        )
        assert rep["simulated_accesses"] <= 5_000
        assert rep["accesses"] == 50_000

    def test_empty_traces(self):
        rep = replay_table_traces([], INTEL_SKYLAKE_8160)
        assert rep["misses"] == 0
