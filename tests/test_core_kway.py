"""Tests for the k-way kernels: heap, SPA, hash, sliding hash."""

import numpy as np
import pytest

from repro.core.hash_add import hash_symbolic, spkadd_hash
from repro.core.heap_add import spkadd_heap
from repro.core.sliding_hash import sliding_hash_symbolic, sliding_parts, spkadd_sliding_hash
from repro.core.spa_add import spkadd_sliding_spa, spkadd_spa
from repro.core.stats import KernelStats
from repro.core.symbolic import exact_output_col_nnz
from repro.formats.csc import CSCMatrix
from repro.formats.ops import matrices_equal, sum_with_scipy
from tests.conftest import random_collection, shuffle_columns


@pytest.fixture(params=[1, 3, None], ids=["bc1", "bc3", "bc_auto"])
def block_cols(request):
    return request.param


class TestHeap:
    def test_merge_matches_oracle(self, small_collection, block_cols):
        got = spkadd_heap(small_collection, block_cols=block_cols)
        assert matrices_equal(got, sum_with_scipy(small_collection))

    def test_heapq_matches_oracle(self, small_collection):
        got = spkadd_heap(small_collection, impl="heapq")
        assert matrices_equal(got, sum_with_scipy(small_collection))

    def test_impls_agree_exactly(self, small_collection):
        a = spkadd_heap(small_collection, impl="merge")
        b = spkadd_heap(small_collection, impl="heapq")
        assert matrices_equal(a, b)

    def test_impls_charge_same_ops(self, small_collection):
        st_m, st_h = KernelStats(), KernelStats()
        spkadd_heap(small_collection, impl="merge", stats=st_m)
        spkadd_heap(small_collection, impl="heapq", stats=st_h)
        assert st_m.ops == st_h.ops
        assert st_m.heap_ops == st_h.heap_ops

    def test_output_sorted(self, small_collection):
        out = spkadd_heap(small_collection)
        assert out.sorted and out._check_sorted()

    def test_rejects_unsorted(self, rng):
        from tests.conftest import random_csc

        mats = [shuffle_columns(rng, random_csc(rng, 30, 5, 25))]
        with pytest.raises(ValueError, match="sorted"):
            spkadd_heap(mats)

    def test_lgk_work_scaling(self):
        """Heap ops per entry grow like ceil(lg k) (Table I)."""
        st4, st16 = KernelStats(), KernelStats()
        m4 = random_collection(5, 500, 8, 4, nnz_lo=50, nnz_hi=51)
        m16 = random_collection(5, 500, 8, 16, nnz_lo=50, nnz_hi=51)
        spkadd_heap(m4, stats=st4)
        spkadd_heap(m16, stats=st16)
        assert st4.ops / st4.input_nnz == 2   # lg 4
        assert st16.ops / st16.input_nnz == 4  # lg 16


class TestSpa:
    def test_matches_oracle(self, small_collection, block_cols):
        got = spkadd_spa(small_collection, block_cols=block_cols)
        assert matrices_equal(got, sum_with_scipy(small_collection))

    def test_accepts_unsorted(self, rng):
        from tests.conftest import random_csc

        mats = [
            shuffle_columns(rng, random_csc(rng, 60, 7, 50)) for _ in range(4)
        ]
        got = spkadd_spa(mats)
        ref = sum_with_scipy(mats)
        assert matrices_equal(got, ref)

    def test_ds_memory_is_m_proportional(self, small_collection):
        st = KernelStats()
        spkadd_spa(small_collection, stats=st)
        m = small_collection[0].shape[0]
        assert st.ds_bytes_peak == m * 12

    def test_work_linear_in_input(self, small_collection):
        st = KernelStats()
        out = spkadd_spa(small_collection, stats=st)
        assert st.ops == st.input_nnz + out.nnz

    def test_sliding_spa_matches(self, small_collection):
        for parts in (1, 2, 5):
            got = spkadd_sliding_spa(small_collection, parts=parts)
            assert matrices_equal(got, sum_with_scipy(small_collection))

    def test_sliding_spa_smaller_structure(self, small_collection):
        st1, st4 = KernelStats(), KernelStats()
        spkadd_sliding_spa(small_collection, parts=1, stats=st1)
        spkadd_sliding_spa(small_collection, parts=4, stats=st4)
        assert st4.ds_bytes_peak < st1.ds_bytes_peak

    def test_sliding_spa_rejects_bad_parts(self, small_collection):
        with pytest.raises(ValueError):
            spkadd_sliding_spa(small_collection, parts=0)


class TestHashSymbolic:
    def test_matches_exact(self, small_collection, block_cols):
        got = hash_symbolic(small_collection, block_cols=block_cols)
        assert np.array_equal(got, exact_output_col_nnz(small_collection))

    def test_stats_have_probe_histogram(self, small_collection):
        st = KernelStats()
        hash_symbolic(small_collection, stats=st)
        assert st.ops >= st.input_nnz
        assert st.total_table_accesses == st.ops


class TestHash:
    def test_matches_oracle(self, small_collection, block_cols):
        got = spkadd_hash(small_collection, block_cols=block_cols)
        assert matrices_equal(got, sum_with_scipy(small_collection))

    def test_unsorted_output_same_content(self, small_collection):
        got = spkadd_hash(small_collection, sorted_output=False)
        assert not got.sorted
        canon = got.copy()
        canon.sort_indices()
        assert matrices_equal(canon, sum_with_scipy(small_collection))

    def test_accepts_unsorted_inputs(self, rng):
        from tests.conftest import random_csc

        mats = [
            shuffle_columns(rng, random_csc(rng, 60, 7, 50)) for _ in range(4)
        ]
        got = spkadd_hash(mats)
        assert matrices_equal(got, sum_with_scipy(mats))

    def test_precomputed_symbolic(self, small_collection):
        nnz = hash_symbolic(small_collection)
        got = spkadd_hash(small_collection, col_out_nnz=nnz)
        assert matrices_equal(got, sum_with_scipy(small_collection))

    def test_two_phase_stats(self, small_collection):
        st, st_sym = KernelStats(), KernelStats()
        spkadd_hash(small_collection, stats=st, stats_symbolic=st_sym)
        assert st_sym.algorithm.startswith("hash_symbolic")
        assert st.input_nnz == st_sym.input_nnz

    def test_work_linear_in_k(self):
        """Hash work is O(knd): ops/input ratio constant in k (Table I)."""
        ratios = []
        for k in (4, 16, 64):
            mats = random_collection(9, 2000, 8, k, nnz_lo=60, nnz_hi=61)
            st = KernelStats()
            spkadd_hash(mats, stats=st, block_cols=1)
            ratios.append(st.ops / st.input_nnz)
        assert max(ratios) / min(ratios) < 1.6  # probes vary mildly


class TestSlidingHash:
    def test_matches_oracle_cache_rule(self, small_collection):
        got = spkadd_sliding_hash(
            small_collection, threads=4, cache_bytes=2048
        )
        assert matrices_equal(got, sum_with_scipy(small_collection))

    def test_matches_oracle_forced_size(self, small_collection):
        for entries in (8, 32, 256):
            got = spkadd_sliding_hash(small_collection, table_entries=entries)
            assert matrices_equal(got, sum_with_scipy(small_collection))

    def test_degenerates_to_hash(self, small_collection):
        """No cache limit -> one partition -> plain Algorithm 5."""
        st = KernelStats()
        got = spkadd_sliding_hash(small_collection, stats=st)
        assert st.parts == 1
        assert matrices_equal(got, sum_with_scipy(small_collection))

    def test_small_cache_forces_partitions(self, small_collection):
        st = KernelStats()
        spkadd_sliding_hash(
            small_collection, threads=8, cache_bytes=256, stats=st
        )
        assert st.parts > 1

    def test_symbolic_matches_exact(self, small_collection):
        got = sliding_hash_symbolic(
            small_collection, threads=4, cache_bytes=1024
        )
        assert np.array_equal(got, exact_output_col_nnz(small_collection))

    def test_sorted_output(self, small_collection):
        got = spkadd_sliding_hash(small_collection, table_entries=16)
        assert got._check_sorted()

    def test_unsorted_output(self, small_collection):
        got = spkadd_sliding_hash(
            small_collection, table_entries=16, sorted_output=False
        )
        canon = got.copy()
        canon.sort_indices()
        assert matrices_equal(canon, sum_with_scipy(small_collection))

    def test_smaller_tables_than_hash(self, small_collection):
        st_h, st_s = KernelStats(), KernelStats()
        spkadd_hash(small_collection, stats=st_h, block_cols=1)
        spkadd_sliding_hash(
            small_collection, stats=st_s, table_entries=16, block_cols=1
        )
        assert max(st_s.table_traffic) <= max(st_h.table_traffic)


class TestSlidingParts:
    def test_paper_rule(self):
        # parts = ceil(entries * b * T / M)
        assert sliding_parts(1000, 8, threads=4, cache_bytes=16000) == 2
        assert sliding_parts(1000, 8, threads=1, cache_bytes=1 << 30) == 1

    def test_forced_entries(self):
        assert sliding_parts(1_000_000, 8, table_entries=16384) == 62  # ceil
        assert sliding_parts(100, 8, table_entries=1024) == 1

    def test_no_limit(self):
        assert sliding_parts(1e9, 8) == 1
