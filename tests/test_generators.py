"""Tests for the dataset generators."""

import numpy as np
import pytest

from repro.core.estimator import er_expected_cf, er_expected_output_col_nnz
from repro.formats.ops import matrices_equal, sum_with_scipy
from repro.generators import (
    erdos_renyi,
    erdos_renyi_collection,
    rmat,
    rmat_collection,
    split_columns,
)
from repro.generators.protein import (
    DATASETS,
    protein_collection,
    solve_inclusion_probability,
    spgemm_intermediates_surrogate,
)
from repro.generators.rmat import RMAT_ER, RMAT_GRAPH500, rmat_positions


class TestER:
    def test_shape_and_density(self):
        mat = erdos_renyi(1024, 32, d=16, seed=0)
        assert mat.shape == (1024, 32)
        # duplicates within a column are rare at d/m = 1.5%
        assert 0.9 * 16 * 32 <= mat.nnz <= 16 * 32

    def test_exact_d_draws_per_column(self):
        mat = erdos_renyi(10_000, 16, d=8, seed=1)
        assert np.all(mat.col_nnz() <= 8)
        assert mat.col_nnz().mean() > 7.5

    def test_deterministic(self):
        a = erdos_renyi(256, 8, d=4, seed=9)
        b = erdos_renyi(256, 8, d=4, seed=9)
        assert matrices_equal(a, b)

    def test_values_ones(self):
        mat = erdos_renyi(128, 4, d=2, seed=0, values="ones")
        assert np.all(mat.data >= 1.0)  # duplicates sum to integers

    def test_collection_independent(self):
        mats = erdos_renyi_collection(512, 8, d=4, k=5, seed=3)
        assert len(mats) == 5
        assert not matrices_equal(mats[0], mats[1])

    def test_collection_cf_matches_estimator(self):
        m, d, k = 4096, 64, 16
        mats = erdos_renyi_collection(m, 64, d=d, k=k, seed=1)
        total = sum(x.nnz for x in mats)
        out = sum_with_scipy(mats)
        cf = total / out.nnz
        assert cf == pytest.approx(er_expected_cf(m, d, k), rel=0.05)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            erdos_renyi(0, 4, d=2)


class TestRmat:
    def test_shape(self):
        mat = rmat(256, 64, d=8, seed=0)
        assert mat.shape == (256, 64)

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            rmat(100, 64, d=8)

    def test_seeds_must_sum_to_one(self):
        with pytest.raises(ValueError):
            rmat_positions(64, 64, 10, seeds=(0.5, 0.5, 0.5, 0.5))

    def test_er_seeds_are_uniform(self):
        """a=b=c=d=0.25 must give (statistically) uniform rows."""
        rows, cols = rmat_positions(1 << 14, 1, 50_000, seeds=RMAT_ER, seed=1)
        # mean should be near m/2
        assert abs(rows.mean() / (1 << 13) - 1.0) < 0.05

    def test_graph500_seeds_are_skewed(self):
        """Graph500 seeds concentrate mass on low indices."""
        rows, _ = rmat_positions(1 << 14, 1, 50_000, seeds=RMAT_GRAPH500, seed=1)
        assert np.median(rows) < (1 << 13) * 0.5

    def test_column_skew_of_collection(self):
        """RMAT column degrees vary strongly (the load-balance story)."""
        mats = rmat_collection(1 << 12, 64, d=16, k=4, seed=2)
        nnz = np.concatenate([m.col_nnz() for m in mats])
        assert nnz.max() > 4 * max(nnz.mean(), 1)

    def test_rectangular_levels(self):
        mat = rmat(256, 16, d=4, seed=3)
        assert mat.shape == (256, 16)
        assert int(mat.indices.max()) < 256

    def test_deterministic(self):
        a = rmat(128, 32, d=4, seed=5)
        b = rmat(128, 32, d=4, seed=5)
        assert matrices_equal(a, b)

    def test_noise_changes_output(self):
        a = rmat(128, 32, d=4, seed=5, noise=0.1)
        b = rmat(128, 32, d=4, seed=5)
        assert not matrices_equal(a, b)


class TestSplitter:
    def test_split_columns(self):
        wide = erdos_renyi(128, 32, d=4, seed=0)
        parts = split_columns(wide, 4)
        assert len(parts) == 4
        assert all(p.shape == (128, 8) for p in parts)
        # reassembling the splits gives back the wide matrix
        total = np.concatenate([p.to_dense() for p in parts], axis=1)
        assert np.array_equal(total, wide.to_dense())

    def test_indivisible_raises(self):
        wide = erdos_renyi(64, 10, d=2, seed=0)
        with pytest.raises(ValueError):
            split_columns(wide, 3)


class TestProtein:
    def test_solve_inclusion_probability(self):
        for k, cf in [(64, 22.614), (16, 8.0), (4, 2.0)]:
            q = solve_inclusion_probability(cf, k)
            got = k * q / (1 - (1 - q) ** k)
            assert got == pytest.approx(cf, rel=1e-4)

    def test_cf_out_of_range(self):
        with pytest.raises(ValueError):
            solve_inclusion_probability(10.0, 4)  # cf > k

    def test_collection_cf_near_target(self):
        mats = protein_collection(m=8192, n=128, d=40, k=16, cf=8.0, seed=0)
        total = sum(m.nnz for m in mats)
        out = sum_with_scipy(mats)
        assert total / out.nnz == pytest.approx(8.0, rel=0.15)

    def test_degree_target(self):
        mats = protein_collection(m=8192, n=128, d=40, k=8, cf=4.0, seed=0)
        mean_d = np.mean([m.nnz / 128 for m in mats])
        assert mean_d == pytest.approx(40, rel=0.25)

    def test_surrogate_presets(self):
        mats = spgemm_intermediates_surrogate(
            "eukarya", scale=512, k=8, cf=6.0, d=30, seed=1
        )
        assert len(mats) == 8
        assert mats[0].shape[0] >= 1024

    def test_dataset_metadata(self):
        assert DATASETS["metaclust50"].rows == 282_000_000
        assert DATASETS["isolates"].nnz == 17_000_000_000


class TestWorkloads:
    def test_gradient_updates(self):
        from repro.generators import gradient_update_collection

        mats = gradient_update_collection(
            rows=64, cols=32, k=6, density=0.05, correlated=0.5, seed=0
        )
        assert len(mats) == 6
        total = sum(m.nnz for m in mats)
        out = sum_with_scipy(mats)
        assert total / out.nnz > 1.2  # correlated supports overlap

    def test_gradient_updates_validation(self):
        from repro.generators import gradient_update_collection

        with pytest.raises(ValueError):
            gradient_update_collection(rows=4, cols=4, k=2, density=0.0)
        with pytest.raises(ValueError):
            gradient_update_collection(rows=4, cols=4, k=2, correlated=2.0)

    def test_fem_assembly_equals_direct(self):
        import repro
        from repro.generators import fem_element_batches

        batches, n_nodes = fem_element_batches(nx=6, ny=5, batches=4, seed=0)
        K = repro.spkadd(batches, method="hash").matrix
        dense = K.to_dense()
        assert dense.shape == (n_nodes, n_nodes)
        # global stiffness is symmetric with zero row sums (pure Neumann)
        assert np.allclose(dense, dense.T)
        assert np.allclose(dense.sum(axis=1), 0.0, atol=1e-9)

    def test_graph_stream(self):
        from repro.generators import graph_stream_batches

        batches = graph_stream_batches(
            n_vertices=128, batches=5, edges_per_batch=60, skew=1.0, seed=0
        )
        assert len(batches) == 5
        assert all(b.shape == (128, 128) for b in batches)
