"""Application workload generators for the motivating use cases.

The paper's introduction motivates SpKAdd with three applications:

1. **Sparse allreduce in deep learning** — gradient sparsification:
   each of k workers contributes the top fraction of its (mini-batch)
   gradient matrix; the reduction sums k sparse matrices
   (:func:`gradient_update_collection`).
2. **Distributed SpGEMM** — intermediate products `A_i B_i` (built in
   :mod:`repro.distributed`; surrogate statistics in
   :mod:`repro.generators.protein`).
3. **Finite-element assembly** — local element stiffness matrices
   scattered into the global matrix (:func:`fem_element_batches`); the
   paper argues this classic "hard to parallelize" reduction is exactly
   SpKAdd.
4. **Streaming graph accumulation** — batches of timestamped edges
   accumulated into a running graph (:func:`graph_stream_batches`),
   the workload for the streaming extension.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.formats.csc import CSCMatrix
from repro.util.rng import default_rng, spawn_rngs


def gradient_update_collection(
    *,
    rows: int,
    cols: int,
    k: int,
    density: float = 0.01,
    correlated: float = 0.5,
    seed=None,
) -> List[CSCMatrix]:
    """k sparsified gradient matrices from simulated workers.

    Each worker keeps the top-``density`` fraction of a synthetic dense
    gradient for one weight matrix of shape (rows, cols).  Workers see
    correlated data (same model, different mini-batches), so their
    top-k supports overlap: a fraction ``correlated`` of each worker's
    kept entries comes from a shared "important coordinates" pool — this
    is what gives the reduction a compression factor well above 1, the
    regime where k-way SpKAdd beats pairwise reduction.
    """
    if not 0 < density <= 1:
        raise ValueError("density must be in (0, 1]")
    if not 0 <= correlated <= 1:
        raise ValueError("correlated must be in [0, 1]")
    rng = default_rng(seed)
    total = rows * cols
    keep = max(int(total * density), 1)
    n_shared = int(keep * correlated)
    shared_pool = rng.choice(total, size=max(2 * n_shared, 1), replace=False)
    out: List[CSCMatrix] = []
    for wrng in spawn_rngs(seed, k):
        shared = (
            wrng.choice(shared_pool, size=n_shared, replace=False)
            if n_shared
            else np.empty(0, dtype=np.int64)
        )
        private = wrng.integers(0, total, keep - n_shared)
        flat = np.concatenate([shared, private]).astype(np.int64)
        vals = wrng.normal(scale=1e-2, size=flat.shape[0])
        out.append(
            CSCMatrix.from_arrays(
                (rows, cols), flat // cols, flat % cols, vals, sum_duplicates=True
            )
        )
    return out


def fem_element_batches(
    *,
    nx: int,
    ny: int,
    batches: int,
    seed=None,
) -> Tuple[List[CSCMatrix], int]:
    """Local stiffness contributions of a 2-D Q1 grid, in k batches.

    Builds the standard bilinear-quad Laplace stiffness for an
    ``nx x ny`` element grid ((nx+1)(ny+1) nodes).  Elements are dealt
    round-robin into ``batches`` groups; each group's scattered 4x4
    element matrices form one sparse addend.  Summing the k addends is
    the FEM assembly the paper cites [6].

    Returns ``(addends, n_nodes)``; the assembled global stiffness is
    ``spkadd(addends)`` and equals the classic sequential assembly.
    """
    if nx < 1 or ny < 1 or batches < 1:
        raise ValueError("nx, ny, batches must be positive")
    n_nodes = (nx + 1) * (ny + 1)
    # Reference Q1 Laplace element stiffness on the unit square.
    ke = (1.0 / 6.0) * np.array(
        [
            [4.0, -1.0, -2.0, -1.0],
            [-1.0, 4.0, -1.0, -2.0],
            [-2.0, -1.0, 4.0, -1.0],
            [-1.0, -2.0, -1.0, 4.0],
        ]
    )
    rng = default_rng(seed)
    elements = []
    for ey in range(ny):
        for ex in range(nx):
            n0 = ey * (nx + 1) + ex
            elements.append((n0, n0 + 1, n0 + nx + 2, n0 + nx + 1))
    order = rng.permutation(len(elements))
    out: List[CSCMatrix] = []
    for b in range(batches):
        sel = order[b::batches]
        rows_l, cols_l, vals_l = [], [], []
        for e in sel:
            nodes = np.asarray(elements[e], dtype=np.int64)
            # Random positive conductivity per element.
            coef = 0.5 + rng.random()
            rr, cc = np.meshgrid(nodes, nodes, indexing="ij")
            rows_l.append(rr.ravel())
            cols_l.append(cc.ravel())
            vals_l.append((coef * ke).ravel())
        if rows_l:
            out.append(
                CSCMatrix.from_arrays(
                    (n_nodes, n_nodes),
                    np.concatenate(rows_l),
                    np.concatenate(cols_l),
                    np.concatenate(vals_l),
                    sum_duplicates=True,
                )
            )
        else:
            out.append(CSCMatrix.zeros((n_nodes, n_nodes)))
    return out, n_nodes


def graph_stream_batches(
    *,
    n_vertices: int,
    batches: int,
    edges_per_batch: int,
    skew: float = 0.0,
    seed=None,
) -> List[CSCMatrix]:
    """Timestamped edge batches of a streaming graph.

    Each batch is the adjacency matrix of the edges that arrived in one
    window (edge weight = occurrence count).  ``skew`` > 0 draws
    endpoints from a Zipf-like distribution (hubs recur across batches,
    raising the compression factor of the accumulation).
    """
    rng = default_rng(seed)
    out: List[CSCMatrix] = []
    for _ in range(batches):
        if skew > 0:
            u = rng.random(edges_per_batch)
            v = rng.random(edges_per_batch)
            src = (n_vertices * u ** (1.0 + skew)).astype(np.int64) % n_vertices
            dst = (n_vertices * v ** (1.0 + skew)).astype(np.int64) % n_vertices
        else:
            src = rng.integers(0, n_vertices, edges_per_batch)
            dst = rng.integers(0, n_vertices, edges_per_batch)
        out.append(
            CSCMatrix.from_arrays(
                (n_vertices, n_vertices),
                src,
                dst,
                np.ones(edges_per_batch),
                sum_duplicates=True,
            )
        )
    return out
