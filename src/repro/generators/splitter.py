"""The paper's SpKAdd input construction: split a wide matrix by columns.

Section IV-A: "we create an m x n matrix and then split this matrix
along the column to create k [m x n/k] matrices".  Columns
``[i*w, (i+1)*w)`` of the wide matrix become addend i; column j of the
output sum then accumulates column ``i*w + j`` from every piece, which
is what creates row collisions across addends.
"""

from __future__ import annotations

from typing import List

from repro.formats.csc import CSCMatrix


def split_columns(wide: CSCMatrix, k: int) -> List[CSCMatrix]:
    """Split an m x (w*k) matrix into k m x w column blocks.

    Raises if the column count is not divisible by k (the paper always
    uses exact powers of two).
    """
    m, total = wide.shape
    if k < 1:
        raise ValueError("k must be >= 1")
    if total % k:
        raise ValueError(f"cannot split {total} columns into {k} equal pieces")
    w = total // k
    return [wide.select_columns(i * w, (i + 1) * w) for i in range(k)]
