"""Erdős–Rényi sparse matrix generator.

The paper's "ER" matrices are R-MAT with uniform seeds
(``a=b=c=d=0.25``), i.e. every position equally likely.  We provide a
direct uniform sampler (cheaper and statistically identical): each
column receives exactly ``d`` uniform row draws, duplicates summed —
matching "d nonzeros per column on average".
"""

from __future__ import annotations

import numpy as np

from repro.formats.compressed import resolve_index_dtype
from repro.formats.csc import CSCMatrix
from repro.util.rng import default_rng


def erdos_renyi(
    m: int,
    n: int,
    *,
    d: float,
    seed=None,
    values: str = "uniform",
) -> CSCMatrix:
    """Uniform random m x n matrix with ``d`` draws per column.

    ``d`` may be fractional (total draws = round(n*d) spread uniformly
    over columns).  Duplicate positions within a column are summed, so
    per-column nnz is slightly below ``d`` once ``d`` is a noticeable
    fraction of ``m`` (exactly the occupancy statistics the estimator
    module predicts).
    """
    if m < 1 or n < 1:
        raise ValueError("m and n must be positive")
    rng = default_rng(seed)
    total = int(round(n * d))
    # Triplets (and therefore the stored matrix) carry the paper's
    # index width: int32 unless the dimensions or nnz demand int64.
    idt = resolve_index_dtype(shape=(m, n), nnz=total)
    if float(d).is_integer():
        cols = np.repeat(np.arange(n, dtype=idt), int(d))
    else:
        cols = rng.integers(0, n, total, dtype=idt)
    rows = rng.integers(0, m, cols.shape[0], dtype=idt)
    if values == "uniform":
        vals = rng.random(cols.shape[0])
    elif values == "ones":
        vals = np.ones(cols.shape[0])
    else:
        raise ValueError(f"unknown values mode {values!r}")
    return CSCMatrix.from_arrays((m, n), rows, cols, vals, sum_duplicates=True)


def erdos_renyi_collection(
    m: int,
    n: int,
    *,
    d: float,
    k: int,
    seed=None,
    values: str = "uniform",
):
    """k independent ER addends, each m x n with ``d`` draws per column.

    Equivalent to the paper's generate-wide-then-split construction
    (uniform columns are exchangeable, so splitting an m x (n*k) ER
    matrix gives k independent m x n ER matrices).
    """
    from repro.util.rng import spawn_rngs

    rngs = spawn_rngs(seed, k)
    return [
        erdos_renyi(m, n, d=d, seed=rngs[i], values=values) for i in range(k)
    ]
