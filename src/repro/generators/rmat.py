"""R-MAT recursive matrix generator (Chakrabarti, Zhan, Faloutsos 2004).

Every nonzero position is drawn by recursively descending a 2x2
quadrant tree: at each of the lg(m) x lg(n) refinement levels the
entry falls into quadrant (0,0)/(0,1)/(1,0)/(1,1) with probabilities
(a, b, c, d).  ``a=b=c=d=0.25`` gives uniform (Erdős–Rényi) placement;
the Graph500 seeds ``a=0.57, b=c=0.19, d=0.05`` give the skewed
power-law-ish distribution the paper calls *RMAT*.

Rectangular matrices (the paper uses m > n) descend ``max(lgm, lgn)``
levels; once one dimension is fully refined the remaining levels split
only the other dimension using the marginal probabilities
(``a+b`` vs ``c+d`` for rows, ``a+c`` vs ``b+d`` for columns).

The generator is fully vectorized: all ``nnz`` positions descend one
level per NumPy pass.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.formats.csc import CSCMatrix
from repro.util.rng import default_rng

#: Graph500 seed parameters used by the paper for "RMAT" matrices.
RMAT_GRAPH500: Tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05)
#: Uniform seeds: R-MAT degenerates to Erdős–Rényi placement.
RMAT_ER: Tuple[float, float, float, float] = (0.25, 0.25, 0.25, 0.25)


def _check_pow2(x: int, name: str) -> int:
    if x < 1 or (x & (x - 1)):
        raise ValueError(f"{name} must be a positive power of two, got {x}")
    return int(np.log2(x))


def rmat_positions(
    m: int,
    n: int,
    nnz: int,
    *,
    seeds: Tuple[float, float, float, float] = RMAT_GRAPH500,
    noise: float = 0.0,
    seed=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw ``nnz`` (row, col) positions from the R-MAT distribution.

    Duplicates are possible (and expected for skewed seeds); callers
    decide whether to sum or drop them.  ``noise`` perturbs the seed
    probabilities per level (the SMASH/Graph500 "noise" trick breaking
    exact self-similarity); 0 disables it.
    """
    a, b, c, d = seeds
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError(f"R-MAT seeds must sum to 1, got {a+b+c+d}")
    lgm = _check_pow2(m, "m")
    lgn = _check_pow2(n, "n")
    rng = default_rng(seed)
    rows = np.zeros(nnz, dtype=np.int64)
    cols = np.zeros(nnz, dtype=np.int64)
    levels = max(lgm, lgn)
    for level in range(levels):
        if noise > 0.0:
            # Symmetric per-level jitter, re-normalized.
            jitter = rng.uniform(-noise, noise, size=4)
            pa, pb, pc, pd = np.maximum(
                np.array([a, b, c, d]) * (1.0 + jitter), 1e-9
            )
            s = pa + pb + pc + pd
            pa, pb, pc, pd = pa / s, pb / s, pc / s, pd / s
        else:
            pa, pb, pc, pd = a, b, c, d
        split_row = level < lgm
        split_col = level < lgn
        u = rng.random(nnz)
        if split_row and split_col:
            # Quadrant thresholds: a | b | c | d.
            row_bit = u >= pa + pb
            col_bit = (u >= pa) & (u < pa + pb) | (u >= pa + pb + pc)
            rows = (rows << 1) | row_bit
            cols = (cols << 1) | col_bit
        elif split_row:
            rows = (rows << 1) | (u >= pa + pb)  # marginal: top vs bottom
        elif split_col:
            cols = (cols << 1) | (u >= pa + pc)  # marginal: left vs right
    return rows, cols


def rmat(
    m: int,
    n: int,
    *,
    d: float,
    seeds: Tuple[float, float, float, float] = RMAT_GRAPH500,
    noise: float = 0.0,
    seed=None,
    values: str = "uniform",
) -> CSCMatrix:
    """Generate an m x n R-MAT matrix with ``d`` nonzero draws per column.

    ``n * d`` positions are drawn; duplicates are summed (so the actual
    nnz is slightly below ``n*d`` for skewed seeds — same convention as
    the paper's "average degree d").  ``values``: ``"uniform"`` draws
    from U(0,1); ``"ones"`` uses 1.0 (making the sum a multiplicity
    count, handy for tests).
    """
    nnz = int(round(n * d))
    rng = default_rng(seed)
    rows, cols = rmat_positions(m, n, nnz, seeds=seeds, noise=noise, seed=rng)
    if values == "uniform":
        vals = rng.random(nnz)
    elif values == "ones":
        vals = np.ones(nnz)
    else:
        raise ValueError(f"unknown values mode {values!r}")
    # The bit-interleaving above works in int64; the stored matrix keeps
    # the paper's width (int32 unless the dimensions/nnz demand int64).
    from repro.formats.compressed import resolve_index_dtype

    return CSCMatrix.from_arrays(
        (m, n), rows, cols, vals, sum_duplicates=True,
        index_dtype=resolve_index_dtype(shape=(m, n), nnz=nnz),
    )


def rmat_collection(
    m: int,
    n: int,
    *,
    d: float,
    k: int,
    seeds: Tuple[float, float, float, float] = RMAT_GRAPH500,
    noise: float = 0.0,
    seed=None,
    values: str = "uniform",
):
    """The paper's SpKAdd input construction for RMAT matrices.

    Generates one m x (n*k) R-MAT matrix and splits it along columns
    into k m x n matrices (Section IV-A), so each addend follows the
    same distribution and columns j of all addends overlap in rows.
    """
    from repro.generators.splitter import split_columns

    wide = rmat(
        m, n * k, d=d, seeds=seeds, noise=noise, seed=seed, values=values
    )
    return split_columns(wide, k)
