"""Dataset and workload generators.

The paper evaluates on two synthetic families produced by the R-MAT
recursive generator (Section IV-A):

* **ER** — Erdős–Rényi uniform matrices, R-MAT seeds
  ``a=b=c=d=0.25``;
* **RMAT** — power-law (Graph500) matrices, seeds
  ``a=0.57, b=c=0.19, d=0.05``;

plus real protein-similarity networks (Eukarya, Isolates, Metaclust50)
that are unavailable offline and far beyond single-node scale — those
are replaced by statistical surrogates (:mod:`~repro.generators.protein`)
matching their documented shape/density/compression statistics.

The paper's SpKAdd inputs are built by generating one wide matrix and
splitting it along columns into k equal pieces
(:func:`~repro.generators.splitter.split_columns`); the convenience
collection builders below do generate+split in one call.
"""

from repro.generators.er import erdos_renyi, erdos_renyi_collection
from repro.generators.rmat import rmat, rmat_collection, RMAT_GRAPH500, RMAT_ER
from repro.generators.splitter import split_columns
from repro.generators.protein import (
    DATASETS,
    ProteinDataset,
    protein_collection,
    spgemm_intermediates_surrogate,
)
from repro.generators.workloads import (
    fem_element_batches,
    gradient_update_collection,
    graph_stream_batches,
)

__all__ = [
    "erdos_renyi",
    "erdos_renyi_collection",
    "rmat",
    "rmat_collection",
    "RMAT_GRAPH500",
    "RMAT_ER",
    "split_columns",
    "DATASETS",
    "ProteinDataset",
    "protein_collection",
    "spgemm_intermediates_surrogate",
    "fem_element_batches",
    "gradient_update_collection",
    "graph_stream_batches",
]
