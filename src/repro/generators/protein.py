"""Protein-similarity network surrogates.

The paper's distributed experiments use three protein-similarity
matrices distributed with HipMCL / Metaclust:

=============  =========  =========  ==========
Dataset        rows        cols       nonzeros
=============  =========  =========  ==========
Eukarya        3 M         3 M        360 M
Isolates       35 M        35 M       17 B
Metaclust50    282 M       282 M      37 B
=============  =========  =========  ==========

None are obtainable offline and all exceed single-node Python scale,
so we build *surrogates*: synthetic matrices matching the statistics
that drive SpKAdd behaviour —

* skewed per-column degrees (protein families vary wildly in size):
  drawn from a log-normal fitted to the documented average degree;
* **shared support across addends**: the k SpGEMM intermediates of one
  output block hit the same protein-family rows repeatedly, which is
  what produces the large compression factors the paper reports
  (cf = 22.6 for the Eukarya SpKAdd of Fig 3c/4d).  We reproduce that
  by sampling each addend's entries from a common base pattern with
  inclusion probability q chosen so the expected cf matches:
  ``cf(q, k) = k*q / (1 - (1-q)^k)``.

``spgemm_intermediates_surrogate`` builds exactly the Fig 3c/4d
workload: k matrices, m rows, n columns, average degree d, calibrated
cf.  DESIGN.md documents the substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.formats.csc import CSCMatrix
from repro.util.rng import default_rng


@dataclass(frozen=True)
class ProteinDataset:
    """Metadata of a paper dataset + its surrogate scaling knobs."""

    name: str
    rows: int
    cols: int
    nnz: int
    #: documented average nonzeros per column
    avg_degree: float
    #: log-normal sigma of the column-degree distribution (surrogate knob;
    #: protein family sizes are heavy-tailed)
    degree_sigma: float = 1.0


DATASETS = {
    "eukarya": ProteinDataset("eukarya", 3_000_000, 3_000_000, 360_000_000, 120.0, 1.0),
    "isolates": ProteinDataset("isolates", 35_000_000, 35_000_000, 17_000_000_000, 486.0, 1.2),
    "metaclust50": ProteinDataset(
        "metaclust50", 282_000_000, 282_000_000, 37_000_000_000, 131.0, 1.2
    ),
}


def solve_inclusion_probability(cf_target: float, k: int) -> float:
    """Find q in (0, 1] with ``k q / (1 - (1-q)^k) = cf_target``.

    cf is monotone increasing in q (q -> 0 gives cf -> ~k q /(kq) = 1
    ... precisely cf -> 1; q = 1 gives cf = k), so bisection applies.
    Requires ``1 <= cf_target <= k``.
    """
    if not 1.0 <= cf_target <= k:
        raise ValueError(f"cf must lie in [1, k]={k}, got {cf_target}")
    lo, hi = 1e-9, 1.0

    def cf(q: float) -> float:
        return k * q / -np.expm1(k * np.log1p(-min(q, 1 - 1e-12)))

    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if cf(mid) < cf_target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def _base_pattern(
    m: int,
    n: int,
    base_degree: np.ndarray,
    rng: np.random.Generator,
    locality: float,
) -> CSCMatrix:
    """Common support pattern: per column j, ``base_degree[j]`` rows.

    ``locality`` in [0,1] mixes uniform rows with a column-centred
    block (protein families cluster on the diagonal of similarity
    matrices); 0 = uniform.
    """
    cols = np.repeat(np.arange(n, dtype=np.int64), base_degree)
    total = int(base_degree.sum())
    u = rng.random(total)
    uniform_rows = rng.integers(0, m, total, dtype=np.int64)
    # Block-local rows: centred at the column's scaled position with a
    # width of ~5% of m.
    centre = (cols * (m // max(n, 1))).astype(np.int64)
    width = max(int(0.05 * m), 1)
    local_rows = (centre + rng.integers(-width, width + 1, total)) % m
    rows = np.where(u < locality, local_rows, uniform_rows)
    vals = rng.random(total)
    return CSCMatrix.from_arrays((m, n), rows, cols, vals, sum_duplicates=True)


def protein_collection(
    *,
    m: int,
    n: int,
    d: float,
    k: int,
    cf: float,
    degree_sigma: float = 1.0,
    locality: float = 0.3,
    seed=None,
) -> List[CSCMatrix]:
    """k addends with protein-similarity statistics.

    Parameters
    ----------
    m, n, d, k:
        Shape, per-addend average column degree, addend count.
    cf:
        Target compression factor of the SpKAdd (the paper's Eukarya
        intermediates have cf = 22.614).  Achieved by sampling each
        addend from a shared base pattern with inclusion probability
        ``q = solve_inclusion_probability(cf, k)``.
    degree_sigma:
        Column-degree skew (log-normal sigma).
    """
    rng = default_rng(seed)
    q = solve_inclusion_probability(cf, k)
    # Addend column degree d = q * base_degree  =>  base = d / q.
    base_mean = d / q
    raw = rng.lognormal(mean=0.0, sigma=degree_sigma, size=n)
    raw *= base_mean / raw.mean()
    base_degree = np.maximum(raw.round().astype(np.int64), 1)
    base_degree = np.minimum(base_degree, m)
    base = _base_pattern(m, n, base_degree, rng, locality)
    out: List[CSCMatrix] = []
    bcols = np.repeat(np.arange(n, dtype=np.int64), np.diff(base.indptr))
    for _ in range(k):
        keep = rng.random(base.nnz) < q
        rows = base.indices[keep]
        cols = bcols[keep]
        vals = rng.random(int(keep.sum()))
        out.append(CSCMatrix.from_arrays((m, n), rows, cols, vals, sum_duplicates=False))
    return out


def spgemm_intermediates_surrogate(
    dataset: str = "eukarya",
    *,
    scale: int = 64,
    n_cols: Optional[int] = None,
    k: int = 64,
    cf: float = 22.614,
    d: float = 240.0,
    seed=None,
) -> List[CSCMatrix]:
    """The Fig 3c / Fig 4d workload at reduced scale.

    The paper's setting: "SpGEMM intermediate matrices of Eukarya,
    row=3M, col=50K, d=240, k=64, cf=22.614".  ``scale`` divides the
    row count (3M/64 ≈ 47K by default) while d, k and cf are preserved —
    the quantities that drive data-structure behaviour.
    """
    ds = DATASETS[dataset]
    m = max(ds.rows // scale, 1024)
    n = n_cols if n_cols is not None else max(50_000 // scale, 64)
    return protein_collection(
        m=m, n=n, d=d, k=k, cf=min(cf, k), degree_sigma=ds.degree_sigma, seed=seed
    )
