"""Coordinate (triplet) sparse format.

Used by the matrix generators (R-MAT emits edge triplets) and as the
interchange format.  The paper points out that parallelizing SpKAdd over
COO inputs is *not* trivial (the tuple lists must be partitioned among
threads), which is one of its arguments for column-compressed inputs; we
keep COO for construction only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.formats.compressed import coerce_index_array


@dataclass
class COOMatrix:
    """Triplet-format sparse matrix: parallel (rows, cols, vals) arrays.

    Duplicates are allowed until :meth:`sum_duplicates` or a conversion
    to a compressed format collapses them.
    """

    shape: Tuple[int, int]
    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    _: dataclass = field(default=None, repr=False, compare=False)

    def __init__(self, shape, rows, cols, vals) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        # Integer index arrays keep their dtype (int32 triplets stay
        # int32); non-integer input normalizes to int64.  Values keep
        # the caller's dtype (sum_duplicates and to_dense follow it).
        self.rows = coerce_index_array(rows)
        self.cols = coerce_index_array(cols)
        self.vals = np.asarray(vals)
        if not (self.rows.shape == self.cols.shape == self.vals.shape):
            raise ValueError("rows, cols, vals must be parallel 1-D arrays")
        if self.rows.size:
            if self.rows.min() < 0 or int(self.rows.max()) >= self.shape[0]:
                raise ValueError("row index out of range")
            if self.cols.min() < 0 or int(self.cols.max()) >= self.shape[1]:
                raise ValueError("col index out of range")

    @property
    def nnz(self) -> int:
        """Stored triplet count (duplicates counted individually)."""
        return int(self.rows.shape[0])

    def sum_duplicates(self) -> "COOMatrix":
        """Collapse duplicate coordinates by summation; returns new COO.

        Sums are computed in ``vals.dtype`` (scipy semantics): narrow
        integer containers wrap on overflow — widen ``vals`` first if
        duplicate sums may exceed its range.
        """
        if self.nnz == 0:
            return COOMatrix(self.shape, self.rows, self.cols, self.vals)
        order = np.lexsort((self.rows, self.cols))
        r, c, v = self.rows[order], self.cols[order], self.vals[order]
        new = np.empty(r.size, dtype=bool)
        new[0] = True
        np.logical_or(r[1:] != r[:-1], c[1:] != c[:-1], out=new[1:])
        group = np.flatnonzero(new)
        return COOMatrix(
            self.shape, r[group], c[group],
            # dtype pinned: reduceat would widen small ints to int64.
            np.add.reduceat(v, group, dtype=v.dtype),
        )

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.vals.dtype)
        np.add.at(out, (self.rows, self.cols), self.vals)
        return out

    def copy(self) -> "COOMatrix":
        return COOMatrix(
            self.shape, self.rows.copy(), self.cols.copy(), self.vals.copy()
        )
