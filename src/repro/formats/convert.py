"""Conversions among COO, CSC, CSR and scipy.sparse.

Conversions are O(nnz) (bincount + stable sort) and always produce
sorted compressed output.  ``scipy`` interop exists so tests can check
every kernel against an independent compiled implementation, and so the
"MKL baseline" (the off-the-shelf 2-way ``+``) can be driven through
scipy, mirroring the paper's use of ``mkl_sparse_d_add``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix


def coo_to_csc(coo: COOMatrix, *, sum_duplicates: bool = True) -> CSCMatrix:
    """COO -> CSC (duplicates summed by default)."""
    return CSCMatrix.from_arrays(
        coo.shape, coo.rows, coo.cols, coo.vals, sum_duplicates=sum_duplicates
    )


def coo_to_csr(coo: COOMatrix, *, sum_duplicates: bool = True) -> CSRMatrix:
    """COO -> CSR (duplicates summed by default)."""
    return CSRMatrix.from_arrays(
        coo.shape, coo.rows, coo.cols, coo.vals, sum_duplicates=sum_duplicates
    )


def csc_to_coo(csc: CSCMatrix) -> COOMatrix:
    """CSC -> COO (no duplicates by construction, index width kept)."""
    cols = np.repeat(
        np.arange(csc.shape[1], dtype=csc.index_dtype), np.diff(csc.indptr)
    )
    return COOMatrix(csc.shape, csc.indices.copy(), cols, csc.data.copy())


def csr_to_coo(csr: CSRMatrix) -> COOMatrix:
    """CSR -> COO (no duplicates by construction, index width kept)."""
    rows = np.repeat(
        np.arange(csr.shape[0], dtype=csr.index_dtype), np.diff(csr.indptr)
    )
    return COOMatrix(csr.shape, rows, csr.indices.copy(), csr.data.copy())


def csc_to_csr(csc: CSCMatrix) -> CSRMatrix:
    """Transpose the storage axis: CSC -> CSR of the *same* matrix."""
    coo = csc_to_coo(csc)
    return CSRMatrix.from_arrays(
        coo.shape, coo.rows, coo.cols, coo.vals, sum_duplicates=False
    )


def csr_to_csc(csr: CSRMatrix) -> CSCMatrix:
    """CSR -> CSC of the same matrix."""
    coo = csr_to_coo(csr)
    return CSCMatrix.from_arrays(
        coo.shape, coo.rows, coo.cols, coo.vals, sum_duplicates=False
    )


def transpose_csc(csc: CSCMatrix) -> CSCMatrix:
    """The transpose ``A.T`` as a CSC matrix (swap row/col roles)."""
    coo = csc_to_coo(csc)
    return CSCMatrix.from_arrays(
        (csc.shape[1], csc.shape[0]), coo.cols, coo.rows, coo.vals,
        sum_duplicates=False,
    )


def to_scipy(mat) -> "sp.spmatrix":
    """Convert any of our formats to the equivalent scipy.sparse matrix."""
    if isinstance(mat, CSCMatrix):
        out = sp.csc_matrix(
            (mat.data, mat.indices, mat.indptr), shape=mat.shape, copy=True
        )
        if not mat.sorted:
            out.sort_indices()
        return out
    if isinstance(mat, CSRMatrix):
        out = sp.csr_matrix(
            (mat.data, mat.indices, mat.indptr), shape=mat.shape, copy=True
        )
        if not mat.sorted:
            out.sort_indices()
        return out
    if isinstance(mat, COOMatrix):
        return sp.coo_matrix(
            (mat.vals, (mat.rows, mat.cols)), shape=mat.shape
        )
    raise TypeError(f"unsupported matrix type {type(mat)!r}")


def from_scipy(mat: "sp.spmatrix", fmt: str = "csc"):
    """Convert a scipy.sparse matrix into one of our formats.

    ``fmt`` is ``"csc"``, ``"csr"`` or ``"coo"``.
    """
    if fmt == "csc":
        s = sp.csc_matrix(mat)
        s.sort_indices()
        s.sum_duplicates()
        # Both index and value dtypes are preserved: scipy's int32
        # indices stay int32 (no widening detour doubling index bytes)
        # and an int64 value matrix round-trips exactly, with no float64
        # detour losing integers above 2**53.
        return CSCMatrix(
            s.shape,
            s.indptr.copy(),
            s.indices.copy(),
            np.asarray(s.data).copy(),
            sorted=True,
        )
    if fmt == "csr":
        s = sp.csr_matrix(mat)
        s.sort_indices()
        s.sum_duplicates()
        return CSRMatrix(
            s.shape,
            s.indptr.copy(),
            s.indices.copy(),
            np.asarray(s.data).copy(),
            sorted=True,
        )
    if fmt == "coo":
        s = sp.coo_matrix(mat)
        return COOMatrix(s.shape, s.row, s.col, s.data)
    raise ValueError(f"unknown format {fmt!r}")
