"""Compressed Sparse Row matrices.

Row-major twin of :class:`~repro.formats.csc.CSCMatrix`.  The paper notes
all SpKAdd algorithms apply unchanged to CSR (swap the roles of rows and
columns); we use CSR mainly in the local SpGEMM substrate, where the
row-wise Gustavson formulation wants row slices of the left operand.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.formats.compressed import (
    DEFAULT_INDEX_DTYPE,
    DEFAULT_VALUE_DTYPE,
    CompressedBase,
    build_indptr,
    coerce_index_array,
)


class CSRMatrix(CompressedBase):
    """Sparse matrix in compressed-sparse-row layout."""

    _major_axis = 0  # rows are the compressed/major axis

    @classmethod
    def from_arrays(
        cls,
        shape: Tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        *,
        sum_duplicates: bool = True,
        index_dtype=None,
        value_dtype=None,
    ) -> "CSRMatrix":
        """Build from COO-style triplets (duplicates summed by default).

        ``value_dtype=None`` preserves the dtype of ``vals``; duplicate
        sums happen in the stored dtype (scipy semantics — narrow
        integer containers wrap on overflow, pass a wider
        ``value_dtype`` if triplets may collide past its range).
        ``index_dtype=None`` preserves integer index dtypes the same way
        (int32 triplets build an int32-indexed matrix).
        """
        m, n = int(shape[0]), int(shape[1])
        rows = coerce_index_array(rows, index_dtype)
        cols = coerce_index_array(cols, index_dtype)
        vals = np.asarray(vals, dtype=value_dtype)
        if not (rows.shape == cols.shape == vals.shape):
            raise ValueError("rows, cols, vals must be parallel 1-D arrays")
        if rows.size:
            if rows.min() < 0 or rows.max() >= m:
                raise ValueError("row index out of range")
            if cols.min() < 0 or cols.max() >= n:
                raise ValueError("col index out of range")
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        if sum_duplicates and rows.size:
            key_new = np.empty(rows.size, dtype=bool)
            key_new[0] = True
            np.logical_or(rows[1:] != rows[:-1], cols[1:] != cols[:-1], out=key_new[1:])
            group = np.flatnonzero(key_new)
            # dtype pinned: reduceat would widen small ints to int64.
            vals = np.add.reduceat(vals, group, dtype=vals.dtype)
            rows, cols = rows[group], cols[group]
        indptr = build_indptr(rows, m, index_dtype=cols.dtype)
        return cls(
            (m, n),
            indptr,
            np.ascontiguousarray(cols),
            np.ascontiguousarray(vals),
            sorted=True,
        )

    @classmethod
    def zeros(
        cls,
        shape: Tuple[int, int],
        *,
        index_dtype=DEFAULT_INDEX_DTYPE,
        value_dtype=DEFAULT_VALUE_DTYPE,
    ) -> "CSRMatrix":
        m, n = shape
        return cls(
            (m, n),
            np.zeros(m + 1, dtype=index_dtype),
            np.empty(0, dtype=index_dtype),
            np.empty(0, dtype=value_dtype),
            sorted=True,
        )

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        dense = np.asarray(dense)
        rows, cols = np.nonzero(dense)
        return cls.from_arrays(dense.shape, rows, cols, dense[rows, cols])

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Zero-copy ``(col_ids, values)`` view of row ``i``."""
        return self.major_slice(i)

    def row_nnz(self) -> np.ndarray:
        return self.major_nnz()

    def to_dense(self) -> np.ndarray:
        m, n = self.shape
        out = np.zeros((m, n), dtype=self.data.dtype)
        rows = np.repeat(np.arange(m, dtype=np.int64), np.diff(self.indptr))
        np.add.at(out, (rows, self.indices), self.data)
        return out

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(
            self.shape,
            self.indptr.copy(),
            self.indices.copy(),
            self.data.copy(),
            sorted=self.sorted,
            check=False,
        )

    def __eq__(self, other: object) -> bool:
        from repro.formats.convert import csr_to_csc
        from repro.formats.ops import matrices_equal

        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return matrices_equal(csr_to_csc(self), csr_to_csc(other))

    __hash__ = None
