"""Sparse-matrix storage substrate.

The paper assumes inputs and output in **CSC** (compressed sparse column)
format — nonzeros stored column by column as ``(rowid, val)`` tuples —
and notes the algorithms apply equally to CSR and COO.  This subpackage
implements all three formats from scratch on top of NumPy arrays:

* :class:`~repro.formats.csc.CSCMatrix` — the primary format used by every
  SpKAdd kernel; columns are contiguous slices, which is what makes the
  per-column (and per-column-block) parallelization embarrassingly
  parallel.
* :class:`~repro.formats.csr.CSRMatrix` — row-major twin, used by the
  local SpGEMM substrate.
* :class:`~repro.formats.coo.COOMatrix` — triplet format used by the
  generators and as an interchange format.

Conversion helpers and structural utilities live in
:mod:`~repro.formats.convert` and :mod:`~repro.formats.ops`.
"""

from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.convert import (
    coo_to_csc,
    coo_to_csr,
    csc_to_coo,
    csc_to_csr,
    csr_to_coo,
    csr_to_csc,
    from_scipy,
    to_scipy,
)
from repro.formats.ops import (
    matrices_equal,
    sum_with_scipy,
)

__all__ = [
    "COOMatrix",
    "CSCMatrix",
    "CSRMatrix",
    "coo_to_csc",
    "coo_to_csr",
    "csc_to_coo",
    "csc_to_csr",
    "csr_to_coo",
    "csr_to_csc",
    "from_scipy",
    "to_scipy",
    "matrices_equal",
    "sum_with_scipy",
]
