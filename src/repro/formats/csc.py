"""Compressed Sparse Column matrices — the paper's working format.

A CSC matrix stores its nonzeros column by column: the ``j``-th column is
the contiguous slice ``indices[indptr[j]:indptr[j+1]]`` of row ids with
parallel values.  All SpKAdd kernels in :mod:`repro.core` consume and
produce this class.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.formats.compressed import (
    DEFAULT_INDEX_DTYPE,
    DEFAULT_VALUE_DTYPE,
    CompressedBase,
    build_indptr,
    coerce_index_array,
    min_index_dtype,
)


class CSCMatrix(CompressedBase):
    """Sparse matrix in compressed-sparse-column layout.

    Construction goes through :meth:`from_arrays` (triplets),
    :meth:`from_columns` (per-column lists), or the converters in
    :mod:`repro.formats.convert`.
    """

    _major_axis = 1  # columns are the compressed/major axis

    # -------------------------------------------------------- constructors
    @classmethod
    def from_arrays(
        cls,
        shape: Tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        *,
        sum_duplicates: bool = True,
        index_dtype=None,
        value_dtype=None,
    ) -> "CSCMatrix":
        """Build from COO-style triplet arrays.

        Duplicate ``(row, col)`` entries are summed when
        ``sum_duplicates`` (the FEM-assembly convention); otherwise they
        must not occur.  ``value_dtype=None`` (the default) preserves
        the dtype of ``vals`` — int64 values survive exactly, float32
        stays float32; pass a dtype to cast explicitly.  Duplicates are
        summed *in the stored dtype* (scipy's ``sum_duplicates``
        semantics): a duplicate sum that overflows a narrow integer
        container wraps, so pass ``value_dtype=np.int64`` when int32
        triplets may collide past 2**31.

        ``index_dtype=None`` likewise preserves: int32 ``rows`` build an
        int32-indexed matrix with a matching-width ``indptr`` (widened
        only if the entry count itself overflows it); Python lists and
        non-integer arrays normalize to int64.
        """
        m, n = int(shape[0]), int(shape[1])
        rows = coerce_index_array(rows, index_dtype)
        cols = coerce_index_array(cols, index_dtype)
        vals = np.asarray(vals, dtype=value_dtype)
        if not (rows.shape == cols.shape == vals.shape):
            raise ValueError("rows, cols, vals must be parallel 1-D arrays")
        if rows.size:
            if rows.min() < 0 or rows.max() >= m:
                raise ValueError("row index out of range")
            if cols.min() < 0 or cols.max() >= n:
                raise ValueError("col index out of range")
        order = np.lexsort((rows, cols))
        rows, cols, vals = rows[order], cols[order], vals[order]
        if sum_duplicates and rows.size:
            key_new = np.empty(rows.size, dtype=bool)
            key_new[0] = True
            np.logical_or(rows[1:] != rows[:-1], cols[1:] != cols[:-1], out=key_new[1:])
            group = np.flatnonzero(key_new)
            # dtype pinned: reduceat would widen small ints to int64.
            vals = np.add.reduceat(vals, group, dtype=vals.dtype)
            rows, cols = rows[group], cols[group]
        indptr = build_indptr(cols, n, index_dtype=rows.dtype)
        return cls(
            (m, n),
            indptr,
            np.ascontiguousarray(rows),
            np.ascontiguousarray(vals),
            sorted=True,
        )

    @classmethod
    def from_columns(
        cls,
        shape: Tuple[int, int],
        columns: Iterable[Tuple[np.ndarray, np.ndarray]],
        *,
        sorted: bool = True,
        index_dtype=None,
        value_dtype=None,
    ) -> "CSCMatrix":
        """Assemble from an iterable of per-column ``(rows, vals)`` pairs.

        This is how the k-way kernels emit their output: one column at a
        time, already deduplicated.  ``value_dtype=None`` infers the
        common dtype of the column value arrays (float64 when every
        column is empty); ``index_dtype=None`` does the same over the
        row arrays (int64 when every column is empty).
        """
        m, n = int(shape[0]), int(shape[1])
        cols = list(columns)
        if len(cols) != n:
            raise ValueError(f"expected {n} columns, got {len(cols)}")
        if value_dtype is None:
            vd = [np.asarray(v).dtype for r, v in cols if len(r)]
            value_dtype = np.result_type(*vd) if vd else DEFAULT_VALUE_DTYPE
        if index_dtype is None:
            rd = [
                np.asarray(r).dtype for r, _ in cols
                if len(r) and np.asarray(r).dtype.kind == "i"
            ]
            index_dtype = np.result_type(*rd) if rd else DEFAULT_INDEX_DTYPE
        counts = np.fromiter((len(r) for r, _ in cols), dtype=np.int64, count=n)
        indptr = np.zeros(
            n + 1,
            dtype=np.promote_types(
                index_dtype, min_index_dtype(int(counts.sum()))
            ),
        )
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        indices = np.empty(total, dtype=index_dtype)
        data = np.empty(total, dtype=value_dtype)
        for j, (r, v) in enumerate(cols):
            lo, hi = indptr[j], indptr[j + 1]
            indices[lo:hi] = r
            data[lo:hi] = v
        return cls((m, n), indptr, indices, data, sorted=sorted)

    @classmethod
    def zeros(
        cls,
        shape: Tuple[int, int],
        *,
        index_dtype=DEFAULT_INDEX_DTYPE,
        value_dtype=DEFAULT_VALUE_DTYPE,
    ) -> "CSCMatrix":
        """An all-zero matrix (identity element of SpKAdd)."""
        m, n = shape
        return cls(
            (m, n),
            np.zeros(n + 1, dtype=index_dtype),
            np.empty(0, dtype=index_dtype),
            np.empty(0, dtype=value_dtype),
            sorted=True,
        )

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSCMatrix":
        """Compress a dense 2-D array (test helper)."""
        dense = np.asarray(dense)
        rows, cols = np.nonzero(dense)
        return cls.from_arrays(dense.shape, rows, cols, dense[rows, cols])

    # -------------------------------------------------------------- access
    def col(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """Zero-copy ``(row_ids, values)`` view of column ``j``."""
        return self.major_slice(j)

    def col_nnz(self) -> np.ndarray:
        """nnz of every column — the per-column work weights."""
        return self.major_nnz()

    def col_block(self, j0: int, j1: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy view of the column block ``[j0, j1)``.

        Returns ``(local_indptr, row_ids, values)``; see
        :meth:`CompressedBase.major_range_slices`.
        """
        return self.major_range_slices(j0, j1)

    def row_range_of_col(self, j: int, r0: int, r1: int) -> Tuple[np.ndarray, np.ndarray]:
        """Entries of column ``j`` with row index in ``[r0, r1)``.

        For sorted columns this is the paper's binary-search row
        partitioning used by the sliding-hash kernels (Algorithm 7
        line 9 "partition rows equally (using binary searches)");
        unsorted columns fall back to a mask.
        """
        rows, vals = self.col(j)
        if self.sorted:
            lo = int(np.searchsorted(rows, r0, side="left"))
            hi = int(np.searchsorted(rows, r1, side="left"))
            return rows[lo:hi], vals[lo:hi]
        mask = (rows >= r0) & (rows < r1)
        return rows[mask], vals[mask]

    def to_dense(self) -> np.ndarray:
        """Densify (test helper; O(m*n) memory)."""
        m, n = self.shape
        out = np.zeros((m, n), dtype=self.data.dtype)
        cols = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.indptr))
        np.add.at(out, (self.indices, cols), self.data)
        return out

    def copy(self) -> "CSCMatrix":
        return CSCMatrix(
            self.shape,
            self.indptr.copy(),
            self.indices.copy(),
            self.data.copy(),
            sorted=self.sorted,
            check=False,
        )

    # ----------------------------------------------------------- structure
    def select_columns(self, j0: int, j1: int) -> "CSCMatrix":
        """New matrix containing columns ``[j0, j1)`` (shape m x (j1-j0))."""
        indptr, idx, dat = self.col_block(j0, j1)
        return CSCMatrix(
            (self.shape[0], j1 - j0),
            indptr.copy(),
            idx.copy(),
            dat.copy(),
            sorted=self.sorted,
            check=False,
        )

    def col_view(self, j0: int, j1: int) -> "CSCMatrix":
        """Zero-copy matrix over columns ``[j0, j1)``.

        Shares ``indices``/``data`` buffers with ``self`` (the rebased
        pointer array is the only allocation).  This is what the
        thread-pool executor hands each worker: no data is copied when
        columns are divided among threads.
        """
        lo = int(self.indptr[j0])
        # A view of a zero-copy shm result is itself shm-backed (NumPy
        # slices keep the segment alive through their base arrays).
        return self._derive(
            (self.shape[0], j1 - j0),
            self.indptr[j0 : j1 + 1] - lo,
            self.indices[lo : int(self.indptr[j1])],
            self.data[lo : int(self.indptr[j1])],
            sorted=self.sorted,
            shares_buffers=True,
        )

    def embed_columns(self, n_total: int, j_offset: int) -> "CSCMatrix":
        """Place this matrix's columns at offset ``j_offset`` inside a wider
        all-zero matrix with ``n_total`` columns.

        This implements the paper's SpKAdd input construction: "we create
        an m x n matrix and then split this matrix along the column to
        create k m x n/k matrices" — each piece is then re-embedded so all
        k addends share the full m x n shape.
        """
        m, n = self.shape
        if j_offset < 0 or j_offset + n > n_total:
            raise ValueError("embedded columns out of range")
        indptr = np.zeros(n_total + 1, dtype=self.indptr.dtype)
        indptr[j_offset + 1 : j_offset + n + 1] = self.indptr[1:]
        indptr[j_offset + n + 1 :] = self.indptr[-1]
        return CSCMatrix(
            (m, n_total),
            indptr,
            self.indices.copy(),
            self.data.copy(),
            sorted=self.sorted,
            check=False,
        )

    def scaled(self, alpha: float) -> "CSCMatrix":
        """Return ``alpha * self`` (same sparsity structure)."""
        out = self.copy()
        out.data *= alpha
        return out

    def drop_explicit_zeros(self, tol: float = 0.0) -> "CSCMatrix":
        """Remove stored entries with ``|value| <= tol``.

        SpKAdd can produce numerically cancelled entries; the paper keeps
        them (nnz(B) counts structural nonzeros), so kernels do not call
        this — it exists for the gradient-sparsification example.
        """
        keep = np.abs(self.data) > tol
        cols = np.repeat(np.arange(self.shape[1], dtype=np.int64), np.diff(self.indptr))
        return CSCMatrix(
            self.shape,
            build_indptr(cols[keep], self.shape[1], index_dtype=self.indptr.dtype),
            np.ascontiguousarray(self.indices[keep]),
            np.ascontiguousarray(self.data[keep]),
            sorted=self.sorted,
            check=False,
        )

    def __eq__(self, other: object) -> bool:  # structural + numerical equality
        from repro.formats.ops import matrices_equal

        if not isinstance(other, CSCMatrix):
            return NotImplemented
        return matrices_equal(self, other)

    __hash__ = None  # mutable container
