"""Structural operations and independent reference computations.

``sum_with_scipy`` is the ground-truth oracle every SpKAdd kernel is
tested against: an independent, compiled implementation of the same
mathematical reduction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.formats.csc import CSCMatrix
from repro.formats.convert import from_scipy, to_scipy


def matrices_equal(
    a: CSCMatrix,
    b: CSCMatrix,
    *,
    rtol: float = 1e-9,
    atol: float = 1e-12,
    structural: bool = False,
) -> bool:
    """Compare two CSC matrices after canonicalization.

    Canonical form sorts each column by row index; numerically cancelled
    explicit zeros still count as stored entries (matching the paper's
    structural nnz accounting), so two matrices differing only in
    explicit zeros are *not* equal unless ``structural`` comparison is
    what you want — in that case drop explicit zeros first.
    """
    if a.shape != b.shape:
        return False
    ca, cb = a, b
    if not ca.sorted:
        ca = ca.copy()
        ca.sort_indices()
    if not cb.sorted:
        cb = cb.copy()
        cb.sort_indices()
    if ca.nnz != cb.nnz:
        return False
    if not np.array_equal(ca.indptr, cb.indptr):
        return False
    if not np.array_equal(ca.indices, cb.indices):
        return False
    if structural:
        return True
    return bool(np.allclose(ca.data, cb.data, rtol=rtol, atol=atol))


def sum_with_scipy(mats: Sequence[CSCMatrix]) -> CSCMatrix:
    """Ground-truth SpKAdd via scipy's compiled pairwise addition.

    Note scipy (like MKL) drops nothing: ``+`` keeps explicit zeros
    produced by cancellation out of its result only when they were never
    stored; summed cancellations *are* pruned by scipy.  Our kernels keep
    them (structural semantics), so tests compare against this oracle
    with explicit zeros removed from both sides.
    """
    acc = to_scipy(mats[0]).tocsc()
    for m in mats[1:]:
        acc = acc + to_scipy(m).tocsc()
    acc.sort_indices()
    return from_scipy(acc, "csc")


def canonicalize(mat: CSCMatrix) -> CSCMatrix:
    """Sorted-column copy of ``mat`` (does not drop explicit zeros)."""
    out = mat.copy()
    out.sort_indices()
    return out


def compression_factor(inputs_nnz: int, output_nnz: int) -> float:
    """The paper's cf = sum_i nnz(A_i) / nnz(B); cf >= 1 by definition."""
    if output_nnz == 0:
        return float("inf") if inputs_nnz > 0 else 1.0
    return inputs_nnz / output_nnz
