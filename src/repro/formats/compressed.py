"""Shared machinery for the two compressed formats (CSC and CSR).

Both formats store a pointer array of length ``n_compressed + 1``, a
minor-axis index array and a value array.  The only difference is which
axis is compressed, so the bulk of the implementation lives here and the
concrete classes supply axis naming.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro import env

#: fallback index dtype when the caller supplies no index arrays to
#: infer from (Python lists land here via ``np.asarray``).  Constructors
#: that receive integer index arrays preserve the caller's dtype — an
#: int32-indexed matrix stays int32-indexed end to end.
DEFAULT_INDEX_DTYPE = np.int64

#: fallback value dtype for empty/zero constructions only.  Constructors
#: that receive values (``from_arrays``, ``from_columns``, the scipy
#: converters) preserve the caller's dtype rather than coercing to this.
DEFAULT_VALUE_DTYPE = np.float64

#: environment variable pinning the default index width resolved by
#: :func:`resolve_index_dtype` (``int32`` or ``int64``; the safe-widening
#: guard still promotes a pinned int32 that cannot hold the call).
INDEX_DTYPE_ENV_VAR = "REPRO_INDEX_DTYPE"

#: largest value an int32 index / pointer entry may hold.  A module
#: attribute (not an inlined constant) so the overflow-boundary tests
#: can lower it and drive real promotions through every executor
#: without materializing 2**31 entries.
INT32_INDEX_CAPACITY = int(np.iinfo(np.int32).max)

#: index widths the pipeline allocates in, narrowest first.  The paper
#: stores 32-bit row indices (Section III-B); int64 is the safe fallback
#: for matrices or outputs that outgrow them.
SUPPORTED_INDEX_DTYPES = (np.dtype(np.int32), np.dtype(np.int64))


def min_index_dtype(*bounds: int) -> np.dtype:
    """Narrowest supported index dtype holding every value in ``bounds``.

    >>> min_index_dtype(100).str.lstrip('<')
    'i4'
    """
    hi = max((int(b) for b in bounds), default=0)
    if hi <= INT32_INDEX_CAPACITY:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


def coerce_index_array(arr, index_dtype=None) -> np.ndarray:
    """``arr`` as a signed-integer index array.

    ``index_dtype=None`` is the preservation contract: a signed-integer
    input keeps its dtype (int32 triplets build int32-indexed matrices)
    while anything else — Python lists, unsigned or float arrays —
    normalizes to :data:`DEFAULT_INDEX_DTYPE`.  An explicit dtype casts.
    """
    arr = np.asarray(arr)
    if index_dtype is not None:
        return arr.astype(index_dtype, copy=False)
    if arr.dtype.kind != "i":
        return arr.astype(DEFAULT_INDEX_DTYPE)
    return arr


def _index_bound(mats, shape, nnz) -> int:
    """Largest value any index or pointer entry of a call over ``mats``
    may take: matrix dimensions (minor indices) and summed nnz (pointer
    entries, which bound the output nnz of SpKAdd)."""
    bound = 0
    total = 0
    for A in mats:
        bound = max(bound, int(A.shape[0]), int(A.shape[1]))
        total += int(A.nnz)
    if shape is not None:
        bound = max(bound, int(shape[0]), int(shape[1]))
    if nnz is not None:
        total = max(total, int(nnz))
    return max(bound, total)


def resolve_index_dtype(mats=(), index_dtype=None, *, shape=None, nnz=None) -> np.dtype:
    """The index dtype SpKAdd allocates — and emits — for ``mats``.

    The default rule is the paper's: indices are 32-bit whenever the
    matrix dimensions *and* the call's nnz bound (summed input nnz, an
    upper bound on output nnz and on every output pointer entry) fit in
    int32, and 64-bit otherwise.  ``index_dtype`` overrides the width
    (``"int32"``/``"int64"``; narrower integer requests widen to the
    narrowest supported width), and the ``REPRO_INDEX_DTYPE``
    environment variable overrides the default when no explicit argument
    is given.

    The **safe-widening guard** applies to every path: a requested (or
    pinned) int32 that cannot hold the call's bounds transparently
    promotes to int64 instead of letting indices or ``indptr`` wrap.

    ``mats`` holds matrices (anything with ``shape``/``nnz``); ``shape``
    and ``nnz`` add bounds known out-of-band (e.g. a generator sizing
    its triplet arrays before any matrix exists).  Every layer — format
    constructors given no explicit width, kernel emit paths, the
    executors' concatenation, and the shared-memory engine's
    scratch/output segments — sizes its index buffers from this one
    rule, which is what keeps the emitted index dtype identical across
    methods, backends, executors, and chunkings.
    """
    if index_dtype is None or index_dtype == "auto":
        index_dtype = env.get(INDEX_DTYPE_ENV_VAR)
    floor = np.dtype(np.int32)
    if index_dtype is not None:
        dt = np.dtype(index_dtype)
        if dt.kind != "i":
            raise TypeError(
                f"index dtype must be a signed integer, got {dt}"
            )
        floor = max(
            SUPPORTED_INDEX_DTYPES[0], min(dt, SUPPORTED_INDEX_DTYPES[-1])
        )
    # The guard: never hand back a width the call's bounds overflow.
    return max(floor, min_index_dtype(_index_bound(mats, shape, nnz)))


class CompressedBase:
    """Common storage/validation for compressed sparse formats.

    Attributes
    ----------
    indptr:
        ``int`` array of length ``n_major + 1``; entries of major slice
        ``j`` occupy ``indices[indptr[j]:indptr[j+1]]``.
    indices:
        minor-axis indices of the nonzeros (row ids for CSC, column ids
        for CSR).
    data:
        nonzero values, aligned with ``indices``.
    shape:
        ``(n_rows, n_cols)`` of the logical matrix.
    sorted:
        whether every major slice has strictly increasing minor indices.
        The heap and 2-way kernels require sorted inputs; hash and SPA do
        not (Table I, last column).
    buffer_owner:
        ``None`` for matrices over private memory (the overwhelming
        default).  The shared-memory engine's zero-copy results instead
        carry the keep-alive owner of the segment backing
        ``indices``/``data``
        (:class:`repro.parallel.shm.SharedResultOwner`); lifetime safety
        does **not** depend on this attribute — the arrays themselves pin
        the segment via finalizers — it exists so callers can detect
        shared backing (:attr:`is_shm_backed`) and request a private
        copy (:meth:`materialize`).
    """

    #: subclass sets: 0 if rows are the major (CSR), 1 if columns (CSC)
    _major_axis: int = 1

    __slots__ = ("indptr", "indices", "data", "shape", "sorted",
                 "buffer_owner")

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        *,
        sorted: bool = True,
        check: bool = True,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.asarray(indptr)
        self.indices = np.asarray(indices)
        self.data = np.asarray(data)
        self.sorted = bool(sorted)
        self.buffer_owner = None
        if not np.issubdtype(self.indptr.dtype, np.integer):
            self.indptr = self.indptr.astype(DEFAULT_INDEX_DTYPE)
        if not np.issubdtype(self.indices.dtype, np.integer):
            raise TypeError("indices must be an integer array")
        if check:
            self.validate()

    # ---------------------------------------------------------------- core
    @property
    def nnz(self) -> int:
        """Number of stored nonzero entries."""
        return int(self.indices.shape[0])

    @property
    def n_major(self) -> int:
        return self.shape[self._major_axis]

    @property
    def n_minor(self) -> int:
        return self.shape[1 - self._major_axis]

    @property
    def nbytes(self) -> int:
        """Bytes of the three backing arrays (the paper's I/O unit)."""
        return self.indptr.nbytes + self.indices.nbytes + self.data.nbytes

    @property
    def index_dtype(self) -> np.dtype:
        """Dtype of the minor-index array (the stored index width)."""
        return self.indices.dtype

    @property
    def is_shm_backed(self) -> bool:
        """True when ``indices``/``data`` live in an engine-owned shared
        segment (a zero-copy shm result); see :meth:`materialize`."""
        return self.buffer_owner is not None

    def _derive(
        self, shape, indptr, indices, data, *, sorted, shares_buffers
    ) -> "CompressedBase":
        """Same-type matrix built from arrays derived from this one.

        Every derived-matrix constructor routes through here so the
        shared-backing decision is made explicitly at each site:
        ``shares_buffers=True`` means some arrays are (views of) this
        matrix's buffers, so the shared-backing marker must travel with
        them; ``False`` means all arrays are private copies.
        """
        out = type(self)(
            shape, indptr, indices, data, sorted=sorted, check=False
        )
        if shares_buffers:
            out.buffer_owner = self.buffer_owner
        return out

    def materialize(self) -> "CompressedBase":
        """Private-memory copy of a shared-segment-backed matrix.

        Returns ``self`` unchanged when the matrix already owns private
        buffers.  Use this before handing a zero-copy shm result to code
        that must outlive any shared-memory bookkeeping (the original's
        segment still unlinks on its own gc).
        """
        if self.buffer_owner is None:
            return self
        return type(self)(
            self.shape,
            self.indptr.copy(),
            self.indices.copy(),
            self.data.copy(),
            sorted=self.sorted,
            check=False,
        )

    def validate(self) -> None:
        """Check the structural invariants of the format.

        Raises ``ValueError`` on inconsistent pointers, out-of-range
        minor indices, or a ``sorted`` flag contradicted by the data.
        """
        m, n = self.shape
        if m < 0 or n < 0:
            raise ValueError(f"negative shape {self.shape}")
        if self.indptr.ndim != 1 or self.indptr.shape[0] != self.n_major + 1:
            raise ValueError(
                f"indptr must have length n_major+1={self.n_major + 1}, "
                f"got {self.indptr.shape}"
            )
        if self.indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be nondecreasing")
        if int(self.indptr[-1]) != self.indices.shape[0]:
            raise ValueError(
                f"indptr[-1]={int(self.indptr[-1])} does not match "
                f"nnz={self.indices.shape[0]}"
            )
        if self.indices.shape != self.data.shape:
            raise ValueError("indices and data must be parallel arrays")
        if self.nnz:
            lo = int(self.indices.min())
            hi = int(self.indices.max())
            if lo < 0 or hi >= self.n_minor:
                raise ValueError(
                    f"minor indices out of range [0, {self.n_minor}): "
                    f"min={lo} max={hi}"
                )
        if self.sorted and not self._check_sorted():
            raise ValueError("sorted=True but minor indices are not sorted")

    def _check_sorted(self) -> bool:
        """True iff every major slice is strictly increasing."""
        if self.nnz == 0:
            return True
        d = np.diff(self.indices)
        # Positions where a new major slice starts may legally decrease.
        starts = self.indptr[1:-1]
        ok = d > 0
        ok[starts[(starts > 0) & (starts < self.nnz)] - 1] = True
        return bool(ok.all())

    # ------------------------------------------------------------- slicing
    def major_slice(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """(indices, values) view of major slice ``j`` — O(1), no copy."""
        lo, hi = int(self.indptr[j]), int(self.indptr[j + 1])
        return self.indices[lo:hi], self.data[lo:hi]

    def major_range_slices(self, j0: int, j1: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Contiguous view over major slices ``[j0, j1)``.

        Returns ``(indptr_local, indices, data)`` where ``indptr_local``
        is rebased to start at zero.  Because compressed storage keeps
        consecutive major slices adjacent, this is a zero-copy view —
        the property the paper's column-block parallelization exploits.
        """
        lo, hi = int(self.indptr[j0]), int(self.indptr[j1])
        return (
            self.indptr[j0 : j1 + 1] - lo,
            self.indices[lo:hi],
            self.data[lo:hi],
        )

    def major_nnz(self) -> np.ndarray:
        """nnz of each major slice (the load-balancing weights)."""
        return np.diff(self.indptr)

    def astype(self, value_dtype, *, copy: bool = False) -> "CompressedBase":
        """This matrix with its values cast to ``value_dtype``.

        Returns ``self`` when the dtype already matches (unless
        ``copy=True``); otherwise a new matrix sharing the index arrays
        with the original (only the value array is rebuilt).  Beware
        that casting can lose information — float64 -> float32 rounds,
        float -> int truncates — exactly as ``ndarray.astype`` does.
        """
        dt = np.dtype(value_dtype)
        if not copy and dt == self.data.dtype:
            return self
        # The index arrays stay shared with the original.
        return self._derive(
            self.shape,
            self.indptr,
            self.indices,
            self.data.astype(dt, copy=True),
            sorted=self.sorted,
            shares_buffers=True,
        )

    def with_index_dtype(self, index_dtype, *, copy: bool = False) -> "CompressedBase":
        """This matrix with its index arrays cast to ``index_dtype``.

        Returns ``self`` when both ``indptr`` and ``indices`` already
        match (unless ``copy=True``); otherwise a new matrix sharing the
        value array with the original.  Unlike ``ndarray.astype`` the
        cast is checked: narrowing a matrix whose dimensions or nnz do
        not fit the target raises instead of silently wrapping indices
        (use :func:`resolve_index_dtype` for transparent promotion).
        """
        dt = np.dtype(index_dtype)
        if dt.kind != "i":
            raise TypeError(f"index dtype must be a signed integer, got {dt}")
        if (
            not copy
            and dt == self.indices.dtype
            and dt == self.indptr.dtype
        ):
            return self
        limit = np.iinfo(dt).max
        if max(self.n_minor - 1, self.nnz) > limit:
            raise OverflowError(
                f"matrix with n_minor={self.n_minor}, nnz={self.nnz} does "
                f"not fit {dt} indices"
            )
        # The value array (and possibly the index arrays, when astype is
        # a no-op cast) stays shared.
        return self._derive(
            self.shape,
            self.indptr.astype(dt, copy=copy),
            self.indices.astype(dt, copy=copy),
            self.data,
            sorted=self.sorted,
            shares_buffers=True,
        )

    # ------------------------------------------------------------ mutation
    def sort_indices(self) -> None:
        """Sort every major slice by minor index, in place.

        Uses a single stable argsort over (major, minor) pairs, which is
        how a compiled library would canonicalize; cost O(nnz log nnz).
        """
        if self.sorted or self.nnz == 0:
            self.sorted = True
            return
        major = np.repeat(
            np.arange(self.n_major, dtype=np.int64), np.diff(self.indptr)
        )
        order = np.lexsort((self.indices, major))
        self.indices = np.ascontiguousarray(self.indices[order])
        self.data = np.ascontiguousarray(self.data[order])
        self.sorted = True
        # The fancy-indexed arrays above are private copies; the shared
        # segment (if any) is referenced only by the arrays just
        # dropped, so this matrix is no longer shm-backed.
        self.buffer_owner = None

    # ------------------------------------------------------------- dunders
    def __getstate__(self):
        # The arrays pickle by value, so a transported matrix owns
        # private memory — drop the (unpicklable, segment-bound)
        # buffer_owner rather than serializing it.  This is what lets a
        # zero-copy shm result be pickled, cached, or fed back through
        # the process executor's chunk transport.
        return {
            "shape": self.shape,
            "indptr": self.indptr,
            "indices": self.indices,
            "data": self.data,
            "sorted": self.sorted,
        }

    def __setstate__(self, state) -> None:
        self.shape = state["shape"]
        self.indptr = state["indptr"]
        self.indices = state["indices"]
        self.data = state["data"]
        self.sorted = state["sorted"]
        self.buffer_owner = None

    def __copy__(self) -> "CompressedBase":
        # A shallow copy shares the arrays — including segment-backed
        # ones — so unlike pickling it must keep the shared-backing
        # marker (the copy protocol would otherwise reuse
        # __getstate__/__setstate__ and falsely report private memory).
        return self._derive(
            self.shape, self.indptr, self.indices, self.data,
            sorted=self.sorted, shares_buffers=True,
        )

    def __deepcopy__(self, memo) -> "CompressedBase":
        import copy as _copy

        return type(self)(
            self.shape,
            _copy.deepcopy(self.indptr, memo),
            _copy.deepcopy(self.indices, memo),
            _copy.deepcopy(self.data, memo),
            sorted=self.sorted,
            check=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cls = type(self).__name__
        return (
            f"<{cls} shape={self.shape} nnz={self.nnz} "
            f"sorted={self.sorted} dtype={self.data.dtype}>"
        )


def build_indptr(
    major_ids: np.ndarray, n_major: int, *, index_dtype=None
) -> np.ndarray:
    """Pointer array from (unsorted-count) major ids via bincount.

    ``index_dtype`` sets the pointer width; ``None`` keeps the
    historical int64.  A requested width too narrow for the entry count
    is widened (pointer entries run up to nnz).
    """
    counts = np.bincount(major_ids, minlength=n_major)
    dtype = np.promote_types(
        np.dtype(index_dtype) if index_dtype is not None else np.int64,
        min_index_dtype(int(major_ids.shape[0])),
    )
    indptr = np.zeros(n_major + 1, dtype=dtype)
    np.cumsum(counts, out=indptr[1:])
    return indptr
