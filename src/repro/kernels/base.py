"""Backend interface for the hash-family accumulation engines.

A *backend* is the engine that turns parallel ``(key, value)`` arrays
into deduplicated ``(key, sum)`` pairs — the inner operation of
Algorithms 5–8.  Two implementations ship with the repo:

``instrumented``
    The paper-faithful vectorized linear-probing hash table
    (:mod:`repro.core.hashtable`).  It is the source of truth for the
    paper's work/probe/cache-trace statistics and every figure/table
    reproduction runs on it.

``fast``
    A sort/segmented-reduce accumulator with no hash table at all.
    It produces numerically identical sums (duplicates are reduced in
    the same left-to-right order the hash table accumulates them) an
    order of magnitude faster, but reports no slot-level statistics.

Backends are looked up through :func:`repro.kernels.get_backend`; the
kernels in :mod:`repro.core.hash_add` and :mod:`repro.core.sliding_hash`
accept a ``backend=`` keyword and the :func:`repro.spkadd` facade adds a
``REPRO_BACKEND`` environment override.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.core.hashtable import HashAccumResult, resolve_value_dtype
from repro.formats.compressed import resolve_index_dtype
from repro.formats.csc import CSCMatrix


class Backend:
    """Accumulation engine behind the hash-family SpKAdd kernels.

    Attributes
    ----------
    name:
        Registry key (``"instrumented"``, ``"fast"``).
    provides_stats:
        Whether :attr:`HashAccumResult.slot_ops`/``probes`` are real
        measurements.  When ``False`` they are reported as zero and the
        cost model cannot consume the run.
    supports_trace:
        Whether ``capture_trace=True`` yields a slot-index trace for the
        cache simulator.
    """

    name: str = ""
    provides_stats: bool = False
    supports_trace: bool = False

    def accumulate(
        self,
        keys: np.ndarray,
        vals: np.ndarray,
        table_size: Optional[int] = None,
        *,
        capture_trace: bool = False,
    ) -> HashAccumResult:
        """Sum ``vals`` by ``keys``; see :func:`~repro.core.hashtable.hash_accumulate`."""
        raise NotImplementedError

    def result_value_dtype(
        self, mats: Sequence[CSCMatrix], value_dtype: Any = None
    ) -> np.dtype:
        """Value dtype this engine accumulates — and emits — for ``mats``.

        The common ``np.result_type`` of the k inputs' value arrays
        (or the caller's ``value_dtype`` override), widened to an
        accumulator-native dtype by
        :func:`repro.core.hashtable.resolve_value_dtype`.  Executors use
        this to allocate output (and, for the shared-memory engine,
        scratch) buffers in the dtype the kernels will actually produce
        instead of assuming float64.
        """
        return resolve_value_dtype(mats, value_dtype)

    def result_index_dtype(
        self, mats: Sequence[CSCMatrix], index_dtype: Any = None
    ) -> np.dtype:
        """Index dtype this engine allocates — and emits — for ``mats``.

        The paper's width rule via
        :func:`repro.formats.compressed.resolve_index_dtype`: int32
        whenever the matrix dimensions and the call's nnz bound fit,
        int64 otherwise; an explicit ``index_dtype`` (or the
        ``REPRO_INDEX_DTYPE`` environment pin) overrides the width,
        subject to the safe-widening guard.  Executors use this to size
        output (and, for the shared-memory engine, scratch) index
        buffers in the width the kernels will actually emit.
        """
        return resolve_index_dtype(mats, index_dtype)

    def symbolic_col_nnz(self, mats: Sequence[CSCMatrix]) -> np.ndarray:
        """Exact per-column output nnz of ``sum(mats)`` — the sizing
        pre-pass of the shared-memory executor.

        The output structure of SpKAdd is the structural union of the
        inputs regardless of algorithm or engine, so both backends share
        the sort/unique oracle; an engine may override this to meter the
        pass (the instrumented probing table does so through
        :func:`repro.core.hash_add.hash_symbolic` when stats are
        requested by the caller).
        """
        from repro.core.symbolic import exact_output_col_nnz

        return exact_output_col_nnz(mats)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
