"""Accumulation backends for the hash-family SpKAdd kernels.

========================  ====================================================
backend                   engine
========================  ====================================================
``instrumented``          paper-faithful linear-probing hash table; source of
                          truth for slot-op/probe/cache-trace statistics
``fast``                  sort + segmented reduce; bit-identical matrices, no
                          stats, order-of-magnitude faster
========================  ====================================================

See :mod:`repro.kernels.registry` for the resolution rules (explicit
argument > ``REPRO_BACKEND`` env var > caller default).
"""

from repro.core.hashtable import resolve_value_dtype
from repro.formats.compressed import resolve_index_dtype
from repro.kernels.base import Backend
from repro.kernels.fast import FastBackend, sort_reduce
from repro.kernels.instrumented import InstrumentedBackend
from repro.kernels.registry import (
    BACKEND_ENV_VAR,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)

__all__ = [
    "Backend",
    "FastBackend",
    "InstrumentedBackend",
    "BACKEND_ENV_VAR",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "resolve_index_dtype",
    "resolve_value_dtype",
    "sort_reduce",
]
