"""The paper-faithful backend: vectorized linear-probing hash table.

A thin adapter over :mod:`repro.core.hashtable` — all probing semantics,
op accounting, and trace capture live there unchanged.  This backend is
what every paper figure/table reproduction runs on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.hashtable import HashAccumResult, hash_accumulate
from repro.kernels.base import Backend


class InstrumentedBackend(Backend):
    """Linear-probing hash engine with full slot-op/probe/trace stats."""

    name = "instrumented"
    provides_stats = True
    supports_trace = True

    def accumulate(
        self,
        keys: np.ndarray,
        vals: np.ndarray,
        table_size: Optional[int] = None,
        *,
        capture_trace: bool = False,
    ) -> HashAccumResult:
        return hash_accumulate(
            keys, vals, table_size, capture_trace=capture_trace
        )
