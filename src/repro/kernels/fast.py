"""Fast backend: sort + segmented reduce, no hash table at all.

The accumulation a hash table performs — summing values that share a
key — is exactly a segmented reduction over the key-sorted order.  NumPy
executes that as three vectorized passes (stable argsort, boundary
detection, ``np.add.reduceat``) with no Python-level probing rounds,
which is an order of magnitude faster than the instrumented engine at
typical block sizes.

Numerical equivalence is exact, not approximate: the instrumented table
accumulates duplicates of a key in gathered-array order (first
occurrence inserts, later occurrences add left to right), and a *stable*
sort followed by ``reduceat`` reduces each segment in that same order,
so the sums are bit-identical floats.

What this backend cannot do is meter the paper's quantities: there are
no slots, so ``slot_ops``/``probes`` are reported as zero and trace
capture is unsupported.  Use the ``instrumented`` backend for any run
whose statistics feed the cost model or the cache simulator.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.hashtable import HashAccumResult, accum_dtype
from repro.kernels.base import Backend
from repro.util.hashing import table_size_for


def sort_reduce(
    keys: np.ndarray, vals: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Deduplicate ``keys`` and sum their ``vals``, output sorted by key.

    Duplicates are summed strictly left to right in the order they
    appear in ``vals`` — the same order the linear-probing table
    accumulates them — so the sums are bit-identical to the instrumented
    backend, not merely close.  (``np.add.reduceat`` is *not* usable
    here: its inner reduce associates differently, changing float
    results in the last ulp.)

    Integer key dtypes are preserved: int32 composite keys (narrow
    blocks — see :func:`repro.core.blocks.composite_keys`) sort at half
    the bytes of int64, which is most of this backend's runtime.
    """
    keys = np.asarray(keys)
    if keys.dtype.kind != "i":
        keys = keys.astype(np.int64)
    vals = np.asarray(vals)
    if keys.shape != vals.shape:
        raise ValueError("keys and vals must be parallel arrays")
    out_dtype = accum_dtype(vals.dtype)
    if keys.size == 0:
        return keys, vals.astype(out_dtype)
    order = np.argsort(keys, kind="stable")
    sk = keys[order]
    starts = np.empty(sk.size, dtype=bool)
    starts[0] = True
    np.not_equal(sk[1:], sk[:-1], out=starts[1:])
    out_keys = sk[starts]
    n_out = int(out_keys.size)
    # Output-slot id of every input element, in ORIGINAL array order, so
    # the scatter-add below visits duplicates exactly as gathered.
    slot = np.empty(keys.size, dtype=np.int64)
    slot[order] = np.cumsum(starts) - 1
    if out_dtype == np.float64:
        # bincount's C loop is a strict in-order scatter-add and is the
        # fastest path NumPy offers for float64 weights.
        out_vals = np.bincount(slot, weights=vals, minlength=n_out)
    else:
        out_vals = np.zeros(n_out, dtype=out_dtype)
        np.add.at(out_vals, slot, vals)
    return out_keys, out_vals


class FastBackend(Backend):
    """Sort/segmented-reduce accumulator (production default)."""

    name = "fast"
    provides_stats = False
    supports_trace = False

    def accumulate(
        self,
        keys: np.ndarray,
        vals: np.ndarray,
        table_size: Optional[int] = None,
        *,
        capture_trace: bool = False,
    ) -> HashAccumResult:
        if capture_trace:
            raise ValueError(
                "the 'fast' backend has no hash table to trace; use "
                "backend='instrumented' for cache simulation"
            )
        out_keys, out_vals = sort_reduce(keys, vals)
        if table_size is None:
            table_size = table_size_for(len(out_keys))
        return HashAccumResult(
            keys=out_keys,
            vals=out_vals,
            table_size=table_size,
            slot_ops=0,
            probes=0,
            trace=None,
        )
