"""Backend registry and resolution rules.

Resolution order for the hash-family kernels:

1. an explicit ``backend="..."`` argument;
2. the ``REPRO_BACKEND`` environment variable;
3. the caller's default — ``"instrumented"`` for direct kernel calls
   (``spkadd_hash`` et al., so existing instrumentation-consuming code
   keeps measuring), ``"fast"`` for the :func:`repro.spkadd` facade
   (production callers who never read slot-level stats get the fast
   engine automatically).

A request that requires trace capture always lands on a backend with
``supports_trace``; asking for traces from an explicitly-selected
non-tracing backend is an error rather than a silent downgrade.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro import env
from repro.kernels.base import Backend
from repro.kernels.fast import FastBackend
from repro.kernels.instrumented import InstrumentedBackend

#: environment variable overriding the default backend choice.
BACKEND_ENV_VAR = "REPRO_BACKEND"

_BACKENDS: Dict[str, Backend] = {}


def register_backend(backend: Backend) -> None:
    """Add ``backend`` to the registry under ``backend.name``."""
    if not backend.name:
        raise ValueError("backend must have a non-empty name")
    _BACKENDS[backend.name] = backend


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def get_backend(name: str) -> Backend:
    """Look up a backend by name.

    >>> get_backend("fast").name
    'fast'
    """
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from {available_backends()}"
        ) from None


def resolve_backend(
    name: Optional[str] = None,
    *,
    default: str = "instrumented",
    need_trace: bool = False,
) -> Backend:
    """Apply the resolution rules above and return a :class:`Backend`.

    ``name=None`` or ``name="auto"`` consults ``REPRO_BACKEND`` then
    ``default``.  ``need_trace=True`` (a ``trace_sink`` was passed)
    forces a tracing-capable backend when the choice was implicit, and
    raises when an explicit choice cannot trace.
    """
    explicit = name is not None and name != "auto"
    if not explicit:
        name = env.get(BACKEND_ENV_VAR) or default
    backend = get_backend(name)
    if need_trace and not backend.supports_trace:
        if explicit:
            raise ValueError(
                f"backend {backend.name!r} cannot capture slot traces; "
                "use backend='instrumented'"
            )
        backend = get_backend("instrumented")
    return backend


register_backend(InstrumentedBackend())
register_backend(FastBackend())
