"""Simulated phase times for the distributed SpGEMM (Fig 6).

Converts the per-rank records of a :class:`~repro.distributed.summa.
SummaResult` into simulated seconds on a machine (Cori KNL for the
paper's runs, 8 threads per process).  Fig 6 reports two computation
phases per configuration — **Local Multiply** and **SpKAdd** — with
communication excluded; we do the same and take the maximum over ranks
(the critical path of a bulk-synchronous run).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2
from typing import Dict

from repro.distributed.summa import SummaResult
from repro.machine.costmodel import CostModel
from repro.machine.spec import MachineSpec

#: cycles per expanded multiply-add in the local SpGEMM (compiled-code
#: scale; the hash-accumulate cost is charged separately through the
#: cost model's hash constant).
FLOP_CYCLES = 4.0
#: cycles per entry per comparison level of the intermediate sort.
SORT_CYCLES = 3.0


@dataclass
class SpGEMMPhaseTimes:
    """Simulated seconds of the two computation phases."""

    local_multiply: float
    spkadd: float
    comm_estimate: float

    @property
    def computation(self) -> float:
        return self.local_multiply + self.spkadd


def spgemm_phase_times(
    result: SummaResult,
    machine: MachineSpec,
    *,
    threads_per_process: int = 8,
    cost_model: CostModel | None = None,
) -> SpGEMMPhaseTimes:
    """Critical-path phase times of a simulated SUMMA run."""
    cm = cost_model or CostModel(machine, threads=threads_per_process)
    sec = 1.0 / machine.clock_hz

    worst_mult = 0.0
    worst_add = 0.0
    for rec in result.ranks:
        ms = rec.multiply
        cycles = ms.flops * FLOP_CYCLES
        cycles += ms.hash_ops * cm.cycles_per_op.get("hash", 10.0)
        for tb, acc in ms.table_traffic.items():
            cycles += acc * cm._access_extra_cycles(tb)
        if ms.sort_entries:
            avg_col = max(ms.out_nnz / max(result.stages, 1), 2.0)
            cycles += ms.sort_entries * SORT_CYCLES * max(log2(avg_col), 1.0)
        worst_mult = max(worst_mult, cycles * sec / max(threads_per_process, 1))

        t_add = cm.time_two_phase(rec.spkadd_stats, rec.spkadd_symbolic)
        worst_add = max(worst_add, t_add.total)

    return SpGEMMPhaseTimes(
        local_multiply=worst_mult,
        spkadd=worst_add,
        comm_estimate=result.comm.estimated_seconds,
    )


def fig6_rows(
    results: Dict[str, SummaResult],
    machine: MachineSpec,
    *,
    threads_per_process: int = 8,
    cost_model: CostModel | None = None,
) -> Dict[str, SpGEMMPhaseTimes]:
    """Phase times for a set of configurations (Fig 6 bars)."""
    return {
        name: spgemm_phase_times(
            res, machine,
            threads_per_process=threads_per_process,
            cost_model=cost_model,
        )
        for name, res in results.items()
    }
