"""Communication bookkeeping for the simulated SUMMA.

Fig 6 deliberately excludes communication ("we show the runtime of both
computational steps by excluding the communication costs"), so the
simulated communicator only *accounts* broadcast traffic — volumes and
a simple alpha-beta time estimate — without affecting the reported
computation times.

Volumes are computed from each block's **actual** array widths
(``indptr`` + ``indices`` + ``data`` at their stored dtypes), not an
assumed 8-byte-value/8-byte-index layout: a float32/int32 run moves
half the bytes of a float64/int64 one, and the log says so.  Use
:meth:`CommLog.bcast_block` to record a block broadcast; the event
keeps the entry count and per-entry itemsizes for dtype-level audits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil, log2
from typing import Dict, List


@dataclass
class CommEvent:
    stage: int
    kind: str          # "bcast_A" or "bcast_B"
    root: int
    group_size: int
    bytes: int
    #: nnz of the broadcast block (0 for events logged through the raw
    #: byte-count API).
    entries: int = 0
    #: actual per-entry widths of the block's value/index arrays, so
    #: the volume accounting is auditable per dtype (0 = unknown).
    value_itemsize: int = 0
    index_itemsize: int = 0


@dataclass
class CommLog:
    """Record of all broadcasts in one SUMMA run.

    ``alpha`` (s) and ``beta`` (s/byte) give a classic latency/bandwidth
    estimate with tree broadcasts: each broadcast costs
    ``ceil(lg p) * (alpha + bytes * beta)``.
    """

    alpha: float = 2e-6
    beta: float = 1.0 / 10e9  # 10 GB/s links
    events: List[CommEvent] = field(default_factory=list)

    def bcast(self, stage: int, kind: str, root: int, group_size: int, nbytes: int) -> None:
        """Record a broadcast by raw byte count (caller-computed)."""
        self.events.append(CommEvent(stage, kind, root, group_size, nbytes))

    def bcast_block(self, stage: int, kind: str, root: int, group_size: int, block) -> None:
        """Record the broadcast of one sparse block.

        The volume is the block's actual storage — ``indptr`` +
        ``indices`` + ``data`` at their stored dtypes — so narrow-dtype
        runs (float32 values, int32 indices) are accounted at their
        real widths instead of an assumed 8-byte layout.
        """
        self.events.append(CommEvent(
            stage, kind, root, group_size,
            int(block.indptr.nbytes + block.indices.nbytes + block.data.nbytes),
            entries=int(block.nnz),
            value_itemsize=int(block.data.dtype.itemsize),
            index_itemsize=int(block.indices.dtype.itemsize),
        ))

    @property
    def total_bytes(self) -> int:
        return sum(e.bytes * max(e.group_size - 1, 0) for e in self.events)

    @property
    def estimated_seconds(self) -> float:
        t = 0.0
        for e in self.events:
            if e.group_size <= 1:
                continue
            rounds = ceil(log2(e.group_size))
            t += rounds * (self.alpha + e.bytes * self.beta)
        return t

    def by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + e.bytes * max(e.group_size - 1, 0)
        return out
