"""Communication bookkeeping for the simulated SUMMA.

Fig 6 deliberately excludes communication ("we show the runtime of both
computational steps by excluding the communication costs"), so the
simulated communicator only *accounts* broadcast traffic — volumes and
a simple alpha-beta time estimate — without affecting the reported
computation times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil, log2
from typing import Dict, List


@dataclass
class CommEvent:
    stage: int
    kind: str          # "bcast_A" or "bcast_B"
    root: int
    group_size: int
    bytes: int


@dataclass
class CommLog:
    """Record of all broadcasts in one SUMMA run.

    ``alpha`` (s) and ``beta`` (s/byte) give a classic latency/bandwidth
    estimate with tree broadcasts: each broadcast costs
    ``ceil(lg p) * (alpha + bytes * beta)``.
    """

    alpha: float = 2e-6
    beta: float = 1.0 / 10e9  # 10 GB/s links
    events: List[CommEvent] = field(default_factory=list)

    def bcast(self, stage: int, kind: str, root: int, group_size: int, nbytes: int) -> None:
        self.events.append(CommEvent(stage, kind, root, group_size, nbytes))

    @property
    def total_bytes(self) -> int:
        return sum(e.bytes * max(e.group_size - 1, 0) for e in self.events)

    @property
    def estimated_seconds(self) -> float:
        t = 0.0
        for e in self.events:
            if e.group_size <= 1:
                continue
            rounds = ceil(log2(e.group_size))
            t += rounds * (self.alpha + e.bytes * self.beta)
        return t

    def by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + e.bytes * max(e.group_size - 1, 0)
        return out
