"""Process grids and block distribution of sparse matrices."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.formats.csc import CSCMatrix
from repro.formats.convert import csc_to_coo


@dataclass(frozen=True)
class ProcessGrid:
    """A logical 2-D grid of ``rows x cols`` processes.

    Process ``(i, j)`` has rank ``i * cols + j``.  SUMMA broadcasts
    travel along grid rows (for A blocks) and grid columns (for B
    blocks).
    """

    rows: int
    cols: int

    def __post_init__(self) -> None:
        # Reject malformed grids loudly, naming the argument (the same
        # convention as the executor's threads/chunks_per_thread
        # validation): a zero or negative extent would silently produce
        # an empty rank list and a vacuously "successful" SUMMA.
        for name, value in (("rows", self.rows), ("cols", self.cols)):
            if not isinstance(value, (int, np.integer)) or value < 1:
                raise ValueError(
                    f"ProcessGrid {name} must be a positive integer, "
                    f"got {value!r}"
                )

    @property
    def size(self) -> int:
        return self.rows * self.cols

    def rank(self, i: int, j: int) -> int:
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise IndexError(f"({i},{j}) outside {self.rows}x{self.cols} grid")
        return i * self.cols + j

    def coords(self, rank: int) -> Tuple[int, int]:
        if not 0 <= rank < self.size:
            raise IndexError(f"rank {rank} outside grid of {self.size}")
        return divmod(rank, self.cols)


def block_bounds(extent: int, parts: int) -> np.ndarray:
    """Near-equal 1-D block boundaries: part p covers
    ``[bounds[p], bounds[p+1])``."""
    return (np.arange(parts + 1, dtype=np.int64) * extent) // parts


@dataclass
class BlockDistribution:
    """An ``br x bc`` block partition of one sparse matrix.

    ``blocks[i][j]`` is the (row-range i, col-range j) submatrix stored
    as a local CSC matrix with *local* indices; row/col offsets are in
    ``row_bounds``/``col_bounds``.
    """

    shape: Tuple[int, int]
    row_bounds: np.ndarray
    col_bounds: np.ndarray
    blocks: List[List[CSCMatrix]]

    @classmethod
    def distribute(cls, mat: CSCMatrix, br: int, bc: int) -> "BlockDistribution":
        """Cut ``mat`` into ``br x bc`` blocks (one pass over the COO)."""
        m, n = mat.shape
        rb = block_bounds(m, br)
        cb = block_bounds(n, bc)
        coo = csc_to_coo(mat)
        bi = np.searchsorted(rb, coo.rows, side="right") - 1
        bj = np.searchsorted(cb, coo.cols, side="right") - 1
        flat = bi * bc + bj
        order = np.argsort(flat, kind="stable")
        rows, cols, vals, flat = (
            coo.rows[order], coo.cols[order], coo.vals[order], flat[order]
        )
        starts = np.searchsorted(flat, np.arange(br * bc + 1))
        blocks: List[List[CSCMatrix]] = []
        for i in range(br):
            row: List[CSCMatrix] = []
            for j in range(bc):
                b = i * bc + j
                lo, hi = int(starts[b]), int(starts[b + 1])
                shape_local = (int(rb[i + 1] - rb[i]), int(cb[j + 1] - cb[j]))
                # Localize indices in the parent's own index dtype: the
                # bounds arrays are int64 and would otherwise upcast
                # int32 indices, inflating every block — and the comm
                # log's broadcast volumes — to wide widths.
                row.append(
                    CSCMatrix.from_arrays(
                        shape_local,
                        rows[lo:hi] - rows.dtype.type(rb[i]),
                        cols[lo:hi] - cols.dtype.type(cb[j]),
                        vals[lo:hi],
                        sum_duplicates=False,
                    )
                )
            blocks.append(row)
        return cls((m, n), rb, cb, blocks)

    def block(self, i: int, j: int) -> CSCMatrix:
        return self.blocks[i][j]

    def reassemble(self) -> CSCMatrix:
        """Inverse of :meth:`distribute` (used for verification)."""
        m, n = self.shape
        rows_l, cols_l, vals_l = [], [], []
        for i, row in enumerate(self.blocks):
            for j, blk in enumerate(row):
                if blk.nnz == 0:
                    continue
                coo = csc_to_coo(blk)
                rows_l.append(coo.rows + self.row_bounds[i])
                cols_l.append(coo.cols + self.col_bounds[j])
                vals_l.append(coo.vals)
        if not rows_l:
            return CSCMatrix.zeros((m, n))
        return CSCMatrix.from_arrays(
            (m, n),
            np.concatenate(rows_l),
            np.concatenate(cols_l),
            np.concatenate(vals_l),
            sum_duplicates=False,
        )
