"""Distributed-memory substrate: simulated sparse SUMMA SpGEMM.

The paper's flagship application (Section IV-E) plugs hash SpKAdd into
the sparse SUMMA SpGEMM of CombBLAS and runs it on up to 16,384 Cori
KNL processes.  Neither MPI at that scale nor the 37-billion-nonzero
inputs are available here, so this subpackage *simulates* the
distributed algorithm on one node:

* :mod:`~repro.distributed.grid` — 2-D process grids and block
  distribution of sparse matrices;
* :mod:`~repro.distributed.comm` — a bookkeeping communicator that
  counts broadcast volumes (Fig 6 excludes communication time, so the
  volumes are informational);
* :mod:`~repro.distributed.spgemm_local` — the local SpGEMM kernel
  (column Gustavson with hash accumulation, sorted or unsorted output);
* :mod:`~repro.distributed.summa` — the stationary-C sparse SUMMA
  driver of Fig 5: per stage, each process multiplies its received
  A/B blocks; after all stages it reduces its intermediates with a
  chosen SpKAdd method;
* :mod:`~repro.distributed.timing` — converts the recorded per-process
  phase statistics into simulated seconds on a
  :class:`~repro.machine.spec.MachineSpec` (Cori KNL for Fig 6).

Every simulated run is verified against a direct single-matrix SpGEMM.
"""

from repro.distributed.grid import BlockDistribution, ProcessGrid
from repro.distributed.comm import CommLog
from repro.distributed.spgemm_local import LocalSpGEMMStats, local_spgemm
from repro.distributed.summa import ExecutionPlan, SummaResult, summa_spgemm
from repro.distributed.timing import spgemm_phase_times

__all__ = [
    "BlockDistribution",
    "ProcessGrid",
    "CommLog",
    "ExecutionPlan",
    "LocalSpGEMMStats",
    "local_spgemm",
    "SummaResult",
    "summa_spgemm",
    "spgemm_phase_times",
]
