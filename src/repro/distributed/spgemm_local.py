"""Local sparse matrix-matrix multiply (the per-stage SUMMA kernel).

Column-wise Gustavson on CSC: column j of C = A * B accumulates
``sum_t B(t, j) * A(:, t)``.  The expansion (gathering A columns for
every nonzero of B) is fully vectorized; the accumulation of the
expanded (row, col, val) stream routes through the kernel registry
(:mod:`repro.kernels`), exactly like SpKAdd's hash-family methods:

* ``backend="instrumented"`` — the paper-faithful linear-probing engine
  (what CombBLAS's hash SpGEMM does); the sole source of
  slot-op/probe/table-traffic statistics, and the only backend whose
  output can be left *unsorted* (table order) when ``sorted_output`` is
  False;
* ``backend="fast"`` — sort + strict in-order segmented reduce:
  bit-identical values (duplicates of a key are summed in the same
  left-to-right order the probing table accumulates them), an order of
  magnitude faster, always sorted, no slot-level stats.

``accumulator="sort"`` keeps the explicit sort-accumulate variant whose
cost the timing model charges as ``sort_entries`` (it now reduces via
:func:`repro.kernels.sort_reduce`, so its sums are bit-identical to the
hash accumulators on every dtype).

The multiply is dtype/index-dtype generic: values accumulate in the
dtype :func:`repro.kernels.resolve_value_dtype` resolves for (A, B)
(float32 stays float32, integer products sum exactly in 64-bit) and
indices are emitted at the width
:func:`repro.kernels.resolve_index_dtype` resolves from the output
shape and the expansion bound — int32 keys make the fast backend's
dominant argsort run on 4-byte keys, the same lever SpKAdd pulls.

The paper's Fig 6 point: when the downstream SpKAdd is hash-based it
accepts unsorted inputs, so local multiplies can skip the final sort
("Skipping sorting in the local multiplications can make it 20%
faster").  The sort cost here is real and measurable, and the timing
model charges it explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.blocks import composite_keys, split_keys
from repro.formats.compressed import (
    INT32_INDEX_CAPACITY,
    build_indptr,
    resolve_index_dtype,
)
from repro.formats.csc import CSCMatrix
from repro.kernels import resolve_backend, resolve_value_dtype
from repro.kernels.fast import sort_reduce
from repro.util.hashing import table_size_for


@dataclass
class LocalSpGEMMStats:
    """Measured work of one local SpGEMM.

    ``flops``: multiply-add pairs (the classic SpGEMM flop count,
    counted as expanded entries).  ``hash_ops``/``probes``: accumulator
    slot visits (instrumented backend only — the fast backend has no
    slots and meters zero, the same contract as
    :class:`~repro.core.stats.KernelStats`).  ``sort_entries``: entries
    passed through an explicit sort (0 when unsorted output is allowed,
    and 0 on the fast backend, whose sortedness is a free byproduct of
    its sort/reduce).  ``table_traffic``: random-access histogram, same
    convention as :class:`~repro.core.stats.KernelStats`.
    """

    flops: int = 0
    hash_ops: int = 0
    probes: int = 0
    out_nnz: int = 0
    sort_entries: int = 0
    table_traffic: Dict[int, float] = field(default_factory=dict)

    def merge(self, other: "LocalSpGEMMStats") -> "LocalSpGEMMStats":
        self.flops += other.flops
        self.hash_ops += other.hash_ops
        self.probes += other.probes
        self.out_nnz += other.out_nnz
        self.sort_entries += other.sort_entries
        for tb, acc in other.table_traffic.items():
            self.table_traffic[tb] = self.table_traffic.get(tb, 0.0) + acc
        return self


def _expand(A: CSCMatrix, B: CSCMatrix, value_dtype: np.dtype):
    """Vectorized Gustavson expansion.

    For every nonzero B(t, j) emit A(:, t) scaled by B(t, j), tagged
    with output column j.  Returns (out_cols, out_rows, out_vals) with
    values in ``value_dtype`` and ids in the narrowest key-safe integer
    width (int32 when the composite key range ``m * n`` fits, so the
    accumulators sort/hash 4-byte keys).
    """
    ma = A.shape[0]
    n_out = B.shape[1]
    id_dtype = (
        np.int32
        if int(ma) * int(n_out) <= INT32_INDEX_CAPACITY
        else np.int64
    )
    b_cols = np.repeat(np.arange(n_out, dtype=id_dtype), np.diff(B.indptr))
    t = B.indices  # inner index of each B nonzero
    lens = (A.indptr[t + 1] - A.indptr[t]).astype(np.int64)
    total = int(lens.sum())
    if total == 0:
        return (
            np.empty(0, dtype=id_dtype),
            np.empty(0, dtype=id_dtype),
            np.empty(0, dtype=value_dtype),
        )
    starts = A.indptr[t].astype(np.int64)
    # Classic multi-slice gather: for each expanded position, its source
    # index in A.indices is start[of its B-nonzero] + local offset.
    offsets = np.concatenate([[0], np.cumsum(lens)])[:-1]
    gather = np.repeat(starts - offsets, lens) + np.arange(total, dtype=np.int64)
    rows = A.indices[gather].astype(id_dtype, copy=False)
    vals = (A.data[gather] * np.repeat(B.data, lens)).astype(
        value_dtype, copy=False
    )
    cols = np.repeat(b_cols, lens)
    return cols, rows, vals


def local_spgemm(
    A: CSCMatrix,
    B: CSCMatrix,
    *,
    accumulator: str = "hash",
    sorted_output: bool = False,
    stats: Optional[LocalSpGEMMStats] = None,
    backend: Optional[str] = None,
    value_dtype=None,
    index_dtype=None,
) -> CSCMatrix:
    """Compute ``C = A @ B`` for local (in-process) sparse blocks.

    ``backend`` selects the accumulation engine for the ``"hash"``
    accumulator (``None`` consults ``REPRO_BACKEND`` and then defaults
    to ``"instrumented"``, the paper-faithful engine whose statistics
    feed the Fig 6 cost model; pass ``"fast"`` for the production
    sort/reduce engine — bit-identical values, no stats).

    ``sorted_output=False`` with the instrumented hash engine leaves
    each output column in table order — valid CSC with unsorted
    columns, exactly what a hash-based downstream SpKAdd consumes
    without penalty.  The fast backend's output is sorted either way
    (a free byproduct of its sort/reduce, charged to nobody).

    ``value_dtype``/``index_dtype`` override the resolved output dtypes
    (defaults: :func:`repro.kernels.resolve_value_dtype` over (A, B)
    and the call-level int32-when-it-fits index rule).
    """
    ma, ka = A.shape
    kb, nb = B.shape
    if ka != kb:
        raise ValueError(f"inner dimensions differ: {A.shape} x {B.shape}")
    if accumulator not in ("hash", "sort"):
        raise ValueError(f"unknown accumulator {accumulator!r}")
    st = stats if stats is not None else LocalSpGEMMStats()
    vdt = resolve_value_dtype((A, B), value_dtype)
    cols, rows, vals = _expand(A, B, vdt)
    st.flops += int(rows.size)
    idt = resolve_index_dtype(
        (), index_dtype, shape=(ma, nb), nnz=int(rows.size)
    )
    if rows.size == 0:
        return CSCMatrix(
            (ma, nb),
            np.zeros(nb + 1, dtype=idt),
            np.empty(0, dtype=idt),
            np.empty(0, dtype=vdt),
            sorted=True,
            check=False,
        )
    keys = composite_keys(cols, rows, ma, width=nb)
    out_sorted = sorted_output
    if accumulator == "hash":
        eng = resolve_backend(backend)
        if eng.provides_stats:
            # Symbolic sizing: distinct keys upper-bounded by the
            # expansion (the paper's rule, same as SpKAdd's two-phase
            # scheme).
            tsize = table_size_for(int(np.unique(keys).size))
            res = eng.accumulate(keys, vals, tsize)
            st.hash_ops += res.slot_ops
            st.probes += res.probes
            st.table_traffic[tsize * 8] = (
                st.table_traffic.get(tsize * 8, 0.0) + res.slot_ops
            )
            okeys, ovals = res.keys, res.vals
            if sorted_output:
                order = np.argsort(okeys)
                st.sort_entries += int(okeys.size)
            else:
                order = np.argsort(okeys // np.int64(ma), kind="stable")
            okeys, ovals = okeys[order], ovals[order]
        else:
            # Fast path: one sort/reduce pass; the output comes back
            # key-sorted for free, so no sort is performed or charged.
            res = eng.accumulate(keys, vals)
            okeys, ovals = res.keys, res.vals
            out_sorted = True
    else:  # accumulator == "sort"
        okeys, ovals = sort_reduce(keys, vals)
        st.sort_entries += int(keys.size)
        out_sorted = True
    ocols, orows = split_keys(okeys, ma)
    st.out_nnz += int(okeys.size)
    return CSCMatrix(
        (ma, nb),
        build_indptr(ocols, nb, index_dtype=idt),
        orows.astype(idt, copy=False),
        ovals,
        sorted=out_sorted,
        check=False,
    )
