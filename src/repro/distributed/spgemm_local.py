"""Local sparse matrix-matrix multiply (the per-stage SUMMA kernel).

Column-wise Gustavson on CSC: column j of C = A * B accumulates
``sum_t B(t, j) * A(:, t)``.  The expansion (gathering A columns for
every nonzero of B) is fully vectorized; the accumulation of the
expanded (row, col, val) stream uses either

* ``accumulator="hash"`` — the linear-probing engine (what CombBLAS's
  hash SpGEMM does; output *unsorted* unless ``sorted_output``), or
* ``accumulator="sort"`` — sort + reduce (always sorted output).

The paper's Fig 6 point: when the downstream SpKAdd is hash-based it
accepts unsorted inputs, so local multiplies can skip the final sort
("Skipping sorting in the local multiplications can make it 20%
faster").  The sort cost here is real and measurable, and the timing
model charges it explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.blocks import split_keys
from repro.core.hashtable import hash_accumulate
from repro.formats.compressed import build_indptr
from repro.formats.csc import CSCMatrix
from repro.util.hashing import table_size_for


@dataclass
class LocalSpGEMMStats:
    """Measured work of one local SpGEMM.

    ``flops``: multiply-add pairs (the classic SpGEMM flop count,
    counted as expanded entries).  ``hash_ops``/``probes``: accumulator
    slot visits.  ``sort_entries``: entries passed through the final
    sort (0 when unsorted output is allowed).  ``table_traffic``:
    random-access histogram, same convention as
    :class:`~repro.core.stats.KernelStats`.
    """

    flops: int = 0
    hash_ops: int = 0
    probes: int = 0
    out_nnz: int = 0
    sort_entries: int = 0
    table_traffic: Dict[int, float] = field(default_factory=dict)

    def merge(self, other: "LocalSpGEMMStats") -> "LocalSpGEMMStats":
        self.flops += other.flops
        self.hash_ops += other.hash_ops
        self.probes += other.probes
        self.out_nnz += other.out_nnz
        self.sort_entries += other.sort_entries
        for tb, acc in other.table_traffic.items():
            self.table_traffic[tb] = self.table_traffic.get(tb, 0.0) + acc
        return self


def _expand(A: CSCMatrix, B: CSCMatrix):
    """Vectorized Gustavson expansion.

    For every nonzero B(t, j) emit A(:, t) scaled by B(t, j), tagged
    with output column j.  Returns (out_cols, out_rows, out_vals).
    """
    n_out = B.shape[1]
    b_cols = np.repeat(np.arange(n_out, dtype=np.int64), np.diff(B.indptr))
    t = B.indices  # inner index of each B nonzero
    lens = (A.indptr[t + 1] - A.indptr[t]).astype(np.int64)
    total = int(lens.sum())
    if total == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    starts = A.indptr[t].astype(np.int64)
    # Classic multi-slice gather: for each expanded position, its source
    # index in A.indices is start[of its B-nonzero] + local offset.
    offsets = np.concatenate([[0], np.cumsum(lens)])[:-1]
    gather = np.repeat(starts - offsets, lens) + np.arange(total, dtype=np.int64)
    rows = A.indices[gather]
    vals = A.data[gather] * np.repeat(B.data, lens)
    cols = np.repeat(b_cols, lens)
    return cols, rows, vals


def local_spgemm(
    A: CSCMatrix,
    B: CSCMatrix,
    *,
    accumulator: str = "hash",
    sorted_output: bool = False,
    stats: Optional[LocalSpGEMMStats] = None,
) -> CSCMatrix:
    """Compute ``C = A @ B`` for local (in-process) sparse blocks.

    ``sorted_output=False`` with the hash accumulator leaves each output
    column in table order — valid CSC with unsorted columns, exactly
    what a hash-based downstream SpKAdd consumes without penalty.
    """
    ma, ka = A.shape
    kb, nb = B.shape
    if ka != kb:
        raise ValueError(f"inner dimensions differ: {A.shape} x {B.shape}")
    if accumulator not in ("hash", "sort"):
        raise ValueError(f"unknown accumulator {accumulator!r}")
    st = stats if stats is not None else LocalSpGEMMStats()
    cols, rows, vals = _expand(A, B)
    st.flops += int(rows.size)
    if rows.size == 0:
        return CSCMatrix.zeros((ma, nb))
    keys = cols * np.int64(ma) + rows
    if accumulator == "hash":
        # Symbolic sizing: distinct keys upper-bounded by the expansion.
        tsize = table_size_for(int(np.unique(keys).size))
        res = hash_accumulate(keys, vals, tsize)
        st.hash_ops += res.slot_ops
        st.probes += res.probes
        st.table_traffic[tsize * 8] = st.table_traffic.get(tsize * 8, 0.0) + res.slot_ops
        okeys, ovals = res.keys, res.vals
        if sorted_output:
            order = np.argsort(okeys)
            st.sort_entries += int(okeys.size)
        else:
            order = np.argsort(okeys // np.int64(ma), kind="stable")
        okeys, ovals = okeys[order], ovals[order]
    elif accumulator == "sort":
        order = np.argsort(keys, kind="stable")
        sk, sv = keys[order], vals[order]
        is_new = np.empty(sk.size, dtype=bool)
        is_new[0] = True
        np.not_equal(sk[1:], sk[:-1], out=is_new[1:])
        g = np.flatnonzero(is_new)
        okeys, ovals = sk[g], np.add.reduceat(sv, g)
        st.sort_entries += int(keys.size)
    else:
        raise ValueError(f"unknown accumulator {accumulator!r}")
    ocols, orows = split_keys(okeys, ma)
    st.out_nnz += int(okeys.size)
    return CSCMatrix(
        (ma, nb),
        build_indptr(ocols, nb),
        orows,
        ovals,
        sorted=sorted_output or accumulator == "sort",
        check=False,
    )
