"""Stationary-C sparse SUMMA (paper Fig 5) with pluggable SpKAdd.

``C = A @ B`` on a ``pr x pc`` process grid with ``stages`` inner
blocks:

* A is distributed as ``pr x stages`` blocks, B as ``stages x pc``;
* at stage s, A(i, s) is broadcast along grid row i and B(s, j) along
  grid column j;
* process (i, j) computes the local product A(i,s) @ B(s,j) and stores
  it — after all stages it holds ``stages`` intermediate sparse
  matrices;
* the final computation step reduces those intermediates with SpKAdd —
  the operation whose data structure (heap vs hash, sorted vs unsorted)
  is the subject of Fig 6.

Everything executes in-process, rank by rank; results are exact (they
are verified against a direct single-matrix SpGEMM in the tests) and
per-rank phase statistics feed the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.api import BACKEND_AWARE_METHODS, spkadd
from repro.core.stats import KernelStats
from repro.distributed.comm import CommLog
from repro.distributed.grid import BlockDistribution, ProcessGrid
from repro.distributed.spgemm_local import LocalSpGEMMStats, local_spgemm
from repro.formats.csc import CSCMatrix


@dataclass
class RankRecord:
    """Per-process record of one SUMMA run."""

    rank: int
    coords: tuple
    multiply: LocalSpGEMMStats = field(default_factory=LocalSpGEMMStats)
    spkadd_stats: KernelStats = field(default_factory=KernelStats)
    spkadd_symbolic: Optional[KernelStats] = None
    intermediate_nnz: int = 0
    result_nnz: int = 0


@dataclass
class SummaResult:
    """Output of :func:`summa_spgemm`."""

    grid: ProcessGrid
    stages: int
    spkadd_method: str
    sorted_intermediates: bool
    c_blocks: List[List[CSCMatrix]]
    ranks: List[RankRecord]
    comm: CommLog
    row_bounds: np.ndarray
    col_bounds: np.ndarray

    def assemble(self) -> CSCMatrix:
        """Gather the distributed result into one matrix (verification)."""
        dist = BlockDistribution(
            (int(self.row_bounds[-1]), int(self.col_bounds[-1])),
            self.row_bounds,
            self.col_bounds,
            self.c_blocks,
        )
        return dist.reassemble()

    def phase_totals(self) -> Dict[str, float]:
        """Aggregate per-phase op counts across ranks (max = critical
        path; Fig 6 compares computation, so comm is separate)."""
        return {
            "flops_total": float(sum(r.multiply.flops for r in self.ranks)),
            "spkadd_ops_total": float(
                sum(r.spkadd_stats.ops for r in self.ranks)
            ),
            "comm_bytes": float(self.comm.total_bytes),
        }


def summa_spgemm(
    A: CSCMatrix,
    B: CSCMatrix,
    *,
    grid: ProcessGrid,
    stages: Optional[int] = None,
    spkadd_method: str = "hash",
    sorted_intermediates: Optional[bool] = None,
    comm: Optional[CommLog] = None,
    spkadd_kwargs: Optional[dict] = None,
) -> SummaResult:
    """Run the simulated sparse SUMMA.

    Parameters
    ----------
    grid:
        The ``pr x pc`` process grid owning C.
    stages:
        Number of inner-dimension blocks (k of the final SpKAdd).
        Defaults to ``grid.cols`` (square-grid convention where each
        process column contributes one stage).
    spkadd_method:
        SpKAdd method for the final reduction: ``"heap"``, ``"hash"``,
        ``"sliding_hash"``, ...  (any :func:`repro.spkadd` method).
    sorted_intermediates:
        Whether local multiplies must sort their outputs.  Defaults to
        the requirement of the chosen SpKAdd method (heap/2-way need
        sorted inputs; hash and SPA do not) — leaving it to default
        reproduces the paper's "unsorted hash" advantage.
    """
    m, l1 = A.shape
    l2, n = B.shape
    if l1 != l2:
        raise ValueError(f"inner dimensions differ: {A.shape} x {B.shape}")
    S = stages if stages is not None else grid.cols
    needs_sorted = spkadd_method in (
        "heap", "2way_incremental", "2way_tree", "scipy_incremental", "scipy_tree"
    )
    sort_local = needs_sorted if sorted_intermediates is None else sorted_intermediates
    if needs_sorted and not sort_local:
        raise ValueError(f"{spkadd_method} SpKAdd requires sorted intermediates")
    log = comm if comm is not None else CommLog()

    distA = BlockDistribution.distribute(A, grid.rows, S)
    distB = BlockDistribution.distribute(B, S, grid.cols)

    ranks = [
        RankRecord(rank=grid.rank(i, j), coords=(i, j))
        for i in range(grid.rows)
        for j in range(grid.cols)
    ]
    intermediates: List[List[CSCMatrix]] = [[] for _ in range(grid.size)]

    for s in range(S):
        for i in range(grid.rows):
            # A(i, s) broadcast along grid row i.
            log.bcast(s, "bcast_A", grid.rank(i, s % grid.cols),
                      grid.cols, distA.block(i, s).nbytes)
        for j in range(grid.cols):
            # B(s, j) broadcast along grid column j.
            log.bcast(s, "bcast_B", grid.rank(s % grid.rows, j),
                      grid.rows, distB.block(s, j).nbytes)
        for rec in ranks:
            i, j = rec.coords
            blkA = distA.block(i, s)
            blkB = distB.block(s, j)
            prod = local_spgemm(
                blkA,
                blkB,
                accumulator="hash",
                sorted_output=sort_local,
                stats=rec.multiply,
            )
            rec.intermediate_nnz += prod.nnz
            intermediates[grid.rank(i, j)].append(prod)

    c_blocks: List[List[CSCMatrix]] = [
        [None] * grid.cols for _ in range(grid.rows)  # type: ignore[list-item]
    ]
    for rec in ranks:
        i, j = rec.coords
        pieces = intermediates[rec.rank]
        # Run the chosen SpKAdd over this rank's intermediates.  The
        # simulation reports per-phase op totals, so hash-family methods
        # default to the instrumented engine here (overridable through
        # spkadd_kwargs).
        kw = dict(spkadd_kwargs or {})
        if spkadd_method in BACKEND_AWARE_METHODS:
            kw.setdefault("backend", "instrumented")
        result = spkadd(pieces, method=spkadd_method, **kw)
        rec.spkadd_stats = result.stats
        rec.spkadd_symbolic = result.stats_symbolic
        rec.result_nnz = result.matrix.nnz
        c_blocks[i][j] = result.matrix

    return SummaResult(
        grid=grid,
        stages=S,
        spkadd_method=spkadd_method,
        sorted_intermediates=sort_local,
        c_blocks=c_blocks,
        ranks=ranks,
        comm=log,
        row_bounds=distA.row_bounds,
        col_bounds=distB.col_bounds,
    )
