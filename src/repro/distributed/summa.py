"""Stationary-C sparse SUMMA (paper Fig 5) with pluggable SpKAdd.

``C = A @ B`` on a ``pr x pc`` process grid with ``stages`` inner
blocks:

* A is distributed as ``pr x stages`` blocks, B as ``stages x pc``;
* at stage s, A(i, s) is broadcast along grid row i and B(s, j) along
  grid column j;
* process (i, j) computes the local product A(i,s) @ B(s,j) and stores
  it — after all stages it holds ``stages`` intermediate sparse
  matrices;
* the final computation step reduces those intermediates with SpKAdd —
  the operation whose data structure (heap vs hash, sorted vs unsorted)
  is the subject of Fig 6.

The pipeline is split into three explicit stages — **broadcast**
(bookkeeping: the Fig 5 dataflow recorded in the
:class:`~repro.distributed.comm.CommLog` at the blocks' actual dtype
widths), **local multiply** (the Gustavson kernel of
:mod:`~repro.distributed.spgemm_local`, routed through the kernel
registry), and **merge** (one k-way SpKAdd per rank) — and how they
execute is an :class:`ExecutionPlan`:

* :meth:`ExecutionPlan.paper` (the default) runs everything serially
  in-process on the instrumented backend, rank by rank — results are
  exact and the per-rank statistics that feed the Fig 6 timing model
  are bit-stable;
* :meth:`ExecutionPlan.production` (or the loose ``backend=`` /
  ``executor=`` / ``threads=`` / ``deadline=`` / ``resilience=``
  keywords of :func:`summa_spgemm`) promotes the run onto the
  production stack: merges go through ``parallel_spkadd`` on the
  persistent pool registry (reservation-pinned for the whole run, the
  gateway's pattern), rank pipelines run concurrently, and each rank's
  merge is submitted asynchronously
  (:func:`repro.parallel.executor.submit_spkadd`) so the local
  multiplies of the next ranks overlap the merges in flight.

Results are bit-identical across plans: every accumulation path sums
duplicates of a key strictly left to right in matrix order, so the
promoted pipeline is verified bitwise against the serial reference in
the tests.
"""

from __future__ import annotations

from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.api import BACKEND_AWARE_METHODS, spkadd
from repro.core.stats import KernelStats
from repro.distributed.comm import CommLog
from repro.distributed.grid import BlockDistribution, ProcessGrid
from repro.distributed.spgemm_local import LocalSpGEMMStats, local_spgemm
from repro.formats.csc import CSCMatrix
from repro.parallel.resilience import Deadline

#: merge-stage worker count when an explicit multiprocess executor is
#: named without ``threads=``.
DEFAULT_MERGE_THREADS = 4

#: rank pipelines in flight for promoted runs (bounded: each holds its
#: stage intermediates resident).
DEFAULT_RANK_PARALLELISM = 4

#: SpKAdd methods that require sorted intermediates.
_NEEDS_SORTED = (
    "heap", "2way_incremental", "2way_tree",
    "scipy_incremental", "scipy_tree",
)


@dataclass(frozen=True)
class ExecutionPlan:
    """How one SUMMA run executes: backends, executors, and overlap.

    Parameters
    ----------
    backend:
        Kernel backend for the local multiplies *and* the hash-family
        merges (``"fast"`` / ``"instrumented"``).  ``None`` consults
        ``REPRO_BACKEND`` and then defaults to ``"instrumented"`` — the
        paper-faithful engine whose statistics feed the timing model.
    executor:
        Merge-stage executor (``"serial"``/``"thread"``/``"process"``/
        ``"shm"``; ``None``/``"auto"`` consults ``REPRO_EXECUTOR``).
        Consulted only when ``threads > 1``, like :func:`repro.spkadd`.
    threads:
        Workers per merge call (``parallel_spkadd`` fan-out).
    rank_parallelism:
        Rank pipelines (multiply chain + merge) in flight at once.
    overlap:
        Submit each rank's merge asynchronously
        (:func:`repro.parallel.executor.submit_spkadd`) instead of
        blocking the rank pipeline on it — the local multiplies of the
        following ranks overlap the merges running on the worker pool.
    deadline:
        Whole-run time budget in seconds (or a prebuilt
        :class:`~repro.parallel.resilience.Deadline`); checked between
        stages and threaded into every merge call as its remaining
        budget.
    resilience:
        :class:`~repro.parallel.resilience.ResiliencePolicy` for the
        merge calls (chunk retry, fallback chain); ``None`` resolves
        from the environment per call.
    materialize:
        Result placement for shm merges (see :func:`repro.spkadd`);
        the default keeps zero-copy segment-backed blocks.
    """

    backend: Optional[str] = None
    executor: Optional[str] = None
    threads: int = 1
    rank_parallelism: int = 1
    overlap: bool = False
    deadline: Optional[object] = None
    resilience: Optional[object] = None
    materialize: Optional[bool] = None

    def __post_init__(self) -> None:
        # PR 7 convention: malformed knobs are rejected loudly, naming
        # the argument, instead of silently degrading to serial.
        for name in ("threads", "rank_parallelism"):
            value = getattr(self, name)
            if not isinstance(value, (int, np.integer)) or value < 1:
                raise ValueError(
                    f"ExecutionPlan {name} must be a positive integer, "
                    f"got {value!r}"
                )
        from repro.parallel.executor import EXECUTORS

        if self.executor not in (None, "auto") + EXECUTORS:
            raise ValueError(
                f"ExecutionPlan executor must be one of {EXECUTORS}, "
                f"got {self.executor!r}"
            )
        if self.backend not in (None, "auto"):
            from repro.kernels import get_backend

            get_backend(self.backend)  # raises ValueError, naming it

    @classmethod
    def paper(cls) -> "ExecutionPlan":
        """The paper-faithful pinning: serial, instrumented, no overlap.

        Figure reproduction (``experiments/fig6.py``) runs under this
        plan so its per-rank statistics — and therefore its modelled
        phase times — are bit-stable regardless of ``REPRO_BACKEND`` /
        ``REPRO_EXECUTOR`` in the environment.
        """
        return cls(backend="instrumented", threads=1,
                   rank_parallelism=1, overlap=False)

    @classmethod
    def production(
        cls,
        *,
        backend: str = "fast",
        executor: str = "shm",
        threads: int = DEFAULT_MERGE_THREADS,
        rank_parallelism: int = DEFAULT_RANK_PARALLELISM,
        overlap: bool = True,
        deadline=None,
        resilience=None,
        materialize: Optional[bool] = None,
    ) -> "ExecutionPlan":
        """The promoted defaults: fast kernels, shm merges, overlap on."""
        return cls(
            backend=backend, executor=executor, threads=threads,
            rank_parallelism=rank_parallelism, overlap=overlap,
            deadline=deadline, resilience=resilience,
            materialize=materialize,
        )


@dataclass
class RankRecord:
    """Per-process record of one SUMMA run."""

    rank: int
    coords: tuple
    multiply: LocalSpGEMMStats = field(default_factory=LocalSpGEMMStats)
    spkadd_stats: KernelStats = field(default_factory=KernelStats)
    spkadd_symbolic: Optional[KernelStats] = None
    intermediate_nnz: int = 0
    result_nnz: int = 0


@dataclass
class SummaResult:
    """Output of :func:`summa_spgemm`."""

    grid: ProcessGrid
    stages: int
    spkadd_method: str
    sorted_intermediates: bool
    c_blocks: List[List[CSCMatrix]]
    ranks: List[RankRecord]
    comm: CommLog
    row_bounds: np.ndarray
    col_bounds: np.ndarray
    plan: Optional[ExecutionPlan] = None

    def assemble(self) -> CSCMatrix:
        """Gather the distributed result into one matrix (verification)."""
        dist = BlockDistribution(
            (int(self.row_bounds[-1]), int(self.col_bounds[-1])),
            self.row_bounds,
            self.col_bounds,
            self.c_blocks,
        )
        return dist.reassemble()

    def phase_totals(self) -> Dict[str, float]:
        """Aggregate per-phase op counts across ranks (max = critical
        path; Fig 6 compares computation, so comm is separate)."""
        return {
            "flops_total": float(sum(r.multiply.flops for r in self.ranks)),
            "spkadd_ops_total": float(
                sum(r.spkadd_stats.ops for r in self.ranks)
            ),
            "comm_bytes": float(self.comm.total_bytes),
        }


def _resolve_plan(
    plan: Optional[ExecutionPlan],
    *,
    grid: ProcessGrid,
    backend, executor, threads, deadline, resilience,
) -> ExecutionPlan:
    loose = {
        "backend": backend, "executor": executor, "threads": threads,
        "deadline": deadline, "resilience": resilience,
    }
    given = {k: v for k, v in loose.items() if v is not None}
    if plan is not None:
        if given:
            raise ValueError(
                "pass either plan= or the loose execution keywords "
                f"({', '.join(sorted(given))}=), not both"
            )
        return plan
    if not given:
        return ExecutionPlan.paper()
    if threads is None:
        threads = (
            DEFAULT_MERGE_THREADS
            if executor not in (None, "auto", "serial")
            else 1
        )
    parallel = threads > 1
    return ExecutionPlan(
        backend=backend,
        executor=executor,
        threads=threads,
        rank_parallelism=(
            min(grid.size, DEFAULT_RANK_PARALLELISM) if parallel else 1
        ),
        overlap=parallel,
        deadline=deadline,
        resilience=resilience,
    )


def summa_spgemm(
    A: CSCMatrix,
    B: CSCMatrix,
    *,
    grid: ProcessGrid,
    stages: Optional[int] = None,
    spkadd_method: str = "hash",
    sorted_intermediates: Optional[bool] = None,
    comm: Optional[CommLog] = None,
    spkadd_kwargs: Optional[dict] = None,
    plan: Optional[ExecutionPlan] = None,
    backend: Optional[str] = None,
    executor: Optional[str] = None,
    threads: Optional[int] = None,
    deadline=None,
    resilience=None,
) -> SummaResult:
    """Run the sparse SUMMA pipeline.

    Parameters
    ----------
    grid:
        The ``pr x pc`` process grid owning C.
    stages:
        Number of inner-dimension blocks (k of the final SpKAdd).
        Defaults to ``grid.cols`` (square-grid convention where each
        process column contributes one stage).  Must be positive and at
        most the inner dimension (every stage owns a nonempty inner
        block range).
    spkadd_method:
        SpKAdd method for the final reduction: ``"heap"``, ``"hash"``,
        ``"sliding_hash"``, ...  (any :func:`repro.spkadd` method).
    sorted_intermediates:
        Whether local multiplies must sort their outputs.  Defaults to
        the requirement of the chosen SpKAdd method (heap/2-way need
        sorted inputs; hash and SPA do not) — leaving it to default
        reproduces the paper's "unsorted hash" advantage.
    plan:
        An :class:`ExecutionPlan`.  The default is
        :meth:`ExecutionPlan.paper` — serial, instrumented, bit-stable
        statistics.  Alternatively pass the loose keywords below (they
        build a plan; combining them with ``plan=`` is an error).
    backend, executor, threads, deadline, resilience:
        Loose plan keywords: kernel backend for multiply + merge, merge
        executor/fan-out, whole-run deadline, and resilience policy.
        Naming a multiprocess ``executor=`` without ``threads=``
        defaults the merge fan-out to ``DEFAULT_MERGE_THREADS`` and
        turns on rank concurrency + overlap (the promoted path).
    """
    m, l1 = A.shape
    l2, n = B.shape
    if l1 != l2:
        raise ValueError(f"inner dimensions differ: {A.shape} x {B.shape}")
    S = stages if stages is not None else grid.cols
    if not isinstance(S, (int, np.integer)) or S < 1:
        raise ValueError(
            f"stages must be a positive integer, got {stages!r}"
        )
    if S > l1:
        raise ValueError(
            f"stages must be <= the inner dimension ({l1}), got "
            f"stages={S}: every SUMMA stage needs a nonempty inner block"
        )
    plan = _resolve_plan(
        plan, grid=grid, backend=backend, executor=executor,
        threads=threads, deadline=deadline, resilience=resilience,
    )
    needs_sorted = spkadd_method in _NEEDS_SORTED
    sort_local = (
        needs_sorted if sorted_intermediates is None else sorted_intermediates
    )
    if needs_sorted and not sort_local:
        raise ValueError(
            f"{spkadd_method} SpKAdd requires sorted intermediates"
        )
    log = comm if comm is not None else CommLog()
    dl = Deadline.resolve(plan.deadline)

    distA = BlockDistribution.distribute(A, grid.rows, S)
    distB = BlockDistribution.distribute(B, S, grid.cols)

    ranks = [
        RankRecord(rank=grid.rank(i, j), coords=(i, j))
        for i in range(grid.rows)
        for j in range(grid.cols)
    ]

    # ---- broadcast stage -------------------------------------------------
    # Pure dataflow bookkeeping (Fig 5): volumes at the blocks' actual
    # value/index dtype widths.
    for s in range(S):
        for i in range(grid.rows):
            # A(i, s) broadcast along grid row i.
            log.bcast_block(s, "bcast_A", grid.rank(i, s % grid.cols),
                            grid.cols, distA.block(i, s))
        for j in range(grid.cols):
            # B(s, j) broadcast along grid column j.
            log.bcast_block(s, "bcast_B", grid.rank(s % grid.rows, j),
                            grid.rows, distB.block(s, j))

    # ---- merge-call construction ----------------------------------------
    merge_kw = dict(spkadd_kwargs or {})
    if spkadd_method in BACKEND_AWARE_METHODS:
        # The simulation reports per-phase op totals, so hash-family
        # merges default to the instrumented engine unless the plan (or
        # spkadd_kwargs) picks one.
        merge_kw.setdefault("backend", plan.backend or "instrumented")

    def _multiply(rec: RankRecord) -> List[CSCMatrix]:
        """Local-multiply stage: one rank's S Gustavson products."""
        i, j = rec.coords
        pieces: List[CSCMatrix] = []
        for s in range(S):
            dl.check(f"SUMMA local multiply (rank {rec.rank}, stage {s})")
            prod = local_spgemm(
                distA.block(i, s),
                distB.block(s, j),
                accumulator="hash",
                sorted_output=sort_local,
                stats=rec.multiply,
                backend=plan.backend,
            )
            rec.intermediate_nnz += prod.nnz
            pieces.append(prod)
        return pieces

    def _merge(rec: RankRecord, pieces: List[CSCMatrix]):
        """Merge stage (blocking): one k-way SpKAdd over the rank's
        intermediates, on the plan's executor."""
        dl.check(f"SUMMA merge (rank {rec.rank})")
        return spkadd(
            pieces, method=spkadd_method, threads=plan.threads,
            executor=plan.executor, deadline=dl.remaining(),
            resilience=plan.resilience, materialize=plan.materialize,
            **merge_kw,
        )

    c_blocks: List[List[CSCMatrix]] = [
        [None] * grid.cols for _ in range(grid.rows)  # type: ignore[list-item]
    ]

    def _finish(rec: RankRecord, result) -> None:
        i, j = rec.coords
        rec.spkadd_stats = result.stats
        rec.spkadd_symbolic = result.stats_symbolic
        rec.result_nnz = result.matrix.nnz
        c_blocks[i][j] = result.matrix

    # ---- local-multiply + merge stages ----------------------------------
    if plan.rank_parallelism == 1 and not plan.overlap:
        # The paper-faithful serial engine: rank by rank, in rank order.
        for rec in ranks:
            _finish(rec, _merge(rec, _multiply(rec)))
    else:
        _run_pipelined(ranks, plan, dl, _multiply, _merge, _finish,
                       spkadd_method, merge_kw)

    return SummaResult(
        grid=grid,
        stages=S,
        spkadd_method=spkadd_method,
        sorted_intermediates=sort_local,
        c_blocks=c_blocks,
        ranks=ranks,
        comm=log,
        row_bounds=distA.row_bounds,
        col_bounds=distB.col_bounds,
        plan=plan,
    )


def _run_pipelined(
    ranks, plan, dl, _multiply, _merge, _finish, spkadd_method, merge_kw
) -> None:
    """The promoted engine: concurrent rank pipelines with overlap.

    ``rank_parallelism`` multiply chains run concurrently on a local
    thread pool (the Gustavson kernel is NumPy-bound and releases the
    GIL).  With ``overlap``, each rank's merge is submitted through
    :func:`~repro.parallel.executor.submit_spkadd` the moment its last
    stage product lands, so the multiplies of the following ranks
    overlap the merges executing on the worker pools.  Multiprocess
    merge executors are **reservation-pinned** for the whole run (the
    gateway's pattern): all concurrent rank merges share one warm pool
    that LRU eviction cannot touch mid-run.
    """
    from repro.parallel.executor import resolve_executor, submit_spkadd
    from repro.parallel.pools import reserve_pool

    with ExitStack() as stack:
        if plan.threads > 1:
            kind = resolve_executor(plan.executor)
            if kind in ("process", "shm"):
                stack.enter_context(
                    reserve_pool(kind, plan.threads, deadline=dl)
                )
        rank_pool = stack.enter_context(
            ThreadPoolExecutor(
                max_workers=plan.rank_parallelism,
                thread_name_prefix="summa-rank",
            )
        )

        if not plan.overlap:
            futs = {
                rank_pool.submit(
                    lambda r: _finish(r, _merge(r, _multiply(r))), rec
                ): rec
                for rec in ranks
            }
            _collect(futs)
            return

        merge_futs = {}

        def _chain(rec):
            pieces = _multiply(rec)
            dl.check(f"SUMMA merge submit (rank {rec.rank})")
            # The overlap seam: hand the merge to the submitter pool and
            # return immediately — this rank thread moves on to the next
            # rank's multiplies while the merge runs on the worker pool.
            return submit_spkadd(
                pieces, method=spkadd_method, threads=plan.threads,
                executor=plan.executor, deadline=dl.remaining(),
                resilience=plan.resilience, materialize=plan.materialize,
                **merge_kw,
            )

        mult_futs = {rank_pool.submit(_chain, rec): rec for rec in ranks}
        try:
            _collect(mult_futs)
            for fut, rec in mult_futs.items():
                merge_futs[fut.result()] = rec
            _collect(merge_futs)
        finally:
            for fut in merge_futs:
                fut.cancel()
        for fut, rec in merge_futs.items():
            _finish(rec, fut.result())


def _collect(futs) -> None:
    """Wait on a future->rank map; first failure cancels the rest."""
    done, not_done = wait(futs, return_when=FIRST_EXCEPTION)
    failed = next((f for f in done if f.exception() is not None), None)
    if failed is not None:
        for f in not_done:
            f.cancel()
        raise failed.exception()
