"""Central registry of every ``REPRO_*`` environment knob.

Eight PRs grew eleven-plus environment knobs, each parsed wherever it
happened to be read — which is exactly how ``REPRO_SCALE_M=fast`` got to
fail with a bare ``ValueError: invalid literal for int()`` naming
nothing.  This module is the single declaration table: one
:class:`Knob` per variable states its name, parser, default, and
documentation, and every error message names the variable it came from.
``validate_resilience_env``-style eager checks derive from the table
(:func:`validate`), and the L002 lint rule locks the refactor in — no
other module may read ``os.environ`` for a ``REPRO_*`` name.

Reading a knob::

    from repro import env
    timeout = env.get("REPRO_BOOT_TIMEOUT")   # parsed + range-checked

``get`` re-parses on every call (no caching): chaos runs rely on
``REPRO_FAULTS`` producing a *fresh* plan — fresh fault counters — per
parallel call, and tests monkeypatch knobs freely.  Parsing is cheap
(one dict lookup + one small parse) next to any call that consults it.

The module imports only the stdlib at module level; parsers that need
heavier machinery (numpy dtypes, the fault-plan grammar, the fallback
stage list) import it lazily inside the parser so ``repro.env`` stays a
leaf module every other layer can depend on without cycles.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

#: default bound on the forkserver boot: generous (a loaded CI box can
#: be slow) but finite — a wedged fork server must not hang ``get_pool``
#: forever.  Canonical here; ``parallel.resilience`` re-exports it.
DEFAULT_BOOT_TIMEOUT_S = 60.0

#: default chunk retry budget (``REPRO_MAX_RETRIES`` overrides).
DEFAULT_MAX_RETRIES = 2

#: default experiment reduction factors (``REPRO_SCALE_M``/``_N``).
DEFAULT_SCALE = 16


@dataclass(frozen=True)
class Knob:
    """One environment variable: its name, parser, and default.

    ``parse`` receives the raw (non-blank) string and returns the
    knob's value; it raises :class:`ValueError` with a message naming
    the variable on bad input.  An unset variable — or one that is
    blank/whitespace — yields ``default`` without calling ``parse``.
    """

    name: str
    parse: Callable[[str], Any]
    default: Any = None
    description: str = ""
    #: the type a reader gets back, for ``describe()``/docs.
    value_type: str = "str"


def _int_knob(name: str, raw: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be an integer, got {raw!r}"
        ) from None


def _float_knob(name: str, raw: str) -> float:
    try:
        return float(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be a number of seconds, got {raw!r}"
        ) from None


def _parse_max_retries(raw: str) -> int:
    value = _int_knob("REPRO_MAX_RETRIES", raw)
    if value < 0:
        raise ValueError(
            f"max_retries must be >= 0, got {value} "
            "(from the REPRO_MAX_RETRIES environment variable)"
        )
    return value


def _parse_deadline(raw: str) -> float:
    value = _float_knob("REPRO_DEADLINE", raw)
    if value <= 0:
        raise ValueError(
            f"deadline_s must be positive, got {value} "
            "(from the REPRO_DEADLINE environment variable)"
        )
    return value


def _parse_boot_timeout(raw: str) -> float:
    value = _float_knob("REPRO_BOOT_TIMEOUT", raw)
    if value <= 0:
        raise ValueError(
            "REPRO_BOOT_TIMEOUT must be a positive number of seconds, "
            f"got {raw!r}"
        )
    return value


def _parse_fallback(raw: str) -> Optional[Tuple[str, ...]]:
    from repro.parallel.resilience import FALLBACK_STAGES

    mode = raw.strip().lower()
    if mode in ("auto", "on", "default", "1", "true"):
        return None
    if mode in ("off", "none", "0", "false", "disabled"):
        return ()
    stages = tuple(s.strip() for s in mode.split(",") if s.strip())
    bad = [s for s in stages if s not in FALLBACK_STAGES]
    if bad:
        raise ValueError(
            f"unknown fallback stage(s) {bad} in the REPRO_FALLBACK "
            f"environment variable; choose from {FALLBACK_STAGES}, "
            "or 'off' / 'auto'"
        )
    return stages


def _parse_faults(raw: str):
    from repro.parallel.faults import parse_plan

    return parse_plan(raw)


def _parse_shm_results(raw: str) -> bool:
    mode = raw.strip().lower().replace("_", "-")
    if mode in ("zero-copy", "zerocopy"):
        return False
    if mode in ("materialize", "copy"):
        return True
    raise ValueError(
        f"unknown shm result mode {raw!r} (from the REPRO_SHM_RESULTS "
        "environment variable); choose 'zero-copy' or 'materialize'"
    )


def _parse_index_dtype(raw: str) -> Optional[str]:
    import numpy as np

    mode = raw.strip()
    if not mode or mode == "auto":
        return None
    try:
        dt = np.dtype(mode)
    except TypeError:
        raise ValueError(
            f"unknown index dtype {raw!r} (from the REPRO_INDEX_DTYPE "
            "environment variable); choose 'auto', 'int32' or 'int64'"
        ) from None
    if dt.kind != "i":
        raise ValueError(
            f"index dtype must be a signed integer, got {dt} "
            "(from the REPRO_INDEX_DTYPE environment variable)"
        )
    return mode


def _parse_scale(name: str, raw: str) -> int:
    value = _int_knob(name, raw)
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


#: the declaration table: every ``REPRO_*`` knob the repo consults.
KNOBS: Dict[str, Knob] = {
    knob.name: knob
    for knob in (
        Knob(
            "REPRO_BACKEND",
            parse=lambda raw: raw,
            default=None,
            value_type="str | None",
            description=(
                "Default kernel backend ('instrumented' or 'fast') when "
                "no backend= argument is given; validated by "
                "kernels.registry.resolve_backend with its registry of "
                "available backends."
            ),
        ),
        Knob(
            "REPRO_EXECUTOR",
            parse=lambda raw: raw,
            default=None,
            value_type="str | None",
            description=(
                "Default executor ('serial', 'thread', 'process', 'shm') "
                "when no executor= argument is given; validated by "
                "parallel.executor.resolve_executor, whose error names "
                "this variable as the source."
            ),
        ),
        Knob(
            "REPRO_MP_START",
            parse=lambda raw: raw,
            default=None,
            value_type="str | None",
            description=(
                "Multiprocessing start method override ('forkserver' "
                "default; 'fork' / 'spawn' to override). Validated by "
                "multiprocessing.get_context."
            ),
        ),
        Knob(
            "REPRO_DEADLINE",
            parse=_parse_deadline,
            default=None,
            value_type="float | None",
            description=(
                "Default per-call deadline in seconds (positive); an "
                "explicit deadline= argument overrides it."
            ),
        ),
        Knob(
            "REPRO_MAX_RETRIES",
            parse=_parse_max_retries,
            default=DEFAULT_MAX_RETRIES,
            value_type="int",
            description=(
                "Chunk retry budget for transient failures (>= 0); "
                f"default {DEFAULT_MAX_RETRIES}."
            ),
        ),
        Knob(
            "REPRO_FALLBACK",
            parse=_parse_fallback,
            default=None,
            value_type="tuple[str, ...] | None",
            description=(
                "Degradation chain control: 'auto'/unset = full "
                "shm->process->thread->serial chain, 'off' disables "
                "fallback, a comma list restricts the allowed stages."
            ),
        ),
        Knob(
            "REPRO_BOOT_TIMEOUT",
            parse=_parse_boot_timeout,
            default=DEFAULT_BOOT_TIMEOUT_S,
            value_type="float",
            description=(
                "Bound on the forkserver boot wait in seconds "
                f"(positive); default {DEFAULT_BOOT_TIMEOUT_S:g}."
            ),
        ),
        Knob(
            "REPRO_FAULTS",
            parse=_parse_faults,
            default=None,
            value_type="FaultPlan | None",
            description=(
                "Fault-injection directives (e.g. 'kill_chunk=0', "
                "'delay_chunk=1:0.5'); parsed afresh per read so every "
                "call of a chaos run gets fresh fault counters."
            ),
        ),
        Knob(
            "REPRO_SHM_RESULTS",
            parse=_parse_shm_results,
            default=False,
            value_type="bool",
            description=(
                "shm-result mode: 'zero-copy' (default, False) or "
                "'materialize' (True = copy results out of shared "
                "memory). The parsed value is the materialize flag."
            ),
        ),
        Knob(
            "REPRO_INDEX_DTYPE",
            parse=_parse_index_dtype,
            default=None,
            value_type="str | None",
            description=(
                "Pin the resolved index width ('int32'/'int64'; 'auto' "
                "= the int32-when-it-fits rule). The safe-widening "
                "guard in formats.compressed.resolve_index_dtype still "
                "applies."
            ),
        ),
        Knob(
            "REPRO_FAST",
            parse=lambda raw: True,
            default=False,
            value_type="bool",
            description=(
                "Any non-blank value selects the small CI-speed "
                "experiment preset (scale_m = scale_n = 64)."
            ),
        ),
        Knob(
            "REPRO_SCALE_M",
            parse=lambda raw: _parse_scale("REPRO_SCALE_M", raw),
            default=DEFAULT_SCALE,
            value_type="int",
            description=(
                "Row/degree reduction factor for experiments (>= 1); "
                f"default {DEFAULT_SCALE}."
            ),
        ),
        Knob(
            "REPRO_SCALE_N",
            parse=lambda raw: _parse_scale("REPRO_SCALE_N", raw),
            default=DEFAULT_SCALE,
            value_type="int",
            description=(
                "Column-count reduction factor for experiments (>= 1); "
                f"default {DEFAULT_SCALE}."
            ),
        ),
    )
}


def knob_names() -> Tuple[str, ...]:
    """Every registered knob name, sorted."""
    return tuple(sorted(KNOBS))


def raw(name: str) -> Optional[str]:
    """The raw environment string for ``name`` (``None`` when unset).

    ``name`` must be registered — reading an undeclared ``REPRO_*``
    variable is exactly the bug class this module removes.
    """
    _knob(name)
    return os.environ.get(name)


def get(name: str) -> Any:
    """Parse knob ``name`` from the environment.

    Unset — or blank/whitespace — yields the knob's default; anything
    else goes through the knob's parser, whose :class:`ValueError`
    names the variable.
    """
    knob = _knob(name)
    value = os.environ.get(name)
    if value is None or not value.strip():
        return knob.default
    return knob.parse(value)


def validate(*names: str) -> None:
    """Eagerly parse the named knobs (all knobs when none given).

    Raises the first parse error — e.g. ``REPRO_BOOT_TIMEOUT=abc``
    fails here, on a run that would never otherwise read it, instead of
    exploding mid-degradation when a process pool finally boots.
    """
    for name in names or knob_names():
        get(name)


def describe() -> Tuple[Dict[str, Any], ...]:
    """The declaration table as plain dicts (docs / future tooling)."""
    return tuple(
        {
            "name": knob.name,
            "type": knob.value_type,
            "default": knob.default,
            "description": knob.description,
        }
        for name, knob in sorted(KNOBS.items())
    )


def _knob(name: str) -> Knob:
    try:
        return KNOBS[name]
    except KeyError:
        raise KeyError(
            f"unknown environment knob {name!r}; registered knobs: "
            f"{', '.join(knob_names())}"
        ) from None


__all__ = [
    "DEFAULT_BOOT_TIMEOUT_S",
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_SCALE",
    "KNOBS",
    "Knob",
    "describe",
    "get",
    "knob_names",
    "raw",
    "validate",
]
