"""Wire protocol of the SpKAdd gateway: length-prefixed binary frames.

One frame travels as::

    1 byte   format tag: b"J" (JSON header) or b"M" (msgpack header)
    4 bytes  big-endian header length  H
    4 bytes  big-endian payload length P
    H bytes  encoded header (a flat dict of metadata — never array data)
    P bytes  payload: the frame's array buffers, back to back

The header is msgpack when the ``msgpack`` module is importable and
JSON otherwise — the tag byte lets either side decode frames from a
peer with the opposite capability, so the container does not need the
optional dependency installed to serve or to call.  Array *data* never
rides in the header: inline arrays are raw little-ordered buffers in
the payload section, described by ``{"dtype", "size", "offset"}``
descriptors, and co-located clients can replace the buffers entirely
with **shared-memory segment handles** (``{"shm": {"name", "dtype",
"size", "offset"}}``) so a request or response moves zero bytes through
the socket.

Requests and responses are matched by ``id``; every request op gets
exactly one response frame except ``release`` (fire-and-forget).  Error
responses are *typed*: ``code`` maps back onto the library's exception
family (:class:`~repro.parallel.resilience.DeadlineExceeded` for an
expired request budget, :class:`~repro.parallel.resilience.ExecutorUnusable`
for an exhausted degradation chain, :class:`ShedError` for admission-
control load shedding, :class:`RequestInvalid` for a malformed request),
so a gateway client sees the same exceptions an in-process caller
would.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.formats.csc import CSCMatrix
from repro.parallel.resilience import DeadlineExceeded, ExecutorUnusable

try:  # optional: the baked image may or may not carry it
    import msgpack  # type: ignore
except ImportError:  # pragma: no cover - exercised via _encode_header fallback
    msgpack = None

#: frame prefix: format tag + header length + payload length.
_PREFIX = struct.Struct(">cII")

#: refuse to allocate for frames claiming more than this (a corrupt or
#: hostile length prefix must not OOM the server).
MAX_FRAME_BYTES = 1 << 31

#: protocol revision, echoed by ``ping`` so clients can detect skew.
PROTOCOL_VERSION = 1


# ---------------------------------------------------------------------------
# Typed gateway errors.
# ---------------------------------------------------------------------------


class GatewayError(RuntimeError):
    """Base class of gateway-side request failures."""


class ShedError(GatewayError):
    """The gateway refused the request: its admission queue is full.

    Back off and retry — shedding is the overload contract, not a bug;
    an unbounded queue would instead convert overload into unbounded
    latency for every queued request.
    """


class RequestInvalid(GatewayError, ValueError):
    """The request was malformed (bad shapes, unknown method, a
    ``threads`` count the kernels reject, ...)."""


class GatewayConnectionError(GatewayError, ConnectionError):
    """The transport failed and the client could not recover it."""


class ResultReleased(GatewayError):
    """A shm result lease was used after :meth:`ShmResult.release`
    (or after its owning connection closed)."""


#: error-code wire names -> exception types raised client-side.  The
#: resilience family maps onto the *library's* exceptions so a gateway
#: caller handles the same types an in-process caller would.
ERROR_TYPES = {
    "shed": ShedError,
    "invalid": RequestInvalid,
    "deadline": DeadlineExceeded,
    "unusable": ExecutorUnusable,
    "internal": GatewayError,
}


def error_code_for(exc: BaseException) -> str:
    """The wire code a server-side exception travels as."""
    if isinstance(exc, DeadlineExceeded):
        return "deadline"
    if isinstance(exc, ExecutorUnusable):
        return "unusable"
    if isinstance(exc, ShedError):
        return "shed"
    if isinstance(exc, (RequestInvalid, ValueError, TypeError, KeyError)):
        return "invalid"
    return "internal"


def raise_for_error(header: Dict) -> None:
    """Raise the typed exception an error response encodes (no-op for
    non-error frames)."""
    if header.get("status") != "error":
        return
    code = header.get("code", "internal")
    exc_type = ERROR_TYPES.get(code, GatewayError)
    raise exc_type(header.get("message", f"gateway error [{code}]"))


# ---------------------------------------------------------------------------
# Frame encode/decode.
# ---------------------------------------------------------------------------


def _encode_header(header: Dict) -> Tuple[bytes, bytes]:
    if msgpack is not None:
        return b"M", msgpack.packb(header, use_bin_type=True)
    return b"J", json.dumps(header, separators=(",", ":")).encode("utf-8")


def _decode_header(tag: bytes, raw: bytes) -> Dict:
    if tag == b"M":
        if msgpack is None:
            raise GatewayError(
                "peer sent a msgpack header but the msgpack module is not "
                "importable here; restart the peer without msgpack or "
                "install it"
            )
        return msgpack.unpackb(raw, raw=False)
    if tag == b"J":
        return json.loads(raw.decode("utf-8"))
    raise GatewayError(f"unknown frame format tag {tag!r}")


def encode_frame(header: Dict, payload: bytes = b"") -> bytes:
    """Serialize one frame (header dict + raw payload bytes)."""
    tag, raw = _encode_header(header)
    return _PREFIX.pack(tag, len(raw), len(payload)) + raw + payload


def decode_prefix(prefix: bytes) -> Tuple[bytes, int, int]:
    """Split the 9-byte frame prefix; validates the claimed lengths."""
    tag, header_len, payload_len = _PREFIX.unpack(prefix)
    if header_len + payload_len > MAX_FRAME_BYTES:
        raise GatewayError(
            f"frame claims {header_len + payload_len} bytes "
            f"(> {MAX_FRAME_BYTES} limit); refusing"
        )
    return tag, header_len, payload_len


PREFIX_BYTES = _PREFIX.size


def decode_frame_parts(
    tag: bytes, header_raw: bytes, payload: bytes
) -> Tuple[Dict, bytes]:
    return _decode_header(tag, header_raw), payload


async def read_frame(reader) -> Tuple[Dict, bytes]:
    """Read one frame from an ``asyncio.StreamReader``."""
    prefix = await reader.readexactly(PREFIX_BYTES)
    tag, header_len, payload_len = decode_prefix(prefix)
    header_raw = await reader.readexactly(header_len)
    payload = await reader.readexactly(payload_len) if payload_len else b""
    return _decode_header(tag, header_raw), payload


def read_frame_sync(sock) -> Tuple[Dict, bytes]:
    """Read one frame from a blocking socket (client side)."""
    prefix = _recv_exact(sock, PREFIX_BYTES)
    tag, header_len, payload_len = decode_prefix(prefix)
    header_raw = _recv_exact(sock, header_len)
    payload = _recv_exact(sock, payload_len) if payload_len else b""
    return _decode_header(tag, header_raw), payload


def _recv_exact(sock, n: int) -> bytes:
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            raise ConnectionError("gateway connection closed mid-frame")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------------
# Matrix packing: inline buffers or shm segment handles.
# ---------------------------------------------------------------------------


def _array_descriptor(arr: np.ndarray, chunks: List[bytes], cursor: int):
    buf = np.ascontiguousarray(arr).tobytes()
    desc = {"dtype": arr.dtype.str, "size": int(arr.size), "offset": cursor}
    chunks.append(buf)
    return desc, cursor + len(buf)


def pack_matrices(mats: Sequence[CSCMatrix]) -> Tuple[List[Dict], bytes]:
    """Inline encoding: per-matrix descriptors + one payload blob."""
    chunks: List[bytes] = []
    cursor = 0
    headers = []
    for A in mats:
        entry = {"sorted": bool(A.sorted)}
        for name in ("indptr", "indices", "data"):
            entry[name], cursor = _array_descriptor(
                getattr(A, name), chunks, cursor
            )
        headers.append(entry)
    return headers, b"".join(chunks)


def _array_from_payload(desc: Dict, payload: bytes) -> np.ndarray:
    dtype = np.dtype(desc["dtype"])
    size = int(desc["size"])
    offset = int(desc["offset"])
    end = offset + size * dtype.itemsize
    if offset < 0 or end > len(payload):
        raise RequestInvalid(
            f"array descriptor [{offset}:{end}] outside the "
            f"{len(payload)}-byte payload"
        )
    # frombuffer over bytes is zero-copy and read-only; the kernels
    # treat inputs as immutable, so no defensive copy is made.
    return np.frombuffer(payload, dtype=dtype, count=size, offset=offset)


class AttachedSegments:
    """Reader-side attachments to shm-handle arrays (close after use)."""

    def __init__(self) -> None:
        self._segments: Dict[str, object] = {}

    def array(self, desc: Dict) -> np.ndarray:
        from multiprocessing import shared_memory

        name = desc["name"]
        seg = self._segments.get(name)
        if seg is None:
            try:
                seg = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                raise RequestInvalid(
                    f"shm segment {name!r} does not exist (sender unlinked "
                    "it before the call completed?)"
                ) from None
            self._segments[name] = seg
        dtype = np.dtype(desc["dtype"])
        arr = np.ndarray(
            (int(desc["size"]),),
            dtype=dtype,
            buffer=seg.buf,
            offset=int(desc["offset"]),
        )
        arr.flags.writeable = False
        return arr

    def close(self) -> None:
        segments, self._segments = self._segments, {}
        for seg in segments.values():
            try:
                seg.close()
            except BufferError:  # pragma: no cover - a view still alive
                pass

    def __enter__(self) -> "AttachedSegments":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def unpack_matrices(
    shape: Sequence[int],
    entries: Sequence[Dict],
    payload: bytes,
    attachments: Optional[AttachedSegments] = None,
) -> List[CSCMatrix]:
    """Rebuild the request's CSC matrices from descriptors.

    Each array descriptor is either inline (``dtype/size/offset`` into
    ``payload``) or a shared-segment handle (``{"shm": {...}}``); shm
    arrays attach through ``attachments``, whose ``close()`` the caller
    owns — segment-backed views must not outlive the call.
    """
    m, n = int(shape[0]), int(shape[1])
    mats = []
    for entry in entries:
        arrays = {}
        for name in ("indptr", "indices", "data"):
            desc = entry[name]
            if "shm" in desc:
                if attachments is None:
                    raise RequestInvalid(
                        "shm array handles need an attachment context"
                    )
                arrays[name] = attachments.array(desc["shm"])
            else:
                arrays[name] = _array_from_payload(desc, payload)
        if arrays["indptr"].size != n + 1:
            raise RequestInvalid(
                f"indptr has {arrays['indptr'].size} entries for "
                f"{n} columns"
            )
        try:
            mats.append(
                CSCMatrix(
                    (m, n),
                    arrays["indptr"],
                    arrays["indices"],
                    arrays["data"],
                    sorted=bool(entry.get("sorted", True)),
                    check=True,
                )
            )
        except (ValueError, TypeError) as err:
            raise RequestInvalid(f"malformed CSC arrays: {err}") from err
    return mats


def pack_result(matrix: CSCMatrix) -> Tuple[Dict, bytes]:
    """Inline response encoding for one result matrix."""
    entries, payload = pack_matrices([matrix])
    entry = entries[0]
    return (
        {
            "shape": [int(matrix.shape[0]), int(matrix.shape[1])],
            "sorted": entry["sorted"],
            "indptr": entry["indptr"],
            "indices": entry["indices"],
            "data": entry["data"],
        },
        payload,
    )


def unpack_result(result: Dict, payload: bytes) -> CSCMatrix:
    m, n = result["shape"]
    return CSCMatrix(
        (int(m), int(n)),
        _array_from_payload(result["indptr"], payload).copy(),
        _array_from_payload(result["indices"], payload),
        _array_from_payload(result["data"], payload),
        sorted=bool(result.get("sorted", True)),
        check=False,
    )


__all__ = [
    "AttachedSegments",
    "ERROR_TYPES",
    "GatewayConnectionError",
    "GatewayError",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "RequestInvalid",
    "ResultReleased",
    "ShedError",
    "encode_frame",
    "error_code_for",
    "pack_matrices",
    "pack_result",
    "raise_for_error",
    "read_frame",
    "read_frame_sync",
    "unpack_matrices",
    "unpack_result",
]
