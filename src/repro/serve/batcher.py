"""Micro-batching: fuse many small sum requests into one high-k call.

The paper's result is that SpKAdd's advantage *grows with k*, the
number of addends — so a gateway drowning in small requests should not
run k=4 kernels back to back; it should make one call whose k is the
sum of everything waiting.  The fusion trick is the paper's own input
construction run in reverse (:meth:`~repro.formats.csc.CSCMatrix.embed_columns`):
requests sharing a row count are laid out side by side along the
column axis, every addend of every request is embedded at its request's
column offset, and **all of them become addends of one fused call** —
request r's columns receive contributions only from request r's
matrices (everything else is structurally zero there), so slicing the
fused sum back apart yields each request's exact answer.

Fusing k_1 + k_2 + ... + k_B addends into one call raises k to the sum
while the per-call fixed costs (pool dispatch, symbolic sizing, Python
overhead) are paid once — exactly the regime the kernels are best at.

Bit-identity with a solo ``spkadd`` call is preserved:

* batches only mix requests whose **resolved value dtype** matches
  (part of :class:`BatchKey`), so the fused resolution equals each
  solo resolution;
* within a request's columns the fused call sees the same entries from
  the same addends in the same order, and the kernels' per-column
  passes never look across columns;
* the fused call's **index width** may resolve wider (bigger n, more
  summed nnz), so :func:`split_result` re-casts each slice to the
  width the request would have resolved solo — a checked narrowing
  that cannot wrap precisely because the solo bounds fit by
  construction.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Awaitable, Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.formats.csc import CSCMatrix
from repro.kernels import resolve_index_dtype, resolve_value_dtype


@dataclass(frozen=True)
class BatchKey:
    """Requests fuse only within one key.

    ``m`` — fused addends must share a row count (columns concatenate).
    ``value_dtype`` — the solo-resolved value dtype, so fusing cannot
    promote a request's values.  ``method``/``backend``/``sorted_output``
    — one kernel call has one of each.
    """

    m: int
    value_dtype: str
    method: str
    backend: str
    sorted_output: bool

    @classmethod
    def for_request(
        cls, mats: Sequence[CSCMatrix], method: str, backend: str,
        sorted_output: bool,
    ) -> "BatchKey":
        return cls(
            m=int(mats[0].shape[0]),
            value_dtype=np.dtype(resolve_value_dtype(mats)).str,
            method=method,
            backend=backend or "",
            sorted_output=bool(sorted_output),
        )


def fuse_requests(
    requests: Sequence,
) -> Tuple[List[CSCMatrix], List[Tuple[int, int]]]:
    """Embed every request's addends into one wide collection.

    ``requests`` expose ``.mats``; returns ``(fused, spans)`` where
    ``fused`` holds ``sum(k_r)`` matrices of shape ``(m, sum(n_r))``
    and ``spans[r]`` is the column range carrying request ``r``.
    """
    m = int(requests[0].mats[0].shape[0])
    n_total = sum(int(r.mats[0].shape[1]) for r in requests)
    fused: List[CSCMatrix] = []
    spans: List[Tuple[int, int]] = []
    offset = 0
    for req in requests:
        n_r = int(req.mats[0].shape[1])
        for A in req.mats:
            fused.append(A.embed_columns(n_total, offset))
        spans.append((offset, offset + n_r))
        offset += n_r
    assert offset == n_total and m == int(fused[0].shape[0])
    return fused, spans


def split_result(
    matrix: CSCMatrix,
    requests: Sequence,
    spans: Sequence[Tuple[int, int]],
) -> List[CSCMatrix]:
    """Slice the fused sum back into per-request results.

    Each slice is re-cast to the index width the request would resolve
    solo (the fused call may have widened); the narrowing is checked by
    ``with_index_dtype`` and cannot wrap because the solo bounds fit.
    """
    outs = []
    for req, (j0, j1) in zip(requests, spans):
        sub = matrix.select_columns(j0, j1)
        solo = resolve_index_dtype(req.mats, getattr(req, "index_dtype", None))
        if sub.indices.dtype != solo or sub.indptr.dtype != solo:
            sub = sub.with_index_dtype(solo)
        outs.append(sub)
    return outs


class MicroBatcher:
    """Collect small requests per :class:`BatchKey`, flush fused batches.

    A bucket flushes when it reaches ``max_batch`` requests or when
    ``window_s`` has elapsed since its first request — whichever comes
    first.  ``window_s`` is the latency the gateway *spends* to buy a
    higher k; at zero every request still flushes on the next loop tick
    (batching then only fuses requests that arrived in one burst).
    Flushing hands the batch to ``run_batch`` (an async callable) as a
    fire-and-forget task; the batcher never blocks the accept loop.
    """

    def __init__(
        self,
        *,
        window_s: float,
        max_batch: int,
        run_batch: Callable[[BatchKey, List], Awaitable[None]],
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.window_s = max(float(window_s), 0.0)
        self.max_batch = int(max_batch)
        self._run_batch = run_batch
        self._buckets: Dict[BatchKey, List] = {}
        self._timers: Dict[BatchKey, asyncio.TimerHandle] = {}
        self._tasks: set = set()

    def add(self, key: BatchKey, request) -> None:
        """Enqueue one admitted request (event-loop thread only)."""
        bucket = self._buckets.setdefault(key, [])
        bucket.append(request)
        if len(bucket) >= self.max_batch or self.max_batch == 1:
            self.flush(key)
        elif len(bucket) == 1:
            loop = asyncio.get_running_loop()
            self._timers[key] = loop.call_later(
                self.window_s, self.flush, key
            )

    def flush(self, key: BatchKey) -> None:
        """Dispatch the key's pending bucket now (idempotent)."""
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        bucket = self._buckets.pop(key, None)
        if not bucket:
            return
        task = asyncio.get_running_loop().create_task(
            self._run_batch(key, bucket)
        )
        # Keep a strong reference until done (asyncio holds tasks weakly).
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def flush_all(self) -> None:
        for key in list(self._buckets):
            self.flush(key)

    def pending(self) -> int:
        return sum(len(b) for b in self._buckets.values())


__all__ = ["BatchKey", "MicroBatcher", "fuse_requests", "split_result"]
