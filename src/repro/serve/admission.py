"""Admission control: bounded queue depth, load shedding, SLO counters.

The gateway's overload contract is **shed, don't queue unboundedly**: a
request that cannot be admitted because ``max_queue`` requests are
already in flight is answered immediately with a typed ``shed`` error
frame, so clients see bounded latency and an honest backpressure signal
instead of a queue that silently converts overload into timeouts for
everyone.  Admission is also **deadline-aware**: a request whose budget
has already expired while it waited (in the batcher window or behind
the compute pool) is answered with the typed deadline error *without
running* — work the client has given up on is the cheapest load to
shed.

All state lives on the event-loop thread, so plain counters suffice —
:meth:`AdmissionController.snapshot` is what the ``stats`` op serves.
"""

from __future__ import annotations

from typing import Dict, Optional


class AdmissionController:
    """In-flight bookkeeping + the gateway's observability counters."""

    def __init__(self, max_queue: int) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.max_queue = int(max_queue)
        self.in_flight = 0
        # -- counters (cumulative since server start) ------------------
        self.received = 0          # sum requests seen
        self.admitted = 0          # passed the queue-depth gate
        self.shed = 0              # refused: queue full
        self.completed = 0         # answered with a result
        self.errored = 0           # answered with a non-shed error
        self.deadline_expired = 0  # answered with the typed deadline error
        self.batches = 0           # fused kernel calls issued
        self.batched_requests = 0  # requests answered out of fused calls
        self.solo_calls = 0        # one-request kernel calls (large lane,
                                   # singleton batches, batch-failure reruns)
        self.fused_k_last = 0      # k of the most recent fused call
        self.fused_k_max = 0       # largest fused k observed
        self.released_leases = 0   # shm result handles released

    # ------------------------------------------------------------ gates
    def try_admit(self) -> bool:
        """Admit one request, or refuse because the queue is full."""
        self.received += 1
        if self.in_flight >= self.max_queue:
            self.shed += 1
            return False
        self.in_flight += 1
        self.admitted += 1
        return True

    def release(self) -> None:
        self.in_flight -= 1

    # --------------------------------------------------------- counters
    def record_batch(self, fused_k: int, n_requests: int) -> None:
        self.batches += 1
        self.batched_requests += n_requests
        self.fused_k_last = int(fused_k)
        self.fused_k_max = max(self.fused_k_max, int(fused_k))

    def snapshot(self, extra: Optional[Dict] = None) -> Dict:
        stats = {
            "max_queue": self.max_queue,
            "in_flight": self.in_flight,
            "received": self.received,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "errored": self.errored,
            "deadline_expired": self.deadline_expired,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "solo_calls": self.solo_calls,
            "fused_k_last": self.fused_k_last,
            "fused_k_max": self.fused_k_max,
            "released_leases": self.released_leases,
        }
        if extra:
            stats.update(extra)
        return stats


__all__ = ["AdmissionController"]
