"""The SpKAdd gateway: an asyncio front door over the warm pool registry.

``GatewayServer`` accepts concurrent sum requests on a local unix
socket, runs admission control (:mod:`repro.serve.admission`), fuses
small requests into high-k kernel calls (:mod:`repro.serve.batcher`),
routes large requests to a **dedicated, reservation-pinned pool**
(:func:`repro.parallel.pools.reserve_pool` keeps the gateway's workers
warm against LRU eviction), and maps the resilience layer's typed
failures straight onto typed response frames:

========================  =============================================
library failure           wire response
========================  =============================================
``DeadlineExceeded``      ``code="deadline"`` — the request's budget,
                          enforced across queueing, batching, pool
                          boot, chunk retry, and assembly
``ExecutorUnusable``      ``code="unusable"`` — the whole degradation
                          chain (shm → process → thread → serial) gave
                          up; shed-or-degrade already happened
queue full                ``code="shed"`` — admission refused; retry
                          with backoff
``ValueError`` et al.     ``code="invalid"`` — malformed request
                          (bad arrays, ``threads=0``, unknown method)
========================  =============================================

Execution happens on a small thread pool (``parallel_calls`` wide) so
the event loop never blocks on a kernel; the kernels' own process pools
provide the real parallelism.  A fused batch that fails as a whole is
re-run request by request, so one poisoned (or deadline-expired)
request cannot take its batch siblings down with it.
"""

from __future__ import annotations

import asyncio
import functools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.parallel.resilience import (
    Deadline,
    DeadlineExceeded,
    validate_resilience_env,
)
from repro.serve import protocol
from repro.serve.admission import AdmissionController
from repro.serve.batcher import BatchKey, MicroBatcher, fuse_requests, split_result
from repro.serve.protocol import (
    AttachedSegments,
    RequestInvalid,
    error_code_for,
    pack_result,
)

#: default unix-socket path (``python -m repro serve`` and the client
#: agree on it); override per server via :class:`GatewayConfig`.
DEFAULT_SOCKET = "/tmp/repro-gateway.sock"


@dataclass
class GatewayConfig:
    """Knobs of one gateway instance.

    ``small_nnz`` splits the lanes: requests whose summed input nnz is
    at or under it are micro-batched, larger ones go solo to the
    dedicated pool.  ``batch_window_s`` is the latency spent waiting
    for batch-mates; ``batch_max`` caps a fused call's request count.
    ``max_queue`` bounds requests in flight (admitted, queued, or
    running) — beyond it the gateway sheds.  ``deadline_s`` is the
    default per-request budget (requests may carry their own);
    ``None`` = unbounded.  ``parallel_calls`` is how many kernel calls
    may run concurrently on the compute thread pool.
    """

    socket_path: str = DEFAULT_SOCKET
    threads: int = 2
    executor: str = "shm"
    small_nnz: int = 1 << 15
    batch_window_s: float = 0.002
    batch_max: int = 16
    max_queue: int = 64
    deadline_s: Optional[float] = None
    parallel_calls: int = 2
    resilience: object = None  # Optional[ResiliencePolicy]; None = env

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads}")
        if self.parallel_calls < 1:
            raise ValueError(
                f"parallel_calls must be >= 1, got {self.parallel_calls}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )


@dataclass
class _SumRequest:
    """One admitted sum request, parsed and bound to its connection."""

    id: object
    mats: List
    method: str
    backend: Optional[str]
    sorted_output: bool
    threads: Optional[int]
    index_dtype: Optional[str]
    value_dtype: Optional[str]
    deadline: Deadline
    response_mode: str
    respond: object        # async (header, payload) -> None
    leases: Dict           # the connection's shm-result lease store
    attachments: Optional[AttachedSegments] = None
    done: bool = field(default=False, init=False)
    k: int = field(init=False)

    def __post_init__(self) -> None:
        self.k = len(self.mats)

    def close_attachments(self) -> None:
        if self.attachments is not None:
            self.attachments.close()
            self.attachments = None


class GatewayServer:
    """See the module docstring; construct, :meth:`start`, then await
    :meth:`serve_until_stopped` (or use :func:`start_in_thread`)."""

    def __init__(self, config: GatewayConfig) -> None:
        from concurrent.futures import ThreadPoolExecutor
        from repro.parallel.executor import resolve_executor

        self.config = config
        self.executor = resolve_executor(config.executor)
        # Fail fast on misconfigured REPRO_* knobs at startup, not on
        # the first unlucky request.
        validate_resilience_env()
        self.admission = AdmissionController(config.max_queue)
        self.batcher = MicroBatcher(
            window_s=config.batch_window_s,
            max_batch=config.batch_max,
            run_batch=self._run_batch,
        )
        self._compute = ThreadPoolExecutor(
            max_workers=config.parallel_calls,
            thread_name_prefix="repro-serve",
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._reservation = None
        self._stop_event: Optional[asyncio.Event] = None
        self._tasks: set = set()
        self._conn_tasks: set = set()
        self._conn_writers: set = set()
        self._lease_tokens = iter(range(1, 1 << 62))
        self._t_started = None

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        path = self.config.socket_path
        if os.path.exists(path):
            # A stale socket from a crashed server blocks bind(); a live
            # server would still be flock-free — last-one-wins is the
            # local-socket convention.
            os.unlink(path)
        if self.executor in ("shm", "process"):
            from repro.parallel.pools import reserve_pool

            # Dedicated pool: boot the workers *before* traffic arrives
            # and pin them against LRU eviction for the server's life.
            self._reservation = reserve_pool(self.executor, self.config.threads)
        self._stop_event = asyncio.Event()
        try:
            self._server = await asyncio.start_unix_server(
                self._serve_connection, path=path
            )
        except BaseException:
            if self._reservation is not None:
                self._reservation.release()
                self._reservation = None
            raise
        self._t_started = time.monotonic()

    async def serve_until_stopped(self) -> None:
        await self._stop_event.wait()
        await self.aclose()

    def request_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Close established connections and let their handler tasks run
        # to completion — cancelling them at loop teardown instead would
        # leak their shm leases and spam CancelledError tracebacks.
        for writer in list(self._conn_writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.gather(
                *list(self._conn_tasks), return_exceptions=True
            )
        self.batcher.flush_all()
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        self._compute.shutdown(wait=True)
        if self._reservation is not None:
            self._reservation.release()
            self._reservation = None
        if os.path.exists(self.config.socket_path):
            try:
                os.unlink(self.config.socket_path)
            except OSError:  # pragma: no cover - raced with a new server
                pass

    def _spawn(self, coro) -> None:
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # ----------------------------------------------------------- connection
    async def _serve_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        write_lock = asyncio.Lock()
        leases: Dict = {}

        async def respond(header: Dict, payload: bytes = b"") -> None:
            frame = protocol.encode_frame(header, payload)
            async with write_lock:
                writer.write(frame)
                await writer.drain()

        try:
            while True:
                try:
                    header, payload = await protocol.read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break
                except (ValueError, protocol.GatewayError):
                    # Oversized or undecodable frame: the stream is no
                    # longer in sync, so the only safe answer is to drop
                    # the connection (the client reconnects cleanly).
                    break
                await self._dispatch(header, payload, respond, leases)
        finally:
            self._conn_tasks.discard(task)
            self._conn_writers.discard(writer)
            for owner in leases.values():
                owner.release()
            leases.clear()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(self, header, payload, respond, leases) -> None:
        op = header.get("op")
        req_id = header.get("id")
        if op == "sum":
            await self._handle_sum(header, payload, respond, leases)
        elif op == "ping":
            await respond({
                "op": "pong", "id": req_id, "status": "ok",
                "version": protocol.PROTOCOL_VERSION,
            })
        elif op == "stats":
            await respond({
                "op": "stats", "id": req_id, "status": "ok",
                "stats": self.admission.snapshot({
                    "pending_batches": self.batcher.pending(),
                    "uptime_s": (
                        round(time.monotonic() - self._t_started, 3)
                        if self._t_started is not None else 0.0
                    ),
                    "executor": self.executor,
                    "threads": self.config.threads,
                }),
            })
        elif op == "release":
            owner = leases.pop(header.get("token"), None)
            if owner is not None:
                owner.release()
                self.admission.released_leases += 1
        elif op == "shutdown":
            await respond({"op": "bye", "id": req_id, "status": "ok"})
            self.request_stop()
        else:
            await respond({
                "op": "error", "id": req_id, "status": "error",
                "code": "invalid", "message": f"unknown op {op!r}",
            })

    # ------------------------------------------------------------- requests
    async def _handle_sum(self, header, payload, respond, leases) -> None:
        req_id = header.get("id")
        if not self.admission.try_admit():
            await respond({
                "op": "error", "id": req_id, "status": "error",
                "code": "shed",
                "message": (
                    f"gateway at capacity ({self.admission.max_queue} "
                    "requests in flight); retry with backoff"
                ),
            })
            return
        attachments = AttachedSegments()
        try:
            req = self._parse_sum(header, payload, respond, leases,
                                  attachments)
        except Exception as err:
            attachments.close()
            self.admission.release()
            self.admission.errored += 1
            await respond({
                "op": "error", "id": req_id, "status": "error",
                "code": error_code_for(err), "message": str(err),
            })
            return
        total_nnz = sum(A.nnz for A in req.mats)
        batchable = (
            total_nnz <= self.config.small_nnz
            and req.threads is None
            and req.value_dtype is None
        )
        if batchable:
            self.batcher.add(
                BatchKey.for_request(
                    req.mats, req.method, req.backend or "",
                    req.sorted_output,
                ),
                req,
            )
        else:
            self._spawn(self._finish_solo(req))

    def _parse_sum(self, header, payload, respond, leases,
                   attachments) -> _SumRequest:
        shape = header.get("shape")
        entries = header.get("mats")
        if (not isinstance(shape, (list, tuple)) or len(shape) != 2
                or not entries):
            raise RequestInvalid(
                "sum request needs a 2-entry shape and >= 1 matrices"
            )
        threads = header.get("threads")
        if threads is not None and int(threads) < 1:
            # The kernels reject this too (PR 7's validation); doing it
            # at parse keeps a malformed count out of the batch lane,
            # where the server's own thread count would mask it.
            raise RequestInvalid(f"threads must be >= 1, got {threads}")
        deadline_s = header.get("deadline_s", self.config.deadline_s)
        if deadline_s is not None and float(deadline_s) <= 0:
            raise RequestInvalid(
                f"deadline_s must be positive, got {deadline_s}"
            )
        response_mode = header.get("response", "inline")
        if response_mode not in ("inline", "shm"):
            raise RequestInvalid(
                f"unknown response mode {response_mode!r}; "
                "choose 'inline' or 'shm'"
            )
        mats = protocol.unpack_matrices(shape, entries, payload, attachments)
        return _SumRequest(
            id=header.get("id"),
            mats=mats,
            method=header.get("method", "hash"),
            backend=header.get("backend") or None,
            sorted_output=bool(header.get("sorted_output", True)),
            threads=None if threads is None else int(threads),
            index_dtype=header.get("index_dtype") or None,
            value_dtype=header.get("value_dtype") or None,
            deadline=Deadline(
                None if deadline_s is None else float(deadline_s)
            ),
            response_mode=response_mode,
            respond=respond,
            leases=leases,
            # The request owns its segment attachments: they must stay
            # mapped until the kernel has consumed the arrays (GC of an
            # orphaned attachment unmaps under live views -> SIGSEGV).
            attachments=attachments,
        )

    # ------------------------------------------------------------ execution
    def _spkadd_kwargs(self, *, deadline_rem) -> Dict:
        kwargs = {
            "threads": self.config.threads,
            "executor": self.executor,
            "resilience": self.config.resilience,
        }
        if self.config.threads > 1:
            kwargs["deadline"] = deadline_rem
        return kwargs

    def _compute_solo(self, req: _SumRequest):
        import repro

        rem = req.deadline.remaining()
        req.deadline.check("gateway queue wait")
        kwargs = self._spkadd_kwargs(deadline_rem=rem)
        if req.threads is not None:
            kwargs["threads"] = req.threads
            if req.threads == 1:
                kwargs.pop("deadline", None)
        self.admission.solo_calls += 1
        res = repro.spkadd(
            req.mats,
            method=req.method,
            backend=req.backend,
            sorted_output=req.sorted_output,
            index_dtype=req.index_dtype,
            value_dtype=req.value_dtype,
            **kwargs,
        )
        return res.matrix

    def _compute_fused(self, key: BatchKey, requests: List[_SumRequest]):
        import repro

        fused, spans = fuse_requests(requests)
        rems = [r.deadline.remaining() for r in requests]
        bounded = [r for r in rems if r is not None]
        # The fused call honours the *tightest* member budget; if that
        # expires, _run_batch re-runs the survivors solo on their own
        # budgets, so a tight deadline never drags its batch-mates down.
        rem = min(bounded) if bounded else None
        for r in requests:
            r.deadline.check("gateway batch window")
        res = repro.spkadd(
            fused,
            method=key.method,
            backend=key.backend or None,
            sorted_output=key.sorted_output,
            **self._spkadd_kwargs(deadline_rem=rem),
        )
        return len(fused), split_result(res.matrix, requests, spans)

    async def _run_batch(self, key: BatchKey, requests: List) -> None:
        ready = []
        for req in requests:
            if req.deadline.expired:
                # Deadline-aware backpressure: the client has given up —
                # answering without running is the cheapest shed there is.
                await self._send_error(
                    req,
                    DeadlineExceeded(
                        f"deadline of {req.deadline.seconds}s expired in "
                        "the gateway batch window"
                    ),
                )
            else:
                ready.append(req)
        if not ready:
            return
        if len(ready) == 1:
            await self._finish_solo(ready[0])
            return
        loop = asyncio.get_running_loop()
        try:
            fused_k, outs = await loop.run_in_executor(
                self._compute,
                functools.partial(self._compute_fused, key, ready),
            )
        except Exception:
            # The fused call failed as a whole (tightest deadline hit, a
            # poisoned request, executor unusable).  Re-run the members
            # individually: each gets its own budget and its own typed
            # answer, so one bad request cannot fail its batch-mates.
            await asyncio.gather(
                *(self._finish_solo(req) for req in ready)
            )
            return
        self.admission.record_batch(fused_k, len(ready))
        for req, out in zip(ready, outs):
            await self._send_result(req, out)

    async def _finish_solo(self, req: _SumRequest) -> None:
        loop = asyncio.get_running_loop()
        try:
            out = await loop.run_in_executor(
                self._compute, functools.partial(self._compute_solo, req)
            )
        except Exception as err:
            await self._send_error(req, err)
            return
        await self._send_result(req, out)

    # ------------------------------------------------------------ responses
    def _retire(self, req: _SumRequest) -> None:
        """Account a request exactly once, however its turn ended."""
        if not req.done:
            req.done = True
            req.close_attachments()
            self.admission.release()

    async def _send_result(self, req: _SumRequest, matrix) -> None:
        try:
            if req.response_mode == "shm":
                header, payload = self._shm_response(req, matrix)
            else:
                result, payload = pack_result(matrix)
                header = {
                    "op": "result", "id": req.id, "status": "ok",
                    "result": result,
                }
        except Exception as err:
            await self._send_error(req, err)
            return
        try:
            await req.respond(header, payload)
            self.admission.completed += 1
        except (ConnectionResetError, BrokenPipeError):
            pass  # the client is gone; the result dies with the frame
        finally:
            self._retire(req)

    def _shm_response(self, req: _SumRequest, matrix):
        """Publish the result's indices/data to a fresh segment and
        lease the handle to the connection (released by a ``release``
        frame, or when the connection closes)."""
        from repro.parallel.shm import SegmentRegistry, SharedResultOwner

        registry = SegmentRegistry()
        try:
            idx_spec, dat_spec = registry.publish(
                [matrix.indices, matrix.data]
            )
        except BaseException:
            registry.unlink()
            raise
        owner = SharedResultOwner(registry.detach(idx_spec.name))
        token = next(self._lease_tokens)
        req.leases[token] = owner
        indptr = matrix.indptr
        header = {
            "op": "result", "id": req.id, "status": "ok",
            "shm": {
                "token": token,
                "shape": [int(matrix.shape[0]), int(matrix.shape[1])],
                "sorted": bool(matrix.sorted),
                "indptr": {
                    "dtype": indptr.dtype.str, "size": int(indptr.size),
                    "offset": 0,
                },
                "indices": {
                    "name": idx_spec.name, "dtype": idx_spec.dtype,
                    "size": idx_spec.size, "offset": idx_spec.offset,
                },
                "data": {
                    "name": dat_spec.name, "dtype": dat_spec.dtype,
                    "size": dat_spec.size, "offset": dat_spec.offset,
                },
            },
        }
        return header, indptr.tobytes()

    async def _send_error(self, req: _SumRequest, err: BaseException) -> None:
        code = error_code_for(err)
        if code == "deadline":
            self.admission.deadline_expired += 1
        else:
            self.admission.errored += 1
        try:
            await req.respond({
                "op": "error", "id": req.id, "status": "error",
                "code": code, "message": str(err),
            })
        except (ConnectionResetError, BrokenPipeError):
            pass  # the client is gone; nothing to tell it
        finally:
            self._retire(req)


# ---------------------------------------------------------------------------
# Embedding helpers: run a gateway on a background thread.
# ---------------------------------------------------------------------------


class GatewayHandle:
    """A gateway running on its own event-loop thread (tests, benches,
    the CLI self-test).  ``stop()`` is idempotent and joins the thread."""

    def __init__(self, config: GatewayConfig) -> None:
        self.config = config
        self.server: Optional[GatewayServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._error: List[BaseException] = []
        self._thread = threading.Thread(
            target=self._run, name="repro-gateway", daemon=True
        )

    def _run(self) -> None:
        async def main() -> None:
            try:
                self.server = GatewayServer(self.config)
                await self.server.start()
                self._loop = asyncio.get_running_loop()
            except BaseException as err:
                self._error.append(err)
                raise
            finally:
                self._started.set()
            await self.server.serve_until_stopped()

        try:
            asyncio.run(main())
        except BaseException as err:  # surfaced via start()/stop()
            if not self._error:
                self._error.append(err)

    def start(self, timeout: float = 30.0) -> "GatewayHandle":
        if self._thread.ident is None:  # idempotent: with start_in_thread(...)
            self._thread.start()
        if not self._started.wait(timeout):
            raise TimeoutError("gateway did not start in time")
        if self._error:
            raise self._error[0]
        return self

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self.server is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.request_stop)
            except RuntimeError:  # pragma: no cover - loop already dead
                pass
        self._thread.join(timeout)

    def __enter__(self) -> "GatewayHandle":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def start_in_thread(config: GatewayConfig) -> GatewayHandle:
    """Start a gateway on a daemon thread; returns the joined handle."""
    return GatewayHandle(config).start()


__all__ = [
    "DEFAULT_SOCKET",
    "GatewayConfig",
    "GatewayHandle",
    "GatewayServer",
    "start_in_thread",
]
