"""Blocking gateway client: ``submit`` a collection, get the sum back.

``GatewayClient`` speaks the frame protocol over an ``AF_UNIX`` socket,
one request/response at a time, and re-raises the server's typed error
frames as the library's own exceptions (``DeadlineExceeded``,
``ExecutorUnusable``, :class:`~repro.serve.protocol.ShedError`,
:class:`~repro.serve.protocol.RequestInvalid`), so calling through the
gateway feels like calling :func:`repro.spkadd` with a network in the
middle.  The transport self-heals: if the connection drops (server
restarted, idle timeout), the next call reconnects and re-sends once —
sum requests are stateless and idempotent, so a replay is safe.

Two zero-copy paths for co-located callers:

* ``transport="shm"`` publishes the request arrays into a shared
  segment and sends only handles — the request bytes never cross the
  socket (the segment is unlinked once the response arrives);
* ``response="shm"`` asks the server to lease the result out of shared
  memory; the returned :class:`ShmResult` maps it read-only and
  ``release()`` (or ``close()``/GC of the client) returns the lease.
"""

from __future__ import annotations

import socket
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.formats.csc import CSCMatrix
from repro.serve import protocol
from repro.serve.protocol import (
    AttachedSegments,
    GatewayConnectionError,
    ResultReleased,
    encode_frame,
    pack_matrices,
    raise_for_error,
    read_frame_sync,
    unpack_result,
)
from repro.serve.server import DEFAULT_SOCKET


class ShmResult:
    """A result leased out of the server's shared memory.

    ``matrix`` is a read-only zero-copy view; call :meth:`materialize`
    for a private copy that survives :meth:`release`.  Releasing (or
    closing the owning client) sends the lease token back so the server
    unlinks the segment.
    """

    def __init__(self, client: "GatewayClient", header: Dict,
                 payload: bytes) -> None:
        shm = header["shm"]
        self._client = client
        self.token = shm["token"]
        self._attachments = AttachedSegments()
        indptr_desc = shm["indptr"]
        indptr = np.frombuffer(
            payload,
            dtype=np.dtype(indptr_desc["dtype"]),
            count=int(indptr_desc["size"]),
            offset=int(indptr_desc["offset"]),
        ).copy()
        m, n = shm["shape"]
        self.matrix: Optional[CSCMatrix] = CSCMatrix(
            (int(m), int(n)),
            indptr,
            self._attachments.array(shm["indices"]),
            self._attachments.array(shm["data"]),
            sorted=bool(shm.get("sorted", True)),
            check=False,
        )

    def materialize(self) -> CSCMatrix:
        """A private copy, safe to keep after :meth:`release`."""
        if self.matrix is None:
            raise ResultReleased(
                f"shm result {self.token!r} already released; materialize "
                "before release() or request response='inline'"
            )
        return CSCMatrix(
            self.matrix.shape,
            np.array(self.matrix.indptr, copy=True),
            np.array(self.matrix.indices, copy=True),
            np.array(self.matrix.data, copy=True),
            sorted=self.matrix.sorted,
            check=False,
        )

    def release(self) -> None:
        """Drop the mapping and hand the lease back (idempotent)."""
        if self.matrix is None:
            return
        self.matrix = None
        self._attachments.close()
        self._client._release_lease(self.token)

    def __enter__(self) -> "ShmResult":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class GatewayClient:
    """One blocking connection to a gateway (not thread-safe; use one
    client per thread — connections are cheap)."""

    def __init__(self, socket_path: str = DEFAULT_SOCKET, *,
                 timeout: Optional[float] = None) -> None:
        self.socket_path = socket_path
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._ids = iter(range(1, 1 << 62))

    # ------------------------------------------------------------ transport
    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
        except OSError as err:
            sock.close()
            raise GatewayConnectionError(
                f"cannot reach gateway at {self.socket_path}: {err}"
            ) from err
        return sock

    def _ensure(self) -> socket.socket:
        if self._sock is None:
            self._sock = self._connect()
        return self._sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None

    def _roundtrip(self, header: Dict, payload: bytes = b""):
        """Send one frame, read one response; reconnect-and-resend once
        if the connection turns out to be dead (requests are stateless
        and idempotent, so a replay is safe)."""
        frame = encode_frame(header, payload)
        for attempt in (0, 1):
            sock = self._ensure()
            try:
                sock.sendall(frame)
                return read_frame_sync(sock)
            except (ConnectionError, BrokenPipeError, OSError) as err:
                self._drop()
                if attempt:
                    raise GatewayConnectionError(
                        f"gateway connection failed twice: {err}"
                    ) from err

    def _send_only(self, header: Dict) -> None:
        """Fire-and-forget (the ``release`` op has no response)."""
        if self._sock is None:
            return  # no connection -> the lease died with it server-side
        try:
            self._sock.sendall(encode_frame(header))
        except (ConnectionError, BrokenPipeError, OSError):
            self._drop()  # ditto: disconnect releases server-side leases

    def _release_lease(self, token) -> None:
        self._send_only({"op": "release", "token": token})

    # ------------------------------------------------------------------ ops
    def submit(
        self,
        mats: Sequence[CSCMatrix],
        *,
        method: str = "hash",
        backend: Optional[str] = None,
        sorted_output: bool = True,
        threads: Optional[int] = None,
        deadline_s: Optional[float] = None,
        index_dtype=None,
        value_dtype=None,
        response: str = "inline",
        transport: str = "inline",
    ):
        """Sum ``mats`` on the gateway.

        Returns a :class:`CSCMatrix` (``response="inline"``) or a
        :class:`ShmResult` lease (``response="shm"``).  Typed error
        frames re-raise as the matching library exception.
        """
        mats = list(mats)
        if not mats:
            raise ValueError(
                "mats must contain at least one matrix, got an empty "
                "collection"
            )
        # The wire carries ONE shape per request; a mismatched matrix
        # whose indices happen to fit the declared shape would
        # otherwise reinterpret cleanly and sum to a silently wrong
        # result.
        for i, mat in enumerate(mats):
            if tuple(mat.shape) != tuple(mats[0].shape):
                raise ValueError(
                    f"all matrices must share one shape: mats[{i}] is "
                    f"{tuple(mat.shape)}, mats[0] is {tuple(mats[0].shape)}"
                )
        shape = [int(mats[0].shape[0]), int(mats[0].shape[1])]
        header = {
            "op": "sum",
            "id": next(self._ids),
            "shape": shape,
            "method": method,
            "backend": backend,
            "sorted_output": bool(sorted_output),
            "threads": threads,
            "deadline_s": deadline_s,
            "response": response,
        }
        if index_dtype is not None:
            header["index_dtype"] = np.dtype(index_dtype).str
        if value_dtype is not None:
            header["value_dtype"] = np.dtype(value_dtype).str
        registry = None
        try:
            if transport == "shm":
                header["mats"], payload, registry = self._publish(mats)
            elif transport == "inline":
                header["mats"], payload = pack_matrices(mats)
            else:
                raise ValueError(
                    f"unknown transport {transport!r}; "
                    "choose 'inline' or 'shm'"
                )
            resp, resp_payload = self._roundtrip(header, payload)
        finally:
            if registry is not None:
                # The server has answered (or the transport died), so it
                # is done reading the request segment: unlink it now.
                registry.unlink()
        raise_for_error(resp)
        if "shm" in resp:
            return ShmResult(self, resp, resp_payload)
        return unpack_result(resp["result"], resp_payload)

    def _publish(self, mats: List[CSCMatrix]):
        """shm transport: segment handles instead of inline buffers."""
        from repro.parallel.shm import SegmentRegistry

        registry = SegmentRegistry()
        arrays = []
        for A in mats:
            arrays.extend((A.indptr, A.indices, A.data))
        try:
            specs = registry.publish(arrays)
        except BaseException:
            registry.unlink()
            raise
        entries = []
        it = iter(specs)
        for A in mats:
            entry = {"sorted": bool(A.sorted)}
            for name in ("indptr", "indices", "data"):
                spec = next(it)
                entry[name] = {"shm": {
                    "name": spec.name, "dtype": spec.dtype,
                    "size": spec.size, "offset": spec.offset,
                }}
            entries.append(entry)
        return entries, b"", registry

    def ping(self) -> Dict:
        resp, _ = self._roundtrip({"op": "ping", "id": next(self._ids)})
        raise_for_error(resp)
        return resp

    def stats(self) -> Dict:
        resp, _ = self._roundtrip({"op": "stats", "id": next(self._ids)})
        raise_for_error(resp)
        return resp["stats"]

    def shutdown_server(self) -> None:
        """Ask the server to stop (local-trust admin op)."""
        resp, _ = self._roundtrip({"op": "shutdown", "id": next(self._ids)})
        raise_for_error(resp)

    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["GatewayClient", "ShmResult"]
