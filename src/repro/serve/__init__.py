"""SpKAdd as a service: asyncio gateway, micro-batching, admission control.

Quick start (in-process, for tests and co-located callers)::

    from repro.serve import GatewayConfig, GatewayClient, start_in_thread

    with start_in_thread(GatewayConfig(socket_path="/tmp/g.sock")):
        with GatewayClient("/tmp/g.sock") as gw:
            total = gw.submit(mats)          # a CSCMatrix, bit-identical
                                             # to repro.spkadd(mats)

Or standalone: ``python -m repro serve --socket /tmp/g.sock``.
"""

from repro.serve.admission import AdmissionController
from repro.serve.batcher import BatchKey, MicroBatcher, fuse_requests, split_result
from repro.serve.client import GatewayClient, ShmResult
from repro.serve.protocol import (
    ERROR_TYPES,
    PROTOCOL_VERSION,
    GatewayConnectionError,
    GatewayError,
    RequestInvalid,
    ShedError,
)
from repro.serve.server import (
    DEFAULT_SOCKET,
    GatewayConfig,
    GatewayHandle,
    GatewayServer,
    start_in_thread,
)

__all__ = [
    "AdmissionController",
    "BatchKey",
    "DEFAULT_SOCKET",
    "ERROR_TYPES",
    "GatewayClient",
    "GatewayConfig",
    "GatewayConnectionError",
    "GatewayError",
    "GatewayHandle",
    "GatewayServer",
    "MicroBatcher",
    "PROTOCOL_VERSION",
    "RequestInvalid",
    "ShedError",
    "ShmResult",
    "fuse_requests",
    "split_result",
    "start_in_thread",
]
