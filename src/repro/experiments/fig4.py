"""Fig 4: sliding-hash runtime vs (forced) hash-table size.

Six panels sweep the per-partition table size and plot symbolic /
computation (addition) / total time:

=====  ========  =======================================  ==========
panel  machine   workload                                  paper opt.
=====  ========  =======================================  ==========
(a)    Skylake   ER m=4M n=1024 d=64 k=128, cf~1.001       ~4K (L1)
(b)    Skylake   ER m=4M n=1024 d=8192 k=128, cf=1.12      ~64K (LLC)
(c)    Skylake   RMAT m=4M n=32K d=512 k=128, cf=1.25      ~64K (LLC)
(d)    Skylake   Eukarya m=3M n=50K d=240 k=64, cf=22.6    ~2K-16K
(e)    EPYC      workload of (b)                           < (b)'s
(f)    EPYC      workload of (c)                           < (c)'s
=====  ========  =======================================  ==========

The U-shape: small tables pay per-partition overhead (many partitions,
k binary searches each); large tables spill L1/L2/LLC and pay the
random-access latency.  The optimum sits near (cache bytes)/(entry
bytes x threads) — L1 for tiny workloads, LLC for big ones — and the
EPYC optimum is left of Skylake's because its LLC is 4x smaller.
Table sizes here are *reduced-scale*; multiply by ``scale_m`` to
compare with the paper's x-axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.calibration import calibrated_cost_model
from repro.experiments.config import PAPER, ReproScale
from repro.experiments.report import format_series
from repro.experiments.runner import run_method
from repro.generators import (
    erdos_renyi_collection,
    rmat_collection,
    spgemm_intermediates_surrogate,
)
from repro.machine.spec import AMD_EPYC_7551, INTEL_SKYLAKE_8160

PANELS = {
    "a": dict(machine="skylake", kind="er", n_paper=PAPER["n_er"], d=64, k=128,
              sweep=(7, 14)),
    "b": dict(machine="skylake", kind="er", n_paper=PAPER["n_er"], d=8192, k=128,
              sweep=(8, 21)),
    "c": dict(machine="skylake", kind="rmat", n_paper=PAPER["n_rmat"], d=512,
              k=128, sweep=(8, 21)),
    "d": dict(machine="skylake", kind="protein", d=240, k=64, cf=22.614,
              sweep=(7, 16)),
    "e": dict(machine="epyc", kind="er", n_paper=PAPER["n_er"], d=8192, k=128,
              sweep=(8, 21)),
    "f": dict(machine="epyc", kind="rmat", n_paper=PAPER["n_rmat"], d=512,
              k=128, sweep=(8, 21)),
}


@dataclass
class HashSizeSweep:
    panel: str
    machine_name: str
    table_entries: List[int]       # reduced-scale entries
    symbolic: List[float]
    computation: List[float]
    total: List[float]

    @property
    def optimum_entries(self) -> int:
        best = min(range(len(self.total)), key=lambda i: self.total[i])
        return self.table_entries[best]

    def paper_scale_entries(self, scale_m: int) -> List[int]:
        return [e * scale_m for e in self.table_entries]

    def to_text(self) -> str:
        return format_series(
            "table_entries",
            self.table_entries,
            {
                "symbolic": self.symbolic,
                "computation": self.computation,
                "total": self.total,
            },
            title=(
                f"Fig 4({self.panel}) on {self.machine_name}: sliding-hash "
                "time vs table size (reduced-scale entries)"
            ),
        )


def _panel_workload(spec: dict, sc: ReproScale, seed: int):
    if spec["kind"] == "er":
        return erdos_renyi_collection(
            sc.m(), sc.n(spec["n_paper"]), d=sc.d(spec["d"]), k=spec["k"],
            seed=seed,
        )
    if spec["kind"] == "rmat":
        return rmat_collection(
            sc.m_pow2(), sc.n(spec["n_paper"]), d=sc.d(spec["d"]),
            k=spec["k"], seed=seed,
        )
    return spgemm_intermediates_surrogate(
        "eukarya",
        scale=sc.scale_m,
        n_cols=max(50_000 // sc.scale_n, 64),
        k=spec["k"],
        cf=spec["cf"],
        d=sc.d(spec["d"]),
        seed=seed,
    )


def run_fig4(
    panel: str = "b",
    *,
    scale: Optional[ReproScale] = None,
    threads: int = PAPER["threads"],
    sizes: Optional[Sequence[int]] = None,
    seed: int = 41,
) -> HashSizeSweep:
    sc = scale or ReproScale.from_env()
    spec = PANELS[panel]
    base = INTEL_SKYLAKE_8160 if spec["machine"] == "skylake" else AMD_EPYC_7551
    machine = sc.machine(base)
    cm = calibrated_cost_model(machine, threads, scale=sc)
    mats = _panel_workload(spec, sc, seed)

    if sizes is None:
        lo, hi = spec["sweep"]
        sizes = [
            sc.table_entries(1 << e) for e in range(lo, hi + 1)
        ]
        sizes = sorted(set(sizes))
    sym_t: List[float] = []
    add_t: List[float] = []
    tot_t: List[float] = []
    for entries in sizes:
        rr = run_method(
            mats, "sliding_hash", cm,
            time_factor=sc.time_factor,
            capacity_factor=sc.scale_m,
            sliding_kwargs={"table_entries": int(entries), "cache_bytes": None,
                            "threads": threads},
        )
        sym = cm.time(rr.stats_symbolic).extrapolate(sc.time_factor, sc.scale_m)
        add = cm.time(rr.stats).extrapolate(sc.time_factor, sc.scale_m)
        sym_t.append(sym)
        add_t.append(add)
        tot_t.append(rr.seconds)
    return HashSizeSweep(
        panel, machine.name, [int(s) for s in sizes], sym_t, add_t, tot_t
    )
