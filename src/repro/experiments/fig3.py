"""Fig 3: strong scaling of SpKAdd algorithms, 1-48 threads (Skylake).

Three workloads:

* (a) ER: m=4M, n=1024, d=1024, k=128;
* (b) RMAT: m=4M, n=32768, d=512, k=128;
* (c) SpGEMM intermediate matrices of Eukarya: m=3M, n=50K, d=240,
  k=64, cf=22.6 (protein surrogate; see generators.protein).

Expected shapes: hash/sliding-hash/heap scale near-linearly; 2-way
algorithms saturate on memory bandwidth; SPA stops scaling because its
O(T*m) aggregate working set floods the shared LLC and its O(m) init is
serial per thread.  For RMAT, the dynamic (by-nnz) schedule is what
keeps k-way methods linear — the static schedule's imbalance is also
reported to exhibit the paper's Section III-A claim.

Kernel statistics are re-collected per thread count only for the
sliding hash (its partition count depends on T); other methods' stats
are thread-independent and reused across the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.calibration import calibrated_cost_model
from repro.experiments.config import PAPER, ReproScale
from repro.experiments.report import format_series
from repro.experiments.runner import RunResult, run_method
from repro.generators import (
    erdos_renyi_collection,
    rmat_collection,
    spgemm_intermediates_surrogate,
)
from repro.machine.spec import INTEL_SKYLAKE_8160

THREADS = (1, 2, 4, 8, 16, 32, 48)
FIG3_METHODS = ("hash", "sliding_hash", "2way_tree", "scipy_tree", "spa", "heap")

WORKLOADS = {
    "a_er": dict(kind="er", n_paper=PAPER["n_er"], d=1024, k=128),
    "b_rmat": dict(kind="rmat", n_paper=PAPER["n_rmat"], d=512, k=128),
    "c_eukarya": dict(kind="protein", d=240, k=64, cf=22.614),
}


@dataclass
class ScalingResult:
    workload: str
    threads: Sequence[int]
    seconds: Dict[str, List[float]]          # method -> per-thread-count
    static_seconds: Dict[str, List[float]]   # ablation: static schedule
    speedup_at_max: Dict[str, float]

    def to_text(self) -> str:
        return format_series(
            "threads", list(self.threads), self.seconds,
            title=f"Fig 3 ({self.workload}): simulated seconds vs threads",
        )


def _make_workload(name: str, sc: ReproScale, seed: int):
    spec = WORKLOADS[name]
    if spec["kind"] == "er":
        return erdos_renyi_collection(
            sc.m(), sc.n(spec["n_paper"]), d=sc.d(spec["d"]), k=spec["k"],
            seed=seed,
        )
    if spec["kind"] == "rmat":
        return rmat_collection(
            sc.m_pow2(), sc.n(spec["n_paper"]), d=sc.d(spec["d"]),
            k=spec["k"], seed=seed,
        )
    return spgemm_intermediates_surrogate(
        "eukarya",
        scale=sc.scale_m,
        n_cols=max(50_000 // sc.scale_n, 64),
        k=spec["k"],
        cf=spec["cf"],
        d=sc.d(spec["d"]),
        seed=seed,
    )


def run_fig3(
    workload: str = "a_er",
    *,
    scale: Optional[ReproScale] = None,
    methods: Sequence[str] = FIG3_METHODS,
    threads: Sequence[int] = THREADS,
    seed: int = 31,
) -> ScalingResult:
    sc = scale or ReproScale.from_env()
    machine = sc.machine(INTEL_SKYLAKE_8160)
    mats = _make_workload(workload, sc, seed)

    seconds: Dict[str, List[float]] = {m: [] for m in methods}
    static_seconds: Dict[str, List[float]] = {m: [] for m in methods}
    cached_runs: Dict[str, RunResult] = {}

    for t in threads:
        cm = calibrated_cost_model(machine, t, scale=sc)
        cm_static = calibrated_cost_model(machine, t, scale=sc, schedule="static")
        for meth in methods:
            # Stats depend on T only for sliding hash (partition rule).
            if meth == "sliding_hash" or meth not in cached_runs:
                rr = run_method(
                    mats, meth, cm,
                    time_factor=sc.time_factor,
                    capacity_factor=sc.scale_m,
                )
                if meth != "sliding_hash":
                    cached_runs[meth] = rr
            else:
                rr = cached_runs[meth]
            sim = cm.time_two_phase(rr.stats, rr.stats_symbolic)
            seconds[meth].append(sim.extrapolate(sc.time_factor, sc.scale_m))
            sim_s = cm_static.time_two_phase(rr.stats, rr.stats_symbolic)
            static_seconds[meth].append(
                sim_s.extrapolate(sc.time_factor, sc.scale_m)
            )

    speedup = {
        m: (seconds[m][0] / seconds[m][-1]) if seconds[m][-1] > 0 else 0.0
        for m in methods
    }
    return ScalingResult(workload, list(threads), seconds, static_seconds, speedup)
