"""ASCII rendering of experiment tables, series and winner grids."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def _fmt(v) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.001:
            return f"{v:.3g}"
        return f"{v:.4f}".rstrip("0").rstrip(".")
    return str(v)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: Optional[str] = None,
) -> str:
    """Plain monospace table with column alignment."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    out: List[str] = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: Dict[str, Sequence[float]],
    *,
    title: Optional[str] = None,
) -> str:
    """Table of y-series against a shared x-axis (our "figure" form)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)


def format_winner_grid(
    row_label: str,
    col_label: str,
    row_values: Sequence,
    col_values: Sequence,
    winners: Dict[tuple, str],
    *,
    title: Optional[str] = None,
    abbrev: Optional[Dict[str, str]] = None,
) -> str:
    """Fig-2-style grid: the winning algorithm per (row, col) cell."""
    ab = abbrev or {}
    headers = [f"{row_label}\\{col_label}"] + [str(c) for c in col_values]
    rows = []
    for r in row_values:
        row = [str(r)]
        for c in col_values:
            w = winners.get((r, c), "-")
            row.append(ab.get(w, w))
        rows.append(row)
    legend = ""
    if abbrev:
        legend = "\nlegend: " + ", ".join(f"{v}={k}" for k, v in abbrev.items())
    return format_table(headers, rows, title=title) + legend


#: Compact algorithm labels used in the Fig 2 grids.
ABBREV = {
    "hash": "H",
    "sliding_hash": "SH",
    "2way_tree": "T2",
    "2way_incremental": "I2",
    "scipy_tree": "MT",
    "scipy_incremental": "MI",
    "heap": "HP",
    "spa": "SP",
}
