"""Table II: the evaluation platforms (encoded machine specs)."""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.machine.spec import PLATFORMS


def table2_text() -> str:
    rows = []
    for key, mc in PLATFORMS.items():
        rows.append([
            mc.name,
            f"{mc.clock_hz / 1e9:.2f} GHz",
            f"{mc.l1_bytes // 1024}KB",
            f"{mc.l2_bytes // 1024}KB" if mc.l2_bytes else "-",
            f"{mc.llc_bytes // (1024 * 1024)}MB",
            mc.sockets,
            mc.cores_per_socket,
            f"{mc.mem_bytes >> 30}GB",
        ])
    return format_table(
        ["platform", "clock", "L1", "L2", "LLC", "sockets", "cores/soc", "memory"],
        rows,
        title="Table II: evaluation platforms (machine model presets)",
    )
