"""Tables III and IV: runtimes of all eight algorithms over (d, k) grids.

Table III: ER matrices (m=4M, n=1024 at paper scale), d in {16, 1024,
8192}, k in {4, 32, 128}.  Table IV: RMAT (Graph500 seeds, n=32768),
d in {16, 64, 512}.  Both on the 48-core Skylake.

Each cell reports our simulated (model) seconds next to the paper's
measurement; the winner per column should match the paper's green
cells: hash for small/medium workloads, sliding hash once tables spill
the LLC, with 2-way tree / heap competitive only at k=4 on RMAT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.calibration import calibrated_cost_model
from repro.experiments.config import PAPER, ReproScale
from repro.experiments.paper_values import TABLE3_PAPER, TABLE4_PAPER
from repro.experiments.report import format_table
from repro.experiments.runner import TABLE_METHODS, RunResult, run_all_methods
from repro.generators import erdos_renyi_collection, rmat_collection
from repro.machine.spec import INTEL_SKYLAKE_8160

TABLE3_D = (16, 1024, 8192)
TABLE4_D = (16, 64, 512)
TABLE_K = (4, 32, 128)


@dataclass
class RuntimeGrid:
    """Model-vs-paper runtimes over a (d, k) grid."""

    name: str
    pattern: str
    d_values: Sequence[int]
    k_values: Sequence[int]
    model: Dict[str, Dict[Tuple[int, int], float]]
    paper: Dict[str, Dict[Tuple[int, int], Optional[float]]]
    runs: Dict[Tuple[int, int], Dict[str, RunResult]]

    def winner(self, d: int, k: int, source: str = "model") -> str:
        table = self.model if source == "model" else self.paper
        best, best_t = "", float("inf")
        for meth, cells in table.items():
            v = cells.get((d, k))
            if v is not None and v < best_t:
                best, best_t = meth, v
        return best

    def to_text(self) -> str:
        headers = ["algorithm"] + [
            f"d={d},k={k}" for d in self.d_values for k in self.k_values
        ]
        rows: List[List] = []
        for meth in self.model:
            row: List = [meth]
            prow: List = ["  (paper)"]
            for d in self.d_values:
                for k in self.k_values:
                    row.append(self.model[meth].get((d, k)))
                    pv = self.paper.get(meth, {}).get((d, k))
                    prow.append(pv if pv is not None else "n/a")
            rows.append(row)
            rows.append(prow)
        win_row: List = ["WINNER model"]
        pwin_row: List = ["WINNER paper"]
        for d in self.d_values:
            for k in self.k_values:
                win_row.append(self.winner(d, k, "model"))
                pwin_row.append(self.winner(d, k, "paper"))
        rows.append(win_row)
        rows.append(pwin_row)
        return format_table(headers, rows, title=self.name)


def _workload(pattern: str, scale: ReproScale, d: int, k: int, seed: int):
    if pattern == "er":
        return erdos_renyi_collection(
            scale.m(), scale.n(PAPER["n_er"]), d=scale.d(d), k=k, seed=seed
        )
    if pattern == "rmat":
        return rmat_collection(
            scale.m_pow2(), scale.n(PAPER["n_rmat"]), d=scale.d(d), k=k,
            seed=seed,
        )
    raise ValueError(f"unknown pattern {pattern!r}")


def run_runtime_grid(
    name: str,
    pattern: str,
    d_values: Sequence[int],
    k_values: Sequence[int],
    paper: Dict,
    *,
    scale: Optional[ReproScale] = None,
    methods: Sequence[str] = tuple(TABLE_METHODS),
    threads: int = PAPER["threads"],
    seed: int = 11,
) -> RuntimeGrid:
    sc = scale or ReproScale.from_env()
    machine = sc.machine(INTEL_SKYLAKE_8160)
    cm = calibrated_cost_model(machine, threads, scale=sc)
    model: Dict[str, Dict[Tuple[int, int], float]] = {m: {} for m in methods}
    runs: Dict[Tuple[int, int], Dict[str, RunResult]] = {}
    for d in d_values:
        for k in k_values:
            mats = _workload(pattern, sc, d, k, seed)
            res = run_all_methods(
                mats, cm,
                methods=methods,
                time_factor=sc.time_factor,
                capacity_factor=sc.scale_m,
            )
            runs[(d, k)] = res
            for meth, rr in res.items():
                model[meth][(d, k)] = rr.seconds
    return RuntimeGrid(
        name=name, pattern=pattern, d_values=d_values, k_values=k_values,
        model=model, paper=paper, runs=runs,
    )


def run_table3(**kw) -> RuntimeGrid:
    """Table III (ER, Skylake, 48 threads)."""
    return run_runtime_grid(
        "Table III: SpKAdd runtimes (s), ER matrices, Intel Skylake 48t "
        "(model vs paper)",
        "er", TABLE3_D, TABLE_K, TABLE3_PAPER, **kw,
    )


def run_table4(**kw) -> RuntimeGrid:
    """Table IV (RMAT, Skylake, 48 threads)."""
    return run_runtime_grid(
        "Table IV: SpKAdd runtimes (s), RMAT matrices, Intel Skylake 48t "
        "(model vs paper)",
        "rmat", TABLE4_D, TABLE_K, TABLE4_PAPER, **kw,
    )
