"""Calibrate per-algorithm cycle constants against Table III anchors.

We cannot run the authors' C++/OpenMP code on their Skylake node, so
absolute per-operation costs are unknowable here.  Following the
reproduction rule (match *shape*, not absolute numbers), each algorithm
gets exactly **one** fitted constant: its ``cycles_per_op`` is chosen so
the cost model reproduces the paper's runtime in one anchor cell of
Table III (ER, d=1024, k=128, 48 threads, Skylake).  Every other cell
of Tables III/IV and every figure is then a *prediction* of the model.

The memory-latency, bandwidth and partition-overhead terms are not
fitted — they come from the machine spec — so crossovers (hash vs
sliding hash, heap vs tree, SPA saturation) are genuine model output.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional

from repro.experiments.config import PAPER, ReproScale
from repro.experiments.runner import TABLE_METHODS, run_all_methods
from repro.generators import erdos_renyi_collection
from repro.machine.costmodel import DEFAULT_CYCLES_PER_OP, CostModel, algorithm_family
from repro.machine.spec import INTEL_SKYLAKE_8160, MachineSpec

#: Paper Table III, column (d=1024, k=128), Intel Skylake, 48 cores.
TABLE3_ANCHORS: Dict[str, float] = {
    "2way_incremental": 5.7806,
    "scipy_incremental": 29.1978,   # "MKL Incremental"
    "2way_tree": 1.2798,
    "scipy_tree": 8.2814,           # "MKL Tree"
    "heap": 2.1732,
    "spa": 0.8173,
    "hash": 0.4463,
    "sliding_hash": 0.3330,
}

ANCHOR_D = 1024
ANCHOR_K = 128


def _solve_cpo(
    target_seconds: float,
    stats_list,
    cost_model: CostModel,
    work_factor: float,
    capacity_factor: float,
) -> float:
    """Solve ``extrapolated_time(cpo) == target`` for the compute
    constant.

    Per phase the extrapolated time is
    ``max(cpo*C + M + O, BW)*wf + I*cf + F``; ignoring the (rare)
    bandwidth-floor branch this is linear in cpo.
    """
    # Zero the method's constants to expose the non-compute floor.
    zeroed = {k: 0.0 for k in cost_model.cycles_per_op}
    cm0 = CostModel(
        cost_model.machine, cost_model.threads, zeroed,
        cost_model.schedule, cost_model.schedule_chunk,
    )
    probe = {k: 1.0 for k in cost_model.cycles_per_op}
    cm1 = CostModel(
        cost_model.machine, cost_model.threads, probe,
        cost_model.schedule, cost_model.schedule_chunk,
    )
    base = 0.0
    unit = 0.0
    for st in stats_list:
        if st is None:
            continue
        t0 = cm0.time(st)
        # compute at cpo=0 captures cpo-independent compute charges
        # (e.g. the pairwise allocation term).
        base += (t0.compute + t0.memory + t0.overhead) * work_factor
        base += t0.init * capacity_factor + t0.fixed
        unit += (cm1.time(st).compute - t0.compute) * work_factor
    if unit <= 0:
        return 1.0
    cpo = (target_seconds - base) / unit
    if cpo <= 0:
        # Anchor is dominated by modelled memory/init terms; keep a
        # small positive compute cost.
        return 0.25
    return float(cpo)


@lru_cache(maxsize=8)
def _calibrated(scale_m: int, scale_n: int, seed: int) -> Dict[str, float]:
    scale = ReproScale(scale_m, scale_n)
    machine = scale.machine(INTEL_SKYLAKE_8160)
    cm = CostModel(machine, threads=PAPER["threads"])
    mats = erdos_renyi_collection(
        scale.m(), scale.n(PAPER["n_er"]),
        d=scale.d(ANCHOR_D), k=ANCHOR_K, seed=seed,
    )
    runs = run_all_methods(mats, cm, time_factor=1.0)
    constants = dict(DEFAULT_CYCLES_PER_OP)
    for method, target in TABLE3_ANCHORS.items():
        run = runs[method]
        stats_list = [run.stats, run.stats_symbolic]
        cpo = _solve_cpo(
            target, stats_list, cm, scale.time_factor, scale.scale_m
        )
        fam = algorithm_family(run.stats.algorithm, constants)
        constants[fam] = cpo
        if run.stats_symbolic is not None:
            sym_fam = algorithm_family(run.stats_symbolic.algorithm, constants)
            constants[sym_fam] = cpo
    return constants


def calibrated_constants(
    scale: Optional[ReproScale] = None, *, seed: int = 2021
) -> Dict[str, float]:
    """Calibrated ``cycles_per_op`` table (cached per scale)."""
    sc = scale or ReproScale.from_env()
    return dict(_calibrated(sc.scale_m, sc.scale_n, seed))


def calibrated_cost_model(
    machine: MachineSpec,
    threads: int,
    *,
    scale: Optional[ReproScale] = None,
    schedule: str = "dynamic",
) -> CostModel:
    """A cost model with paper-anchored constants for any machine."""
    return CostModel(
        machine, threads, calibrated_constants(scale), schedule=schedule
    )
