"""Shared experiment runner: execute a method on a workload, model time.

For the k-way kernels, experiments run with ``block_cols=1`` so hash/SPA
table sizes are the paper's exact per-column sizes — the quantity the
cache model keys on.

For the pairwise algorithms (2-way and scipy/MKL, whose big-k cells are
O(k^2) and were partly "could not run" even for the authors),
:func:`synthesize_pairwise_stats` derives the exact work/IO statistics
*without executing the merges*: the cost of every 2-way addition is
fully determined by operand nnz, and all partial-union sizes are
computed with one first-occurrence pass over the input entries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hash_add import spkadd_hash
from repro.core.heap_add import spkadd_heap
from repro.core.pairwise import ENTRY_BYTES
from repro.core.sliding_hash import spkadd_sliding_hash
from repro.core.spa_add import SPA_SLOT_BYTES, spkadd_spa
from repro.core.stats import KernelStats
from repro.formats.csc import CSCMatrix
from repro.machine.costmodel import CostModel, SimulatedTime

#: The eight algorithms of Tables III/IV, in the paper's row order.
TABLE_METHODS = [
    "2way_incremental",
    "scipy_incremental",
    "2way_tree",
    "scipy_tree",
    "heap",
    "spa",
    "hash",
    "sliding_hash",
]


@dataclass
class RunResult:
    """One (method, workload) execution: stats + modelled time."""

    method: str
    stats: KernelStats
    stats_symbolic: Optional[KernelStats]
    sim: SimulatedTime
    seconds: float          # extrapolated simulated seconds (paper scale)
    wall_seconds: float     # actual Python wall time (operational speed)
    output_nnz: int = 0


def synthesize_pairwise_stats(
    mats: Sequence[CSCMatrix],
) -> Tuple[KernelStats, KernelStats]:
    """Exact 2-way incremental and tree stats without running merges.

    A 2-way merge of operands with ``na``/``nb`` entries touches
    ``na + nb`` elements and writes ``union(na, nb)``.  All partial
    union sizes are derived in one pass: for every distinct (col,row)
    key, find the first addend it appears in; the incremental partial
    sum after i addends then has ``sum_{f <= i} first_count[f]``
    entries.  Tree-level unions use the same first-occurrence trick per
    subtree span.
    """
    k = len(mats)
    m, n = mats[0].shape
    nnzs = [A.nnz for A in mats]
    # keys + addend index of every entry
    keys_parts: List[np.ndarray] = []
    owner_parts: List[np.ndarray] = []
    for i, A in enumerate(mats):
        cols = np.repeat(np.arange(n, dtype=np.int64), A.col_nnz())
        keys_parts.append(cols * np.int64(m) + A.indices)
        owner_parts.append(np.full(A.nnz, i, dtype=np.int64))
    keys = np.concatenate(keys_parts)
    owner = np.concatenate(owner_parts)
    # Per-column weights: pairwise merges are column-parallel too, so
    # they suffer the same skew-driven imbalance as the k-way kernels.
    col_weights = sum((A.col_nnz() for A in mats[1:]), mats[0].col_nnz().copy())
    col_weights = col_weights.astype(np.float64)
    order = np.lexsort((owner, keys))
    sk, so = keys[order], owner[order]
    first_mask = np.empty(sk.size, dtype=bool)
    if sk.size:
        first_mask[0] = True
        np.not_equal(sk[1:], sk[:-1], out=first_mask[1:])
    first_owner = so[first_mask]
    first_count = np.bincount(first_owner, minlength=k)
    # U[i] = nnz of the union of mats[0..i] (inclusive)
    U = np.cumsum(first_count)

    inc = KernelStats(algorithm="2way_incremental", k=k, n_cols=n)
    inc.input_nnz = nnzs[0]
    reads = writes = ops = 0
    for i in range(1, k):
        touched = int(U[i - 1]) + nnzs[i]
        ops += touched
        reads += touched
        writes += int(U[i])
        inc.input_nnz += touched
    inc.ops = ops
    inc.bytes_read = (reads + nnzs[0]) * ENTRY_BYTES
    inc.bytes_written = writes * ENTRY_BYTES
    inc.output_nnz = int(U[-1])
    inc.intermediate_nnz = writes - int(U[-1])
    inc.col_ops = col_weights * (k / 2.0)

    tree = KernelStats(algorithm="2way_tree", k=k, n_cols=n)
    tree.input_nnz = sum(nnzs)
    # Union size of any contiguous addend span via first-occurrence
    # *within the span*: recompute per level (lg k passes).
    level_sizes = list(nnzs)
    spans = [(i, i + 1) for i in range(k)]
    ops = reads = writes = 0
    while len(spans) > 1:
        nxt_spans = []
        nxt_sizes = []
        for idx in range(0, len(spans) - 1, 2):
            (a0, a1), (b0, b1) = spans[idx], spans[idx + 1]
            na, nb = level_sizes[idx], level_sizes[idx + 1]
            # distinct keys in the merged span
            lo, hi = a0, b1
            span_mask = (owner >= lo) & (owner < hi)
            nu = int(np.unique(keys[span_mask]).size) if span_mask.any() else 0
            ops += na + nb
            reads += na + nb
            writes += nu
            nxt_spans.append((a0, b1))
            nxt_sizes.append(nu)
        if len(spans) % 2:
            nxt_spans.append(spans[-1])
            nxt_sizes.append(level_sizes[-1])
        spans, level_sizes = nxt_spans, nxt_sizes
    tree.ops = ops
    tree.bytes_read = (reads + sum(nnzs)) * ENTRY_BYTES
    tree.bytes_written = writes * ENTRY_BYTES
    tree.output_nnz = level_sizes[0]
    tree.intermediate_nnz = writes - level_sizes[0]
    tree.col_ops = col_weights.copy()
    return inc, tree


def run_method(
    mats: Sequence[CSCMatrix],
    method: str,
    cost_model: CostModel,
    *,
    time_factor: float = 1.0,
    capacity_factor: float = 1.0,
    execute_pairwise: bool = False,
    sliding_kwargs: Optional[dict] = None,
) -> RunResult:
    """Run (or synthesize) one method and model its runtime.

    Pairwise methods are synthesized by default (exact stats, no O(k^2)
    execution); pass ``execute_pairwise=True`` to run them for real.
    The scipy/MKL baselines reuse the synthesized 2-way stats under
    their own cost constants (their per-element cost is what differs).
    """
    t0 = time.perf_counter()
    stats = KernelStats()
    stats_sym: Optional[KernelStats] = None
    out_nnz = 0

    if method in ("2way_incremental", "2way_tree", "scipy_incremental", "scipy_tree"):
        if execute_pairwise:
            from repro.core.api import spkadd

            res = spkadd(mats, method=method)
            stats = res.stats
            out_nnz = res.matrix.nnz
        else:
            inc, tree = synthesize_pairwise_stats(mats)
            stats = inc if method.endswith("incremental") else tree
            out_nnz = stats.output_nnz
        if method.startswith("scipy"):
            stats.algorithm = method
    elif method == "heap":
        out = spkadd_heap(mats, stats=stats)
        out_nnz = out.nnz
    elif method == "spa":
        out = spkadd_spa(mats, stats=stats)
        out_nnz = out.nnz
    elif method == "hash":
        stats_sym = KernelStats()
        out = spkadd_hash(
            mats, stats=stats, stats_symbolic=stats_sym, block_cols=1,
            backend="instrumented",
        )
        out_nnz = out.nnz
    elif method == "sliding_hash":
        stats_sym = KernelStats()
        kw = dict(sliding_kwargs or {})
        kw.setdefault("cache_bytes", cost_model.machine.llc_bytes)
        kw.setdefault("threads", cost_model.threads)
        out = spkadd_sliding_hash(
            mats, stats=stats, stats_symbolic=stats_sym, block_cols=1,
            backend="instrumented", **kw
        )
        out_nnz = out.nnz
    else:
        raise ValueError(f"unknown experiment method {method!r}")
    wall = time.perf_counter() - t0

    sim = cost_model.time_two_phase(stats, stats_sym)
    return RunResult(
        method=method,
        stats=stats,
        stats_symbolic=stats_sym,
        sim=sim,
        seconds=sim.extrapolate(time_factor, capacity_factor),
        wall_seconds=wall,
        output_nnz=out_nnz,
    )


def run_all_methods(
    mats: Sequence[CSCMatrix],
    cost_model: CostModel,
    *,
    methods: Sequence[str] = tuple(TABLE_METHODS),
    time_factor: float = 1.0,
    capacity_factor: float = 1.0,
    sliding_kwargs: Optional[dict] = None,
) -> Dict[str, RunResult]:
    """Run every method of the Tables III/IV comparison on one workload."""
    out: Dict[str, RunResult] = {}
    pairwise_cache: Optional[Tuple[KernelStats, KernelStats]] = None
    for method in methods:
        if method in (
            "2way_incremental", "2way_tree", "scipy_incremental", "scipy_tree"
        ):
            if pairwise_cache is None:
                pairwise_cache = synthesize_pairwise_stats(mats)
            inc, tree = pairwise_cache
            base = inc if method.endswith("incremental") else tree
            stats = KernelStats(algorithm=method)
            stats.merge(base)
            stats.k, stats.n_cols = base.k, base.n_cols
            stats.output_nnz = base.output_nnz
            sim = cost_model.time(stats)
            out[method] = RunResult(
                method, stats, None, sim,
                sim.extrapolate(time_factor, capacity_factor), 0.0,
                output_nnz=base.output_nnz,
            )
        else:
            out[method] = run_method(
                mats,
                method,
                cost_model,
                time_factor=time_factor,
                capacity_factor=capacity_factor,
                sliding_kwargs=sliding_kwargs,
            )
    return out
