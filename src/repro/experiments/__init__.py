"""Experiment drivers regenerating every table and figure of the paper.

==================  =============================================
Paper artifact      Driver
==================  =============================================
Table I             :mod:`repro.experiments.table1`
Table II            :mod:`repro.experiments.platforms`
Fig 2               :mod:`repro.experiments.fig2`
Table III           :mod:`repro.experiments.table3`
Table IV            :mod:`repro.experiments.table4`
Fig 3               :mod:`repro.experiments.fig3`
Fig 4               :mod:`repro.experiments.fig4`
Table V             :mod:`repro.experiments.table5`
Fig 5 / Fig 6       :mod:`repro.experiments.fig6`
==================  =============================================

Scale handling: experiments run at a reduced scale (rows and per-column
degree divided by ``scale_m``, columns by ``scale_n``) against a
capacity-scaled machine, so every cache-capacity ratio matches the
paper; simulated times extrapolate back with the single factor
``scale_m * scale_n`` (see DESIGN.md §5 and
:class:`repro.experiments.config.ReproScale`).
"""

from repro.experiments.config import ReproScale, PAPER
from repro.experiments.report import format_series, format_table

__all__ = ["ReproScale", "PAPER", "format_series", "format_table"]
