"""Table V: last-level cache misses, hash vs sliding hash.

The paper profiles the Fig 4 cases (a)-(d) with Cachegrind and reports
LL read misses; sliding hash shows far fewer misses exactly when the
plain hash table spills the LLC (cases b, c) and no benefit when it
fits (a, d).  We reproduce the comparison by capturing the kernels'
actual table-access traces and replaying them through the
set-associative LRU simulator at reduced scale.

Reported counts are reduced-scale (divide the paper's by roughly
``scale_m * scale_n``); the *ratio* hash/sliding per case is the
scale-free quantity to compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.hash_add import spkadd_hash
from repro.core.sliding_hash import spkadd_sliding_hash
from repro.core.stats import KernelStats
from repro.experiments.config import PAPER, ReproScale
from repro.experiments.fig4 import PANELS, _panel_workload
from repro.experiments.paper_values import TABLE5_PAPER
from repro.experiments.report import format_table
from repro.machine.spec import INTEL_SKYLAKE_8160
from repro.machine.tracer import replay_table_traces

CASES = ("a", "b", "c", "d")


@dataclass
class CacheMissResult:
    case: str
    hash_misses: float
    sliding_misses: float
    hash_accesses: float
    sliding_accesses: float
    paper_hash: float
    paper_sliding: float

    @property
    def model_ratio(self) -> float:
        return self.hash_misses / max(self.sliding_misses, 1.0)

    @property
    def paper_ratio(self) -> float:
        return self.paper_hash / max(self.paper_sliding, 1.0)


def run_table5(
    cases=CASES,
    *,
    scale: Optional[ReproScale] = None,
    threads: int = PAPER["threads"],
    max_accesses: int = 1_500_000,
    seed: int = 51,
) -> List[CacheMissResult]:
    sc = scale or ReproScale.from_env()
    machine = sc.machine(INTEL_SKYLAKE_8160)
    out: List[CacheMissResult] = []
    for case in cases:
        spec = PANELS[case]
        mats = _panel_workload(spec, sc, seed)
        traces_h: list = []
        spkadd_hash(
            mats, stats=KernelStats(), stats_symbolic=KernelStats(),
            block_cols=1, trace_sink=traces_h, backend="instrumented",
        )
        rep_h = replay_table_traces(
            traces_h, machine, threads=threads, max_accesses=max_accesses
        )
        traces_s: list = []
        spkadd_sliding_hash(
            mats, stats=KernelStats(), stats_symbolic=KernelStats(),
            block_cols=1, threads=threads, cache_bytes=machine.llc_bytes,
            trace_sink=traces_s, backend="instrumented",
        )
        rep_s = replay_table_traces(
            traces_s, machine, threads=threads, max_accesses=max_accesses
        )
        paper = TABLE5_PAPER[case]
        out.append(
            CacheMissResult(
                case=case,
                hash_misses=rep_h["misses"],
                sliding_misses=rep_s["misses"],
                hash_accesses=rep_h["accesses"],
                sliding_accesses=rep_s["accesses"],
                paper_hash=paper["hash"],
                paper_sliding=paper["sliding_hash"],
            )
        )
    return out


def table5_text(results: List[CacheMissResult]) -> str:
    rows = []
    for r in results:
        rows.append([
            r.case,
            r.sliding_misses, r.hash_misses,
            f"{r.model_ratio:.2f}",
            f"{r.paper_sliding:.3g}", f"{r.paper_hash:.3g}",
            f"{r.paper_ratio:.2f}",
        ])
    return format_table(
        ["case", "slide miss (ours)", "hash miss (ours)", "ratio (ours)",
         "slide miss (paper)", "hash miss (paper)", "ratio (paper)"],
        rows,
        title="Table V: LL cache misses, sliding hash vs hash "
              "(ours at reduced scale; compare ratios)",
    )
