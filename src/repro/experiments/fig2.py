"""Fig 2: best-performing algorithm over the (k, d) plane.

ER panel: d in {16 ... 131072} (powers of two), k in {4 ... 128}.
RMAT panel: d in {16 ... 1024}, k in {4 ... 128}.

The paper's regions to reproduce:

* ER — hash everywhere except the upper-right (dense × many matrices)
  corner, where sliding hash takes over once
  ``nnz(B(:,j)) * 8B * threads`` exceeds the 32MB LLC;
* RMAT — hash/sliding hash for k >= 8, with heap or 2-way tree best at
  k = 4 (a dense column can be streamed rather than hashed).

The boundary between hash and sliding hash is the cache-capacity
condition, which survives scaling because both the table sizes and the
machine's caches shrink by the same factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.calibration import calibrated_cost_model
from repro.experiments.config import PAPER, ReproScale
from repro.experiments.report import ABBREV, format_winner_grid
from repro.experiments.runner import run_all_methods
from repro.generators import erdos_renyi_collection, rmat_collection
from repro.machine.spec import INTEL_SKYLAKE_8160

ER_D = tuple(16 * 2**i for i in range(14))      # 16 .. 131072
RMAT_D = tuple(16 * 2**i for i in range(7))     # 16 .. 1024
K_VALUES = (4, 8, 16, 32, 64, 128)

#: methods contending in Fig 2 (the MKL baselines never win a cell in
#: the paper and are omitted from its legend's winning set)
FIG2_METHODS = (
    "2way_incremental", "2way_tree", "heap", "spa", "hash", "sliding_hash",
)


@dataclass
class WinnerMap:
    pattern: str
    d_values: Sequence[int]
    k_values: Sequence[int]
    winners: Dict[Tuple[int, int], str]         # (k, d) -> method
    times: Dict[Tuple[int, int], Dict[str, float]]

    def to_text(self) -> str:
        return format_winner_grid(
            "k", "d",
            list(self.k_values), list(self.d_values),
            {(k, d): self.winners[(k, d)] for k in self.k_values for d in self.d_values},
            title=f"Fig 2 ({self.pattern.upper()}): best algorithm per (k, d), Skylake",
            abbrev=ABBREV,
        )

    def hash_family_share(self) -> float:
        """Fraction of cells won by hash or sliding hash."""
        wins = sum(
            1 for w in self.winners.values() if w in ("hash", "sliding_hash")
        )
        return wins / max(len(self.winners), 1)


def run_fig2(
    pattern: str = "er",
    *,
    scale: Optional[ReproScale] = None,
    n_cols: int = 16,
    threads: int = PAPER["threads"],
    d_values: Optional[Sequence[int]] = None,
    k_values: Sequence[int] = K_VALUES,
    seed: int = 23,
) -> WinnerMap:
    """Compute the winner map for one panel.

    ``n_cols`` is deliberately small: Fig 2 only needs per-cell mean
    behaviour, and ER/RMAT columns are homogeneous enough at 16 columns
    (the d and k sweeps span 5 orders of magnitude of work).
    """
    sc = scale or ReproScale.from_env()
    machine = sc.machine(INTEL_SKYLAKE_8160)
    cm = calibrated_cost_model(machine, threads, scale=sc)
    dv = tuple(d_values) if d_values is not None else (
        ER_D if pattern == "er" else RMAT_D
    )
    winners: Dict[Tuple[int, int], str] = {}
    times: Dict[Tuple[int, int], Dict[str, float]] = {}
    for k in k_values:
        for d in dv:
            if pattern == "er":
                mats = erdos_renyi_collection(
                    sc.m(), n_cols, d=sc.d(d), k=k, seed=seed
                )
            else:
                mats = rmat_collection(
                    sc.m_pow2(), n_cols, d=sc.d(d), k=k, seed=seed
                )
            res = run_all_methods(
                mats, cm,
                methods=FIG2_METHODS,
                time_factor=sc.time_factor,
                capacity_factor=sc.scale_m,
            )
            cell = {m: r.seconds for m, r in res.items()}
            times[(k, d)] = cell
            winners[(k, d)] = min(cell, key=cell.get)
    return WinnerMap(pattern, dv, k_values, winners, times)
