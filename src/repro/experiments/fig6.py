"""Fig 6: SpKAdd's impact inside distributed SpGEMM (and Fig 5's SUMMA).

The paper squares two protein-similarity matrices with sparse SUMMA on
Cori KNL — Metaclust50 on 16,384 processes and Isolates on 4,096 — and
compares three configurations of the computation phases:

* **Heap** — CombBLAS's existing heap SpKAdd; local multiplies must
  sort their intermediate outputs;
* **Sorted Hash** — hash SpKAdd, intermediates still sorted;
* **Unsorted Hash** — hash SpKAdd consuming unsorted intermediates
  (the local multiply skips its final sort, ~20% faster).

Headline numbers to reproduce in shape: hash SpKAdd an order of
magnitude cheaper than heap; skipping the sort saves ~20% of local
multiply; overall computation at least 2x faster with hash.

We run the same SUMMA dataflow on surrogates at reduced scale with a
reduced process grid but the *same stage count k* (k = the SpKAdd fan-
in, which is what the data-structure comparison depends on), then model
phase times on the KNL spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.distributed.grid import ProcessGrid
from repro.distributed.summa import ExecutionPlan, summa_spgemm
from repro.distributed.timing import SpGEMMPhaseTimes, spgemm_phase_times
from repro.experiments.calibration import calibrated_cost_model
from repro.experiments.config import ReproScale
from repro.experiments.paper_values import FIG6_PAPER
from repro.experiments.report import format_table
from repro.generators import rmat
from repro.generators.protein import DATASETS, protein_collection
from repro.machine.spec import CORI_KNL

#: Paper runs: (dataset, processes, grid side, stages=SpKAdd k,
#: threads/process).  Stage count = sqrt(processes) in sparse SUMMA on a
#: square grid.
RUNS = {
    "metaclust50": dict(processes=16384, stages=128, threads=8),
    "isolates": dict(processes=4096, stages=64, threads=8),
}

CONFIGS = {
    "heap": dict(spkadd_method="heap", sorted_intermediates=True),
    "sorted_hash": dict(spkadd_method="hash", sorted_intermediates=True),
    "unsorted_hash": dict(spkadd_method="hash", sorted_intermediates=False),
}


@dataclass
class Fig6Result:
    dataset: str
    phase_times: Dict[str, SpGEMMPhaseTimes]
    paper: Dict[str, Dict[str, float]]

    def to_text(self) -> str:
        rows = []
        for cfg, t in self.phase_times.items():
            p = self.paper.get(cfg, {})
            rows.append([
                cfg,
                t.local_multiply, t.spkadd, t.computation,
                p.get("local_multiply"), p.get("spkadd"),
            ])
        return format_table(
            ["config", "multiply (model s)", "spkadd (model s)",
             "computation (model s)", "multiply (paper s)", "spkadd (paper s)"],
            rows,
            title=(
                f"Fig 6 ({self.dataset}): distributed SpGEMM computation "
                "phases (simulated; compare shape/ratios with paper)"
            ),
        )

    @property
    def spkadd_speedup_vs_heap(self) -> float:
        return (
            self.phase_times["heap"].spkadd
            / max(self.phase_times["unsorted_hash"].spkadd, 1e-12)
        )

    @property
    def multiply_saving_unsorted(self) -> float:
        s = self.phase_times["sorted_hash"].local_multiply
        u = self.phase_times["unsorted_hash"].local_multiply
        return 1.0 - u / max(s, 1e-12)


def run_fig6(
    dataset: str = "isolates",
    *,
    scale: Optional[ReproScale] = None,
    grid_side: int = 4,
    m: int = 16384,
    d: float = 12.0,
    seed: int = 61,
) -> Fig6Result:
    """Simulate one Fig 6 panel.

    ``grid_side`` shrinks the process grid (computation per process is
    what Fig 6 plots, and it depends on the per-process block and stage
    count, not the grid size); ``stages`` is kept at the paper's value
    because it is the SpKAdd fan-in k.
    """
    sc = scale or ReproScale.from_env()
    run = RUNS[dataset]
    ds = DATASETS[dataset]
    # A square protein-similarity surrogate; C = A @ A as in HipMCL's
    # Markov-clustering squaring.
    A = _square_surrogate(m, d, ds.degree_sigma, seed)
    grid = ProcessGrid(grid_side, grid_side)
    machine = CORI_KNL.scaled(sc.scale_m)
    cm = calibrated_cost_model(machine, run["threads"], scale=sc)
    phase_times: Dict[str, SpGEMMPhaseTimes] = {}
    for cfg_name, cfg in CONFIGS.items():
        # Pinned to the paper plan: serial, instrumented, no overlap —
        # the per-rank statistics feeding the timing model stay
        # bit-stable no matter what REPRO_BACKEND/REPRO_EXECUTOR say.
        res = summa_spgemm(
            A, A, grid=grid, stages=run["stages"],
            plan=ExecutionPlan.paper(),
            spkadd_kwargs={"block_cols": 1} if cfg["spkadd_method"] == "hash" else None,
            **cfg,
        )
        phase_times[cfg_name] = spgemm_phase_times(
            res, machine, threads_per_process=run["threads"], cost_model=cm
        )
    return Fig6Result(dataset, phase_times, FIG6_PAPER[dataset])


def _square_surrogate(m: int, d: float, sigma: float, seed: int):
    """Square similarity-like matrix: R-MAT skew + symmetrized."""
    from repro.formats.convert import csc_to_coo
    from repro.formats.csc import CSCMatrix
    import numpy as np

    base = rmat(m, m, d=d, seed=seed)
    coo = csc_to_coo(base)
    rows = np.concatenate([coo.rows, coo.cols])
    cols = np.concatenate([coo.cols, coo.rows])
    vals = np.concatenate([coo.vals, coo.vals])
    return CSCMatrix.from_arrays((m, m), rows, cols, vals, sum_duplicates=True)
