"""Table I: empirical validation of the complexity summary.

For ER inputs with d nonzeros per column the paper states:

==================  ==============  ============  ==================
Algorithm           Work            I/O           DS memory
==================  ==============  ============  ==================
2-way incremental   O(k^2 n d)      O(k^2 n d)    —
2-way tree          O(k n d lg k)   O(k n d lg k) —
k-way heap          O(k n d lg k)   O(k n d)      O(T k)
k-way SPA           O(k n d)        O(k n d)      O(T m)
k-way hash          O(k n d)        O(k n d)      O(T k d)
k-way sliding hash  O(k n d)        O(k n d)      O(M)
==================  ==============  ============  ==================

This driver measures ops / bytes / structure sizes with the kernels'
instrumentation and reports the measured-to-formula ratio, which should
be a k- and d-independent constant per algorithm (the hidden constant
of the O(.)).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2
from typing import Dict, List, Tuple

from repro.core.estimator import (
    er_2way_incremental_work,
    er_2way_tree_work,
    er_heap_work,
    er_kway_work,
)
from repro.experiments.report import format_table
from repro.experiments.runner import run_all_methods
from repro.generators import erdos_renyi_collection
from repro.machine.costmodel import CostModel
from repro.machine.spec import INTEL_SKYLAKE_8160

FORMULAS = {
    "2way_incremental": er_2way_incremental_work,
    "2way_tree": er_2way_tree_work,
    "heap": er_heap_work,
    "spa": er_kway_work,
    "hash": er_kway_work,
    "sliding_hash": er_kway_work,
}


@dataclass
class ComplexityCheck:
    method: str
    cell: Tuple[int, int]          # (d, k)
    measured_ops: float
    formula_ops: float

    @property
    def ratio(self) -> float:
        return self.measured_ops / max(self.formula_ops, 1.0)


def run_table1(
    *,
    m: int = 1 << 16,
    n: int = 32,
    d_values=(8, 32, 128),
    k_values=(4, 16, 64),
    seed: int = 71,
) -> List[ComplexityCheck]:
    cm = CostModel(INTEL_SKYLAKE_8160.scaled(64), threads=1)
    out: List[ComplexityCheck] = []
    for d in d_values:
        for k in k_values:
            mats = erdos_renyi_collection(m, n, d=d, k=k, seed=seed)
            runs = run_all_methods(
                mats, cm, methods=tuple(FORMULAS),
            )
            for meth, formula in FORMULAS.items():
                rr = runs[meth]
                ops = rr.stats.ops + (
                    rr.stats_symbolic.ops if rr.stats_symbolic else 0.0
                )
                out.append(
                    ComplexityCheck(meth, (d, k), ops, formula(d, k, n))
                )
    return out


def table1_text(checks: List[ComplexityCheck]) -> str:
    by_method: Dict[str, List[ComplexityCheck]] = {}
    for c in checks:
        by_method.setdefault(c.method, []).append(c)
    rows = []
    for meth, cs in by_method.items():
        ratios = [c.ratio for c in cs]
        rows.append([
            meth,
            f"{min(ratios):.3f}",
            f"{max(ratios):.3f}",
            f"{max(ratios) / max(min(ratios), 1e-12):.2f}",
        ])
    return format_table(
        ["algorithm", "min ops/formula", "max ops/formula", "spread"],
        rows,
        title=(
            "Table I check: measured ops vs complexity formula across "
            "(d, k) cells — spread ~1 means the O(.) bound is tight"
        ),
    )
