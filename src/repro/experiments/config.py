"""Experiment scale configuration.

The paper's workloads (m = 4M rows, up to 1024/32768 columns, k*d up to
10^6 entries per column) cannot be materialized in-process, so every
experiment runs a *proportionally reduced* instance:

* rows ``m`` and per-column degree ``d`` divided by ``scale_m`` — this
  preserves ``k*d/m`` and hence the compression factor and the
  table-size / cache-size ratios (the machine's caches are divided by
  the same factor via ``MachineSpec.scaled``);
* column count ``n`` divided by ``scale_n`` — columns are homogeneous
  (ER) or distribution-preserving (R-MAT splits), so this is a pure
  work factor.

Every cost-model time measured on the reduced instance extrapolates to
paper scale with the single multiplier ``scale_m * scale_n``.

Environment overrides: ``REPRO_SCALE_M``, ``REPRO_SCALE_N`` (integers
>= 1, validated by the :mod:`repro.env` knob registry with errors that
name the variable); ``REPRO_FAST=1`` selects a much smaller preset for
CI-speed runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import env
from repro.machine.spec import MachineSpec

#: Paper-scale workload constants (Section IV-A).
PAPER = {
    "m": 4_000_000,          # rows (the paper's 4M)
    "n_er": 1024,            # ER column count (Tables III, Fig 2-4)
    "n_rmat": 32768,         # RMAT column count (Table IV, Fig 3-4)
    "threads": 48,           # Skylake core count used throughout
}


@dataclass(frozen=True)
class ReproScale:
    """Reduction factors for one experiment run."""

    scale_m: int = 16
    scale_n: int = 16

    @classmethod
    def from_env(cls) -> "ReproScale":
        if env.get("REPRO_FAST"):
            return cls(scale_m=64, scale_n=64)
        return cls(
            scale_m=env.get("REPRO_SCALE_M"),
            scale_n=env.get("REPRO_SCALE_N"),
        )

    @property
    def time_factor(self) -> float:
        """Multiplier from reduced-instance simulated time to paper scale."""
        return float(self.scale_m * self.scale_n)

    def m(self, paper_m: int = PAPER["m"]) -> int:
        return max(paper_m // self.scale_m, 256)

    def m_pow2(self, paper_m: int = PAPER["m"]) -> int:
        """Row count rounded up to a power of two (R-MAT requirement)."""
        from repro.util.hashing import next_pow2

        return next_pow2(self.m(paper_m))

    def n(self, paper_n: int) -> int:
        return max(paper_n // self.scale_n, 8)

    def d(self, paper_d: float) -> float:
        return max(paper_d / self.scale_m, 1.0)

    def machine(self, spec: MachineSpec) -> MachineSpec:
        """The capacity-scaled machine matching this reduction."""
        return spec.scaled(self.scale_m)

    def table_entries(self, paper_entries: int) -> int:
        """Map a paper hash-table size (entries) to reduced scale."""
        return max(paper_entries // self.scale_m, 8)

    def describe(self) -> str:
        return (
            f"scale: m,d ÷{self.scale_m}; n ÷{self.scale_n}; "
            f"caches ÷{self.scale_m}; time x{self.time_factor:g}"
        )
