"""SpKAdd reproduction: parallel algorithms for adding k sparse matrices.

Reproduction of Hussain, Abhishek, Buluç, Azad — *Parallel Algorithms
for Adding a Collection of Sparse Matrices* (arXiv:2112.10223).

Quickstart::

    import repro
    from repro.generators import erdos_renyi_collection

    mats = erdos_renyi_collection(m=4096, n=64, d=16, k=32, seed=0)
    res = repro.spkadd(mats, method="hash")
    B = res.matrix                       # the sum, CSC format
    print(res.stats.summary())

Subpackages
-----------
``repro.formats``      CSC/CSR/COO sparse storage (built from scratch)
``repro.generators``   ER, R-MAT, protein-surrogate and workload generators
``repro.core``         the SpKAdd algorithms (Algorithms 1-8 + extensions)
``repro.kernels``      accumulation backends (instrumented probing / fast sort-reduce)
``repro.parallel``     column-parallel execution and scheduling
``repro.machine``      machine specs, cache simulation, calibrated cost model
``repro.distributed``  simulated sparse SUMMA SpGEMM (the paper's application)
``repro.experiments``  drivers regenerating every paper table and figure
``repro.serve``        SpKAdd-as-a-service: asyncio gateway with
                       micro-batching, admission control, and
                       deadline-aware backpressure
"""

from repro.core.api import SpKAddResult, available_methods, spkadd
from repro.core.stats import KernelStats
from repro.distributed import ExecutionPlan, summa_spgemm
from repro.formats import CSCMatrix, CSRMatrix, COOMatrix
from repro.kernels import available_backends, get_backend
from repro.parallel.executor import submit_spkadd
from repro.parallel.pools import shutdown_pools
from repro.parallel.resilience import (
    DeadlineExceeded,
    ExecutorUnusable,
    PoolBootTimeout,
    ResiliencePolicy,
    RetriesExhausted,
)
from repro.parallel.shm import sweep_orphans
from repro.serve import (
    GatewayClient,
    GatewayConfig,
    GatewayError,
    RequestInvalid,
    ShedError,
    start_in_thread,
)

__version__ = "1.5.0"

__all__ = [
    "SpKAddResult",
    "available_methods",
    "available_backends",
    "get_backend",
    "spkadd",
    "submit_spkadd",
    "ExecutionPlan",
    "summa_spgemm",
    "shutdown_pools",
    "sweep_orphans",
    "ResiliencePolicy",
    "DeadlineExceeded",
    "ExecutorUnusable",
    "PoolBootTimeout",
    "RetriesExhausted",
    "KernelStats",
    "CSCMatrix",
    "CSRMatrix",
    "COOMatrix",
    "GatewayClient",
    "GatewayConfig",
    "GatewayError",
    "RequestInvalid",
    "ShedError",
    "start_in_thread",
    "__version__",
]
