"""repro.lint — AST-based invariant checker for this repository.

``python -m repro.lint`` walks the tree and enforces the concurrency /
dtype / configuration invariants established by PRs 1–8 (see
:mod:`repro.lint.rules` for the rule set and
:mod:`repro.lint.cli` for the command line).
"""

from repro.lint.rules import (
    RULES,
    Rule,
    Violation,
    check_source,
    rule_listing,
)

__all__ = ["RULES", "Rule", "Violation", "check_source", "rule_listing"]
