"""Command-line front end: ``python -m repro.lint``.

Walks the repo's Python sources (``src/``, ``tests/``,
``benchmarks/``, ``examples/`` by default, or explicit paths), runs
every rule, and reports:

* human-readable ``path:line:col: RULE message`` lines with a fix-it
  hint (default);
* GitHub Actions workflow-command annotations (``--github``) so CI
  violations land on the offending diff line;
* the machine-readable rule set (``--list-rules``, JSON) so tooling
  can diff rule IDs across revisions.

Exit status: 0 clean, 1 violations found, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Iterable, List, Tuple

from repro.lint.rules import Violation, check_source, rule_listing

#: directories walked when no explicit paths are given.
DEFAULT_ROOTS = ("src", "tests", "benchmarks", "examples")

#: directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def find_repo_root(start: str = ".") -> str:
    """The nearest ancestor containing ``src/repro`` (the tree the
    default roots are relative to); falls back to ``start``."""
    current = os.path.abspath(start)
    while True:
        if os.path.isdir(os.path.join(current, "src", "repro")):
            return current
        parent = os.path.dirname(current)
        if parent == current:
            return os.path.abspath(start)
        current = parent


def iter_python_files(
    paths: Iterable[str], root: str
) -> Iterable[Tuple[str, str]]:
    """Yield ``(absolute_path, repo_relative_posix_path)`` pairs."""
    for path in paths:
        absolute = (
            path if os.path.isabs(path) else os.path.join(root, path)
        )
        if os.path.isfile(absolute):
            yield absolute, _relative(absolute, root)
            continue
        for dirpath, dirnames, filenames in os.walk(absolute):
            dirnames[:] = sorted(
                d
                for d in dirnames
                if d not in _SKIP_DIRS and not d.startswith(".")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    full = os.path.join(dirpath, filename)
                    yield full, _relative(full, root)


def _relative(path: str, root: str) -> str:
    rel = os.path.relpath(os.path.abspath(path), root)
    return rel.replace(os.sep, "/")


def lint_paths(paths: Iterable[str], root: str) -> Tuple[List[Violation], int]:
    """Lint every file under ``paths``; returns (violations, n_files)."""
    violations: List[Violation] = []
    n_files = 0
    for absolute, rel in iter_python_files(paths, root):
        n_files += 1
        with open(absolute, "r", encoding="utf-8") as handle:
            source = handle.read()
        violations.extend(check_source(rel, source))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations, n_files


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant checker for this repo: shm allocation "
            "discipline (L001), central env knobs (L002), resolved "
            "dtypes (L003), fork safety (L004), deadline threading "
            "(L005), typed raises (L006)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to check (default: "
            + ", ".join(DEFAULT_ROOTS)
            + " under the repo root)"
        ),
    )
    parser.add_argument(
        "--github",
        action="store_true",
        help="emit GitHub Actions ::error annotations instead of text",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule set as JSON and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line (violations still print)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(json.dumps(rule_listing(), indent=2))
        return 0
    root = find_repo_root(os.getcwd())
    if args.paths:
        paths = list(args.paths)
    else:
        paths = [
            p
            for p in DEFAULT_ROOTS
            if os.path.isdir(os.path.join(root, p))
        ]
    violations, n_files = lint_paths(paths, root)
    for violation in violations:
        if args.github:
            print(violation.format_github())
        else:
            print(violation.format())
    if not args.quiet:
        status = (
            f"{len(violations)} violation(s)" if violations else "clean"
        )
        print(
            f"repro-lint: checked {n_files} file(s): {status}",
            file=sys.stderr,
        )
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
