"""AST rules encoding the repo's concurrency/dtype invariants.

Eight PRs of growth established invariants that, until now, lived only
in docstrings and after-the-fact tests: segments are PID-tagged and
sweepable, ``REPRO_*`` knobs are declared once and validated eagerly,
allocation sites honour the one-resolved-dtype-per-call rule, pools
never boot at import time or via bare ``fork``, blocking public
functions thread ``deadline=``, and failures in the concurrency core
are typed and name their source.  Each rule here is the machine-checked
definition of one of those invariants.

Pure stdlib (``ast`` + ``re``): the linter must run in any environment
that can import the repo, including the CI lint job and pre-commit
hooks, without dragging in third-party analyzers.

Suppression: append ``# repro-lint: disable=L00X`` (comma list for
several rules) to any line of the offending statement.  Suppressions
are deliberate, visible diffs — reviewers see the rule being waived and
the reason comment next to it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: matches an inline suppression comment; group 1 is the rule list.
_DISABLE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One rule hit at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    fixit: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule} "
            f"{self.message}\n    fix: {self.fixit}"
        )

    def format_github(self) -> str:
        """One GitHub Actions workflow-command annotation."""
        text = f"{self.message} Fix: {self.fixit}".replace("\n", " ")
        return (
            f"::error file={self.path},line={self.line},col={self.col},"
            f"title={self.rule}::{text}"
        )


class FileContext:
    """One parsed file plus the location helpers rules share."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.tree = tree
        self.lines = source.splitlines()
        self._disabled: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _DISABLE_RE.search(line)
            if match:
                self._disabled[lineno] = {
                    token.strip().upper()
                    for token in match.group(1).split(",")
                    if token.strip()
                }

    def disabled(self, node: ast.AST, rule_id: str) -> bool:
        """True when any line the node spans carries a suppression."""
        start = getattr(node, "lineno", None)
        if start is None:
            return False
        end = getattr(node, "end_lineno", None) or start
        return any(
            rule_id in self._disabled.get(lineno, ())
            for lineno in range(start, end + 1)
        )

    def under(self, *prefixes: str) -> bool:
        return self.path.startswith(prefixes)


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains, ``""`` otherwise."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    return ""


def last_segment(node: ast.AST) -> str:
    return dotted_name(node).rsplit(".", 1)[-1]


def _string_constants(node: ast.AST) -> Iterator[str]:
    """Every string literal anywhere inside ``node`` (f-strings too)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            yield sub.value


def _is_main_guard(stmt: ast.stmt) -> bool:
    """``if __name__ == "__main__":`` (either operand order)."""
    if not isinstance(stmt, ast.If) or not isinstance(stmt.test, ast.Compare):
        return False
    test = stmt.test
    operands = [test.left, *test.comparators]
    names = {o.id for o in operands if isinstance(o, ast.Name)}
    consts = {
        o.value
        for o in operands
        if isinstance(o, ast.Constant) and isinstance(o.value, str)
    }
    return "__name__" in names and "__main__" in consts


def _import_time_nodes(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, bool]]:
    """Every node executed at import time, with a guarded flag.

    Descends module-level ``if``/``try``/``with``/loops and class
    bodies (all run on import) but not function bodies or lambdas
    (those run when called).  ``guarded`` is True under an
    ``if __name__ == "__main__"`` block — script entry points are not
    import-time work.
    """
    stack: List[Tuple[ast.AST, bool]] = [(s, False) for s in tree.body]
    while stack:
        node, guarded = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield node, guarded
        if isinstance(node, ast.If) and _is_main_guard(node):
            guarded = True
        for child in ast.iter_child_nodes(node):
            stack.append((child, guarded))


def _calls_outside_nested_defs(
    func: ast.FunctionDef,
) -> Iterator[ast.Call]:
    """Calls in ``func``'s own body, skipping nested def/lambda bodies
    (those don't run when ``func`` is called)."""
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


class Rule:
    """Base class: subclasses define the class attributes and
    :meth:`check`, yielding ``(node, message)`` pairs."""

    id: str = ""
    title: str = ""
    rationale: str = ""
    fixit: str = ""
    scope: str = "src/, tests/, benchmarks/, examples/"

    def check(self, ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# L001 — raw shared-memory allocation.
# ---------------------------------------------------------------------------


class RawShmAllocation(Rule):
    id = "L001"
    title = "raw shared-memory allocation outside SegmentRegistry"
    rationale = (
        "Every /dev/shm segment must be PID-tagged (repro_shm_<pid>_*) "
        "so the orphan sweeper can attribute and reclaim it after a "
        "crash; a raw SharedMemory(create=True) produces an anonymous, "
        "unsweepable segment."
    )
    fixit = (
        "allocate through parallel/shm.py's SegmentRegistry (or publish "
        "arrays via the SharedMemoryPool engine); attaching to an "
        "existing segment by name is fine"
    )
    scope = "everywhere except src/repro/parallel/shm.py"

    _ALLOWED = ("src/repro/parallel/shm.py",)

    def check(self, ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        if ctx.path in self._ALLOWED:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = last_segment(node.func)
            if name == "shm_open":
                yield node, (
                    "direct shm_open() call; segments must come from "
                    "SegmentRegistry so they are PID-tagged and sweepable"
                )
                continue
            if name != "SharedMemory":
                continue
            for kw in node.keywords:
                if kw.arg != "create":
                    continue
                value = kw.value
                if isinstance(value, ast.Constant) and not value.value:
                    continue  # create=False: an attach, always fine
                yield node, (
                    "SharedMemory(create=...) outside SegmentRegistry "
                    "allocates an anonymous segment the orphan sweeper "
                    "cannot attribute"
                )


# ---------------------------------------------------------------------------
# L002 — REPRO_* environment reads outside the knob registry.
# ---------------------------------------------------------------------------


class EnvKnobRead(Rule):
    id = "L002"
    title = "REPRO_* environment read outside repro.env"
    rationale = (
        "Knob parsing/validation is declared once in the repro.env "
        "table so every error names its variable and eager validation "
        "covers every knob; a stray os.environ read reintroduces "
        "silently-unvalidated configuration."
    )
    fixit = (
        "declare the knob in src/repro/env.py and read it with "
        "repro.env.get(NAME); writes (monkeypatch/setdefault) are exempt"
    )
    scope = "everywhere except src/repro/env.py"

    _ALLOWED = ("src/repro/env.py",)

    def check(self, ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        if ctx.path in self._ALLOWED:
            return
        for node in ast.walk(ctx.tree):
            key = self._env_read_key(node)
            if key is None:
                continue
            if self._is_repro_knob(key):
                yield node, (
                    "reads a REPRO_* knob directly from the process "
                    "environment, bypassing the repro.env declaration "
                    "table and its validation"
                )

    @staticmethod
    def _env_read_key(node: ast.AST) -> Optional[ast.AST]:
        """The key expression of an environment *read*, else None."""
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name.endswith("environ.get") or name in (
                "os.getenv",
                "getenv",
            ):
                return node.args[0] if node.args else None
            return None
        if isinstance(node, ast.Subscript):
            if last_segment(node.value) == "environ" and isinstance(
                node.ctx, ast.Load
            ):
                return node.slice
            return None
        return None

    @staticmethod
    def _is_repro_knob(key: ast.AST) -> bool:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            return key.value.startswith("REPRO_")
        # Symbolic names follow the *_ENV_VAR convention repo-wide.
        return last_segment(key).endswith("_ENV_VAR")


# ---------------------------------------------------------------------------
# L003 — value-dtype literals at allocation sites.
# ---------------------------------------------------------------------------


class DtypeLiteralAllocation(Rule):
    id = "L003"
    title = "float dtype literal at an allocation site"
    rationale = (
        "Kernels, formats, and executors must allocate value buffers at "
        "the call's one resolved dtype (resolve_value_dtype) or the "
        "central DEFAULT_VALUE_DTYPE; a literal np.float64 silently "
        "upcasts float32 calls and breaks cross-executor bit-identity. "
        "Integer dtype literals are deliberately exempt: counters, "
        "bounds, and composite keys are internal quantities with fixed "
        "widths, not matrix values (index buffers go through "
        "resolve_index_dtype at their own sites)."
    )
    fixit = (
        "pass the dtype resolved by resolve_value_dtype(...) (or "
        "DEFAULT_VALUE_DTYPE for empty placeholders) instead of a "
        "float literal"
    )
    scope = "src/repro/{kernels,formats,parallel,core}/"

    _SCOPE = (
        "src/repro/kernels/",
        "src/repro/formats/",
        "src/repro/parallel/",
        "src/repro/core/",
    )
    _ALLOCATORS = {"empty", "zeros", "ones", "full"}
    _FLOAT_ATTRS = {"float64", "float32", "float16"}
    _FLOAT_STRINGS = {"float64", "float32", "float16", "f8", "f4", "f2"}

    def check(self, ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        if not ctx.under(*self._SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = dotted_name(node.func)
            base, _, attr = func.rpartition(".")
            if attr not in self._ALLOCATORS or base not in ("np", "numpy"):
                continue
            for kw in node.keywords:
                if kw.arg == "dtype" and self._is_float_literal(kw.value):
                    yield node, (
                        f"np.{attr} called with a float dtype literal; "
                        "value buffers must use the call's resolved "
                        "dtype"
                    )

    def _is_float_literal(self, value: ast.AST) -> bool:
        if isinstance(value, ast.Attribute):
            return value.attr in self._FLOAT_ATTRS
        if isinstance(value, ast.Name):
            return value.id == "float"
        if isinstance(value, ast.Constant):
            return value.value in self._FLOAT_STRINGS
        return False


# ---------------------------------------------------------------------------
# L004 — fork safety.
# ---------------------------------------------------------------------------


class ForkSafety(Rule):
    id = "L004"
    title = "fork-unsafe pool construction or start method"
    rationale = (
        "A pool booted at import time runs before forkserver "
        "configuration and atexit ordering are in place, and a bare "
        "fork from a threaded parent can deadlock the child (the PR 3 "
        "CI hang); examples/benchmarks executing work at import break "
        "every tool that imports them (pytest collection, the fork "
        "server's preload)."
    )
    fixit = (
        "build pools lazily inside functions via parallel/pools.py, "
        "let mp_context() pick the start method, and wrap script "
        "entry points in `if __name__ == \"__main__\":`"
    )

    _POOL_CALLS = {
        "ProcessPoolExecutor",
        "ThreadPoolExecutor",
        "Pool",
        "get_pool",
        "lease_pool",
        "reserve_pool",
    }
    _START_METHOD_CALLS = {"get_context", "set_start_method"}
    _SCRIPT_DIRS = ("examples/", "benchmarks/")

    def check(self, ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        # (a) pools/executors constructed at import time.
        for node, guarded in _import_time_nodes(ctx.tree):
            if guarded or not isinstance(node, ast.Call):
                continue
            name = last_segment(node.func)
            if name in self._POOL_CALLS:
                yield node, (
                    f"{name}(...) at import time boots worker "
                    "infrastructure before fork-safety setup; construct "
                    "pools lazily inside a function"
                )
        # (b) a literal "fork" start method anywhere.
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if last_segment(node.func) not in self._START_METHOD_CALLS:
                continue
            values = list(node.args) + [kw.value for kw in node.keywords]
            if any(
                isinstance(v, ast.Constant) and v.value == "fork"
                for v in values
            ):
                yield node, (
                    'explicit "fork" start method: forking a threaded '
                    "parent can deadlock the child; use mp_context() "
                    "(forkserver) or REPRO_MP_START for experiments"
                )
        # (c) examples/benchmarks running locally-defined work on import.
        if not ctx.under(*self._SCRIPT_DIRS):
            return
        local_defs = {
            stmt.name
            for stmt in ctx.tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for node, guarded in _import_time_nodes(ctx.tree):
            if guarded or not isinstance(node, ast.Expr):
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            name = dotted_name(call.func)
            if name in local_defs:
                yield node, (
                    f"top-level call to {name}() runs on import; move "
                    'it under an `if __name__ == "__main__":` guard'
                )


# ---------------------------------------------------------------------------
# L005 — deadline threading.
# ---------------------------------------------------------------------------


class DeadlineThreading(Rule):
    id = "L005"
    title = "blocking public function without deadline threading"
    rationale = (
        "The resilience layer's contract is one monotonic Deadline per "
        "call, threaded through every bounded wait (pool boot, chunk "
        "collection, backoff); a public entry point that blocks without "
        "accepting deadline= is a hole in that budget, and a function "
        "that takes deadline= but drops it on a blocking call silently "
        "unbounds its callers."
    )
    fixit = (
        "add a deadline=None keyword and pass it (or its .remaining()) "
        "into every blocking/deadline-aware call in the body"
    )
    scope = "module-level public functions in src/repro/{parallel,serve}/"

    _SCOPE = ("src/repro/parallel/", "src/repro/serve/")
    #: calls that can block on workers/pools; a public function whose
    #: body reaches one of these must accept ``deadline=``.
    _BLOCKING = {
        "get_pool",
        "lease_pool",
        "reserve_pool",
        "collect_resilient",
        "collect_fail_fast",
        "shm_parallel_run",
        "parallel_spkadd",
        "wait",
    }
    #: calls that accept a deadline; a deadline-taking function must
    #: hand its budget to them rather than dropping it.
    _DEADLINE_AWARE = {
        "get_pool",
        "lease_pool",
        "reserve_pool",
        "collect_resilient",
        "collect_fail_fast",
        "shm_parallel_run",
        "parallel_spkadd",
        "mp_context",
        "resolve_policy",
    }

    def check(self, ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        if not ctx.under(*self._SCOPE):
            return
        for stmt in ctx.tree.body:
            if not isinstance(stmt, ast.FunctionDef):
                continue
            has_deadline = self._has_deadline_param(stmt)
            public = not stmt.name.startswith("_")
            for call in _calls_outside_nested_defs(stmt):
                name = last_segment(call.func)
                if public and not has_deadline and name in self._BLOCKING:
                    yield stmt, (
                        f"public function {stmt.name}() blocks (calls "
                        f"{name}) but accepts no deadline= parameter"
                    )
                    break
            if not has_deadline:
                continue
            for call in _calls_outside_nested_defs(stmt):
                name = last_segment(call.func)
                if name in self._DEADLINE_AWARE and not self._passes_deadline(
                    call
                ):
                    yield call, (
                        f"{stmt.name}() takes deadline= but calls "
                        f"{name}() without threading it through"
                    )

    @staticmethod
    def _has_deadline_param(func: ast.FunctionDef) -> bool:
        args = func.args
        names = [
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        ]
        return "deadline" in names

    @staticmethod
    def _passes_deadline(call: ast.Call) -> bool:
        """True when some argument carries the caller's deadline (a
        ``deadline=`` keyword, or any expression mentioning a name
        containing "deadline" — covers ``timeout=deadline.remaining()``
        and policies that embed the budget)."""
        for kw in call.keywords:
            if kw.arg == "deadline":
                return True
        for value in (*call.args, *[kw.value for kw in call.keywords]):
            for sub in ast.walk(value):
                if isinstance(sub, ast.Name) and "deadline" in sub.id.lower():
                    return True
                if (
                    isinstance(sub, ast.Attribute)
                    and "deadline" in sub.attr.lower()
                ):
                    return True
        return False


# ---------------------------------------------------------------------------
# L006 — typed, source-naming raises in the concurrency core.
# ---------------------------------------------------------------------------


class TypedRaises(Rule):
    id = "L006"
    title = "untyped or source-less raise in parallel/serve"
    rationale = (
        "Callers of the concurrency core dispatch on the typed "
        "ResilienceError / gateway-error families (retry vs fail-fast "
        "vs degrade, wire error codes); a bare RuntimeError falls "
        "through every classifier.  Validation errors must name the "
        "offending argument or environment variable so a misconfigured "
        "CI leg reads differently from a bad call site."
    )
    fixit = (
        "raise a ResilienceError subclass (parallel/) or GatewayError "
        "subclass (serve/), and include the argument/env-var name and "
        "offending value in the message"
    )
    scope = "src/repro/{parallel,serve}/"

    _SCOPE = ("src/repro/parallel/", "src/repro/serve/")
    _BANNED = {"RuntimeError", "Exception", "BaseException"}
    _NEED_SOURCE = {"ValueError", "TypeError", "KeyError"}
    #: substrings any of which mark a message as naming its source:
    #: an argument/knob name with its value ("x must be ..., got v"),
    #: an enumerated choice, or the environment variable itself.
    _MARKERS = (
        "got",
        "unknown",
        "choose",
        "must",
        "expected",
        "environment variable",
        "argument",
        "REPRO_",
        "at least",
        "not supported",
    )

    def check(self, ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        if not ctx.under(*self._SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if not isinstance(exc, ast.Call):
                continue  # re-raising a bound exception object
            name = last_segment(exc.func)
            if name in self._BANNED:
                yield node, (
                    f"raises bare {name}; the concurrency core's "
                    "failures must use the typed ResilienceError / "
                    "gateway error families"
                )
            elif name in self._NEED_SOURCE:
                texts = list(_string_constants(exc))
                if not any(
                    marker in text
                    for text in texts
                    for marker in self._MARKERS
                ):
                    yield node, (
                        f"{name} message names neither the offending "
                        "argument nor its value; say what was wrong "
                        "and where it came from"
                    )


#: the rule set, in ID order.  Stable IDs: a rule is never renumbered;
#: retired rules leave a hole.
RULES: Tuple[Rule, ...] = (
    RawShmAllocation(),
    EnvKnobRead(),
    DtypeLiteralAllocation(),
    ForkSafety(),
    DeadlineThreading(),
    TypedRaises(),
)


def check_source(path: str, source: str) -> List[Violation]:
    """All violations in one file's source text (path is repo-relative,
    posix-style — rules scope on it)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as err:
        return [
            Violation(
                rule="PARSE",
                path=path,
                line=err.lineno or 1,
                col=(err.offset or 1),
                message=f"syntax error: {err.msg}",
                fixit="fix the syntax error; the file was not analyzed",
            )
        ]
    ctx = FileContext(path, source, tree)
    out: List[Violation] = []
    for rule in RULES:
        for node, message in rule.check(ctx):
            if ctx.disabled(node, rule.id):
                continue
            out.append(
                Violation(
                    rule=rule.id,
                    path=path,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0) + 1,
                    message=message,
                    fixit=rule.fixit,
                )
            )
    out.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return out


def rule_listing() -> List[Dict[str, str]]:
    """The rule set as plain dicts (the ``--list-rules`` payload)."""
    return [
        {
            "id": rule.id,
            "title": rule.title,
            "rationale": rule.rationale,
            "fixit": rule.fixit,
            "scope": rule.scope,
        }
        for rule in RULES
    ]


__all__ = [
    "FileContext",
    "RULES",
    "Rule",
    "Violation",
    "check_source",
    "dotted_name",
    "rule_listing",
]
