"""Validation helpers shared across the package."""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple


def require(cond: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``cond`` holds."""
    if not cond:
        raise ValueError(message)


def check_nonempty(mats: Sequence) -> None:
    """SpKAdd inputs must contain at least one matrix."""
    if len(mats) == 0:
        raise ValueError("SpKAdd requires at least one input matrix")


def check_same_shape(mats: Iterable) -> Tuple[int, int]:
    """Verify all matrices share one shape; return it.

    The paper assumes all A_i (and B) live in R^{m x n}.
    """
    shapes = {m.shape for m in mats}
    if len(shapes) != 1:
        raise ValueError(f"all SpKAdd inputs must share one shape, got {sorted(shapes)}")
    return next(iter(shapes))
