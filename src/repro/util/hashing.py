"""Hashing primitives used by the hash-based SpKAdd kernels.

The paper (Section II-C3) uses a *multiplicative masking* hash::

    HASH(r) = (a * r) & (2**q - 1)

where ``r`` is the row index used as the key, ``a`` is a prime, and
``2**q`` is the hash-table size chosen as the smallest power of two
strictly larger than the expected number of distinct keys.  Collisions
are resolved by linear probing (handled by the kernels, not here).
"""

from __future__ import annotations

import numpy as np

#: The fixed multiplier prime used by :func:`multiplicative_hash`.  Any odd
#: prime works; this one is large enough to scramble the low bits of small
#: row indices (the paper does not specify its constant, only that it is
#: prime).
HASH_PRIME: int = 2_654_435_761  # Knuth's 2**32 / golden-ratio prime

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def next_pow2(x: int) -> int:
    """Smallest power of two ``>= max(x, 1)``.

    >>> next_pow2(0), next_pow2(1), next_pow2(5), next_pow2(8)
    (1, 1, 8, 8)
    """
    x = int(x)
    if x <= 1:
        return 1
    return 1 << (x - 1).bit_length()


def table_size_for(n_keys: int, min_size: int = 16) -> int:
    """Hash-table size used by the paper's kernels for ``n_keys`` keys.

    The paper requires a power of two *greater than* the expected number
    of distinct keys (``nnz(B(:,j))`` for the addition phase,
    ``sum_i nnz(A_i(:,j))`` for the symbolic phase).  We additionally keep
    the load factor at most 0.75 so linear probing stays O(1) expected.
    """
    need = max(int(n_keys) + 1, min_size)
    size = next_pow2(need)
    if n_keys > 0.75 * size:
        size *= 2
    return size


def multiplicative_hash(key: int, table_size: int, prime: int = HASH_PRIME) -> int:
    """Scalar multiplicative-masking hash ``(prime * key) & (size - 1)``.

    ``table_size`` must be a power of two.  This is the scalar twin of
    :func:`hash_indices`, used by the loop-level reference kernels.
    """
    if table_size & (table_size - 1):
        raise ValueError(f"table_size must be a power of two, got {table_size}")
    return (prime * int(key)) & (table_size - 1)


def hash_indices(
    keys: np.ndarray, table_size: int, prime: int = HASH_PRIME
) -> np.ndarray:
    """Vectorized multiplicative-masking hash of an index array.

    Parameters
    ----------
    keys:
        Integer array of hash keys (row indices in the SpKAdd kernels).
    table_size:
        Power-of-two table size ``2**q``; the result is masked to
        ``[0, table_size)``.
    prime:
        The multiplier; must be odd so the map is a bijection on the
        64-bit ring before masking.

    Returns
    -------
    ``uint64`` array of hash slots, same shape as ``keys``.
    """
    if table_size & (table_size - 1):
        raise ValueError(f"table_size must be a power of two, got {table_size}")
    k = np.asarray(keys).astype(np.uint64, copy=False)
    with np.errstate(over="ignore"):
        h = (k * np.uint64(prime)) & _MASK64
    return h & np.uint64(table_size - 1)
