"""A tiny wall-clock timer used by the benchmark harness."""

from __future__ import annotations

import time


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._t0: float = 0.0

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._t0

    def restart(self) -> None:
        self._t0 = time.perf_counter()

    def lap(self) -> float:
        now = time.perf_counter()
        self.elapsed = now - self._t0
        return self.elapsed
