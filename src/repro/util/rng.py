"""Seeded random-number-generator helpers.

Every stochastic component of the reproduction (matrix generators, RMAT
recursion, workload synthesis) accepts either an integer seed or a
:class:`numpy.random.Generator`; these helpers normalize that choice so
experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

SeedLike = "int | np.random.Generator | None"


def default_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh entropy), an integer, or an existing
    ``Generator`` (returned unchanged so callers can thread one RNG
    through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, n: int) -> Sequence[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Used when a workload needs one RNG per matrix (e.g. k independent
    ER matrices) so that changing k does not perturb earlier matrices.
    """
    root = np.random.SeedSequence(seed if not isinstance(seed, np.random.Generator) else None)
    return [np.random.default_rng(s) for s in root.spawn(n)]
