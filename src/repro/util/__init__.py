"""Shared low-level utilities for the SpKAdd reproduction.

The helpers here are deliberately small and dependency-free: hashing
primitives used by the hash/sliding-hash kernels, power-of-two sizing,
seeded RNG construction and lightweight timers.
"""

from repro.util.hashing import (
    HASH_PRIME,
    hash_indices,
    multiplicative_hash,
    next_pow2,
    table_size_for,
)
from repro.util.rng import default_rng, spawn_rngs
from repro.util.timer import Timer
from repro.util.checks import (
    check_same_shape,
    check_nonempty,
    require,
)

__all__ = [
    "HASH_PRIME",
    "hash_indices",
    "multiplicative_hash",
    "next_pow2",
    "table_size_for",
    "default_rng",
    "spawn_rngs",
    "Timer",
    "check_same_shape",
    "check_nonempty",
    "require",
]
