"""Literal loop-level transcriptions of the paper's pseudocode.

These are *correctness oracles*: they follow Algorithms 1–8 line by
line (scalar loops, explicit probing, explicit heaps) and are only
meant for small inputs.  The vectorized kernels in the sibling modules
are tested for exact agreement with these, and the reference kernels'
exact operation counts validate the charged counts of the fast paths.
"""

from __future__ import annotations

from math import ceil
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.stats import KernelStats
from repro.formats.csc import CSCMatrix
from repro.util.checks import check_nonempty, check_same_shape
from repro.util.hashing import multiplicative_hash, table_size_for

Column = Tuple[List[int], List[float]]


def _columns_of(A: CSCMatrix, j: int) -> Column:
    rows, vals = A.col(j)
    return list(int(r) for r in rows), list(float(v) for v in vals)


def col_add_2way(a: Column, b: Column) -> Column:
    """``ColAdd`` (Algorithm 1 line 5): merge two row-sorted columns."""
    ra, va = a
    rb, vb = b
    out_r: List[int] = []
    out_v: List[float] = []
    i = jj = 0
    while i < len(ra) and jj < len(rb):
        if ra[i] < rb[jj]:
            out_r.append(ra[i]); out_v.append(va[i]); i += 1
        elif ra[i] > rb[jj]:
            out_r.append(rb[jj]); out_v.append(vb[jj]); jj += 1
        else:
            out_r.append(ra[i]); out_v.append(va[i] + vb[jj]); i += 1; jj += 1
    out_r.extend(ra[i:]); out_v.extend(va[i:])
    out_r.extend(rb[jj:]); out_v.extend(vb[jj:])
    return out_r, out_v


def spkadd_2way_incremental_ref(mats: Sequence[CSCMatrix]) -> CSCMatrix:
    """Algorithm 1 verbatim: fold columns pairwise, left to right."""
    check_nonempty(mats)
    m, n = check_same_shape(mats)
    cols = [_columns_of(mats[0], j) for j in range(n)]
    for A in mats[1:]:
        for j in range(n):
            cols[j] = col_add_2way(cols[j], _columns_of(A, j))
    return CSCMatrix.from_columns(
        (m, n), [(np.asarray(r, dtype=np.int64), np.asarray(v)) for r, v in cols]
    )


def heap_add_ref(columns: Sequence[Column]) -> Column:
    """Algorithm 3 (HEAPADD) verbatim on one column set.

    Maintains an explicit array-backed binary min-heap of
    ``(r, i, v)`` tuples keyed by row index, at most one per matrix.
    """
    heap: List[Tuple[int, int, float]] = []

    def sift_up(pos: int) -> None:
        while pos > 0:
            parent = (pos - 1) // 2
            if heap[parent][0] <= heap[pos][0]:
                break
            heap[parent], heap[pos] = heap[pos], heap[parent]
            pos = parent

    def sift_down(pos: int) -> None:
        size = len(heap)
        while True:
            left, right = 2 * pos + 1, 2 * pos + 2
            smallest = pos
            if left < size and heap[left][0] < heap[smallest][0]:
                smallest = left
            if right < size and heap[right][0] < heap[smallest][0]:
                smallest = right
            if smallest == pos:
                return
            heap[smallest], heap[pos] = heap[pos], heap[smallest]
            pos = smallest

    def insert(item: Tuple[int, int, float]) -> None:
        heap.append(item)
        sift_up(len(heap) - 1)

    def extract_min() -> Tuple[int, int, float]:
        top = heap[0]
        last = heap.pop()
        if heap:
            heap[0] = last
            sift_down(0)
        return top

    cursors = [0] * len(columns)
    # Lines 3-5: one smallest-row entry per input column.
    for i, (rows, vals) in enumerate(columns):
        if rows:
            insert((rows[0], i, vals[0]))
            cursors[i] = 1
    out_r: List[int] = []
    out_v: List[float] = []
    # Lines 6-14.
    while heap:
        r, i, v = extract_min()
        if out_r and out_r[-1] == r:  # line 8: B(r,j) exists
            out_v[-1] += v
        else:  # line 10-11: append at the end
            out_r.append(r)
            out_v.append(v)
        rows_i, vals_i = columns[i]
        if cursors[i] < len(rows_i):  # lines 12-14
            insert((rows_i[cursors[i]], i, vals_i[cursors[i]]))
            cursors[i] += 1
    return out_r, out_v


def spa_add_ref(columns: Sequence[Column], m: int) -> Column:
    """Algorithm 4 (SPAADD) verbatim: dense array + valid-index list."""
    spa = [0.0] * m
    valid = [False] * m  # membership of idx, O(1) as in the paper
    idx: List[int] = []
    for rows, vals in columns:  # line 4
        for r, v in zip(rows, vals):  # line 5
            if valid[r]:  # line 6
                spa[r] += v
            else:  # line 7
                spa[r] = v
                valid[r] = True
                idx.append(r)
    idx.sort()  # line 8: if sorted output is desired
    return idx, [spa[r] for r in idx]


def hash_add_ref(
    columns: Sequence[Column],
    table_size: Optional[int] = None,
    *,
    counters: Optional[Dict[str, int]] = None,
) -> Column:
    """Algorithm 5 (HASHADD) verbatim: linear-probing accumulate.

    ``counters`` (optional) receives exact ``slot_ops``/``probes``
    counts for validating the vectorized engine's accounting.
    """
    inz = sum(len(r) for r, _ in columns)
    size = table_size if table_size is not None else table_size_for(inz)
    ht_r = [-1] * size  # line 2: initialized with (-1, 0)
    ht_v = [0.0] * size
    slot_ops = 0
    probes = 0
    for rows, vals in columns:  # line 3
        for r, v in zip(rows, vals):  # line 4
            h = multiplicative_hash(r, size)  # line 5
            while True:  # line 6
                slot_ops += 1
                if ht_r[h] == -1:  # line 7
                    ht_r[h] = r
                    ht_v[h] = v
                    break
                if ht_r[h] == r:  # line 9
                    ht_v[h] += v
                    break
                h = (h + 1) % size  # lines 11-12: linear probing
                probes += 1
    out = [(ht_r[h], ht_v[h]) for h in range(size) if ht_r[h] != -1]  # 13-14
    out.sort()  # line 15: if sorted output is desired
    if counters is not None:
        counters["slot_ops"] = slot_ops
        counters["probes"] = probes
        counters["table_size"] = size
    return [r for r, _ in out], [v for _, v in out]


def hash_symbolic_ref(columns: Sequence[Column], table_size: Optional[int] = None) -> int:
    """Algorithm 6 (HASHSYMBOLIC) verbatim: count distinct row ids."""
    inz = sum(len(r) for r, _ in columns)
    size = table_size if table_size is not None else table_size_for(inz)
    ht = [-1] * size  # line 2
    nz = 0
    for rows, _vals in columns:  # line 4
        for r in rows:  # line 5
            h = multiplicative_hash(r, size)  # line 6
            while True:  # line 7
                if ht[h] == -1:  # lines 8-10
                    nz += 1
                    ht[h] = r
                    break
                if ht[h] == r:  # line 11
                    break
                h = (h + 1) % size  # line 12
    return nz


def sliding_hash_symbolic_ref(
    columns: Sequence[Column], m: int, *, threads: int, cache_bytes: int, b: int = 4
) -> int:
    """Algorithm 7 (SLHASHSYMBOLIC) verbatim."""
    inz = sum(len(r) for r, _ in columns)  # line 2
    parts = max(int(ceil((inz * b * threads) / cache_bytes)), 1)  # line 3
    if parts == 1:  # lines 5-6
        return hash_symbolic_ref(columns)
    nz = 0
    for i in range(parts):  # lines 8-10
        r1, r2 = (i * m) // parts, ((i + 1) * m) // parts
        restricted = [
            (
                [r for r in rows if r1 <= r < r2],
                [v for r, v in zip(rows, vals) if r1 <= r < r2],
            )
            for rows, vals in columns
        ]
        nz += hash_symbolic_ref(restricted)
    return nz


def sliding_hash_add_ref(
    columns: Sequence[Column], m: int, *, threads: int, cache_bytes: int, b: int = 8
) -> Column:
    """Algorithm 8 (SLHASHADD) verbatim."""
    onz = sliding_hash_symbolic_ref(
        columns, m, threads=threads, cache_bytes=cache_bytes, b=4
    )  # line 2
    parts = max(int(ceil((onz * b * threads) / cache_bytes)), 1)  # line 3
    if parts == 1:  # lines 5-6
        return hash_add_ref(columns)
    out_r: List[int] = []
    out_v: List[float] = []
    for i in range(parts):  # lines 8-10
        r1, r2 = (i * m) // parts, ((i + 1) * m) // parts
        restricted = [
            (
                [r for r in rows if r1 <= r < r2],
                [v for r, v in zip(rows, vals) if r1 <= r < r2],
            )
            for rows, vals in columns
        ]
        rr, vv = hash_add_ref(restricted)
        out_r.extend(rr)
        out_v.extend(vv)
    return out_r, out_v


def spkadd_kway_ref(
    mats: Sequence[CSCMatrix],
    method: str,
    *,
    threads: int = 1,
    cache_bytes: int = 1 << 15,
    stats: Optional[KernelStats] = None,
) -> CSCMatrix:
    """Run a reference k-way kernel column by column (Algorithm 2)."""
    check_nonempty(mats)
    m, n = check_same_shape(mats)
    out_cols = []
    for j in range(n):
        columns = [_columns_of(A, j) for A in mats]
        if method == "heap":
            r, v = heap_add_ref(columns)
        elif method == "spa":
            r, v = spa_add_ref(columns, m)
        elif method == "hash":
            r, v = hash_add_ref(columns)
        elif method == "sliding_hash":
            r, v = sliding_hash_add_ref(
                columns, m, threads=threads, cache_bytes=cache_bytes
            )
        else:
            raise ValueError(f"unknown reference method {method!r}")
        out_cols.append((np.asarray(r, dtype=np.int64), np.asarray(v)))
    if stats is not None:
        stats.algorithm = f"{method}_ref"
        stats.k = len(mats)
        stats.n_cols = n
    return CSCMatrix.from_columns((m, n), out_cols)
