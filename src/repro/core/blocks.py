"""Column-block gathering shared by the k-way kernels.

Because CSC stores consecutive columns contiguously, the entries of a
column block ``[j0, j1)`` of each addend are one zero-copy slice.  The
k-way kernels process blocks of columns at a time: one Python-level
gather per matrix per block, then fully vectorized accumulation.  With
``block_cols=1`` this degenerates to the paper's exact per-column
processing.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.core.hashtable import resolve_value_dtype
from repro.formats import compressed as _compressed
from repro.formats.compressed import min_index_dtype, resolve_index_dtype
from repro.formats.csc import CSCMatrix

#: Default target for entries per gathered block; blocks are sized so the
#: gathered working set stays small relative to caches while amortizing
#: Python dispatch over many columns.
DEFAULT_BLOCK_ENTRIES = 1 << 18


def choose_block_cols(mats: Sequence[CSCMatrix], target_entries: int = DEFAULT_BLOCK_ENTRIES) -> int:
    """Pick a column-block width so a block gathers ~``target_entries``."""
    n = mats[0].shape[1]
    total = sum(m.nnz for m in mats)
    if total == 0:
        return n if n else 1
    per_col = max(total / max(n, 1), 1.0)
    return int(min(max(target_entries // per_col, 1), max(n, 1)))


def iter_col_blocks(n_cols: int, block_cols: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(j0, j1)`` covering ``[0, n_cols)`` in ``block_cols`` strides."""
    j0 = 0
    while j0 < n_cols:
        j1 = min(j0 + block_cols, n_cols)
        yield j0, j1
        j0 = j1


class BlockScratch:
    """Reusable gather buffers for :func:`gather_block`.

    One kernel invocation processes many column blocks; allocating fresh
    ``cols``/``rows``/``vals`` arrays (plus a k-way ``np.concatenate``)
    per block dominates the gather cost.  A scratch object amortizes
    that: buffers grow geometrically to the largest block seen and every
    gather after warm-up is pure slice copies into existing memory.

    The arrays returned by a scratch-backed gather are **views** into
    the buffers — consume them before the next ``gather_block`` call.
    """

    __slots__ = ("cols", "rows", "vals")

    def __init__(self) -> None:
        self.cols = np.empty(0, dtype=_compressed.DEFAULT_INDEX_DTYPE)
        self.rows = np.empty(0, dtype=_compressed.DEFAULT_INDEX_DTYPE)
        self.vals = np.empty(0, dtype=_compressed.DEFAULT_VALUE_DTYPE)

    def reserve(self, n: int, value_dtype, index_dtype=np.int64) -> None:
        """Ensure capacity for ``n`` entries of ``value_dtype`` values
        and ``index_dtype`` row/column ids."""
        if (
            self.rows.size < n
            or self.rows.dtype != np.dtype(index_dtype)
        ):
            cap = max(n, 2 * self.rows.size)
            self.cols = np.empty(cap, dtype=index_dtype)
            self.rows = np.empty(cap, dtype=index_dtype)
        if self.vals.size < n or self.vals.dtype != np.dtype(value_dtype):
            cap = max(n, 2 * self.vals.size)
            self.vals = np.empty(cap, dtype=value_dtype)


def gather_block(
    mats: Sequence[CSCMatrix],
    j0: int,
    j1: int,
    scratch: Optional[BlockScratch] = None,
    value_dtype=None,
    index_dtype=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate the entries of columns ``[j0, j1)`` from all addends.

    Returns ``(cols_local, rows, vals, col_in_nnz)`` where ``cols_local``
    is the 0-based column id inside the block for each entry (entries are
    grouped matrix-major, column order within a matrix), and
    ``col_in_nnz[j]`` is the summed input nnz of block column ``j`` —
    the symbolic-phase load-balancing weight.

    Values are gathered in the *accumulator* dtype resolved over all k
    addends (:func:`~repro.core.hashtable.resolve_value_dtype`) — not
    over just the matrices populating this particular block — so every
    block, chunk, and executor of one SpKAdd call sums in the same
    dtype even when a mixed-dtype collection leaves some addends empty
    in some blocks.  ``index_dtype`` sizes the gathered row/column-id
    buffers the same way (the call-level width from
    :func:`~repro.formats.compressed.resolve_index_dtype`), halving the
    gather working set when the call resolves to int32; the composite
    keys built from them widen to int64 regardless (key arithmetic needs
    the headroom).  Kernels iterating many blocks resolve once and pass
    both dtypes to skip the per-block resolution.

    With a :class:`BlockScratch` the gather writes into preallocated
    buffers and returns views; without one it allocates fresh arrays.
    """
    width = j1 - j0
    if value_dtype is None:
        value_dtype = resolve_value_dtype(mats)
    if index_dtype is None:
        index_dtype = resolve_index_dtype(mats)
    col_in = np.zeros(width, dtype=np.int64)
    arange = np.arange(width, dtype=index_dtype)
    parts = []
    total = 0
    for A in mats:
        indptr, rows, vals = A.col_block(j0, j1)
        counts = np.diff(indptr)
        col_in += counts
        if rows.size:
            parts.append((counts, rows, vals))
            total += rows.size
    if not parts:
        return (
            np.empty(0, dtype=index_dtype),
            np.empty(0, dtype=index_dtype),
            np.empty(0, dtype=value_dtype),
            col_in,
        )
    if scratch is None:
        cols_buf = np.empty(total, dtype=index_dtype)
        rows_buf = np.empty(total, dtype=index_dtype)
        vals_buf = np.empty(total, dtype=value_dtype)
    else:
        scratch.reserve(total, value_dtype, index_dtype)
        cols_buf, rows_buf, vals_buf = scratch.cols, scratch.rows, scratch.vals
    pos = 0
    for counts, rows, vals in parts:
        nxt = pos + rows.size
        cols_buf[pos:nxt] = np.repeat(arange, counts)
        rows_buf[pos:nxt] = rows
        vals_buf[pos:nxt] = vals
        pos = nxt
    return cols_buf[:total], rows_buf[:total], vals_buf[:total], col_in


def composite_keys(
    cols_local: np.ndarray, rows: np.ndarray, m: int, *, width: int = None
) -> np.ndarray:
    """Combine (column, row) into a single sortable/hashable integer key.

    Requires ``m * width`` to fit in int64, which every realistic matrix
    satisfies; validated by the caller once per matrix.

    When the caller passes the block ``width`` (the exclusive bound on
    ``cols_local``), the ids are int32, and the whole key range
    ``m * width`` fits int32, the keys are built — and returned — in
    int32: every key is below ``m * width``, so the narrow arithmetic
    cannot wrap, and downstream sort/unique passes run on half the
    bytes (the fast backend's argsort is the dominant cost of a
    sort/reduce SpKAdd).  Otherwise key arithmetic widens to int64.
    """
    if (
        width is not None
        and cols_local.dtype == np.int32
        and rows.dtype == np.int32
        and int(m) * int(width) <= _compressed.INT32_INDEX_CAPACITY
    ):
        return cols_local * np.int32(m) + rows
    return cols_local.astype(np.int64, copy=False) * np.int64(m) + rows


def split_keys(keys: np.ndarray, m: int) -> Tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`composite_keys` -> (cols_local, rows).

    Width-preserving: int32 keys split with int32 arithmetic (``m``
    fits by construction — it bounds every key), so narrow blocks stay
    narrow through the split as well.
    """
    mm = keys.dtype.type(m)
    cols = keys // mm
    rows = keys - cols * mm
    return cols, rows


def assemble_from_block_outputs(
    shape: Tuple[int, int],
    block_outputs: Sequence[Tuple[int, np.ndarray, np.ndarray, np.ndarray]],
    *,
    sorted: bool,
    value_dtype=None,
    index_dtype=None,
) -> CSCMatrix:
    """Stitch per-block k-way outputs into one CSC matrix.

    ``block_outputs`` holds ``(j0, cols_local, rows, vals)`` per block,
    with ``cols_local`` *nondecreasing* within a block (each kernel emits
    columns in order).  Blocks must cover ``[0, n)`` disjointly but may
    arrive out of order (parallel executors).

    ``value_dtype`` fixes the output value dtype; kernels pass the dtype
    they resolved for the whole call so an all-empty input still yields
    a correctly-typed (empty) data array.  ``None`` infers it from the
    block values (float64 when there are no blocks at all).
    ``index_dtype`` does the same for ``indices``/``indptr``; ``None``
    resolves the paper's width rule from the shape and the assembled
    entry count.  Either way the pointer array is widened if the entry
    count overflows the requested width — indices never wrap.
    """
    m, n = shape
    if value_dtype is None:
        vd = [v.dtype for _, _, _, v in block_outputs]
        value_dtype = np.result_type(*vd) if vd else np.float64
    ordered = list(block_outputs)
    ordered.sort(key=lambda t: t[0])
    counts = np.zeros(n, dtype=np.int64)
    total = 0
    for j0, cols_local, rows, vals in ordered:
        if rows.size:
            width = int(cols_local.max()) + 1
            counts[j0 : j0 + width] += np.bincount(cols_local, minlength=width)
            total += rows.size
    if index_dtype is None:
        index_dtype = resolve_index_dtype(shape=shape, nnz=total)
    index_dtype = np.promote_types(index_dtype, min_index_dtype(total))
    indptr = np.zeros(n + 1, dtype=index_dtype)
    np.cumsum(counts, out=indptr[1:])
    indices = np.empty(total, dtype=index_dtype)
    data = np.empty(total, dtype=value_dtype)
    cursor = 0
    for j0, cols_local, rows, vals in ordered:
        indices[cursor : cursor + rows.size] = rows
        data[cursor : cursor + rows.size] = vals
        cursor += rows.size
    return CSCMatrix((m, n), indptr, indices, data, sorted=sorted, check=False)
