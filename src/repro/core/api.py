"""Public SpKAdd facade.

    >>> from repro import spkadd
    >>> result = spkadd(list_of_csc_matrices, method="hash")   # doctest: +SKIP
    >>> B, stats = result.matrix, result.stats

``method`` selects the paper's algorithms by name; ``threads`` routes
through the shared-memory executor (columns are partitioned among
threads with the paper's load-balancing rule).  ``backend`` selects the
accumulation engine for the hash-family methods — ``"fast"``
(sort/reduce, the production default) or ``"instrumented"`` (the
paper-faithful probing table that produces slot-op/probe/cache stats) —
and ``executor="process"`` / ``executor="shm"`` swaps the thread pool
for a process pool (pickled chunks) or the zero-copy shared-memory
engine (``REPRO_EXECUTOR`` overrides the default).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

from repro.core.hash_add import spkadd_hash
from repro.core.heap_add import spkadd_heap
from repro.core.pairwise import spkadd_2way_incremental, spkadd_2way_tree
from repro.core.scipy_baseline import spkadd_scipy_incremental, spkadd_scipy_tree
from repro.core.sliding_hash import spkadd_sliding_hash
from repro.core.spa_add import spkadd_spa
from repro.core.stats import KernelStats
from repro.formats.csc import CSCMatrix
from repro.util.checks import check_nonempty, check_same_shape


@dataclass
class SpKAddResult:
    """Summed matrix plus the instrumentation of both phases.

    ``stats`` covers the addition phase; ``stats_symbolic`` is filled by
    the two-phase (hash-family) methods and is ``None`` otherwise.
    """

    matrix: CSCMatrix
    stats: KernelStats
    stats_symbolic: Optional[KernelStats] = None
    method: str = ""

    @property
    def compression_factor(self) -> float:
        """cf = sum_i nnz(A_i) / nnz(B) (>= 1)."""
        total_in = self.stats.input_nnz if self.stats.input_nnz else 0
        if self.method in ("2way_incremental", "2way_tree",
                           "scipy_incremental", "scipy_tree"):
            # 2-way stats count re-reads; recover the true input size.
            total_in = None
        if total_in in (None, 0):
            return float("nan")
        return total_in / max(self.matrix.nnz, 1)


_TWO_PHASE = {"hash", "hash_unsorted", "sliding_hash", "sliding_hash_unsorted"}

#: methods that accept a ``backend=`` accumulation-engine kwarg — the
#: single source of truth; the executor, CLI, SUMMA driver and
#: benchmarks all import this set.
BACKEND_AWARE_METHODS = frozenset({"hash", "sliding_hash"})

#: the facade's default engine: production callers who never read the
#: slot-level statistics get the fast sort/reduce path automatically;
#: paper reproductions pass ``backend="instrumented"`` (or call the
#: kernel functions directly, whose default is instrumented).
DEFAULT_FACADE_BACKEND = "fast"


def _run_hash(mats, *, sorted_output, **kw):
    st_sym = KernelStats()
    st = kw.pop("stats")
    out = spkadd_hash(
        mats, sorted_output=sorted_output, stats=st, stats_symbolic=st_sym, **kw
    )
    return out, st, st_sym


def _run_sliding(mats, *, sorted_output, **kw):
    st_sym = KernelStats()
    st = kw.pop("stats")
    out = spkadd_sliding_hash(
        mats, sorted_output=sorted_output, stats=st, stats_symbolic=st_sym, **kw
    )
    return out, st, st_sym


_REGISTRY: Dict[str, Callable] = {}


def _register(name: str, fn: Callable) -> None:
    _REGISTRY[name] = fn


def available_methods() -> Sequence[str]:
    """Names accepted by :func:`spkadd`'s ``method`` argument."""
    return tuple(sorted(_REGISTRY))


def spkadd(
    mats: Sequence[CSCMatrix],
    method: str = "hash",
    *,
    threads: int = 1,
    machine=None,
    sorted_output: bool = True,
    backend: Optional[str] = None,
    executor: Optional[str] = None,
    value_dtype=None,
    index_dtype=None,
    materialize: Optional[bool] = None,
    deadline=None,
    resilience=None,
    **kwargs,
) -> SpKAddResult:
    """Add a collection of sparse matrices: ``B = sum_i A_i``.

    Parameters
    ----------
    mats:
        The addends, all the same shape, CSC format.
    method:
        One of :func:`available_methods`:
        ``"2way_incremental"`` (Algorithm 1), ``"2way_tree"``,
        ``"scipy_incremental"`` / ``"scipy_tree"`` (off-the-shelf
        pairwise baseline, the paper's MKL role), ``"heap"``
        (Algorithm 3), ``"spa"`` (Algorithm 4), ``"hash"``
        (Algorithms 5+6), ``"sliding_hash"`` (Algorithms 7+8).
    threads:
        >1 runs the column-parallel executor (no synchronization; the
        paper's Section III-A scheme) with this many workers.
    machine:
        A :class:`~repro.machine.spec.MachineSpec`; the sliding-hash
        method derives its cache budget from it (LLC bytes).
    sorted_output:
        Hash-family methods can skip the final per-column sort; other
        methods always emit sorted columns.  With the ``fast`` backend
        the output is sorted either way (sortedness is a free byproduct
        of its sort/reduce), so ``False`` only changes behaviour on the
        instrumented engine.
    backend:
        Accumulation engine for the hash-family methods (see
        :mod:`repro.kernels`): ``"fast"`` — sort/segmented-reduce,
        bit-identical matrices, no slot-level stats — or
        ``"instrumented"`` — the paper-faithful probing hash table whose
        stats feed the cost model.  ``None`` consults the
        ``REPRO_BACKEND`` environment variable and then defaults to
        ``"fast"``: production callers who don't ask for paper
        statistics get the fast engine automatically.  Non-hash methods
        have no accumulation engine and reject an explicit ``backend``
        with ``ValueError``.
    executor:
        ``"thread"`` (shared-memory pool; NumPy kernels release the GIL),
        ``"process"`` (a ``ProcessPoolExecutor`` that sidesteps the
        GIL entirely; column chunks are shipped as pickled views), or
        ``"shm"`` (the zero-copy ``multiprocessing.shared_memory``
        engine: inputs published once, output scattered into one
        symbolically sized shared buffer — see
        :mod:`repro.parallel.shm`).  ``None`` (or ``"auto"``) consults
        the ``REPRO_EXECUTOR`` environment variable and then defaults to
        ``"thread"``.  Only consulted when ``threads > 1``.  Both
        process-based executors draw persistent workers from the pool
        registry (:mod:`repro.parallel.pools`), so repeated calls reuse
        warm workers; ``repro.shutdown_pools()`` releases them.
    value_dtype:
        Optional override of the value dtype the sum is computed (and
        returned) in.  ``None`` preserves the inputs: the output dtype
        is the accumulator dtype of the inputs' common
        ``np.result_type`` — float64 in, float64 out; float32-only
        stays float32; integer collections sum exactly in 64-bit
        integers (no float64 round-trip); mixed int + float promotes to
        float.  An explicit dtype casts the addends up front, so every
        method, backend, and executor computes in it (integer requests
        still widen to the exact 64-bit accumulator; see
        :func:`repro.kernels.resolve_value_dtype`).
    index_dtype:
        Optional override of the width the output's
        ``indices``/``indptr`` are allocated in.  ``None`` applies the
        paper's rule (via :func:`repro.kernels.resolve_index_dtype`,
        overridable with the ``REPRO_INDEX_DTYPE`` environment
        variable): 32-bit indices whenever the matrix dimensions and
        the summed input nnz fit in int32, 64-bit otherwise — halving
        index bytes for every realistically-sized call, the same lever
        float32 values pull on the value side.  An explicit ``"int32"``
        that cannot hold the call's bounds transparently promotes to
        int64 (indices never wrap); the resolved width is identical
        across every method, backend, and executor.
    materialize:
        Result placement for the shared-memory executor.  ``None`` (the
        default) consults the ``REPRO_SHM_RESULTS`` environment variable
        and then returns **zero-copy** results: the output
        ``indices``/``data`` are views into the engine's shared segment,
        kept alive by ``result.matrix.buffer_owner`` — the segment
        unlinks itself when the last view is garbage-collected, so huge
        outputs skip the final copy out of shared memory.  ``True``
        copies the result into private memory before the segment is
        unlinked (the pre-zero-copy contract; ``matrix.materialize()``
        converts after the fact).  Ignored by the serial path and the
        thread/process executors, whose results are always private.
    deadline:
        Per-call time budget in seconds (parallel calls only).  Expiry
        raises :class:`~repro.parallel.resilience.DeadlineExceeded`,
        cancels outstanding chunks, and releases pool leases and shared
        segments.  ``None`` consults ``REPRO_DEADLINE``.
    resilience:
        A :class:`~repro.parallel.resilience.ResiliencePolicy`
        overriding the retry/backoff/deadline/fallback behaviour of
        parallel calls.  ``None`` resolves from the environment
        (``REPRO_MAX_RETRIES``, ``REPRO_DEADLINE``, ``REPRO_FALLBACK``);
        ``ResiliencePolicy.disabled()`` turns the layer off.

    Returns
    -------
    :class:`SpKAddResult`
    """
    check_nonempty(mats)
    check_same_shape(mats)
    if threads < 1:
        # threads=0 / negative used to fall through to the serial branch
        # (threads > 1 is the parallel gate), silently ignoring the
        # caller's request; malformed counts are rejected on every path.
        raise ValueError(f"threads must be >= 1, got {threads}")
    if value_dtype is not None:
        from repro.kernels import resolve_value_dtype

        vdt = resolve_value_dtype(mats, value_dtype)
        mats = [A.astype(vdt) for A in mats]
    if method not in _REGISTRY:
        raise ValueError(
            f"unknown method {method!r}; choose from {available_methods()}"
        )
    if method in BACKEND_AWARE_METHODS:
        from repro.kernels import resolve_backend

        kwargs["backend"] = resolve_backend(
            backend,
            default=DEFAULT_FACADE_BACKEND,
            need_trace=kwargs.get("trace_sink") is not None,
        ).name
    elif backend not in (None, "auto"):
        raise ValueError(
            f"method {method!r} does not take a backend (hash-family only)"
        )
    if machine is not None and method == "sliding_hash":
        kwargs.setdefault("cache_bytes", machine.llc_bytes)
    if threads > 1:
        from repro.parallel.executor import parallel_spkadd

        return parallel_spkadd(
            mats, method, threads=threads, sorted_output=sorted_output,
            executor=executor, index_dtype=index_dtype,
            materialize=materialize, deadline=deadline,
            resilience=resilience, **kwargs
        )
    if method == "sliding_hash" and "cache_bytes" in kwargs:
        kwargs.setdefault("threads", threads)
    if index_dtype is not None and method in BACKEND_AWARE_METHODS:
        # Serial hash-family kernels take the override directly; the
        # parallel branch above passes it as a named argument instead.
        kwargs.setdefault("index_dtype", index_dtype)
    st = KernelStats()
    runner = _REGISTRY[method]
    if method in _TWO_PHASE:
        out, st, st_sym = runner(
            mats, sorted_output=sorted_output, stats=st, **kwargs
        )
        res = SpKAddResult(out, st, st_sym, method=method)
    else:
        out = runner(mats, stats=st, **kwargs)
        res = SpKAddResult(out, st, None, method=method)
    if index_dtype is not None and method not in BACKEND_AWARE_METHODS:
        # Methods without native index plumbing (heap, SPA, pairwise,
        # scipy baselines) emit the default-resolved width; an explicit
        # override casts their output through the guarded resolution.
        from repro.kernels import resolve_index_dtype

        res.matrix = res.matrix.with_index_dtype(
            resolve_index_dtype(mats, index_dtype)
        )
    return res


_register("2way_incremental", spkadd_2way_incremental)
_register("2way_tree", spkadd_2way_tree)
_register("scipy_incremental", spkadd_scipy_incremental)
_register("scipy_tree", spkadd_scipy_tree)
_register("heap", spkadd_heap)
_register("spa", spkadd_spa)
_register("hash", _run_hash)
_register("sliding_hash", _run_sliding)
