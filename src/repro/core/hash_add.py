"""HashSpKAdd — k-way addition with a hash table (Algorithms 5 and 6).

The hash algorithm is the paper's headline: work **and** I/O are both
O(sum_i nnz(A_i)) — the theoretical lower bounds — because every input
entry costs O(1) expected hash-table work and inputs/outputs are
streamed exactly once.  It tolerates unsorted inputs and produces
unsorted output unless a final sort is requested (Algorithm 5 line 15).

Two phases, as in the paper (Section II-D):

1. **Symbolic** (:func:`hash_symbolic`, Algorithm 6): count
   ``nnz(B(:,j))`` per output column using an index-only table (4-byte
   entries) sized by the summed input nnz.
2. **Addition** (:func:`spkadd_hash`, Algorithm 5): accumulate values in
   a (row, value) table (8-byte entries) sized by the symbolic counts.

Both phases dispatch their accumulation through a pluggable backend
(:mod:`repro.kernels`).  The default ``instrumented`` backend is the
vectorized linear-probing engine in :mod:`repro.core.hashtable` and
records slot-visit/probe counts plus the table-size-bucketed
random-access histogram the cache model consumes.  The ``fast`` backend
replaces the table with a sort/segmented-reduce and — when no symbolic
counts or traces are requested — fuses both phases into a single pass
(:func:`_spkadd_fast_fused`): the sort already yields the output sizes,
so the symbolic table is pure overhead.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.blocks import (
    BlockScratch,
    assemble_from_block_outputs,
    choose_block_cols,
    composite_keys,
    gather_block,
    iter_col_blocks,
    split_keys,
)
from repro.core.pairwise import ENTRY_BYTES
from repro.core.stats import KernelStats
from repro.formats.csc import CSCMatrix
from repro.util.checks import check_nonempty, check_same_shape
from repro.util.hashing import table_size_for

#: table entry bytes: symbolic stores a 32-bit index; the addition phase
#: stores a 32-bit index plus a 32-bit value (paper Section III-B).
SYMBOLIC_ENTRY_BYTES = 4
ADD_ENTRY_BYTES = 8

#: trace sink item: (table_entries, entry_bytes, slot_sequence)
TraceItem = Tuple[int, int, np.ndarray]


def _resolve(backend, need_trace):
    from repro.kernels import resolve_backend

    return resolve_backend(backend, need_trace=need_trace)


def hash_symbolic(
    mats: Sequence[CSCMatrix],
    *,
    block_cols: Optional[int] = None,
    stats: Optional[KernelStats] = None,
    trace_sink: Optional[List[TraceItem]] = None,
    backend: Optional[str] = None,
    index_dtype=None,
) -> np.ndarray:
    """Algorithm 6: per-column output nnz via an index-only hash table.

    Returns an ``int64`` array of length n with ``nnz(B(:,j))``.
    The table for a column group is sized by the paper's rule — a power
    of two greater than the summed input nnz of the group.
    ``index_dtype`` sizes the gathered id buffers (probing itself runs
    on int64 composite keys either way).
    """
    check_nonempty(mats)
    m, n = check_same_shape(mats)
    eng = _resolve(backend, trace_sink is not None)
    st = stats if stats is not None else KernelStats()
    st.algorithm = st.algorithm or "hash_symbolic"
    st.k = len(mats)
    st.n_cols = n
    value_dtype = eng.result_value_dtype(mats)
    idx_dtype = eng.result_index_dtype(mats, index_dtype)
    bc = block_cols or choose_block_cols(mats)
    scratch = BlockScratch()
    out = np.zeros(n, dtype=np.int64)
    col_in = np.zeros(n, dtype=np.int64)
    for j0, j1 in iter_col_blocks(n, bc):
        cols, rows, vals, in_nnz = gather_block(
            mats, j0, j1, scratch, value_dtype, idx_dtype
        )
        col_in[j0:j1] = in_nnz
        if rows.size == 0:
            continue
        keys = composite_keys(cols, rows, m, width=j1 - j0)
        tsize = table_size_for(rows.size)
        if eng.provides_stats or trace_sink is not None:
            res = eng.accumulate(
                keys,
                # Dummy values: this is the symbolic pass — only the
                # distinct-key count survives, the sums are discarded.
                np.zeros(rows.size, dtype=np.float64),  # repro-lint: disable=L003
                tsize,
                capture_trace=trace_sink is not None,
            )
            if trace_sink is not None:
                trace_sink.append((tsize, SYMBOLIC_ENTRY_BYTES, res.trace))
            okeys = res.keys
            st.ops += res.slot_ops
            st.probes += res.probes
            st.add_table_traffic(tsize * SYMBOLIC_ENTRY_BYTES, res.slot_ops)
            st.ds_bytes_peak = max(
                st.ds_bytes_peak, tsize * SYMBOLIC_ENTRY_BYTES
            )
        else:
            # Stat-less backends need only the distinct keys; skip the
            # zero-weight value accumulation.
            okeys = np.unique(keys)
        ocols = okeys // np.int64(m)
        out[j0:j1] = np.bincount(ocols, minlength=j1 - j0)
        st.input_nnz += int(rows.size)
        st.bytes_read += rows.size * ENTRY_BYTES
    st.col_in_nnz = col_in
    st.col_out_nnz = out.copy()
    st.output_nnz = int(out.sum())
    st.col_ops = col_in.astype(np.float64)
    return out


def _spkadd_fast_fused(
    mats: Sequence[CSCMatrix],
    *,
    block_cols: Optional[int],
    st: KernelStats,
    stats_symbolic: Optional[KernelStats],
    index_dtype=None,
) -> CSCMatrix:
    """Single-pass sort/reduce SpKAdd (fast backend, no symbolic phase).

    The sorted reduction produces each block's output directly in
    (column, row) order, so the symbolic sizing pass the hash table
    needs is unnecessary — its statistics (per-column output counts) are
    byproducts of the reduction and still land in ``stats_symbolic`` so
    facade callers see a populated two-phase result.  Output columns are
    sorted even under ``sorted_output=False`` (sortedness is free here).
    """
    from repro.kernels import resolve_index_dtype, resolve_value_dtype, sort_reduce

    shape = check_same_shape(mats)
    m, n = shape
    value_dtype = resolve_value_dtype(mats)
    idx_dtype = resolve_index_dtype(mats, index_dtype)
    bc = block_cols or choose_block_cols(mats)
    scratch = BlockScratch()
    blocks = []
    col_in = np.zeros(n, dtype=np.int64)
    col_out = np.zeros(n, dtype=np.int64)
    for j0, j1 in iter_col_blocks(n, bc):
        cols, rows, vals, in_nnz = gather_block(
            mats, j0, j1, scratch, value_dtype, idx_dtype
        )
        col_in[j0:j1] = in_nnz
        if rows.size == 0:
            continue
        keys = composite_keys(cols, rows, m, width=j1 - j0)
        okeys, ovals = sort_reduce(keys, vals)
        ocols, orows = split_keys(okeys, m)
        col_out[j0:j1] = np.bincount(ocols, minlength=j1 - j0)
        blocks.append((j0, ocols, orows, ovals))
        st.input_nnz += int(rows.size)
        st.output_nnz += int(okeys.size)
        st.bytes_read += rows.size * ENTRY_BYTES
        st.bytes_written += okeys.size * ENTRY_BYTES
    st.col_in_nnz = col_in
    st.col_out_nnz = col_out.copy()
    st.col_ops = col_in.astype(np.float64)
    if stats_symbolic is not None:
        st_sym = stats_symbolic
        st_sym.algorithm = st_sym.algorithm or "hash_symbolic"
        st_sym.k = st.k
        st_sym.n_cols = n
        st_sym.input_nnz = st.input_nnz
        st_sym.bytes_read = st.bytes_read
        st_sym.col_in_nnz = col_in.copy()
        st_sym.col_out_nnz = col_out.copy()
        st_sym.output_nnz = int(col_out.sum())
        st_sym.col_ops = col_in.astype(np.float64)
    # sort_reduce emits key-sorted (column-major, row-ascending) output,
    # so the matrix is sorted whether or not the caller asked for it.
    return assemble_from_block_outputs(
        shape, blocks, sorted=True,
        value_dtype=value_dtype, index_dtype=idx_dtype,
    )


def spkadd_hash(
    mats: Sequence[CSCMatrix],
    *,
    sorted_output: bool = True,
    block_cols: Optional[int] = None,
    col_out_nnz: Optional[np.ndarray] = None,
    stats: Optional[KernelStats] = None,
    stats_symbolic: Optional[KernelStats] = None,
    trace_sink: Optional[List[TraceItem]] = None,
    backend: Optional[str] = None,
    index_dtype=None,
) -> CSCMatrix:
    """Algorithm 5: add k sparse matrices with a (row, value) hash table.

    Parameters
    ----------
    sorted_output:
        Sort each output column by row id (Algorithm 5 line 15).  The
        unsorted variant is what makes the distributed SpGEMM pipeline
        faster (Fig 6): downstream hash consumers do not need the sort.
    col_out_nnz:
        Pre-computed symbolic counts; when omitted the symbolic phase
        (Algorithm 6) runs first and its stats land in
        ``stats_symbolic``.
    backend:
        Accumulation engine name (see :mod:`repro.kernels`); ``None``
        consults ``REPRO_BACKEND`` and defaults to ``"instrumented"``.
        The ``"fast"`` backend additionally fuses away the symbolic
        phase when neither ``col_out_nnz`` nor ``trace_sink`` is given.
    index_dtype:
        Width of the emitted ``indices``/``indptr`` (and of the gather
        buffers).  ``None`` resolves the paper's rule — int32 whenever
        the dimensions and the summed input nnz fit — via
        :meth:`~repro.kernels.Backend.result_index_dtype`; an explicit
        int32 that cannot hold the call transparently promotes.
    """
    check_nonempty(mats)
    shape = check_same_shape(mats)
    m, n = shape
    eng = _resolve(backend, trace_sink is not None)
    st = stats if stats is not None else KernelStats()
    st.algorithm = st.algorithm or ("hash" if sorted_output else "hash_unsorted")
    st.k = len(mats)
    st.n_cols = n
    if not eng.provides_stats and trace_sink is None and col_out_nnz is None:
        return _spkadd_fast_fused(
            mats,
            block_cols=block_cols,
            st=st,
            stats_symbolic=stats_symbolic,
            index_dtype=index_dtype,
        )
    if col_out_nnz is None:
        col_out_nnz = hash_symbolic(
            mats, block_cols=block_cols, stats=stats_symbolic,
            trace_sink=trace_sink, backend=eng.name,
            index_dtype=index_dtype,
        )
    value_dtype = eng.result_value_dtype(mats)
    idx_dtype = eng.result_index_dtype(mats, index_dtype)
    bc = block_cols or choose_block_cols(mats)
    scratch = BlockScratch()
    blocks = []
    col_in = np.zeros(n, dtype=np.int64)
    for j0, j1 in iter_col_blocks(n, bc):
        cols, rows, vals, in_nnz = gather_block(
            mats, j0, j1, scratch, value_dtype, idx_dtype
        )
        col_in[j0:j1] = in_nnz
        if rows.size == 0:
            continue
        keys = composite_keys(cols, rows, m, width=j1 - j0)
        onz_block = int(col_out_nnz[j0:j1].sum())
        tsize = table_size_for(onz_block)
        res = eng.accumulate(
            keys, vals, tsize, capture_trace=trace_sink is not None
        )
        if trace_sink is not None:
            trace_sink.append((tsize, ADD_ENTRY_BYTES, res.trace))
        if not eng.provides_stats:
            # Fast-backend output is already fully key-sorted.
            okeys, ovals = res.keys, res.vals
        elif sorted_output:
            order = np.argsort(res.keys)
            okeys, ovals = res.keys[order], res.vals[order]
        else:
            # Group by column only; keep table order inside each column.
            order = np.argsort(res.keys // np.int64(m), kind="stable")
            okeys, ovals = res.keys[order], res.vals[order]
        ocols, orows = split_keys(okeys, m)
        blocks.append((j0, ocols, orows, ovals))
        st.ops += res.slot_ops
        st.probes += res.probes
        st.input_nnz += int(rows.size)
        st.output_nnz += int(okeys.size)
        st.bytes_read += rows.size * ENTRY_BYTES
        st.bytes_written += okeys.size * ENTRY_BYTES
        if eng.provides_stats:
            st.add_table_traffic(tsize * ADD_ENTRY_BYTES, res.slot_ops)
            st.ds_bytes_peak = max(st.ds_bytes_peak, tsize * ADD_ENTRY_BYTES)
    st.col_in_nnz = col_in
    st.col_out_nnz = np.asarray(col_out_nnz, dtype=np.int64).copy()
    st.col_ops = col_in.astype(np.float64)
    # A stat-less backend emits sorted columns whether or not they were
    # asked for (sortedness is free in sort/reduce).
    return assemble_from_block_outputs(
        shape, blocks, sorted=sorted_output or not eng.provides_stats,
        value_dtype=value_dtype, index_dtype=idx_dtype,
    )
