"""SpKAdd — the paper's primary contribution.

This subpackage implements every algorithm in the paper:

========================  ===========================================  =============
Paper reference           Function                                     Module
========================  ===========================================  =============
Algorithm 1               :func:`spkadd_2way_incremental`              ``pairwise``
Section II-B2             :func:`spkadd_2way_tree`                     ``pairwise``
(MKL baseline)            :func:`spkadd_scipy_incremental` / ``_tree`` ``scipy_baseline``
Algorithm 3 (HeapAdd)     :func:`spkadd_heap`                          ``heap_add``
Algorithm 4 (SPAAdd)      :func:`spkadd_spa`                           ``spa_add``
Algorithm 5 (HashAdd)     :func:`spkadd_hash`                          ``hash_add``
Algorithm 6 (symbolic)    :func:`hash_symbolic`                        ``hash_add``
Algorithm 7 (SlHashSym)   :func:`sliding_hash_symbolic`                ``sliding_hash``
Algorithm 8 (SlHashAdd)   :func:`spkadd_sliding_hash`                  ``sliding_hash``
Section V (future work)   :func:`spkadd_streaming`                     ``streaming``
========================  ===========================================  =============

The public entry point is :func:`repro.core.api.spkadd`, which dispatches
on ``method`` and returns the summed matrix together with instrumentation
(:class:`~repro.core.stats.KernelStats`) for the cost model.

Loop-level transcriptions of the paper's pseudocode (used as correctness
oracles and for exact operation counting at small scale) live in
:mod:`repro.core.reference`.
"""

from repro.core.api import SpKAddResult, available_methods, spkadd
from repro.core.stats import KernelStats
from repro.core.pairwise import add_pair, spkadd_2way_incremental, spkadd_2way_tree
from repro.core.scipy_baseline import spkadd_scipy_incremental, spkadd_scipy_tree
from repro.core.heap_add import spkadd_heap
from repro.core.spa_add import spkadd_spa
from repro.core.hash_add import hash_symbolic, spkadd_hash
from repro.core.sliding_hash import sliding_hash_symbolic, spkadd_sliding_hash
from repro.core.symbolic import exact_output_col_nnz, symbolic_nnz
from repro.core.streaming import spkadd_streaming
from repro.core.estimator import (
    er_expected_cf,
    er_expected_output_col_nnz,
    expected_distinct,
)

__all__ = [
    "SpKAddResult",
    "available_methods",
    "spkadd",
    "KernelStats",
    "add_pair",
    "spkadd_2way_incremental",
    "spkadd_2way_tree",
    "spkadd_scipy_incremental",
    "spkadd_scipy_tree",
    "spkadd_heap",
    "spkadd_spa",
    "hash_symbolic",
    "spkadd_hash",
    "sliding_hash_symbolic",
    "spkadd_sliding_hash",
    "exact_output_col_nnz",
    "symbolic_nnz",
    "spkadd_streaming",
    "er_expected_cf",
    "er_expected_output_col_nnz",
    "expected_distinct",
]
