"""Vectorized 2-way sorted merge — the ``ColAdd`` primitive.

Algorithm 1's ``ColAdd`` merges two row-sorted columns like the merge
step of merge sort.  We implement it over *composite keys*
``col * m + row`` so one call merges an entire matrix (every column pair
at once): a CSC matrix with sorted columns is exactly a sorted array of
composite keys.  The element count touched (``nnz(A) + nnz(B)``) is the
paper's 2-way work measure and is what the instrumentation records.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.hashtable import accum_dtype


def merge_sorted_keyed(
    ka: np.ndarray,
    va: np.ndarray,
    kb: np.ndarray,
    vb: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge two strictly-increasing keyed runs, summing equal keys.

    Each input must have strictly increasing keys (true for a single
    CSC matrix: no duplicate (col,row) pairs).  Keys present in both runs
    appear once in the output with values summed — the sparse-add
    semantics.

    Returns ``(keys, vals)`` with strictly increasing keys.  Values are
    summed — and returned — in the accumulator dtype of the promoted
    input dtypes (:func:`~repro.core.hashtable.accum_dtype`), matching
    the k-way engines: integer inputs widen to exact 64-bit sums
    instead of round-tripping through float64, float32 stays float32.
    """
    out_dtype = accum_dtype(np.result_type(va.dtype, vb.dtype))
    na, nb = ka.shape[0], kb.shape[0]
    if na == 0:
        return kb.copy(), vb.astype(out_dtype, copy=True)
    if nb == 0:
        return ka.copy(), va.astype(out_dtype, copy=True)
    # Stable interleave: equal keys place the A element first.
    pos_a = np.arange(na, dtype=np.int64) + np.searchsorted(kb, ka, side="left")
    pos_b = np.arange(nb, dtype=np.int64) + np.searchsorted(ka, kb, side="right")
    total = na + nb
    mk = np.empty(total, dtype=np.int64)
    mv = np.empty(total, dtype=out_dtype)
    mk[pos_a] = ka
    mv[pos_a] = va
    mk[pos_b] = kb
    mv[pos_b] = vb
    # Collapse adjacent duplicates (each key occurs at most twice).
    is_new = np.empty(total, dtype=bool)
    is_new[0] = True
    np.not_equal(mk[1:], mk[:-1], out=is_new[1:])
    starts = np.flatnonzero(is_new)
    return mk[starts], np.add.reduceat(mv, starts)


def merge_cost(na: int, nb: int) -> int:
    """Work of one 2-way merge in the paper's model: O(na + nb)."""
    return na + nb
