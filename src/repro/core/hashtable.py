"""Vectorized open-addressing hash table with linear probing.

This is the engine behind Algorithms 5–8.  The semantics exactly follow
the paper: a power-of-two table, the multiplicative-masking hash
``(a*r) & (2^q - 1)``, linear probing on collision, values accumulated
in place, and the output read out in *table order* (unsorted unless the
caller sorts).

Instead of inserting keys one at a time, the vectorized engine processes
the whole key array in probe *rounds*: in each round every still-pending
key inspects its current slot, matching keys accumulate, one claimant per
empty slot inserts, and the rest advance one slot.  The number of slot
inspections performed is identical in distribution to scalar linear
probing (insertion order differs, which only permutes equal-cost
outcomes), so the measured probe counts are faithful.

An optional *trace* capture records the sequence of slot indices touched,
which the cache simulator replays to count misses (Table V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.util.hashing import HASH_PRIME, hash_indices, table_size_for

#: value marking an empty slot; row indices are nonnegative so -1 is free.
EMPTY = np.int64(-1)


def accum_dtype(vals_dtype: np.dtype) -> np.dtype:
    """Accumulator dtype for values of ``vals_dtype``.

    Float and complex inputs accumulate at their own precision.  Integer
    (and boolean) inputs accumulate in a wide integer of matching
    signedness — they are **not** promoted to float64, so integer sums
    stay exact and integer-typed.  Anything else (object, datetime, ...)
    is rejected.
    """
    vals_dtype = np.dtype(vals_dtype)
    if vals_dtype.kind in "fc":
        return vals_dtype
    if vals_dtype.kind in "ib":
        return np.dtype(np.int64)
    if vals_dtype.kind == "u":
        return np.dtype(np.uint64)
    raise TypeError(f"cannot accumulate values of dtype {vals_dtype}")


def resolve_value_dtype(mats=(), value_dtype=None) -> np.dtype:
    """The value dtype SpKAdd computes (and emits) in for ``mats``.

    With ``value_dtype`` given it is the caller's override, validated
    and widened by :func:`accum_dtype` (so ``float32`` stays ``float32``
    while integer requests accumulate — and are returned — in the wide
    integer of matching signedness).  Otherwise the common dtype of the
    inputs' value arrays is found with ``np.result_type`` (the usual
    mixed-dtype promotion: int + float -> float, float32-only stays
    float32) and then widened the same way, so the answer is always a
    dtype the accumulation engines natively produce.  ``mats`` may hold
    matrices (anything with a ``.data`` array) or plain dtypes; an empty
    collection resolves to float64.

    Every layer of the pipeline — block gathers, kernel accumulators,
    output assembly, and the shared-memory executor's scratch/output
    segments — sizes its value buffers from this one function, which is
    what keeps the emitted dtype consistent across backends, executors,
    and chunkings.
    """
    if value_dtype is not None:
        return accum_dtype(value_dtype)
    dtypes = []
    for A in mats:
        data = getattr(A, "data", None)
        dtypes.append(
            data.dtype if isinstance(data, np.ndarray) else np.dtype(A)
        )
    if not dtypes:
        return np.dtype(np.float64)
    return accum_dtype(np.result_type(*dtypes))


@dataclass
class HashAccumResult:
    """Output of one vectorized hash accumulation.

    ``keys``/``vals`` hold the distinct keys and their sums in **table
    order** (i.e. unsorted — Algorithm 5 line 13 scans the table).
    ``slot_ops`` counts every slot inspection (the paper's hash
    operations); ``probes`` counts only the extra inspections beyond the
    home slot.  ``trace`` (optional) is the flat sequence of slot indices
    touched, for cache simulation.
    """

    keys: np.ndarray
    vals: np.ndarray
    table_size: int
    slot_ops: int
    probes: int
    trace: Optional[np.ndarray] = None


def hash_accumulate(
    keys: np.ndarray,
    vals: np.ndarray,
    table_size: Optional[int] = None,
    *,
    prime: int = HASH_PRIME,
    capture_trace: bool = False,
    max_rounds: Optional[int] = None,
) -> HashAccumResult:
    """Accumulate ``vals`` by ``keys`` into a linear-probing hash table.

    Parameters
    ----------
    keys, vals:
        Parallel arrays; duplicate keys have their values summed
        (Algorithm 5 lines 9–10).
    table_size:
        Power-of-two table size.  Defaults to the paper's rule — the
        smallest power of two greater than the number of distinct keys —
        computed here from an upper bound (``len(keys)``) when not
        supplied; callers implementing the two-phase scheme pass the
        symbolic-phase result instead.
    capture_trace:
        Record the slot-index sequence for cache simulation (costs
        memory; off by default).

    Returns
    -------
    :class:`HashAccumResult`
    """
    keys = np.asarray(keys, dtype=np.int64)
    vals = np.asarray(vals)
    if keys.shape != vals.shape:
        raise ValueError("keys and vals must be parallel arrays")
    if table_size is None:
        table_size = table_size_for(len(keys))
    if table_size & (table_size - 1):
        raise ValueError("table_size must be a power of two")

    tkeys = np.full(table_size, EMPTY, dtype=np.int64)
    tvals = np.zeros(table_size, dtype=accum_dtype(vals.dtype))

    n = keys.shape[0]
    slot_ops = 0
    probes = 0
    trace_chunks: List[np.ndarray] = [] if capture_trace else None

    if n:
        slots = hash_indices(keys, table_size, prime).astype(np.int64)
        active = np.arange(n, dtype=np.int64)
        mask = np.int64(table_size - 1)
        rounds = 0
        # Each round retires >=1 key (one claimant per contended slot),
        # so n + table_size rounds safely bounds termination.
        limit = max_rounds if max_rounds is not None else n + table_size + 1
        while active.size:
            rounds += 1
            if rounds > limit:
                raise RuntimeError(
                    "hash table full: linear probing did not terminate "
                    f"(size={table_size}, pending={active.size})"
                )
            s = slots[active]
            occupant = tkeys[s]
            want = keys[active]
            matched = occupant == want
            empty = occupant == EMPTY

            # Matching keys accumulate into their slot (may be several
            # duplicates of the same key in one round).
            if matched.any():
                np.add.at(tvals, s[matched], vals[active[matched]])

            # One claimant per empty slot inserts its key+value; other
            # keys aiming at the same empty slot *retry the same slot*
            # next round (they may now match the winner's key).
            claimed = np.zeros(active.size, dtype=bool)
            if empty.any():
                e_idx = np.flatnonzero(empty)
                _uniq, first = np.unique(s[e_idx], return_index=True)
                winners = e_idx[first]
                tkeys[s[winners]] = want[winners]
                tvals[s[winners]] = vals[active[winners]]
                claimed[winners] = True

            # Op accounting mirrors scalar probing: a slot inspection is
            # charged when it resolves (match/claim) or hits a different
            # key (probe); the lost-race retry is a vectorization
            # artifact and is not a scalar operation.
            blocked = ~(matched | empty)
            charged = matched | claimed | blocked
            slot_ops += int(np.count_nonzero(charged))
            probes += int(np.count_nonzero(blocked))
            if capture_trace and charged.any():
                trace_chunks.append(s[charged].copy())

            if blocked.any():
                adv = active[blocked]
                slots[adv] = (slots[adv] + 1) & mask
            keep = blocked | (empty & ~claimed)
            active = active[keep]

    valid = np.flatnonzero(tkeys != EMPTY)
    trace = (
        np.concatenate(trace_chunks) if capture_trace and trace_chunks else
        (np.empty(0, dtype=np.int64) if capture_trace else None)
    )
    return HashAccumResult(
        keys=tkeys[valid],
        vals=tvals[valid],
        table_size=table_size,
        slot_ops=slot_ops,
        probes=probes,
        trace=trace,
    )


def hash_count_distinct(
    keys: np.ndarray,
    table_size: Optional[int] = None,
    *,
    prime: int = HASH_PRIME,
    capture_trace: bool = False,
) -> Tuple[int, int, int, Optional[np.ndarray]]:
    """Symbolic-phase insertion (Algorithm 6): count distinct keys.

    Same probing semantics as :func:`hash_accumulate` but the table
    stores indices only (4-byte entries in the paper's accounting) and no
    values are accumulated.

    Returns ``(distinct, slot_ops, probes, trace)``.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if table_size is None:
        table_size = table_size_for(len(keys))
    res = hash_accumulate(
        keys,
        # Dummy values: the symbolic phase counts distinct keys and the
        # accumulated values are discarded, so no resolved dtype applies.
        np.zeros(keys.shape[0], dtype=np.float64),  # repro-lint: disable=L003
        table_size,
        prime=prime,
        capture_trace=capture_trace,
    )
    return len(res.keys), res.slot_ops, res.probes, res.trace


def segmented_hash_accumulate(
    keys: np.ndarray,
    vals: np.ndarray,
    seg_starts: np.ndarray,
    table_sizes: np.ndarray,
    *,
    prime: int = HASH_PRIME,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Accumulate consecutive key segments independently, in one batch.

    Segment ``i`` is ``keys[seg_starts[i]:seg_starts[i+1]]``; duplicate
    keys are summed *within* a segment only (the per-column semantics of
    ``block_cols=1``).  All segments run in **one** batched
    :func:`hash_accumulate` call: each segment's keys are offset-shifted
    into a disjoint key range (``seg_id * stride + key``), inserted into
    a single table sized for the whole batch, and the outputs are
    regrouped by segment afterwards.

    Consequences of batching (vs. the per-segment loop this replaced):
    ``table_sizes`` only determines the segment count — the paper's
    per-segment sizing rule is subsumed by the batch-level
    ``table_size_for``; ``slot_ops``/``probes`` are aggregate counts for
    the batched table, not a sum over per-segment tables; and each
    segment's output comes back in the batched table's scan order.

    Returns ``(out_keys, out_vals, out_seg_lengths, slot_ops, probes)``.
    """
    keys = np.asarray(keys, dtype=np.int64)
    vals = np.asarray(vals)
    n_seg = len(table_sizes)
    seg_starts = np.asarray(seg_starts, dtype=np.int64)
    lengths = np.zeros(n_seg, dtype=np.int64)
    if n_seg:
        keys = keys[seg_starts[0] : seg_starts[n_seg]]
        vals = vals[seg_starts[0] : seg_starts[n_seg]]
    if keys.size == 0 or n_seg == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=accum_dtype(vals.dtype)),
            lengths,
            0,
            0,
        )
    seg_len = np.diff(seg_starts[: n_seg + 1])
    seg_id = np.repeat(np.arange(n_seg, dtype=np.int64), seg_len)
    stride = int(keys.max()) + 1
    if n_seg * stride >= np.iinfo(np.int64).max:
        raise OverflowError("segment key space does not fit in int64")
    shifted = seg_id * np.int64(stride) + keys
    res = hash_accumulate(
        shifted, vals, table_size_for(keys.size), prime=prime
    )
    out_seg = res.keys // np.int64(stride)
    # Group outputs by segment, preserving table order within a segment.
    order = np.argsort(out_seg, kind="stable")
    out_seg = out_seg[order]
    out_keys = res.keys[order] - out_seg * np.int64(stride)
    lengths += np.bincount(out_seg, minlength=n_seg)
    return out_keys, res.vals[order], lengths, res.slot_ops, res.probes
