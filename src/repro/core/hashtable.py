"""Vectorized open-addressing hash table with linear probing.

This is the engine behind Algorithms 5–8.  The semantics exactly follow
the paper: a power-of-two table, the multiplicative-masking hash
``(a*r) & (2^q - 1)``, linear probing on collision, values accumulated
in place, and the output read out in *table order* (unsorted unless the
caller sorts).

Instead of inserting keys one at a time, the vectorized engine processes
the whole key array in probe *rounds*: in each round every still-pending
key inspects its current slot, matching keys accumulate, one claimant per
empty slot inserts, and the rest advance one slot.  The number of slot
inspections performed is identical in distribution to scalar linear
probing (insertion order differs, which only permutes equal-cost
outcomes), so the measured probe counts are faithful.

An optional *trace* capture records the sequence of slot indices touched,
which the cache simulator replays to count misses (Table V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.util.hashing import HASH_PRIME, hash_indices, table_size_for

#: value marking an empty slot; row indices are nonnegative so -1 is free.
EMPTY = np.int64(-1)


@dataclass
class HashAccumResult:
    """Output of one vectorized hash accumulation.

    ``keys``/``vals`` hold the distinct keys and their sums in **table
    order** (i.e. unsorted — Algorithm 5 line 13 scans the table).
    ``slot_ops`` counts every slot inspection (the paper's hash
    operations); ``probes`` counts only the extra inspections beyond the
    home slot.  ``trace`` (optional) is the flat sequence of slot indices
    touched, for cache simulation.
    """

    keys: np.ndarray
    vals: np.ndarray
    table_size: int
    slot_ops: int
    probes: int
    trace: Optional[np.ndarray] = None


def hash_accumulate(
    keys: np.ndarray,
    vals: np.ndarray,
    table_size: Optional[int] = None,
    *,
    prime: int = HASH_PRIME,
    capture_trace: bool = False,
    max_rounds: Optional[int] = None,
) -> HashAccumResult:
    """Accumulate ``vals`` by ``keys`` into a linear-probing hash table.

    Parameters
    ----------
    keys, vals:
        Parallel arrays; duplicate keys have their values summed
        (Algorithm 5 lines 9–10).
    table_size:
        Power-of-two table size.  Defaults to the paper's rule — the
        smallest power of two greater than the number of distinct keys —
        computed here from an upper bound (``len(keys)``) when not
        supplied; callers implementing the two-phase scheme pass the
        symbolic-phase result instead.
    capture_trace:
        Record the slot-index sequence for cache simulation (costs
        memory; off by default).

    Returns
    -------
    :class:`HashAccumResult`
    """
    keys = np.asarray(keys, dtype=np.int64)
    vals = np.asarray(vals)
    if keys.shape != vals.shape:
        raise ValueError("keys and vals must be parallel arrays")
    if table_size is None:
        table_size = table_size_for(len(keys))
    if table_size & (table_size - 1):
        raise ValueError("table_size must be a power of two")

    tkeys = np.full(table_size, EMPTY, dtype=np.int64)
    tvals = np.zeros(table_size, dtype=vals.dtype if vals.dtype.kind == "f" else np.float64)

    n = keys.shape[0]
    slot_ops = 0
    probes = 0
    trace_chunks: List[np.ndarray] = [] if capture_trace else None

    if n:
        slots = hash_indices(keys, table_size, prime).astype(np.int64)
        active = np.arange(n, dtype=np.int64)
        mask = np.int64(table_size - 1)
        rounds = 0
        # Each round retires >=1 key (one claimant per contended slot),
        # so n + table_size rounds safely bounds termination.
        limit = max_rounds if max_rounds is not None else n + table_size + 1
        while active.size:
            rounds += 1
            if rounds > limit:
                raise RuntimeError(
                    "hash table full: linear probing did not terminate "
                    f"(size={table_size}, pending={active.size})"
                )
            s = slots[active]
            occupant = tkeys[s]
            want = keys[active]
            matched = occupant == want
            empty = occupant == EMPTY

            # Matching keys accumulate into their slot (may be several
            # duplicates of the same key in one round).
            if matched.any():
                np.add.at(tvals, s[matched], vals[active[matched]])

            # One claimant per empty slot inserts its key+value; other
            # keys aiming at the same empty slot *retry the same slot*
            # next round (they may now match the winner's key).
            claimed = np.zeros(active.size, dtype=bool)
            if empty.any():
                e_idx = np.flatnonzero(empty)
                _uniq, first = np.unique(s[e_idx], return_index=True)
                winners = e_idx[first]
                tkeys[s[winners]] = want[winners]
                tvals[s[winners]] = vals[active[winners]]
                claimed[winners] = True

            # Op accounting mirrors scalar probing: a slot inspection is
            # charged when it resolves (match/claim) or hits a different
            # key (probe); the lost-race retry is a vectorization
            # artifact and is not a scalar operation.
            blocked = ~(matched | empty)
            charged = matched | claimed | blocked
            slot_ops += int(np.count_nonzero(charged))
            probes += int(np.count_nonzero(blocked))
            if capture_trace and charged.any():
                trace_chunks.append(s[charged].copy())

            if blocked.any():
                adv = active[blocked]
                slots[adv] = (slots[adv] + 1) & mask
            keep = blocked | (empty & ~claimed)
            active = active[keep]

    valid = np.flatnonzero(tkeys != EMPTY)
    trace = (
        np.concatenate(trace_chunks) if capture_trace and trace_chunks else
        (np.empty(0, dtype=np.int64) if capture_trace else None)
    )
    return HashAccumResult(
        keys=tkeys[valid],
        vals=tvals[valid],
        table_size=table_size,
        slot_ops=slot_ops,
        probes=probes,
        trace=trace,
    )


def hash_count_distinct(
    keys: np.ndarray,
    table_size: Optional[int] = None,
    *,
    prime: int = HASH_PRIME,
    capture_trace: bool = False,
) -> Tuple[int, int, int, Optional[np.ndarray]]:
    """Symbolic-phase insertion (Algorithm 6): count distinct keys.

    Same probing semantics as :func:`hash_accumulate` but the table
    stores indices only (4-byte entries in the paper's accounting) and no
    values are accumulated.

    Returns ``(distinct, slot_ops, probes, trace)``.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if table_size is None:
        table_size = table_size_for(len(keys))
    res = hash_accumulate(
        keys,
        np.zeros(keys.shape[0], dtype=np.float64),
        table_size,
        prime=prime,
        capture_trace=capture_trace,
    )
    return len(res.keys), res.slot_ops, res.probes, res.trace


def segmented_hash_accumulate(
    keys: np.ndarray,
    vals: np.ndarray,
    seg_starts: np.ndarray,
    table_sizes: np.ndarray,
    *,
    prime: int = HASH_PRIME,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Run :func:`hash_accumulate` independently on consecutive segments.

    Used by the per-column reference path (``block_cols=1`` semantics)
    when a caller wants exact per-column tables without a Python-level
    loop in its own code.  Segments are ``keys[seg_starts[i]:seg_starts
    [i+1]]`` with table size ``table_sizes[i]``.

    Returns ``(out_keys, out_vals, out_seg_lengths, slot_ops, probes)``
    with each segment's output in table order.
    """
    out_k: List[np.ndarray] = []
    out_v: List[np.ndarray] = []
    lengths = np.zeros(len(table_sizes), dtype=np.int64)
    ops = 0
    probes = 0
    for i in range(len(table_sizes)):
        lo, hi = int(seg_starts[i]), int(seg_starts[i + 1])
        if hi == lo:
            continue
        res = hash_accumulate(keys[lo:hi], vals[lo:hi], int(table_sizes[i]), prime=prime)
        out_k.append(res.keys)
        out_v.append(res.vals)
        lengths[i] = len(res.keys)
        ops += res.slot_ops
        probes += res.probes
    if out_k:
        return (
            np.concatenate(out_k),
            np.concatenate(out_v),
            lengths,
            ops,
            probes,
        )
    return (
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.float64),
        lengths,
        ops,
        probes,
    )
