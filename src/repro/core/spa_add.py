"""SPASpKAdd — k-way addition with a sparse accumulator (Algorithm 4).

The SPA is a dense length-m value array plus a list of touched indices:
every input entry lands at ``SPA[row]`` in O(1), new rows are appended
to the index list, and the output is read back through the (optionally
sorted) index list.  Work and I/O are O(sum_i nnz(A_i)); the cost is the
O(T*m) memory across T threads and the random access pattern over the
full m-length array — the paper's reason SPA stops scaling on large
matrices (Fig 3).

Implementation note: the dense-scatter accumulation is performed with
``numpy.bincount`` over each column's gathered entries, which *is* a
dense length-m scatter (NumPy's vectorized equivalent of the SPA
update loop), followed by index extraction from the touched rows.  The
recorded stats charge exactly the paper's SPA model: one random touch
of the m-length array per input entry plus one per output entry.

``spkadd_sliding_spa`` implements the extension the paper sketches in
Section IV-B observation (b): partitioning the SPA by row ranges so each
partition fits in cache, mirroring the sliding hash.  It is ablated in
the Fig-4 bench.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.blocks import (
    assemble_from_block_outputs,
    choose_block_cols,
    gather_block,
    iter_col_blocks,
)
from repro.core.hashtable import resolve_value_dtype
from repro.core.pairwise import ENTRY_BYTES
from repro.core.stats import KernelStats
from repro.formats.compressed import resolve_index_dtype
from repro.formats.csc import CSCMatrix
from repro.parallel.partition import row_partition_bounds
from repro.util.checks import check_nonempty, check_same_shape

#: bytes per SPA slot: 8-byte value + 4-byte "valid" flag/stamp.
SPA_SLOT_BYTES = 12


def _accumulate_dense(rows: np.ndarray, vals: np.ndarray, m: int):
    """Dense-scatter accumulate one column: returns (idx_sorted, sums).

    ``bincount`` scatters every entry into a dense length-m array —
    operationally identical to the SPA update — then the touched rows
    are extracted.  Output rows come out ascending (Algorithm 4 line 8,
    SORT(idx), which the paper performs when sorted output is desired).

    The dense array carries the values' own (accumulator) dtype:
    ``bincount``'s C loop is the fast path for float64 weights but
    always emits float64, so every other dtype scatters with the
    equally in-order ``np.add.at`` — integer sums stay exact integers
    and float32 stays float32.
    """
    touched = np.bincount(rows, minlength=m)
    idx = np.flatnonzero(touched)
    if vals.dtype == np.float64:
        dense = np.bincount(rows, weights=vals, minlength=m)
    else:
        dense = np.zeros(m, dtype=vals.dtype)
        np.add.at(dense, rows, vals)
    return idx, dense[idx]


def spkadd_spa(
    mats: Sequence[CSCMatrix],
    *,
    block_cols: Optional[int] = None,
    stats: Optional[KernelStats] = None,
) -> CSCMatrix:
    """Add k sparse matrices with the SPA algorithm (Algorithm 4).

    Accepts unsorted inputs (Table I: SPA does not need sorted columns);
    output columns are sorted.
    """
    check_nonempty(mats)
    shape = check_same_shape(mats)
    m, n = shape
    st = stats if stats is not None else KernelStats()
    st.algorithm = st.algorithm or "spa"
    st.k = len(mats)
    st.n_cols = n
    st.ds_bytes_peak = max(st.ds_bytes_peak, m * SPA_SLOT_BYTES)
    value_dtype = resolve_value_dtype(mats)
    index_dtype = resolve_index_dtype(mats)
    bc = block_cols or choose_block_cols(mats)
    blocks = []
    col_in = np.zeros(n, dtype=np.int64)
    col_out = np.zeros(n, dtype=np.int64)
    for j0, j1 in iter_col_blocks(n, bc):
        cols, rows, vals, in_nnz = gather_block(
            mats, j0, j1, value_dtype=value_dtype, index_dtype=index_dtype
        )
        col_in[j0:j1] = in_nnz
        if rows.size == 0:
            continue
        # Group entries by column (stable), then dense-scatter each
        # column through the SPA.
        order = np.argsort(cols, kind="stable")
        cols_s, rows_s, vals_s = cols[order], rows[order], vals[order]
        bounds = np.searchsorted(cols_s, np.arange(j1 - j0 + 1))
        out_cols = []
        out_rows = []
        out_vals = []
        for jl in range(j1 - j0):
            lo, hi = bounds[jl], bounds[jl + 1]
            if hi == lo:
                continue
            idx, sums = _accumulate_dense(rows_s[lo:hi], vals_s[lo:hi], m)
            out_cols.append(np.full(idx.size, jl, dtype=np.int64))
            out_rows.append(idx)
            out_vals.append(sums)
            col_out[j0 + jl] = idx.size
        if out_rows:
            oc = np.concatenate(out_cols)
            orw = np.concatenate(out_rows)
            ov = np.concatenate(out_vals)
            blocks.append((j0, oc, orw, ov))
            touches = rows.size + orw.size
            st.ops += touches
            st.add_table_traffic(m * SPA_SLOT_BYTES, touches)
            st.input_nnz += int(rows.size)
            st.output_nnz += int(orw.size)
            st.bytes_read += rows.size * ENTRY_BYTES
            st.bytes_written += orw.size * ENTRY_BYTES
    st.col_in_nnz = col_in
    st.col_out_nnz = col_out
    st.col_ops = col_in + col_out
    return assemble_from_block_outputs(
        shape, blocks, sorted=True,
        value_dtype=value_dtype, index_dtype=index_dtype,
    )


def spkadd_sliding_spa(
    mats: Sequence[CSCMatrix],
    *,
    parts: int,
    block_cols: Optional[int] = None,
    stats: Optional[KernelStats] = None,
) -> CSCMatrix:
    """Row-partitioned SPA (the paper's suggested sliding-SPA extension).

    The SPA array is restricted to ``m/parts`` rows at a time so it fits
    in cache; entries are routed to their partition exactly like the
    sliding hash.  ``parts=1`` degenerates to :func:`spkadd_spa`.
    """
    check_nonempty(mats)
    shape = check_same_shape(mats)
    m, n = shape
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if parts == 1:
        return spkadd_spa(mats, block_cols=block_cols, stats=stats)
    st = stats if stats is not None else KernelStats()
    st.algorithm = st.algorithm or f"sliding_spa[{parts}]"
    st.k = len(mats)
    st.n_cols = n
    st.parts = parts
    bounds_rows = row_partition_bounds(m, parts)
    part_m = int(np.max(np.diff(bounds_rows)))
    st.ds_bytes_peak = max(st.ds_bytes_peak, part_m * SPA_SLOT_BYTES)
    value_dtype = resolve_value_dtype(mats)
    index_dtype = resolve_index_dtype(mats)
    bc = block_cols or choose_block_cols(mats)
    blocks = []
    col_in = np.zeros(n, dtype=np.int64)
    col_out = np.zeros(n, dtype=np.int64)
    for j0, j1 in iter_col_blocks(n, bc):
        cols, rows, vals, in_nnz = gather_block(
            mats, j0, j1, value_dtype=value_dtype, index_dtype=index_dtype
        )
        col_in[j0:j1] = in_nnz
        if rows.size == 0:
            continue
        st.ops += rows.size  # partition routing pass
        part_id = np.searchsorted(bounds_rows, rows, side="right") - 1
        order = np.lexsort((part_id, cols))  # group by column, then part
        cols_s, rows_s, vals_s, part_s = (
            cols[order], rows[order], vals[order], part_id[order]
        )
        col_bounds = np.searchsorted(cols_s, np.arange(j1 - j0 + 1))
        out_cols, out_rows, out_vals = [], [], []
        for jl in range(j1 - j0):
            lo, hi = col_bounds[jl], col_bounds[jl + 1]
            if hi == lo:
                continue
            # Each partition is a contiguous run inside the column.
            p_bounds = np.searchsorted(part_s[lo:hi], np.arange(parts + 1))
            for p in range(parts):
                plo, phi = lo + p_bounds[p], lo + p_bounds[p + 1]
                if phi == plo:
                    continue
                r0 = int(bounds_rows[p])
                idx, sums = _accumulate_dense(
                    rows_s[plo:phi] - r0, vals_s[plo:phi],
                    int(bounds_rows[p + 1]) - r0,
                )
                out_cols.append(np.full(idx.size, jl, dtype=np.int64))
                out_rows.append(idx + r0)
                out_vals.append(sums)
                col_out[j0 + jl] += idx.size
        if out_rows:
            oc = np.concatenate(out_cols)
            orw = np.concatenate(out_rows)
            ov = np.concatenate(out_vals)
            blocks.append((j0, oc, orw, ov))
            touches = rows.size + orw.size
            st.ops += touches
            st.add_table_traffic(part_m * SPA_SLOT_BYTES, touches)
            st.input_nnz += int(rows.size)
            st.output_nnz += int(orw.size)
            st.bytes_read += rows.size * ENTRY_BYTES
            st.bytes_written += orw.size * ENTRY_BYTES
    st.col_in_nnz = col_in
    st.col_out_nnz = col_out
    st.col_ops = col_in + col_out
    return assemble_from_block_outputs(
        shape, blocks, sorted=True,
        value_dtype=value_dtype, index_dtype=index_dtype,
    )
