"""Sliding-hash SpKAdd (Algorithms 7 and 8) — the cache-aware variant.

A plain hash table sized by ``nnz(B(:,j))`` (or by the summed input nnz
in the symbolic phase) spills out of the last-level cache once
``entries * entry_bytes * threads > LLC bytes``, and random probing of
an out-of-cache table is expensive.  The sliding algorithms bound the
table to the cache budget ``M / (b * T)`` entries and *slide* it along
the row dimension: rows are cut into ``parts`` equal ranges
(``parts = ceil(needed_bytes * T / M)``), each range is accumulated with
its own in-cache table, and per-range outputs concatenate in row order.

``table_entries`` can be forced directly, which is how the Fig-4 sweep
(runtime vs hash-table size) is generated.
"""

from __future__ import annotations

from math import ceil
from typing import List, Optional, Sequence

import numpy as np

from repro.core.blocks import (
    BlockScratch,
    assemble_from_block_outputs,
    choose_block_cols,
    composite_keys,
    gather_block,
    iter_col_blocks,
    split_keys,
)
from repro.core.hash_add import (
    ADD_ENTRY_BYTES,
    SYMBOLIC_ENTRY_BYTES,
    TraceItem,
)
from repro.core.pairwise import ENTRY_BYTES
from repro.core.stats import KernelStats
from repro.formats.csc import CSCMatrix
from repro.parallel.partition import row_partition_bounds
from repro.util.checks import check_nonempty, check_same_shape
from repro.util.hashing import next_pow2, table_size_for


def sliding_parts(
    expected_entries: float,
    entry_bytes: int,
    *,
    threads: int = 1,
    cache_bytes: Optional[int] = None,
    table_entries: Optional[int] = None,
) -> int:
    """Number of row partitions (Algorithm 7/8 line 3).

    Either derived from the cache budget —
    ``parts = ceil(entries * b * T / M)`` — or from a forced per-part
    table capacity (the Fig-4 sweep): ``parts = ceil(entries / size)``.
    """
    if table_entries is not None:
        return max(int(ceil(expected_entries / max(table_entries, 1))), 1)
    if cache_bytes is None:
        return 1
    return max(int(ceil(expected_entries * entry_bytes * threads / cache_bytes)), 1)


def _run_partitioned(
    mats: Sequence[CSCMatrix],
    *,
    phase: str,  # "symbolic" or "add"
    st: KernelStats,
    threads: int,
    cache_bytes: Optional[int],
    table_entries: Optional[int],
    block_cols: Optional[int],
    col_out_nnz: Optional[np.ndarray],
    sorted_output: bool,
    trace_sink: Optional[List[TraceItem]],
    backend: Optional[str] = None,
    index_dtype=None,
):
    """Shared engine for Algorithms 7 and 8.

    For each column block, decide the partition count from the phase's
    expected entry count (input nnz for symbolic, output nnz for add),
    route entries to row ranges, and run the accumulation backend per
    range with an in-cache table.  The partitioning/routing structure is
    backend-independent, so the ``fast`` backend still reports the
    paper's ``parts`` count even though its reduction never spills.
    """
    from repro.kernels import resolve_backend

    eng = resolve_backend(backend, need_trace=trace_sink is not None)
    m, n = check_same_shape(mats)
    value_dtype = eng.result_value_dtype(mats)
    idx_dtype = eng.result_index_dtype(mats, index_dtype)
    entry_bytes = SYMBOLIC_ENTRY_BYTES if phase == "symbolic" else ADD_ENTRY_BYTES
    bc = block_cols or choose_block_cols(mats)
    scratch = BlockScratch()
    counts = np.zeros(n, dtype=np.int64)
    col_in = np.zeros(n, dtype=np.int64)
    blocks = []
    max_parts = 1
    for j0, j1 in iter_col_blocks(n, bc):
        cols, rows, vals, in_nnz = gather_block(
            mats, j0, j1, scratch, value_dtype, idx_dtype
        )
        col_in[j0:j1] = in_nnz
        if rows.size == 0:
            continue
        if phase == "symbolic":
            per_col_expected = float(in_nnz.max())
        else:
            per_col_expected = float(np.max(col_out_nnz[j0:j1]))
        parts = sliding_parts(
            per_col_expected,
            entry_bytes,
            threads=threads,
            cache_bytes=cache_bytes,
            table_entries=table_entries,
        )
        max_parts = max(max_parts, parts)
        if eng.provides_stats:
            st.ops += 0 if parts == 1 else rows.size  # routing pass (Alg 7/8 line 9)
        bounds = row_partition_bounds(m, parts)
        part_id = (
            np.zeros(rows.size, dtype=np.int64)
            if parts == 1
            else np.searchsorted(bounds, rows, side="right") - 1
        )
        part_counts = np.bincount(part_id, minlength=parts)
        out_k: List[np.ndarray] = []
        out_v: List[np.ndarray] = []
        order_p = np.argsort(part_id, kind="stable")
        offsets = np.concatenate([[0], np.cumsum(part_counts)])
        keys_all = composite_keys(cols, rows, m, width=j1 - j0)[order_p]
        vals_all = vals[order_p]
        width = j1 - j0
        for p in range(parts):
            lo, hi = int(offsets[p]), int(offsets[p + 1])
            if hi == lo:
                continue
            # Table capacity: the forced sweep size when it fits the
            # partition, otherwise grown to keep probing bounded.
            n_keys = hi - lo
            if table_entries is not None:
                tsize = max(next_pow2(table_entries), 16)
                if n_keys >= 0.9 * tsize:
                    tsize = table_size_for(n_keys)
            else:
                tsize = table_size_for(n_keys)
            if not eng.provides_stats and phase == "symbolic":
                # Stat-less symbolic pass only needs the distinct keys.
                out_k.append(np.unique(keys_all[lo:hi]))
                continue
            res = eng.accumulate(
                keys_all[lo:hi],
                vals_all[lo:hi],
                tsize,
                capture_trace=trace_sink is not None,
            )
            if trace_sink is not None:
                trace_sink.append((tsize, entry_bytes, res.trace))
            out_k.append(res.keys)
            out_v.append(res.vals)
            st.ops += res.slot_ops
            st.probes += res.probes
            if eng.provides_stats:
                st.add_table_traffic(tsize * entry_bytes, res.slot_ops)
                st.ds_bytes_peak = max(st.ds_bytes_peak, tsize * entry_bytes)
        okeys = np.concatenate(out_k) if out_k else np.empty(0, dtype=np.int64)
        ovals = np.concatenate(out_v) if out_v else np.empty(0, dtype=value_dtype)
        ocols_all = okeys // np.int64(m)
        counts[j0:j1] += np.bincount(ocols_all, minlength=width)
        st.input_nnz += int(rows.size)
        st.bytes_read += rows.size * ENTRY_BYTES
        if phase == "add":
            if sorted_output:
                order = np.argsort(okeys)
            else:
                order = np.argsort(ocols_all, kind="stable")
            okeys, ovals = okeys[order], ovals[order]
            ocols, orows = split_keys(okeys, m)
            blocks.append((j0, ocols, orows, ovals))
            st.output_nnz += int(okeys.size)
            st.bytes_written += okeys.size * ENTRY_BYTES
    st.parts = max_parts
    st.col_in_nnz = col_in
    st.col_ops = col_in.astype(np.float64)
    if phase == "symbolic":
        st.col_out_nnz = counts.copy()
        st.output_nnz = int(counts.sum())
        return counts
    st.col_out_nnz = np.asarray(col_out_nnz, dtype=np.int64).copy()
    return assemble_from_block_outputs(
        (m, n), blocks, sorted=sorted_output,
        value_dtype=value_dtype, index_dtype=idx_dtype,
    )


def sliding_hash_symbolic(
    mats: Sequence[CSCMatrix],
    *,
    threads: int = 1,
    cache_bytes: Optional[int] = None,
    table_entries: Optional[int] = None,
    block_cols: Optional[int] = None,
    stats: Optional[KernelStats] = None,
    trace_sink: Optional[List[TraceItem]] = None,
    backend: Optional[str] = None,
    index_dtype=None,
) -> np.ndarray:
    """Algorithm 7: symbolic phase with cache-bounded sliding tables.

    With neither ``cache_bytes`` nor ``table_entries`` set this is plain
    Algorithm 6 (parts = 1).
    """
    check_nonempty(mats)
    st = stats if stats is not None else KernelStats()
    st.algorithm = st.algorithm or "sliding_hash_symbolic"
    st.k = len(mats)
    st.n_cols = mats[0].shape[1]
    return _run_partitioned(
        mats,
        phase="symbolic",
        st=st,
        threads=threads,
        cache_bytes=cache_bytes,
        table_entries=table_entries,
        block_cols=block_cols,
        col_out_nnz=None,
        sorted_output=True,
        trace_sink=trace_sink,
        backend=backend,
        index_dtype=index_dtype,
    )


def spkadd_sliding_hash(
    mats: Sequence[CSCMatrix],
    *,
    threads: int = 1,
    cache_bytes: Optional[int] = None,
    table_entries: Optional[int] = None,
    sorted_output: bool = True,
    block_cols: Optional[int] = None,
    col_out_nnz: Optional[np.ndarray] = None,
    stats: Optional[KernelStats] = None,
    stats_symbolic: Optional[KernelStats] = None,
    trace_sink: Optional[List[TraceItem]] = None,
    backend: Optional[str] = None,
    index_dtype=None,
) -> CSCMatrix:
    """Algorithm 8: SpKAdd with cache-bounded sliding hash tables.

    The symbolic phase (Algorithm 7) runs first unless ``col_out_nnz``
    is supplied.  Note the paper's observation that the symbolic phase
    benefits *more* from sliding than the addition phase when the
    compression factor is large (its tables are cf x bigger).

    ``backend`` selects the accumulation engine (:mod:`repro.kernels`);
    both phases run on the same backend.  ``index_dtype`` pins the
    emitted index width (default: the paper's int32-when-it-fits rule).
    """
    check_nonempty(mats)
    if col_out_nnz is None:
        col_out_nnz = sliding_hash_symbolic(
            mats,
            threads=threads,
            cache_bytes=cache_bytes,
            table_entries=table_entries,
            block_cols=block_cols,
            stats=stats_symbolic,
            trace_sink=trace_sink,
            backend=backend,
            index_dtype=index_dtype,
        )
    st = stats if stats is not None else KernelStats()
    st.algorithm = st.algorithm or "sliding_hash"
    st.k = len(mats)
    st.n_cols = mats[0].shape[1]
    return _run_partitioned(
        mats,
        phase="add",
        st=st,
        threads=threads,
        cache_bytes=cache_bytes,
        table_entries=table_entries,
        block_cols=block_cols,
        col_out_nnz=np.asarray(col_out_nnz, dtype=np.int64),
        sorted_output=sorted_output,
        trace_sink=trace_sink,
        backend=backend,
        index_dtype=index_dtype,
    )
