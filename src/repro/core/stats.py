"""Instrumentation collected by every SpKAdd kernel.

The paper's analysis (Table I) is in terms of *work* (data-structure
operations), *I/O from memory* (bytes streamed), and *data-structure
memory* (bytes of heap/SPA/hash table per thread).  Each kernel fills a
:class:`KernelStats` with exactly those quantities, measured — not
estimated — during execution.  The machine model in
:mod:`repro.machine.costmodel` converts them into simulated seconds for a
given :class:`~repro.machine.spec.MachineSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np


@dataclass
class KernelStats:
    """Measured execution statistics of one SpKAdd phase.

    Attributes
    ----------
    algorithm:
        Name of the kernel that produced these stats.
    k, n_cols:
        Number of addend matrices and of output columns.
    input_nnz:
        Total input entries read (``sum_i nnz(A_i)`` for k-way kernels;
        larger for 2-way kernels, which re-read intermediates).
    output_nnz:
        Entries written to the final output.
    intermediate_nnz:
        Entries written to *intermediate* matrices (2-way algorithms
        only) — the source of their extra I/O.
    ops:
        Abstract data-structure operations: heap inserts+extracts, hash
        slot visits (first probe included), SPA touches, or merge element
        steps.  This is the paper's "work" column.
    probes:
        Extra linear probes caused by hash collisions (subset of ``ops``
        accounting, tracked separately to expose load-factor effects).
    heap_ops:
        Heap insert/extract pairs (heap kernel only); each costs
        ``O(lg k)``.
    bytes_read / bytes_written:
        Streaming I/O from/to main memory in bytes (the paper's I/O
        complexity measure): inputs are streamed in once per pass,
        outputs and intermediates streamed out.
    table_traffic:
        ``{table_bytes: access_count}`` — random accesses into hash
        tables / SPA arrays, bucketed by the byte size of the structure
        being accessed.  The cache model derives hit latencies and miss
        counts from this histogram.
    ds_bytes_peak:
        Peak bytes of the per-thread accumulation data structure
        (heap: O(k); SPA: O(m); hash: O(max_j nnz(B(:,j)))).
    col_in_nnz / col_out_nnz:
        Per-column input/output entry counts — the paper's dynamic
        load-balancing weights (input nnz for the symbolic phase, output
        nnz for the addition phase).
    col_ops:
        Per-column abstract op counts, used to simulate thread schedules.
    parts:
        Number of row partitions used (sliding kernels; 1 = plain hash).
    """

    algorithm: str = ""
    k: int = 0
    n_cols: int = 0
    input_nnz: int = 0
    output_nnz: int = 0
    intermediate_nnz: int = 0
    ops: float = 0.0
    probes: float = 0.0
    heap_ops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    table_traffic: Dict[int, float] = field(default_factory=dict)
    ds_bytes_peak: int = 0
    col_in_nnz: Optional[np.ndarray] = None
    col_out_nnz: Optional[np.ndarray] = None
    col_ops: Optional[np.ndarray] = None
    parts: int = 1

    # ------------------------------------------------------------------ api
    def add_table_traffic(self, table_bytes: int, accesses: float) -> None:
        """Record ``accesses`` random touches of a structure of
        ``table_bytes`` bytes."""
        if accesses <= 0:
            return
        tb = int(table_bytes)
        self.table_traffic[tb] = self.table_traffic.get(tb, 0.0) + float(accesses)

    @property
    def total_table_accesses(self) -> float:
        return float(sum(self.table_traffic.values()))

    @property
    def total_bytes(self) -> float:
        """Total memory traffic (the paper's I/O measure)."""
        return self.bytes_read + self.bytes_written

    @property
    def avg_probe_length(self) -> float:
        """Mean probes per hash op beyond the home slot (0 = no
        collisions)."""
        if self.ops <= 0:
            return 0.0
        return self.probes / self.ops

    def merge(self, other: "KernelStats") -> "KernelStats":
        """Accumulate another phase/partition's stats into this one."""
        self.input_nnz += other.input_nnz
        self.output_nnz += other.output_nnz
        self.intermediate_nnz += other.intermediate_nnz
        self.ops += other.ops
        self.probes += other.probes
        self.heap_ops += other.heap_ops
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        for tb, acc in other.table_traffic.items():
            self.add_table_traffic(tb, acc)
        self.ds_bytes_peak = max(self.ds_bytes_peak, other.ds_bytes_peak)
        self.parts = max(self.parts, other.parts)
        for name in ("col_in_nnz", "col_out_nnz", "col_ops"):
            mine, theirs = getattr(self, name), getattr(other, name)
            if theirs is not None:
                setattr(self, name, theirs if mine is None else mine + theirs)
        return self

    def summary(self) -> str:
        """One-line human-readable digest (used by the harness)."""
        return (
            f"{self.algorithm}: k={self.k} n={self.n_cols} "
            f"in={self.input_nnz} out={self.output_nnz} "
            f"ops={self.ops:.3g} probes={self.probes:.3g} "
            f"IO={self.total_bytes / 1e6:.2f}MB ds={self.ds_bytes_peak}B "
            f"parts={self.parts}"
        )
