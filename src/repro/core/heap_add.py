"""HeapSpKAdd — k-way addition with a min-heap (Algorithm 3).

A size-k binary min-heap holds one ``(row, matrix_id, value)`` tuple per
input column; repeatedly extracting the minimum row and refilling from
that matrix produces the output column in ascending row order.  Every
input entry passes through the heap once: O(lg k * sum_i nnz(A_i)) work,
O(sum_i nnz(A_i)) I/O (Table I).  Requires sorted inputs.

Two implementations:

* ``impl="heapq"`` — a literal transcription of Algorithm 3 using a
  binary heap, processing column by column.  Exact op counts, Python
  loop speed; used for correctness tests and small runs.
* ``impl="merge"`` (default) — computes the identical result via a
  vectorized k-way merge of the sorted runs (what the heap *computes*),
  while charging the heap cost model: one insert+extract per entry at
  O(lg k) each.  This keeps operational benchmarks tractable in Python;
  the charged op counts equal the heapq implementation's exact counts
  (verified by tests).
"""

from __future__ import annotations

import heapq
from math import ceil, log2
from typing import List, Optional, Sequence

import numpy as np

from repro.core.blocks import (
    assemble_from_block_outputs,
    choose_block_cols,
    composite_keys,
    gather_block,
    iter_col_blocks,
    split_keys,
)
from repro.core.hashtable import resolve_value_dtype
from repro.core.pairwise import ENTRY_BYTES
from repro.core.stats import KernelStats
from repro.formats.csc import CSCMatrix
from repro.util.checks import check_nonempty, check_same_shape

#: bytes of one heap node: (row, matrix_id, value) = 4 + 4 + 8.
HEAP_NODE_BYTES = 16


def _heap_cost_per_entry(k: int) -> int:
    """Heap ops charged per input entry: one insert + one extract-min,
    each O(lg k) (lg k >= 1)."""
    return max(int(ceil(log2(max(k, 2)))), 1)


def spkadd_heap(
    mats: Sequence[CSCMatrix],
    *,
    impl: str = "merge",
    block_cols: Optional[int] = None,
    stats: Optional[KernelStats] = None,
) -> CSCMatrix:
    """Add k sparse matrices with the heap algorithm (Algorithm 3).

    Output columns are always sorted (the heap emits ascending rows).
    """
    check_nonempty(mats)
    shape = check_same_shape(mats)
    for A in mats:
        if not A.sorted:
            raise ValueError("HeapSpKAdd requires sorted input columns")
    st = stats if stats is not None else KernelStats()
    st.algorithm = st.algorithm or f"heap[{impl}]"
    st.k = len(mats)
    st.n_cols = shape[1]
    if impl == "merge":
        return _heap_merge(mats, shape, block_cols, st)
    if impl == "heapq":
        return _heap_loop(mats, shape, st)
    raise ValueError(f"unknown heap impl {impl!r}")


def _charge(st: KernelStats, k: int, in_entries: int, out_entries: int) -> None:
    per = _heap_cost_per_entry(k)
    st.input_nnz += in_entries
    st.output_nnz += out_entries
    st.heap_ops += in_entries  # insert+extract pairs
    st.ops += in_entries * per
    st.bytes_read += in_entries * ENTRY_BYTES
    st.bytes_written += out_entries * ENTRY_BYTES
    st.ds_bytes_peak = max(st.ds_bytes_peak, k * HEAP_NODE_BYTES)
    st.add_table_traffic(k * HEAP_NODE_BYTES, in_entries * per)


def _heap_merge(
    mats: Sequence[CSCMatrix],
    shape,
    block_cols: Optional[int],
    st: KernelStats,
) -> CSCMatrix:
    # Deferred: the kernels package imports core modules.
    from repro.kernels import resolve_index_dtype, sort_reduce

    m, n = shape
    value_dtype = resolve_value_dtype(mats)
    index_dtype = resolve_index_dtype(mats)
    bc = block_cols or choose_block_cols(mats)
    k = len(mats)
    blocks = []
    col_out = np.zeros(n, dtype=np.int64)
    col_in = np.zeros(n, dtype=np.int64)
    for j0, j1 in iter_col_blocks(n, bc):
        cols, rows, vals, in_nnz = gather_block(
            mats, j0, j1, value_dtype=value_dtype, index_dtype=index_dtype
        )
        col_in[j0:j1] = in_nnz
        if rows.size == 0:
            continue
        keys = composite_keys(cols, rows, m, width=j1 - j0)
        # sort_reduce sums each key's duplicates strictly left to right
        # (the heapq impl's extraction order), so the two
        # implementations agree to the last bit in every dtype —
        # reduceat would reassociate float segments by the last ulp.
        out_keys, out_vals = sort_reduce(keys, vals)
        ocols, orows = split_keys(out_keys, m)
        col_out[j0:j1] = np.bincount(ocols, minlength=j1 - j0)
        _charge(st, k, int(rows.size), int(out_keys.size))
        blocks.append((j0, ocols, orows, out_vals))
    st.col_in_nnz = col_in
    st.col_out_nnz = col_out
    st.col_ops = col_in * _heap_cost_per_entry(k)
    return assemble_from_block_outputs(
        shape, blocks, sorted=True,
        value_dtype=value_dtype, index_dtype=index_dtype,
    )


def _heap_loop(mats: Sequence[CSCMatrix], shape, st: KernelStats) -> CSCMatrix:
    """Literal Algorithm 3: a (row, matrix_id) min-heap per column."""
    from repro.kernels import resolve_index_dtype

    m, n = shape
    k = len(mats)
    value_dtype = resolve_value_dtype(mats)
    index_dtype = resolve_index_dtype(mats)
    # Accumulate in numpy scalars of the resolved dtype: stepwise
    # float32 rounding (and integer wrapping) then matches the
    # vectorized merge implementation bit for bit — Python's binary64
    # floats would round differently, and float() would corrupt int64
    # values above 2**53.
    cast = value_dtype.type
    columns: List = []
    col_in = np.zeros(n, dtype=np.int64)
    col_out = np.zeros(n, dtype=np.int64)
    for j in range(n):
        views = [A.col(j) for A in mats]
        col_in[j] = sum(len(r) for r, _ in views)
        heap: List = []
        cursor = [0] * k
        # Lines 3-5: seed the heap with each column's smallest row.
        for i, (rows, _vals) in enumerate(views):
            if len(rows):
                heap.append((int(rows[0]), i))
                cursor[i] = 1
        heapq.heapify(heap)
        out_rows: List[int] = []
        out_vals: List[float] = []
        # Lines 6-14: repeatedly extract the min row, append/accumulate,
        # and refill from the source matrix.
        while heap:
            r, i = heapq.heappop(heap)
            v = cast(views[i][1][cursor[i] - 1])
            if out_rows and out_rows[-1] == r:
                out_vals[-1] += v
            else:
                out_rows.append(r)
                out_vals.append(v)
            rows_i = views[i][0]
            if cursor[i] < len(rows_i):
                heapq.heappush(heap, (int(rows_i[cursor[i]]), i))
                cursor[i] += 1
        col_out[j] = len(out_rows)
        columns.append((
            np.asarray(out_rows, dtype=index_dtype),
            np.asarray(out_vals, dtype=value_dtype),
        ))
        _charge(st, k, int(col_in[j]), len(out_rows))
    st.col_in_nnz = col_in
    st.col_out_nnz = col_out
    st.col_ops = col_in * _heap_cost_per_entry(k)
    return CSCMatrix.from_columns(
        shape, columns, sorted=True,
        value_dtype=value_dtype, index_dtype=index_dtype,
    )
