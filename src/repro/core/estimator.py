"""Closed-form workload statistics for Erdős–Rényi inputs.

The paper's complexity table (Table I) and several experiment settings
are phrased for ER matrices with ``d`` nonzeros per column.  These
closed forms let the cost model evaluate *paper-scale* configurations
(m = 4M, k*d up to 10^6 entries per column) without materializing the
matrices: the collision structure of uniform sampling is fully
analytic.
"""

from __future__ import annotations

import numpy as np


def expected_distinct(m: int, draws: float) -> float:
    """Expected distinct values among ``draws`` uniform draws from
    ``[0, m)`` — the classic occupancy formula ``m(1-(1-1/m)^draws)``.

    Computed in log-space to stay accurate for large ``m``/``draws``.
    """
    if m <= 0 or draws <= 0:
        return 0.0
    return float(m * -np.expm1(draws * np.log1p(-1.0 / m)))


def er_expected_output_col_nnz(m: int, d: float, k: int) -> float:
    """E[nnz(B(:,j))] when k ER columns with ``d`` distinct uniform
    nonzeros each are added: ``m (1 - (1 - d/m)^k)``.
    """
    if m <= 0 or d <= 0 or k <= 0:
        return 0.0
    frac = min(d / m, 1.0)
    return float(m * -np.expm1(k * np.log1p(-frac)))


def er_expected_cf(m: int, d: float, k: int) -> float:
    """Expected compression factor ``sum nnz(A_i) / nnz(B)`` for ER
    inputs; >= 1, approaching k as columns densify (d -> m)."""
    onz = er_expected_output_col_nnz(m, d, k)
    if onz == 0:
        return 1.0
    return (k * d) / onz


def er_2way_incremental_work(d: float, k: int, n: int) -> float:
    """Total element touches of Algorithm 1 on ER inputs, worst-case
    model (no collisions): ``sum_{i=2..k} sum_{l<=i} n d = O(k^2 n d)``.
    """
    return float(n * d * (k * (k + 1) / 2 - 1))


def er_2way_tree_work(d: float, k: int, n: int) -> float:
    """Total element touches of the tree variant: ``O(n d k lg k)``."""
    if k <= 1:
        return 0.0
    return float(n * d * k * np.ceil(np.log2(k)))


def er_kway_work(d: float, k: int, n: int) -> float:
    """Work of the work-efficient k-way algorithms (SPA/hash):
    ``O(n d k)`` — one O(1) operation per input entry."""
    return float(n * d * k)


def er_heap_work(d: float, k: int, n: int) -> float:
    """Heap work ``O(n d k lg k)``: every entry pays a lg-k heap op."""
    if k <= 1:
        return float(n * d)
    return float(n * d * k * np.ceil(np.log2(k)))
