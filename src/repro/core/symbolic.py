"""Symbolic-phase dispatch: computing ``nnz(B(:,j))`` before adding.

Every k-way kernel needs the per-column output size to pre-allocate the
result and to size hash tables (paper Section II-D).  The paper uses a
hash-based symbolic phase (Algorithm 6) but notes heap and SPA could be
used; we provide those too, plus an exact sort-based oracle used by the
tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.blocks import (
    choose_block_cols,
    composite_keys,
    gather_block,
    iter_col_blocks,
)
from repro.core.stats import KernelStats
from repro.formats.csc import CSCMatrix
from repro.util.checks import check_nonempty, check_same_shape


def exact_output_col_nnz(
    mats: Sequence[CSCMatrix], *, block_cols: Optional[int] = None
) -> np.ndarray:
    """Oracle: exact per-column output nnz via sort+unique.

    Independent of the probing machinery, used to validate the hash /
    sliding-hash symbolic phases.
    """
    check_nonempty(mats)
    m, n = check_same_shape(mats)
    bc = block_cols or choose_block_cols(mats)
    out = np.zeros(n, dtype=np.int64)
    for j0, j1 in iter_col_blocks(n, bc):
        cols, rows, _vals, _ = gather_block(mats, j0, j1)
        if rows.size == 0:
            continue
        keys = np.unique(composite_keys(cols, rows, m, width=j1 - j0))
        out[j0:j1] = np.bincount(keys // np.int64(m), minlength=j1 - j0)
    return out


def chunk_output_layout(
    col_nnz: np.ndarray,
    ranges: Sequence[Tuple[int, int]],
    *,
    index_dtype=None,
) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
    """Exact output CSC layout from per-column symbolic counts.

    Given ``col_nnz`` (``nnz(B(:,j))`` for every column, e.g. from
    :func:`exact_output_col_nnz` or a parallel symbolic pass) and the
    column ``ranges`` assigned to each chunk, returns ``(indptr,
    offsets)`` where ``indptr`` is the output pointer array of ``B`` and
    ``offsets[i] = (lo, hi)`` is chunk ``i``'s slice of the output
    ``indices``/``data`` arrays.  This is what lets the shared-memory
    executor preallocate one output buffer and have every worker scatter
    into a private, disjoint slice with no synchronization.

    ``index_dtype`` sets the pointer width (``None`` = int64).  The
    cumulative sums are always formed in int64 first and the requested
    width is widened when the total overflows it, so an int32 request
    against a >2**31-entry output promotes instead of wrapping — the
    shared-memory engine's symbolic sizing relies on this guard.
    """
    from repro.formats.compressed import min_index_dtype

    col_nnz = np.asarray(col_nnz, dtype=np.int64)
    n = col_nnz.shape[0]
    total = np.cumsum(col_nnz, dtype=np.int64)
    dtype = np.promote_types(
        np.dtype(index_dtype) if index_dtype is not None else np.int64,
        min_index_dtype(int(total[-1]) if n else 0),
    )
    indptr = np.zeros(n + 1, dtype=dtype)
    indptr[1:] = total
    offsets = []
    for j0, j1 in ranges:
        if not (0 <= j0 <= j1 <= n):
            raise ValueError(f"chunk range ({j0}, {j1}) outside [0, {n}]")
        offsets.append((int(indptr[j0]), int(indptr[j1])))
    return indptr, offsets


def symbolic_nnz(
    mats: Sequence[CSCMatrix],
    method: str = "hash",
    *,
    stats: Optional[KernelStats] = None,
    **kwargs,
) -> np.ndarray:
    """Dispatch the symbolic phase.

    ``method``: ``"hash"`` (Algorithm 6), ``"sliding_hash"``
    (Algorithm 7), ``"exact"`` (sort-based oracle), ``"spa"`` or
    ``"heap"`` (count via the respective accumulate path, mentioned as
    alternatives by the paper).
    """
    if method == "hash":
        from repro.core.hash_add import hash_symbolic

        return hash_symbolic(mats, stats=stats, **kwargs)
    if method == "sliding_hash":
        from repro.core.sliding_hash import sliding_hash_symbolic

        return sliding_hash_symbolic(mats, stats=stats, **kwargs)
    if method == "exact":
        return exact_output_col_nnz(mats, **kwargs)
    if method == "spa":
        from repro.core.spa_add import spkadd_spa

        st = stats if stats is not None else KernelStats()
        st.algorithm = "spa_symbolic"
        out = spkadd_spa(mats, stats=st, **kwargs)
        return out.col_nnz()
    if method == "heap":
        from repro.core.heap_add import spkadd_heap

        st = stats if stats is not None else KernelStats()
        st.algorithm = "heap_symbolic"
        out = spkadd_heap(mats, stats=st, **kwargs)
        return out.col_nnz()
    raise ValueError(f"unknown symbolic method {method!r}")
