"""Streaming / batched SpKAdd — the paper's Section V future work.

The in-memory algorithms assume all k addends are resident.  When
memory is limited or matrices arrive in batches, the paper suggests
"arrange input matrices in multiple batches and then use SpKAdd for
each batch".  :func:`spkadd_streaming` implements exactly that: consume
an iterable of matrices in batches of ``batch_size``, reduce each batch
with a k-way kernel, and fold batch results with a running 2-way add.

:class:`StreamingAccumulator` is the stateful form for true streams
(e.g. the graph-accumulation workload of the intro): feed matrices as
they arrive, read the running sum at any time.

Both entry points fold batches with the hash kernel routed through the
kernel registry: ``backend=`` selects the accumulation engine and
defaults (like the :func:`repro.spkadd` facade) to ``"fast"`` after the
``REPRO_BACKEND`` environment override — streaming callers never read
slot-level statistics, so they get the sort/reduce engine automatically.
Pass ``kernel=`` to substitute a different folding kernel entirely.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional

from repro.core.hash_add import spkadd_hash
from repro.core.pairwise import add_pair
from repro.core.stats import KernelStats
from repro.formats.csc import CSCMatrix


def _registry_kernel(backend: Optional[str]) -> Callable[..., CSCMatrix]:
    """Hash-kernel closure pinned to a registry-resolved backend."""
    from repro.core.api import DEFAULT_FACADE_BACKEND
    from repro.kernels import resolve_backend

    name = resolve_backend(backend, default=DEFAULT_FACADE_BACKEND).name

    def kern(ms, **kw):
        kw.setdefault("backend", name)
        return spkadd_hash(ms, **kw)

    return kern


def _resolve_kernel(
    kernel: Optional[Callable[..., CSCMatrix]], backend: Optional[str]
) -> Callable[..., CSCMatrix]:
    if kernel is not None:
        if backend is not None:
            raise ValueError(
                "pass either kernel= or backend=, not both: a custom "
                "kernel owns its own accumulation engine"
            )
        return kernel
    return _registry_kernel(backend)


def _batches(it: Iterable[CSCMatrix], size: int) -> Iterator[List[CSCMatrix]]:
    batch: List[CSCMatrix] = []
    for m in it:
        batch.append(m)
        if len(batch) == size:
            yield batch
            batch = []
    if batch:
        yield batch


def _resolve_cast(value_dtype):
    """Matrix-cast closure for an explicit ``value_dtype`` override
    (identity when ``None``: dtypes are preserved and mixed-dtype
    streams promote per ``np.result_type`` as batches fold)."""
    if value_dtype is None:
        return lambda A: A
    from repro.core.hashtable import resolve_value_dtype

    vdt = resolve_value_dtype((), value_dtype)
    return lambda A: A.astype(vdt)


def _index_width(acc: CSCMatrix, index_dtype) -> "CSCMatrix":
    """``acc`` at the stream's requested index width.

    The folds emit whatever width each batch resolves; an explicit
    ``index_dtype`` pins the *returned* sum's width through the guarded
    resolution (an int32 request a huge running sum cannot honour
    promotes instead of wrapping)."""
    if index_dtype is None:
        return acc
    from repro.formats.compressed import resolve_index_dtype

    return acc.with_index_dtype(resolve_index_dtype((acc,), index_dtype))


def _fold_batch(batch, kern, stats) -> CSCMatrix:
    """Reduce one batch with the kernel; a single-matrix batch is
    add-free but must still land on the resolved accumulator dtype
    (``spkadd_streaming([one_int32_matrix])`` has to emit the same
    int64 a length-2 stream — or the facade — would)."""
    if len(batch) == 1:
        from repro.core.hashtable import resolve_value_dtype

        return batch[0].astype(resolve_value_dtype(batch))
    return kern(batch, stats=stats)


def spkadd_streaming(
    mats: Iterable[CSCMatrix],
    *,
    batch_size: int = 16,
    kernel: Optional[Callable[..., CSCMatrix]] = None,
    backend: Optional[str] = None,
    value_dtype=None,
    index_dtype=None,
    stats: Optional[KernelStats] = None,
) -> CSCMatrix:
    """Sum a (possibly unbounded-length) stream of sparse matrices.

    Peak residency is ``batch_size`` inputs plus the running sum,
    instead of all k.  Work is the k-way kernel per batch plus
    ``ceil(k/batch_size)`` 2-way folds of the running sum — asymptotically
    between hash SpKAdd and 2-way incremental, trading memory for work
    exactly as the paper describes.

    ``value_dtype`` mirrors :func:`repro.spkadd`'s override: each
    incoming matrix is cast as it is consumed so the running sum is
    computed (and returned) in that dtype.  The default preserves the
    stream's dtypes end to end.  ``index_dtype`` pins the returned
    sum's index width the same way (default: each fold resolves the
    paper's int32-when-it-fits rule over its own inputs).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    cast = _resolve_cast(value_dtype)
    mats = (cast(A) for A in mats)
    kern = _resolve_kernel(kernel, backend)
    st = stats if stats is not None else KernelStats()
    st.algorithm = st.algorithm or f"streaming[b={batch_size}]"
    acc: Optional[CSCMatrix] = None
    for batch in _batches(mats, batch_size):
        st.k += len(batch)
        partial = _fold_batch(batch, kern, st)
        if acc is None:
            acc = partial
        else:
            if not partial.sorted:
                partial.sort_indices()
            acc = add_pair(acc, partial, st)
    if acc is None:
        raise ValueError("spkadd_streaming needs at least one matrix")
    st.n_cols = acc.shape[1]
    st.output_nnz = acc.nnz
    return _index_width(acc, index_dtype)


class StreamingAccumulator:
    """Stateful running sum over a stream of sparse matrices.

    >>> acc = StreamingAccumulator(batch_size=8)
    >>> for mat in stream: acc.push(mat)        # doctest: +SKIP
    >>> total = acc.result()                    # doctest: +SKIP

    Matrices are buffered up to ``batch_size`` and folded with the hash
    kernel; :meth:`result` flushes the buffer and returns the current
    sum without ending the stream.
    """

    def __init__(
        self, *, batch_size: int = 16, kernel=None,
        backend: Optional[str] = None, value_dtype=None, index_dtype=None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        self._kernel = _resolve_kernel(kernel, backend)
        self._cast = _resolve_cast(value_dtype)
        self._index_dtype = index_dtype
        self._buffer: List[CSCMatrix] = []
        self._acc: Optional[CSCMatrix] = None
        self.stats = KernelStats(algorithm=f"streaming_acc[b={batch_size}]")
        self.pushed = 0

    def push(self, mat: CSCMatrix) -> None:
        """Add one matrix to the stream."""
        self._buffer.append(self._cast(mat))
        self.pushed += 1
        if len(self._buffer) >= self.batch_size:
            self._flush()

    def _flush(self) -> None:
        if not self._buffer:
            return
        batch = self._buffer
        self._buffer = []
        self.stats.k += len(batch)
        partial = _fold_batch(batch, self._kernel, self.stats)
        if self._acc is None:
            self._acc = partial
        else:
            if not partial.sorted:
                partial.sort_indices()
            self._acc = add_pair(self._acc, partial, self.stats)

    def result(self) -> CSCMatrix:
        """Flush pending matrices and return the current running sum."""
        self._flush()
        if self._acc is None:
            raise ValueError("no matrices pushed")
        return _index_width(self._acc, self._index_dtype)
