"""2-way SpKAdd algorithms (Algorithm 1 and the balanced-tree variant).

Both express SpKAdd as repeated additions of matrix pairs:

* **Incremental** (Algorithm 1): fold left, ``B += A_i`` one at a time.
  The addition tree is a path of height ``k-1``; the running partial sum
  is re-read and re-written every iteration, giving O(k^2 nd) work and
  I/O on ER inputs — the paper's motivating inefficiency.
* **Tree** (Section II-B2): add in pairs up a balanced binary tree of
  height ``lg k``; every level touches O(sum_i nnz(A_i)) data, giving
  O(knd lg k) work and I/O.  Still uses only off-the-shelf 2-way adds.

Inputs must have sorted columns (Table I: 2-way algorithms need sorted
inputs); pass ``presort=True`` to sort unsorted inputs first (cost
charged to the stats).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.merge2 import merge_sorted_keyed
from repro.core.stats import KernelStats
from repro.formats.compressed import build_indptr, resolve_index_dtype
from repro.formats.csc import CSCMatrix
from repro.util.checks import check_nonempty, check_same_shape

#: bytes per (row-index, value) entry moved to/from memory — the paper
#: stores 32-bit indices and single-precision values (8 bytes/entry).
ENTRY_BYTES = 8


def _matrix_keys(A: CSCMatrix) -> np.ndarray:
    """Composite (col*m + row) keys of a sorted CSC matrix — an
    increasing array."""
    m, n = A.shape
    cols = np.repeat(np.arange(n, dtype=np.int64), np.diff(A.indptr))
    return cols * np.int64(m) + A.indices


def _matrix_from_keys(
    shape, keys: np.ndarray, vals: np.ndarray, index_dtype=None
) -> CSCMatrix:
    m, n = shape
    cols = keys // np.int64(m)
    rows = keys - cols * np.int64(m)
    if index_dtype is None:
        index_dtype = resolve_index_dtype(shape=shape, nnz=keys.size)
    return CSCMatrix(
        shape,
        build_indptr(cols, n, index_dtype=index_dtype),
        rows.astype(index_dtype, copy=False),
        vals,
        sorted=True,
        check=False,
    )


def add_pair(
    A: CSCMatrix,
    B: CSCMatrix,
    stats: Optional[KernelStats] = None,
    *,
    index_dtype=None,
) -> CSCMatrix:
    """Add two CSC matrices with sorted columns (one 2-way merge).

    This is the building block the paper would obtain from MKL, Matlab,
    or GraphBLAS; ours is a vectorized linear merge.  ``index_dtype``
    pins the output index width; ``None`` resolves the paper's rule
    over the two operands (int32 when dimensions and summed nnz fit).
    """
    if A.shape != B.shape:
        raise ValueError(f"shape mismatch {A.shape} vs {B.shape}")
    if not (A.sorted and B.sorted):
        raise ValueError("2-way addition requires sorted columns")
    ka, kb = _matrix_keys(A), _matrix_keys(B)
    keys, vals = merge_sorted_keyed(ka, A.data, kb, B.data)
    out = _matrix_from_keys(
        A.shape, keys, vals, resolve_index_dtype((A, B), index_dtype)
    )
    if stats is not None:
        touched = A.nnz + B.nnz
        stats.ops += touched
        stats.bytes_read += touched * ENTRY_BYTES
        stats.bytes_written += out.nnz * ENTRY_BYTES
    return out


def _prepare(
    mats: Sequence[CSCMatrix],
    presort: bool,
    stats: KernelStats,
    index_dtype=None,
) -> List[CSCMatrix]:
    from repro.core.hashtable import resolve_value_dtype

    check_nonempty(mats)
    check_same_shape(mats)
    # Cast to the resolved accumulator dtype up front (a no-op for the
    # common all-float64 case): the merges would widen pair by pair
    # anyway, and the add-free k=1 path must emit the same dtype every
    # other method (and the shm executor's scratch) resolves to.  The
    # same applies to the index width when the caller resolved one.
    vdt = resolve_value_dtype(mats)
    out = []
    for A in mats:
        if not A.sorted:
            if not presort:
                raise ValueError(
                    "2-way SpKAdd needs sorted inputs; pass presort=True"
                )
            A = A.copy()
            A.sort_indices()
            stats.ops += A.nnz * max(int(np.log2(max(A.nnz, 2))), 1)
        A = A.astype(vdt)
        if index_dtype is not None:
            A = A.with_index_dtype(index_dtype)
        out.append(A)
    return out


def spkadd_2way_incremental(
    mats: Sequence[CSCMatrix],
    *,
    stats: Optional[KernelStats] = None,
    presort: bool = False,
) -> CSCMatrix:
    """Algorithm 1: incrementally fold the k addends pairwise.

    Work and I/O are O(sum_{i=2..k} sum_{l<=i} nnz(A_l)): the i-th step
    re-reads the entire running sum.
    """
    st = stats if stats is not None else KernelStats()
    st.algorithm = st.algorithm or "2way_incremental"
    # Call-level index width: every fold (and the k=1 add-free path)
    # emits the width resolved over the whole collection, matching the
    # parallel executors' concatenation.
    idt = resolve_index_dtype(mats)
    mats = _prepare(mats, presort, st, idt)
    st.k = len(mats)
    st.n_cols = mats[0].shape[1]
    st.col_in_nnz = sum((m.col_nnz() for m in mats[1:]), mats[0].col_nnz().copy())
    acc = mats[0]
    st.input_nnz += acc.nnz
    st.bytes_read += acc.nnz * ENTRY_BYTES
    for A in mats[1:]:
        st.input_nnz += acc.nnz + A.nnz  # the partial sum is re-read
        acc = add_pair(acc, A, st, index_dtype=idt)
        st.intermediate_nnz += acc.nnz
    st.intermediate_nnz -= acc.nnz  # final write is the output, not an intermediate
    st.output_nnz = acc.nnz
    st.col_out_nnz = acc.col_nnz()
    return acc


def spkadd_2way_tree(
    mats: Sequence[CSCMatrix],
    *,
    stats: Optional[KernelStats] = None,
    presort: bool = False,
) -> CSCMatrix:
    """Balanced-binary-tree 2-way SpKAdd (Fig 1(c)).

    Leaves are the inputs; each level halves the matrix count, so every
    entry is touched O(lg k) times: O(lg k * sum_i nnz(A_i)) work/IO.
    """
    st = stats if stats is not None else KernelStats()
    st.algorithm = st.algorithm or "2way_tree"
    idt = resolve_index_dtype(mats)
    level = _prepare(mats, presort, st, idt)
    st.k = len(level)
    st.n_cols = level[0].shape[1]
    st.col_in_nnz = sum((m.col_nnz() for m in level[1:]), level[0].col_nnz().copy())
    st.input_nnz += sum(A.nnz for A in level)
    while len(level) > 1:
        nxt: List[CSCMatrix] = []
        for i in range(0, len(level) - 1, 2):
            s = add_pair(level[i], level[i + 1], st, index_dtype=idt)
            st.intermediate_nnz += s.nnz
            nxt.append(s)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    st.intermediate_nnz -= level[0].nnz
    st.output_nnz = level[0].nnz
    st.col_out_nnz = level[0].col_nnz()
    return level[0]
