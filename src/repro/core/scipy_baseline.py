"""Off-the-shelf pairwise baseline ("MKL Incremental" / "MKL Tree").

The paper benchmarks MKL's ``mkl_sparse_d_add`` driven incrementally and
in tree order.  MKL is unavailable here; ``scipy.sparse``'s compiled
``+`` operator plays the identical role — a black-box, vendor-supplied
2-way sparse addition that cannot fuse the k-way reduction.  (The paper
itself notes the Python ``+`` on scipy matrices is the k=2 special case
of SpKAdd.)

Because we cannot instrument the inside of scipy, stats record the
provable element touches of pairwise addition: each 2-way add reads both
operands and writes the result.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import scipy.sparse as sp

from repro.core.stats import KernelStats
from repro.core.pairwise import ENTRY_BYTES
from repro.formats.csc import CSCMatrix
from repro.formats.convert import from_scipy, to_scipy
from repro.util.checks import check_nonempty, check_same_shape


def _to_scipy_list(mats: Sequence[CSCMatrix]) -> List[sp.csc_matrix]:
    """Scipy copies of the addends, cast to the pipeline's resolved
    value dtype.

    Casting up front makes scipy's ``+`` accumulate in the same dtype
    every other method does (exact 64-bit integer sums instead of
    wrap-prone narrow ints) and keeps the output dtype identical across
    serial and all parallel executors — the shm engine's scratch is
    sized from the same rule.
    """
    from repro.core.hashtable import resolve_value_dtype

    check_nonempty(mats)
    check_same_shape(mats)
    vdt = resolve_value_dtype(mats)
    return [to_scipy(m).tocsc().astype(vdt, copy=False) for m in mats]


def _from_scipy_resolved(acc, mats) -> CSCMatrix:
    """Back-convert a scipy sum, index-cast through the pipeline's
    resolved width.

    scipy picks its own index dtype per operation (int32 when its
    operands were, int64 otherwise), which need not match what every
    other method — and the parallel executors' concatenation — resolves
    for the call; the cast keeps the baseline bit-identical across
    serial and all executors.
    """
    from repro.formats.compressed import resolve_index_dtype

    return from_scipy(acc, "csc").with_index_dtype(resolve_index_dtype(mats))


def _record_pair(st: KernelStats, a_nnz: int, b_nnz: int, out_nnz: int) -> None:
    st.ops += a_nnz + b_nnz
    st.bytes_read += (a_nnz + b_nnz) * ENTRY_BYTES
    st.bytes_written += out_nnz * ENTRY_BYTES
    st.intermediate_nnz += out_nnz


def spkadd_scipy_incremental(
    mats: Sequence[CSCMatrix],
    *,
    stats: Optional[KernelStats] = None,
) -> CSCMatrix:
    """Fold the addends with scipy's compiled 2-way ``+`` (MKL stand-in)."""
    st = stats if stats is not None else KernelStats()
    st.algorithm = st.algorithm or "scipy_incremental"
    sps = _to_scipy_list(mats)
    st.k = len(sps)
    st.n_cols = mats[0].shape[1]
    st.input_nnz += sps[0].nnz
    acc = sps[0]
    for b in sps[1:]:
        st.input_nnz += acc.nnz + b.nnz
        out = acc + b
        _record_pair(st, acc.nnz, b.nnz, out.nnz)
        acc = out
    st.intermediate_nnz -= acc.nnz
    st.output_nnz = acc.nnz
    return _from_scipy_resolved(acc, mats)


def spkadd_scipy_tree(
    mats: Sequence[CSCMatrix],
    *,
    stats: Optional[KernelStats] = None,
) -> CSCMatrix:
    """Balanced-tree reduction with scipy's 2-way ``+`` (MKL stand-in)."""
    st = stats if stats is not None else KernelStats()
    st.algorithm = st.algorithm or "scipy_tree"
    level = _to_scipy_list(mats)
    st.k = len(level)
    st.n_cols = mats[0].shape[1]
    st.input_nnz += sum(a.nnz for a in level)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            out = level[i] + level[i + 1]
            _record_pair(st, level[i].nnz, level[i + 1].nnz, out.nnz)
            nxt.append(out)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    st.intermediate_nnz -= level[0].nnz
    st.output_nnz = level[0].nnz
    return _from_scipy_resolved(level[0], mats)
