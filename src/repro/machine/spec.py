"""Machine specifications (paper Table II) and scaling.

``MachineSpec`` carries the cache hierarchy, core/thread layout and the
latency/bandwidth constants the cost model needs.  ``scaled(s)``
divides every capacity by ``s`` while keeping latencies and clock: when
an experiment shrinks its matrices by ``s``, running it against the
scaled machine preserves every dimensionless ratio the paper's
crossovers depend on (table bytes / LLC bytes, SPA bytes / LLC bytes).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class MachineSpec:
    """A shared-memory evaluation platform.

    Capacities in bytes; clock in Hz; bandwidth in bytes/second.
    Latencies are per-access cycle costs of the smallest level that the
    accessed working set fits in (the cost model interpolates for
    spilling sets).
    """

    name: str
    clock_hz: float
    l1_bytes: int          # per-core L1D
    l2_bytes: int          # per-core L2 (0 = none modelled)
    llc_bytes: int         # shared last-level cache (total)
    sockets: int
    cores_per_socket: int
    mem_bytes: int
    mem_bw_bytes_s: float  # aggregate DRAM bandwidth
    #: bandwidth one core can draw (0 -> aggregate/12); memory-bound
    #: kernels scale with min(T * core_bw, aggregate_bw)
    mem_bw_core_bytes_s: float = 0.0
    cacheline_bytes: int = 64
    lat_l1_cycles: float = 4.0
    lat_l2_cycles: float = 14.0
    lat_llc_cycles: float = 48.0
    lat_mem_cycles: float = 220.0
    #: memory-level parallelism: how many outstanding misses a core
    #: sustains; the *throughput* cost of a miss is latency/mlp
    mlp: float = 8.0
    #: MLP for dependent random accesses (hash-probe chains, SPA
    #: scatter): linear probing serializes on the comparison result, so
    #: far fewer misses overlap than for streaming access
    mlp_random: float = 3.0

    @property
    def cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def core_bw(self) -> float:
        """Effective single-core DRAM bandwidth (bytes/s)."""
        return self.mem_bw_core_bytes_s or self.mem_bw_bytes_s / 12.0

    def bw_at(self, threads: int) -> float:
        """Aggregate bandwidth reachable by ``threads`` cores."""
        return min(max(threads, 1) * self.core_bw, self.mem_bw_bytes_s)

    def scaled(self, s: float) -> "MachineSpec":
        """Capacity-scaled copy: caches and memory divided by ``s``;
        clock, latencies, bandwidth and core counts unchanged.

        Running a 1/s-size problem against the scaled machine preserves
        all capacity ratios (table bytes / LLC bytes etc.), and because
        bandwidth and clock are untouched, every time component of the
        cost model shrinks by the *same* work factor — so simulated
        times extrapolate back to paper scale with one multiplier.
        """
        if s <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            name=f"{self.name}/÷{s:g}",
            l1_bytes=max(int(self.l1_bytes / s), 64),
            l2_bytes=int(self.l2_bytes / s),
            llc_bytes=max(int(self.llc_bytes / s), 1024),
            mem_bytes=max(int(self.mem_bytes / s), 1 << 20),
        )

    def llc_share_bytes(self, threads: int) -> int:
        """LLC budget per thread when ``threads`` share it — the
        sliding-hash sizing rule M/(b*T) uses this."""
        return self.llc_bytes // max(threads, 1)


#: Intel Skylake 8160 node (paper Table II): 2x24 cores @ 2.1 GHz,
#: 32KB L1 / 1MB L2 per core, 32MB shared LLC, 256 GB DDR4.
INTEL_SKYLAKE_8160 = MachineSpec(
    name="Intel Skylake 8160",
    clock_hz=2.1e9,
    l1_bytes=32 * 1024,
    l2_bytes=1024 * 1024,
    llc_bytes=32 * 1024 * 1024,
    sockets=2,
    cores_per_socket=24,
    mem_bytes=256 << 30,
    mem_bw_bytes_s=200e9,
)

#: AMD EPYC 7551 node: 2x32 cores @ 2.0 GHz, 32KB L1 / 512KB L2,
#: 8MB LLC (per-CCX capacity as reported in Table II), 128 GB.
AMD_EPYC_7551 = MachineSpec(
    name="AMD EPYC 7551",
    clock_hz=2.0e9,
    l1_bytes=32 * 1024,
    l2_bytes=512 * 1024,
    llc_bytes=8 * 1024 * 1024,
    sockets=2,
    cores_per_socket=32,
    mem_bytes=128 << 30,
    mem_bw_bytes_s=170e9,
)

#: Cori KNL node: 68 cores @ 1.4 GHz, 32KB L1, no conventional L2 in
#: Table II, 34MB aggregate (MCDRAM-cached) last level, 108 GB.
CORI_KNL = MachineSpec(
    name="Cori KNL",
    clock_hz=1.4e9,
    l1_bytes=32 * 1024,
    l2_bytes=0,
    llc_bytes=34 * 1024 * 1024,
    sockets=1,
    cores_per_socket=68,
    mem_bytes=108 << 30,
    mem_bw_bytes_s=400e9,
    lat_llc_cycles=80.0,
)

PLATFORMS: Dict[str, MachineSpec] = {
    "skylake": INTEL_SKYLAKE_8160,
    "epyc": AMD_EPYC_7551,
    "knl": CORI_KNL,
}
