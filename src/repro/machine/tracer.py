"""Replay kernel hash-table access traces through the cache simulator.

The hash-family kernels can capture the exact sequence of table slots
they touch (``trace_sink``).  :func:`replay_table_traces` converts
those slot sequences into byte addresses and drives the set-associative
LRU simulator, producing the last-level miss counts of Table V.

Address layout: every thread reuses one table buffer (base address 0),
as real implementations do — consecutive columns overwrite the same
memory, so only capacity/conflict behaviour matters, which is exactly
what distinguishes hash from sliding hash.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.machine.cache import LRUCache
from repro.machine.spec import MachineSpec

TraceItem = Tuple[int, int, np.ndarray]  # (table_entries, entry_bytes, slots)


def replay_table_traces(
    traces: Iterable[TraceItem],
    machine: MachineSpec,
    *,
    threads: int = 1,
    ways: int = 16,
    max_accesses: Optional[int] = None,
) -> dict:
    """Simulate LLC behaviour of a kernel's table accesses.

    Parameters
    ----------
    traces:
        ``(table_entries, entry_bytes, slot_sequence)`` items as captured
        by the kernels' ``trace_sink``.
    machine:
        Supplies LLC capacity and line size.  When ``threads`` > 1 each
        thread sees an LLC share of ``llc/threads`` — the multi-threaded
        contention model (private-share approximation of a shared LRU).
    max_accesses:
        Optional cap for bounding simulation cost; accesses are taken
        from the head of each trace proportionally and miss counts are
        scaled back up.

    Returns
    -------
    dict with ``misses``, ``accesses``, ``miss_rate``, ``hits``.
    """
    share = machine.llc_bytes // max(threads, 1)
    cache = LRUCache(share, machine.cacheline_bytes, ways=ways)
    items = [t for t in traces if t[2] is not None and len(t[2])]
    total_acc = sum(len(t[2]) for t in items)
    scale = 1.0
    if max_accesses is not None and total_acc > max_accesses:
        scale = total_acc / max_accesses
    simulated = 0
    for entries, entry_bytes, slots in items:
        take = len(slots)
        if scale > 1.0:
            take = max(int(len(slots) / scale), 1)
        addrs = (np.asarray(slots[:take], dtype=np.int64) * entry_bytes)
        cache.access_bytes(addrs)
        simulated += take
    misses = cache.misses * scale
    return {
        "misses": float(misses),
        "accesses": float(total_acc),
        "simulated_accesses": int(simulated),
        "hits": float(cache.hits * scale),
        "miss_rate": float(misses / total_acc) if total_acc else 0.0,
        "llc_share_bytes": share,
    }
