"""Cache models: analytic miss fractions and trace-driven simulators.

Three fidelity levels:

* :func:`analytic_miss_fraction` — closed-form steady-state miss
  probability of uniform random accesses over a working set vs an LRU
  cache; used by the cost model (fast, applied to the table-traffic
  histograms every kernel records).
* :func:`direct_mapped_misses` — exact, fully vectorized simulation of
  a direct-mapped cache over an address trace.
* :class:`LRUCache` — exact set-associative LRU simulation (Python
  loop; for validation traces and Table V at reduced scale, where
  traces are ~10^6 accesses).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def analytic_miss_fraction(working_set_bytes: float, cache_bytes: float) -> float:
    """Steady-state miss probability of uniform random single-line
    accesses over ``working_set_bytes`` with an LRU cache of
    ``cache_bytes``.

    With uniform random access, the cache holds an arbitrary
    ``cache/working`` fraction of the set, so
    ``P(miss) = max(0, 1 - cache/working)``.  Cold (compulsory) misses
    are charged separately by the caller.
    """
    if working_set_bytes <= 0:
        return 0.0
    if cache_bytes <= 0:
        return 1.0
    return max(0.0, 1.0 - cache_bytes / working_set_bytes)


def direct_mapped_misses(line_ids: np.ndarray, n_sets: int) -> int:
    """Exact miss count of a direct-mapped cache with ``n_sets`` lines.

    ``line_ids`` is the sequence of accessed cache-line ids.  A miss
    occurs whenever the accessed line differs from the previous
    occupant of its set.  Vectorized: stable-sort accesses by set, then
    count occupant changes within each set's subsequence.
    """
    line_ids = np.asarray(line_ids, dtype=np.int64)
    if line_ids.size == 0:
        return 0
    sets = line_ids % n_sets
    order = np.argsort(sets, kind="stable")  # per-set access order kept
    s_sorted = sets[order]
    l_sorted = line_ids[order]
    first = np.empty(line_ids.size, dtype=bool)
    first[0] = True
    np.not_equal(s_sorted[1:], s_sorted[:-1], out=first[1:])
    changed = np.empty(line_ids.size, dtype=bool)
    changed[0] = True
    np.not_equal(l_sorted[1:], l_sorted[:-1], out=changed[1:])
    return int(np.count_nonzero(first | changed))


class LRUCache:
    """Exact set-associative LRU cache simulator.

    Parameters
    ----------
    capacity_bytes:
        Total capacity.
    line_bytes:
        Cache line size.
    ways:
        Associativity (1 = direct mapped, ``capacity/line`` = fully
        associative).
    """

    def __init__(self, capacity_bytes: int, line_bytes: int = 64, ways: int = 8):
        n_lines = max(capacity_bytes // line_bytes, 1)
        ways = max(min(ways, n_lines), 1)
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = max(n_lines // ways, 1)
        # tags[set, way] = line id (-1 empty); lru[set, way] = last use
        self.tags = np.full((self.n_sets, self.ways), -1, dtype=np.int64)
        self.lru = np.zeros((self.n_sets, self.ways), dtype=np.int64)
        self.clock = 0
        self.hits = 0
        self.misses = 0

    @property
    def capacity_bytes(self) -> int:
        return self.n_sets * self.ways * self.line_bytes

    def access_lines(self, line_ids: np.ndarray) -> int:
        """Run a sequence of line accesses; returns misses added."""
        line_ids = np.asarray(line_ids, dtype=np.int64)
        tags, lru = self.tags, self.lru
        n_sets = self.n_sets
        before = self.misses
        clock = self.clock
        for line in line_ids.tolist():
            s = line % n_sets
            clock += 1
            row = tags[s]
            hit = np.flatnonzero(row == line)
            if hit.size:
                self.hits += 1
                lru[s, hit[0]] = clock
            else:
                self.misses += 1
                victim = int(np.argmin(lru[s]))
                tags[s, victim] = line
                lru[s, victim] = clock
        self.clock = clock
        return self.misses - before

    def access_bytes(self, addresses: np.ndarray) -> int:
        """Byte-address convenience wrapper around :meth:`access_lines`."""
        addrs = np.asarray(addresses, dtype=np.int64) // self.line_bytes
        return self.access_lines(addrs)

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


def expected_cold_misses(table_bytes: float, line_bytes: int, instances: float) -> float:
    """Compulsory misses of filling ``instances`` tables of
    ``table_bytes`` each (one per line)."""
    if table_bytes <= 0 or instances <= 0:
        return 0.0
    return float(np.ceil(table_bytes / line_bytes) * instances)
