"""Simulated hardware substrate.

The paper's performance results are driven by three machine properties:
cycle cost of data-structure operations, cache behaviour of randomly
accessed tables (L1 / L2 / LLC sizing, Fig 4 and Table V), and shared
memory bandwidth (scaling saturation, Fig 3).  This subpackage models
all three:

* :mod:`~repro.machine.spec` — :class:`MachineSpec` with the paper's
  Table II platforms and proportional ``.scaled()`` shrinking;
* :mod:`~repro.machine.cache` — an analytic random-access miss model
  plus trace-driven direct-mapped and set-associative LRU simulators;
* :mod:`~repro.machine.costmodel` — converts measured
  :class:`~repro.core.stats.KernelStats` into simulated seconds for a
  machine/thread-count, with per-algorithm constants calibrated against
  the paper's Table III anchor cells;
* :mod:`~repro.machine.tracer` — replays kernels' hash-table access
  traces through the cache simulator (Table V).
"""

from repro.machine.spec import (
    AMD_EPYC_7551,
    CORI_KNL,
    INTEL_SKYLAKE_8160,
    MachineSpec,
    PLATFORMS,
)
from repro.machine.cache import (
    LRUCache,
    analytic_miss_fraction,
    direct_mapped_misses,
)
from repro.machine.costmodel import CostModel, SimulatedTime
from repro.machine.tracer import replay_table_traces

__all__ = [
    "AMD_EPYC_7551",
    "CORI_KNL",
    "INTEL_SKYLAKE_8160",
    "MachineSpec",
    "PLATFORMS",
    "LRUCache",
    "analytic_miss_fraction",
    "direct_mapped_misses",
    "CostModel",
    "SimulatedTime",
    "replay_table_traces",
]
