"""Calibrated cost model: KernelStats -> simulated seconds.

The model converts the *measured* quantities every kernel records into a
runtime prediction for a target :class:`~repro.machine.spec.MachineSpec`
and thread count:

``compute``
    ``ops * cycles_per_op(algorithm)`` — the data-structure work.
``memory latency``
    for each (table_bytes -> accesses) bucket of random table traffic,
    an extra per-access latency chosen by which cache level the per-
    thread working set fits in; spilling sets pay the analytic miss
    fraction times the next level's latency (this term creates the
    Fig 2 hash/sliding-hash boundary and the right side of Fig 4's
    U-curves).
``bandwidth``
    streamed bytes / machine DRAM bandwidth, *not* divided by threads —
    the shared-resource term that saturates 2-way scaling in Fig 3.
``overhead``
    per-partition fixed costs of the sliding algorithms
    (``parts * n_cols * (c_part + k * c_search)``) — the left side of
    Fig 4's U-curves.
``parallel time``
    per-thread compute+latency divided by T, multiplied by the schedule
    imbalance computed from the per-column op vector (static vs
    dynamic, Section III-A), then combined with the bandwidth floor.

Per-algorithm ``cycles_per_op`` constants are *calibrated*: a single
Table III anchor cell per algorithm fixes the constant, all other
cells/figures are model predictions (see
:mod:`repro.experiments.calibration`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil, log2
from typing import Dict, Optional

import numpy as np

from repro.core.stats import KernelStats
from repro.machine.cache import analytic_miss_fraction
from repro.machine.spec import MachineSpec

#: Uncalibrated per-op cycle costs.  These are physically plausible
#: C-code costs used before calibration replaces them (and in tests):
#: a merge step ~ 8 cycles, a hash probe ~ 10, a SPA touch ~ 6, a heap
#: level ~ 12 (compare+swap), scipy/MKL pairwise ~ 20 (library overhead).
DEFAULT_CYCLES_PER_OP: Dict[str, float] = {
    "2way_incremental": 8.0,
    "2way_tree": 8.0,
    "scipy_incremental": 20.0,
    "scipy_tree": 20.0,
    "heap": 12.0,
    "spa": 6.0,
    "hash": 10.0,
    "hash_symbolic": 8.0,
    "sliding_hash": 10.0,
    "sliding_hash_symbolic": 8.0,
    "streaming": 10.0,
    "default": 10.0,
}

#: Fixed overhead charged per (partition x column) by sliding kernels,
#: plus a per-input-matrix binary-search term (Alg 7/8 line 9).
PART_FIXED_CYCLES = 60.0
PART_SEARCH_CYCLES = 25.0

#: SPA initialization: the dense length-m accumulator must be allocated
#: and first-touched by every thread (the O(T*m) memory the paper blames
#: for SPA's behaviour).  Cycles per SPA slot, fitted once to the
#: d=16 column of Table III where SPA's runtime is almost pure init
#: (0.1237s for m=4M at 2.1GHz ~= 65 cycles/slot).
SPA_INIT_CYCLES = 65.0

#: Constant parallel-region launch/teardown per phase (OpenMP fork +
#: barrier), visible only in sub-millisecond cells.
PHASE_LAUNCH_SECONDS = 1.5e-4

#: Extra cycles per byte of freshly *allocated* intermediate output
#: (page faults + zero fill): the hidden cost of the pairwise
#: algorithms, which materialize a new partial-sum matrix per merge.
ALLOC_CYCLES_PER_BYTE = 1.5


def algorithm_family(name: str, table: Optional[Dict[str, float]] = None) -> str:
    """Resolve a stats.algorithm string to a constants key.

    Exact match on the base name (before any ``[...]`` suffix) wins,
    then the longest prefix among known keys, then ``"default"``.
    """
    base = name.split("[")[0]
    keys = table if table is not None else DEFAULT_CYCLES_PER_OP
    if base in keys:
        return base
    best = ""
    for key in keys:
        if key != "default" and base.startswith(key) and len(key) > len(best):
            best = key
    return best or "default"


@dataclass
class SimulatedTime:
    """Decomposed simulated runtime (seconds).

    Components scale differently when a reduced-scale run is
    extrapolated to paper scale: ``compute``/``memory``/``overhead``/
    ``bandwidth`` are *work* terms (scale with total entries);
    ``init`` is a *capacity* term (scales with the data-structure /
    matrix dimension, e.g. SPA's O(m) first touch); ``fixed`` is a
    constant (parallel-region launch).
    """

    compute: float = 0.0
    memory: float = 0.0
    bandwidth: float = 0.0
    overhead: float = 0.0
    init: float = 0.0
    fixed: float = 0.0
    imbalance: float = 1.0

    def extrapolate(self, work_factor: float, capacity_factor: float = 1.0) -> float:
        """Total seconds after scaling each component by its factor.

        Per-thread compute/latency/overhead overlap with the shared
        bandwidth floor (max); init and fixed costs add on top.
        """
        work = max(self.compute + self.memory + self.overhead, self.bandwidth)
        return work * work_factor + self.init * capacity_factor + self.fixed

    @property
    def total(self) -> float:
        """Unscaled total (the reduced-instance prediction)."""
        return self.extrapolate(1.0, 1.0)

    def __add__(self, other: "SimulatedTime") -> "SimulatedTime":
        return SimulatedTime(
            self.compute + other.compute,
            self.memory + other.memory,
            self.bandwidth + other.bandwidth,
            self.overhead + other.overhead,
            self.init + other.init,
            self.fixed + other.fixed,
            max(self.imbalance, other.imbalance),
        )


@dataclass
class CostModel:
    """Runtime predictor for one machine + thread count."""

    machine: MachineSpec
    threads: int = 1
    cycles_per_op: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_CYCLES_PER_OP)
    )
    schedule: str = "dynamic"
    schedule_chunk: int = 1

    # ----------------------------------------------------------- internals
    def _access_extra_cycles(self, table_bytes: float, avg_table_bytes: float = None) -> float:
        """Extra *latency* per random access into a structure of
        ``table_bytes``, beyond the L1-hit cost folded into
        cycles_per_op.

        Only in-cache levels contribute latency (out-of-order cores
        overlap ``mlp`` outstanding accesses, so each costs
        latency/mlp).  LLC *misses* are charged as DRAM traffic by
        :meth:`_miss_bytes` instead — a miss consumes a full cache line
        of shared bandwidth, which is what actually throttles
        many-thread runs.
        """
        mc = self.machine
        if table_bytes <= mc.l1_bytes:
            return 0.0
        mlp = max(mc.mlp_random, 1.0)
        if mc.l2_bytes and table_bytes <= mc.l2_bytes:
            return (mc.lat_l2_cycles - mc.lat_l1_cycles) / mlp
        shared_ws = self._shared_ws(table_bytes, avg_table_bytes)
        llc_extra = (mc.lat_llc_cycles - mc.lat_l1_cycles) / mlp
        if shared_ws <= mc.llc_bytes:
            return llc_extra
        miss = analytic_miss_fraction(shared_ws, mc.llc_bytes)
        return llc_extra + miss * (mc.lat_mem_cycles - mc.lat_llc_cycles) / mlp

    def _shared_ws(self, table_bytes: float, avg_table_bytes: float = None) -> float:
        """LLC working set while one thread probes a table of
        ``table_bytes``: the other T-1 threads hold *typical* tables
        (``avg_table_bytes``), not worst-case ones — this matters for
        skewed (RMAT) workloads where the dense columns' big tables are
        rare."""
        other = table_bytes if avg_table_bytes is None else avg_table_bytes
        return table_bytes + other * max(self.threads - 1, 0)

    def _miss_bytes(
        self, table_bytes: float, accesses: float, avg_table_bytes: float = None
    ) -> float:
        """DRAM traffic of LLC misses (each miss moves one cache line);
        contributes to the shared-bandwidth floor on top of the per-
        access latency charged by :meth:`_access_extra_cycles`."""
        mc = self.machine
        shared_ws = self._shared_ws(table_bytes, avg_table_bytes)
        miss = analytic_miss_fraction(shared_ws, mc.llc_bytes)
        return accesses * miss * mc.cacheline_bytes

    def _imbalance(self, stats: KernelStats) -> float:
        if self.threads <= 1 or stats.col_ops is None or stats.col_ops.size == 0:
            return 1.0
        from repro.parallel.scheduler import dynamic_schedule, static_schedule

        costs = np.asarray(stats.col_ops, dtype=np.float64)
        if costs.sum() <= 0:
            return 1.0
        if self.schedule == "static":
            sched = static_schedule(costs.shape[0], self.threads)
        else:
            sched = dynamic_schedule(costs, self.threads, chunk=self.schedule_chunk)
        return max(sched.imbalance(costs), 1.0)

    # ------------------------------------------------------------- public
    def time(self, stats: KernelStats) -> SimulatedTime:
        """Predict the runtime of one kernel phase from its stats."""
        mc = self.machine
        fam = algorithm_family(stats.algorithm, self.cycles_per_op)
        cpo = self.cycles_per_op.get(fam, self.cycles_per_op.get("default", 10.0))

        compute_cycles = stats.ops * cpo
        memory_cycles = 0.0
        miss_bytes = 0.0
        total_acc = sum(stats.table_traffic.values())
        avg_tb = (
            sum(tb * acc for tb, acc in stats.table_traffic.items()) / total_acc
            if total_acc
            else 0.0
        )
        for tb, acc in stats.table_traffic.items():
            memory_cycles += acc * self._access_extra_cycles(tb, avg_tb)
            miss_bytes += self._miss_bytes(tb, acc, avg_tb)
        overhead_cycles = 0.0
        if stats.parts > 1:
            overhead_cycles = (
                stats.parts
                * max(stats.n_cols, 1)
                * (PART_FIXED_CYCLES + stats.k * PART_SEARCH_CYCLES)
            )

        imb = self._imbalance(stats)
        t_eff = max(self.threads, 1)
        sec = 1.0 / mc.clock_hz
        init_seconds = 0.0
        if fam == "spa":
            # Every thread first-touches its private length-m SPA; wall
            # time is one thread's init (they run concurrently).
            slots = stats.ds_bytes_peak / 12.0
            init_seconds = slots * SPA_INIT_CYCLES * sec
        # Parallel-region launches: k-way kernels sweep the columns once
        # per phase; pairwise algorithms fork one region per 2-way merge
        # (k-1 of them) — the overhead that makes them lose even at
        # small k on tiny inputs.  The sliding kernels pay extra
        # bookkeeping passes (the paper's sliding hash trails plain hash
        # 3x on tiny inputs even when parts=1).
        launches = 1
        if fam in ("2way_incremental", "2way_tree", "scipy_incremental", "scipy_tree"):
            launches = max(stats.k - 1, 1)
            # freshly allocated intermediates: page-fault + zero cost
            compute_cycles += (
                stats.intermediate_nnz * 8 * ALLOC_CYCLES_PER_BYTE
            )
        elif fam.startswith("sliding_hash"):
            launches = 2
        return SimulatedTime(
            compute=compute_cycles * sec / t_eff * imb,
            memory=memory_cycles * sec / t_eff * imb,
            bandwidth=(stats.total_bytes + miss_bytes) / mc.bw_at(self.threads),
            overhead=overhead_cycles * sec / t_eff,
            init=init_seconds,
            fixed=PHASE_LAUNCH_SECONDS * launches,
            imbalance=imb,
        )

    def time_two_phase(
        self,
        stats_add: KernelStats,
        stats_symbolic: Optional[KernelStats],
    ) -> SimulatedTime:
        """Total of symbolic + addition phases (hash-family methods)."""
        t = self.time(stats_add)
        if stats_symbolic is not None:
            t = t + self.time(stats_symbolic)
        return t

    def with_threads(self, threads: int) -> "CostModel":
        return CostModel(
            self.machine,
            threads,
            dict(self.cycles_per_op),
            self.schedule,
            self.schedule_chunk,
        )

    def ll_miss_estimate(self, stats: KernelStats) -> float:
        """Analytic last-level miss count for the stats' table traffic:
        capacity misses via the miss fraction + cold misses per table
        instance (one instance per column per partition)."""
        mc = self.machine
        instances = max(stats.n_cols, 1) * max(stats.parts, 1)
        total = 0.0
        for tb, acc in stats.table_traffic.items():
            shared = tb * self.threads
            total += acc * analytic_miss_fraction(shared, mc.llc_bytes)
        # cold fills: each distinct table instance streams through once
        biggest = max(stats.table_traffic, default=0)
        total += (biggest / mc.cacheline_bytes) * min(
            instances, 64
        )  # cap: buffers are reused across columns
        return total
