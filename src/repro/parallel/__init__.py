"""Shared-memory parallel substrate.

The paper parallelizes SpKAdd over output columns with *no* thread
synchronization: each thread owns a private accumulator (heap / SPA /
hash table) and a disjoint set of columns.  This subpackage provides

* :mod:`~repro.parallel.partition` — row/column partitioning primitives
  (equal ranges, prefix-sum weighted ranges);
* :mod:`~repro.parallel.scheduler` — static and dynamic (by-nnz)
  column schedules, the paper's load-balancing rule (Section III-A:
  input nnz weights the symbolic phase, output nnz the addition phase);
* :mod:`~repro.parallel.executor` — real thread/process/shared-memory
  executors over column blocks, and a *simulated* executor that turns
  per-column work vectors into per-thread makespans for the scaling
  study (Fig 3);
* :mod:`~repro.parallel.shm` — the ``multiprocessing.shared_memory``
  plumbing behind ``executor="shm"``: segment registry, spawn-safe
  attach handles, the two-wave compute/scatter engine, and zero-copy
  result ownership (:class:`~repro.parallel.shm.SharedResultOwner`);
* :mod:`~repro.parallel.pools` — the persistent worker-pool registry
  both process-based executors draw from
  (:func:`~repro.parallel.pools.shutdown_pools` tears it down);
* :mod:`~repro.parallel.resilience` — the resilient-execution policy
  (chunk retry, per-call deadlines, the ``shm → process → thread →
  serial`` fallback chain) every parallel call runs under;
* :mod:`~repro.parallel.faults` — env/API-driven fault injection
  (worker kills, chunk delays, scatter failures, ENOSPC, boot hangs)
  for the chaos suite and for embedders validating their own
  supervision.
"""

from repro.parallel.partition import (
    row_partition_bounds,
    split_even,
    split_weighted,
)
from repro.parallel.scheduler import (
    Schedule,
    dynamic_schedule,
    schedule_makespan,
    static_schedule,
)
from repro.parallel.executor import (
    EXECUTOR_ENV_VAR,
    EXECUTORS,
    parallel_spkadd,
    resolve_executor,
    simulate_parallel_time,
)
from repro.parallel.pools import (
    PoolRegistry,
    active_pools,
    discard_pool,
    get_pool,
    lease_pool,
    shutdown_pools,
)
from repro.parallel.shm import (
    SHM_RESULTS_ENV_VAR,
    SegmentRegistry,
    SharedArraySpec,
    SharedResultOwner,
    list_live_segments,
    resolve_shm_results,
    sweep_orphans,
)
from repro.parallel.resilience import (
    BOOT_TIMEOUT_ENV_VAR,
    DEADLINE_ENV_VAR,
    Deadline,
    DeadlineExceeded,
    ExecutorUnusable,
    FALLBACK_ENV_VAR,
    FALLBACK_STAGES,
    MAX_RETRIES_ENV_VAR,
    PoolBootTimeout,
    ResilienceError,
    ResiliencePolicy,
    RetriesExhausted,
    ShmAllocationError,
    resolve_policy,
)
from repro.parallel import faults
from repro.parallel.faults import FAULTS_ENV_VAR, FaultPlan, InjectedFault

__all__ = [
    "EXECUTOR_ENV_VAR",
    "EXECUTORS",
    "resolve_executor",
    "BOOT_TIMEOUT_ENV_VAR",
    "DEADLINE_ENV_VAR",
    "Deadline",
    "DeadlineExceeded",
    "ExecutorUnusable",
    "FALLBACK_ENV_VAR",
    "FALLBACK_STAGES",
    "FAULTS_ENV_VAR",
    "FaultPlan",
    "InjectedFault",
    "MAX_RETRIES_ENV_VAR",
    "PoolBootTimeout",
    "ResilienceError",
    "ResiliencePolicy",
    "RetriesExhausted",
    "ShmAllocationError",
    "faults",
    "resolve_policy",
    "sweep_orphans",
    "PoolRegistry",
    "active_pools",
    "discard_pool",
    "get_pool",
    "lease_pool",
    "shutdown_pools",
    "SHM_RESULTS_ENV_VAR",
    "SegmentRegistry",
    "SharedArraySpec",
    "SharedResultOwner",
    "list_live_segments",
    "resolve_shm_results",
    "row_partition_bounds",
    "split_even",
    "split_weighted",
    "Schedule",
    "dynamic_schedule",
    "schedule_makespan",
    "static_schedule",
    "parallel_spkadd",
    "simulate_parallel_time",
]
