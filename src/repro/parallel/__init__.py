"""Shared-memory parallel substrate.

The paper parallelizes SpKAdd over output columns with *no* thread
synchronization: each thread owns a private accumulator (heap / SPA /
hash table) and a disjoint set of columns.  This subpackage provides

* :mod:`~repro.parallel.partition` — row/column partitioning primitives
  (equal ranges, prefix-sum weighted ranges);
* :mod:`~repro.parallel.scheduler` — static and dynamic (by-nnz)
  column schedules, the paper's load-balancing rule (Section III-A:
  input nnz weights the symbolic phase, output nnz the addition phase);
* :mod:`~repro.parallel.executor` — a real thread-pool executor over
  column blocks, and a *simulated* executor that turns per-column work
  vectors into per-thread makespans for the scaling study (Fig 3).
"""

from repro.parallel.partition import (
    row_partition_bounds,
    split_even,
    split_weighted,
)
from repro.parallel.scheduler import (
    Schedule,
    dynamic_schedule,
    schedule_makespan,
    static_schedule,
)
from repro.parallel.executor import parallel_spkadd, simulate_parallel_time

__all__ = [
    "row_partition_bounds",
    "split_even",
    "split_weighted",
    "Schedule",
    "dynamic_schedule",
    "schedule_makespan",
    "static_schedule",
    "parallel_spkadd",
    "simulate_parallel_time",
]
