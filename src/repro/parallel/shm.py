"""Zero-copy shared-memory process engine for ``parallel_spkadd``.

The plain process pool (``executor="process"``) pickles every
column-chunk view into each worker and pickles every chunk result back —
pure copy overhead for a bandwidth-bound kernel — and pays a full
fork/teardown per call.  This module replaces that transport with
``multiprocessing.shared_memory`` plus a persistent worker pool:

1. the parent **publishes** the k input CSC arrays
   (indptr/indices/values) into one named shared segment *once* per
   call;
2. workers **attach read-only** and compute their column chunks on
   zero-copy views of the shared inputs, staging each chunk's output in
   a parent-owned scratch slot sized by the chunk's input nnz (an exact
   upper bound: SpKAdd output is the structural union of its inputs) and
   returning only the per-column output counts — the **symbolic sizing**
   of the result;
3. the parent turns the symbolic counts into the exact output layout
   (:func:`repro.core.symbolic.chunk_output_layout`), preallocates one
   shared CSC buffer, and workers **scatter** their staged chunks into
   their private output slice — no per-chunk pickling, no gather
   concatenate.

Chunk results are produced by the same ``_run_chunk`` the thread and
process pools use, so the assembled matrix (and the merged stats) are
bit-identical across all executors and both kernel backends.

Engine lifecycle (:class:`SharedMemoryPool`): the worker pool is created
on first use and **reused across calls** — repeated ``spkadd`` calls pay
the worker-startup cost once (a ``forkserver`` spawn by default — see
:func:`repro.parallel.executor.mp_context` — which is exactly the cost
the per-call process executor pays every time).  Workers key their cached attachments by a per-call
session id and drop the previous session's mappings when a new one
arrives, so steady-state worker memory is bounded by one call's
segments.  A broken pool (crashed worker) is discarded and rebuilt on
the next call.

Segment lifecycle: every segment is created by the *parent* and tracked
in a :class:`SegmentRegistry`; ``unlink()`` runs in a ``finally`` so no
``/dev/shm`` entry survives normal exit, a worker exception, or a broken
pool.  Workers only ever attach by name — handles travel as picklable
:class:`SharedArraySpec` tuples, which keeps the engine safe under the
``spawn`` start method (Windows/macOS) as well as ``fork``.
"""

from __future__ import annotations

import os
import secrets
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.formats.csc import CSCMatrix

#: every segment this engine creates is named with this prefix, so leak
#: checks (and humans inspecting /dev/shm) can attribute them.
SEGMENT_PREFIX = "repro_shm_"

#: byte alignment of packed arrays inside a segment (>= any dtype's
#: itemsize here; keeps every view naturally aligned for NumPy).
_ALIGN = 16


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable handle to a 1-D array living in a named shared segment.

    Only metadata travels between processes — the receiving side attaches
    to the segment by ``name`` and wraps the bytes at ``offset`` in an
    ndarray of ``size`` elements of ``dtype``.  Many arrays share one
    segment (packing keeps the number of ``shm_open``/``mmap`` calls — the
    dominant fixed cost — independent of k and the chunk count).
    ``writable`` marks output buffers; input attachments are mapped
    read-only.
    """

    name: str
    dtype: str
    size: int
    offset: int = 0
    writable: bool = False

    def as_array(self, buf) -> np.ndarray:
        return np.ndarray(
            (self.size,),
            dtype=np.dtype(self.dtype),
            buffer=buf,
            offset=self.offset,
        )


def _new_segment_name() -> str:
    return f"{SEGMENT_PREFIX}{os.getpid():x}_{secrets.token_hex(6)}"


def list_live_segments() -> List[str]:
    """Names of engine-owned segments currently present in ``/dev/shm``.

    POSIX-only diagnostic used by the leak tests; returns ``[]`` where
    shared memory is not exposed as a filesystem.
    """
    root = "/dev/shm"
    if not os.path.isdir(root):
        return []
    return sorted(f for f in os.listdir(root) if f.startswith(SEGMENT_PREFIX))


class SegmentRegistry:
    """Parent-side owner of shared segments.

    Centralizes creation so cleanup is a single idempotent
    :meth:`unlink` — called in a ``finally`` by the engine, and again by
    ``__exit__`` when used as a context manager, covering worker-crash
    and mid-setup error paths.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._views: Dict[SharedArraySpec, np.ndarray] = {}

    # ------------------------------------------------------------ create
    def _create(self, nbytes: int) -> shared_memory.SharedMemory:
        seg = shared_memory.SharedMemory(
            create=True, name=_new_segment_name(), size=max(int(nbytes), 1)
        )
        self._segments[seg.name.lstrip("/")] = seg
        return seg

    def _pack(
        self, layouts: Sequence[Tuple[int, np.dtype]], *, writable: bool
    ) -> List[SharedArraySpec]:
        """One segment holding all ``(size, dtype)`` arrays, aligned."""
        offsets = []
        cursor = 0
        for size, dtype in layouts:
            offsets.append(cursor)
            cursor += -(-(int(size) * dtype.itemsize) // _ALIGN) * _ALIGN
        seg = self._create(cursor)
        name = seg.name.lstrip("/")
        specs = []
        for (size, dtype), offset in zip(layouts, offsets):
            spec = SharedArraySpec(
                name, dtype.str, int(size), offset, writable=writable
            )
            self._views[spec] = spec.as_array(seg.buf)
            specs.append(spec)
        return specs

    def publish(self, arrays: Sequence[np.ndarray]) -> List[SharedArraySpec]:
        """Copy ``arrays`` into one new read-only segment; returns the
        per-array attach handles."""
        arrays = [np.ascontiguousarray(a) for a in arrays]
        specs = self._pack(
            [(a.size, a.dtype) for a in arrays], writable=False
        )
        for spec, arr in zip(specs, arrays):
            self._views[spec][...] = arr
        return specs

    def allocate(
        self, layouts: Sequence[Tuple[int, np.dtype]]
    ) -> List[SharedArraySpec]:
        """One new writable segment holding a ``(size, dtype)`` array per
        entry of ``layouts``."""
        return self._pack(
            [(size, np.dtype(dtype)) for size, dtype in layouts],
            writable=True,
        )

    # ------------------------------------------------------------ access
    def view(self, spec: SharedArraySpec) -> np.ndarray:
        return self._views[spec]

    def read_out(self, spec: SharedArraySpec) -> np.ndarray:
        """Private copy of an array's contents (survives :meth:`unlink`)."""
        return self._views[spec].copy()

    # ----------------------------------------------------------- cleanup
    def unlink(self) -> None:
        """Drop views, close and unlink every owned segment (idempotent)."""
        self._views.clear()
        segments, self._segments = self._segments, {}
        for seg in segments.values():
            try:
                seg.close()
            except BufferError:  # pragma: no cover - a leaked external view
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SegmentRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()


class SegmentAttachments:
    """Worker-side cache of attached segments (spec -> ndarray view).

    Each worker process attaches to a given segment at most once; input
    views are mapped with ``writeable=False`` so a buggy kernel cannot
    corrupt the shared addends.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._views: Dict[SharedArraySpec, np.ndarray] = {}

    def attach(self, spec: SharedArraySpec) -> np.ndarray:
        view = self._views.get(spec)
        if view is None:
            seg = self._segments.get(spec.name)
            if seg is None:
                seg = shared_memory.SharedMemory(name=spec.name)
                self._segments[spec.name] = seg
            view = spec.as_array(seg.buf)
            if not spec.writable:
                view.flags.writeable = False
            self._views[spec] = view
        return view

    def close(self) -> None:
        """Release every mapping (view refs must be dropped first)."""
        self._views.clear()
        segments, self._segments = self._segments, {}
        for seg in segments.values():
            try:
                seg.close()
            except BufferError:  # pragma: no cover - view still referenced
                pass


# --------------------------------------------------------------------------
# Worker side.  Tasks carry a per-call *session* (input handles + kernel
# arguments, a few KB of pickled metadata); workers cache the attachments
# and reconstructed matrices for the session and drop them when a task
# from a newer session arrives.  Shipping the session with the task
# rather than via a pool initializer is what lets one long-lived pool
# serve many calls.
# --------------------------------------------------------------------------

_WORKER_SESSION: dict = {"id": None, "attach": None, "mats": None, "meta": None}


def _ensure_session(session: dict) -> dict:
    state = _WORKER_SESSION
    if state["id"] != session["id"]:
        state["mats"] = None  # drop matrix views before closing mappings
        if state["attach"] is not None:
            state["attach"].close()
        state["id"] = session["id"]
        state["attach"] = SegmentAttachments()
        state["meta"] = session
    return state


def _worker_mats(state: dict) -> Sequence[CSCMatrix]:
    if state["mats"] is None:
        att = state["attach"]
        state["mats"] = [
            CSCMatrix(
                info["shape"],
                att.attach(info["indptr"]),
                att.attach(info["indices"]),
                att.attach(info["data"]),
                sorted=info["sorted"],
                check=False,
            )
            for info in state["meta"]["mats"]
        ]
    return state["mats"]


def _compute_chunk(task) -> tuple:
    """Wave 1: run the kernel on columns ``[j0, j1)`` of the shared
    inputs and stage the result in this chunk's scratch slot.

    Returns the symbolic sizing of the chunk (exact per-column output
    counts) plus the chunk stats; the values themselves stay in shared
    memory and never cross the pipe.
    """
    session, j0, j1, scratch_indices, scratch_data = task
    state = _ensure_session(session)
    # Deferred: executor imports this module.
    from repro.parallel.executor import _run_chunk

    views = [A.col_view(j0, j1) for A in _worker_mats(state)]
    _, sub, st, st_sym = _run_chunk(
        session["method"], j0, views, session["sorted_output"],
        session["kwargs"],
    )
    att = state["attach"]
    idx_buf = att.attach(scratch_indices)
    dat_buf = att.attach(scratch_data)
    if sub.nnz > idx_buf.size:
        raise RuntimeError(
            f"chunk [{j0}, {j1}) produced {sub.nnz} entries, more than its "
            f"input-nnz bound {idx_buf.size} — kernel violated the "
            "structural-union invariant"
        )
    # Scratch dtypes match the kernel's by construction (the parent
    # sizes them from the same ``resolve_value_dtype`` /
    # ``resolve_index_dtype`` rules the kernels emit in), so any value
    # dtype — float32, exact int64, ... — stages without conversion.  A
    # widening cast is tolerated: chunk kernels resolve their *chunk's*
    # index bounds, which may come out one width below the call-level
    # resolution staged here.  A lossy cast (a kernel emitting wider
    # values or indices than the parent resolved) would silently
    # round/wrap, so it stays a hard error.
    if not np.can_cast(sub.data.dtype, dat_buf.dtype, casting="safe"):
        raise RuntimeError(
            f"chunk [{j0}, {j1}) emitted {sub.data.dtype} values but the "
            f"shared scratch is {dat_buf.dtype}; the kernel disagrees "
            "with resolve_value_dtype — staging would lose precision"
        )
    if not np.can_cast(sub.indices.dtype, idx_buf.dtype, casting="safe"):
        raise RuntimeError(
            f"chunk [{j0}, {j1}) emitted {sub.indices.dtype} indices but "
            f"the shared scratch is {idx_buf.dtype}; the kernel disagrees "
            "with resolve_index_dtype — staging would wrap indices"
        )
    idx_buf[: sub.nnz] = sub.indices
    dat_buf[: sub.nnz] = sub.data
    return j0, np.diff(sub.indptr), bool(sub.sorted), st, st_sym


def _scatter_chunks(task) -> int:
    """Wave 2: copy staged chunks into their slices of the output buffer.

    Each worker receives one batch (the copies are balanced by
    construction — chunks have near-equal nnz), so the scatter costs a
    single pool round-trip per worker.
    """
    session, batch = task
    state = _ensure_session(session)
    att = state["attach"]
    done = 0
    for nnz, lo, scratch_indices, scratch_data, out_indices, out_data in batch:
        att.attach(out_indices)[lo : lo + nnz] = att.attach(scratch_indices)[:nnz]
        att.attach(out_data)[lo : lo + nnz] = att.attach(scratch_data)[:nnz]
        done += 1
    return done


# --------------------------------------------------------------------------
# Parent side.
# --------------------------------------------------------------------------


def _chunk_input_nnz(
    mats: Sequence[CSCMatrix], ranges: Sequence[Tuple[int, int]]
) -> List[int]:
    return [
        int(sum(int(A.indptr[j1]) - int(A.indptr[j0]) for A in mats))
        for j0, j1 in ranges
    ]


class SharedMemoryPool:
    """Persistent process pool + per-call segment sessions.

    One engine instance owns at most one ``ProcessPoolExecutor``; the
    pool survives across :meth:`run` calls with the same worker count,
    amortizing process startup.  Calls are serialized by an internal
    lock (concurrent sessions on one pool would thrash the workers'
    attachment caches).  :meth:`shutdown` releases the workers; the
    module-level default engine keeps its workers until interpreter
    exit.
    """

    def __init__(self, mp_context=None) -> None:
        self._mp_context = mp_context
        self._pool: Optional[ProcessPoolExecutor] = None
        self._workers = 0
        self._lock = threading.Lock()

    def _get_pool(self, threads: int) -> ProcessPoolExecutor:
        if self._pool is None or self._workers != threads:
            self.shutdown()
            ctx = self._mp_context
            if ctx is None:
                # Default to the fork-safe context (forkserver where
                # available): this engine routinely coexists with
                # thread pools in one process, where a bare fork can
                # inherit a locked mutex and deadlock the worker.
                from repro.parallel.executor import mp_context

                ctx = mp_context()
            self._pool = ProcessPoolExecutor(
                max_workers=threads, mp_context=ctx
            )
            self._workers = threads
        return self._pool

    def shutdown(self) -> None:
        """Release the worker pool (next :meth:`run` builds a fresh one)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._workers = 0

    def run(
        self,
        mats: Sequence[CSCMatrix],
        method: str,
        ranges: Sequence[Tuple[int, int]],
        *,
        sorted_output: bool,
        kwargs: dict,
        threads: int,
        index_dtype=None,
    ):
        """Execute ``method`` over ``ranges`` on the shared-memory pool.

        Returns ``(matrix, stat_items)`` with ``stat_items`` a list of
        ``(j0, stats, stats_symbolic)`` per chunk, chunk-identical to
        what the thread/process executors produce.
        """
        with self._lock:
            try:
                return self._run_locked(
                    mats, method, ranges,
                    sorted_output=sorted_output, kwargs=kwargs,
                    threads=threads, index_dtype=index_dtype,
                )
            except BrokenProcessPool:
                # A dead worker poisons the whole pool; drop it so the
                # next call starts from a clean fork.
                self.shutdown()
                raise

    def _run_locked(
        self, mats, method, ranges, *, sorted_output, kwargs, threads,
        index_dtype=None,
    ):
        from repro.core.symbolic import chunk_output_layout
        from repro.kernels import resolve_index_dtype, resolve_value_dtype

        m, n = mats[0].shape
        # The kernels accumulate (and emit) in the dtypes these rules
        # resolve over the k addends; scratch and output segments are
        # sized from them, so float32 collections move half the value
        # bytes of float64, int32-resolved calls move half the index
        # bytes of int64, and int64 sums stage exactly.
        value_dtype = resolve_value_dtype(mats)
        idx_dtype = resolve_index_dtype(mats, index_dtype)
        registry = SegmentRegistry()
        try:
            input_specs = registry.publish(
                [arr for A in mats for arr in (A.indptr, A.indices, A.data)]
            )
            session = {
                "id": secrets.token_hex(8),
                "mats": [
                    {
                        "shape": A.shape,
                        "sorted": A.sorted,
                        "indptr": input_specs[3 * i],
                        "indices": input_specs[3 * i + 1],
                        "data": input_specs[3 * i + 2],
                    }
                    for i, A in enumerate(mats)
                ],
                "method": method,
                "sorted_output": sorted_output,
                "kwargs": kwargs,
            }
            # Scratch staging slots, sized by each chunk's summed input
            # nnz — an exact upper bound on its output nnz — in the
            # resolved index and value dtypes.
            scratch_specs = registry.allocate(
                [
                    layout
                    for nnz_in in _chunk_input_nnz(mats, ranges)
                    for layout in ((nnz_in, idx_dtype), (nnz_in, value_dtype))
                ]
            )
            scratch = list(zip(scratch_specs[0::2], scratch_specs[1::2]))
            pool = self._get_pool(threads)
            futures = [
                pool.submit(_compute_chunk, (session, j0, j1, s_idx, s_dat))
                for (j0, j1), (s_idx, s_dat) in zip(ranges, scratch)
            ]
            try:
                col_nnz = np.zeros(n, dtype=np.int64)
                stat_items = []
                sorted_flags = []
                for fut in futures:
                    j0, counts, sub_sorted, st, st_sym = fut.result()
                    col_nnz[j0 : j0 + counts.size] = counts
                    stat_items.append((j0, st, st_sym))
                    sorted_flags.append(sub_sorted)
                indptr, offsets = chunk_output_layout(
                    col_nnz, ranges, index_dtype=idx_dtype
                )
                total = int(indptr[-1])
                out_indices, out_data = registry.allocate(
                    [(total, indptr.dtype), (total, value_dtype)]
                )
                scatter_tasks = [
                    (hi - lo, lo, s_idx, s_dat, out_indices, out_data)
                    for (lo, hi), (s_idx, s_dat) in zip(offsets, scratch)
                ]
                batches = [
                    scatter_tasks[i::threads]
                    for i in range(threads)
                    if scatter_tasks[i::threads]
                ]
                for fut in [
                    pool.submit(_scatter_chunks, (session, b)) for b in batches
                ]:
                    fut.result()
            except BaseException:
                # Stop touching segments that are about to be unlinked.
                for fut in futures:
                    fut.cancel()
                raise
            out = CSCMatrix(
                (m, n),
                indptr,
                registry.read_out(out_indices),
                registry.read_out(out_data),
                sorted=all(sorted_flags),
                check=False,
            )
        finally:
            registry.unlink()
        return out, stat_items


#: default engine used by ``executor="shm"`` — its workers persist
#: across calls (fork cost paid once per process / worker count).
_DEFAULT_ENGINE = SharedMemoryPool()


def shm_parallel_run(
    mats: Sequence[CSCMatrix],
    method: str,
    ranges: Sequence[Tuple[int, int]],
    *,
    sorted_output: bool,
    kwargs: dict,
    threads: int,
    index_dtype=None,
):
    """Run on the module's default :class:`SharedMemoryPool` engine."""
    return _DEFAULT_ENGINE.run(
        mats, method, ranges,
        sorted_output=sorted_output, kwargs=kwargs, threads=threads,
        index_dtype=index_dtype,
    )
