"""Zero-copy shared-memory process engine for ``parallel_spkadd``.

The plain process pool (``executor="process"``) pickles every
column-chunk view into each worker and pickles every chunk result back —
pure copy overhead for a bandwidth-bound kernel — and pays a full
fork/teardown per call.  This module replaces that transport with
``multiprocessing.shared_memory`` plus a persistent worker pool:

1. the parent **publishes** the k input CSC arrays
   (indptr/indices/values) into one named shared segment *once* per
   call;
2. workers **attach read-only** and compute their column chunks on
   zero-copy views of the shared inputs, staging each chunk's output in
   a parent-owned scratch slot sized by the chunk's input nnz (an exact
   upper bound: SpKAdd output is the structural union of its inputs) and
   returning only the per-column output counts — the **symbolic sizing**
   of the result;
3. the parent turns the symbolic counts into the exact output layout
   (:func:`repro.core.symbolic.chunk_output_layout`), preallocates one
   shared CSC buffer, and workers **scatter** their staged chunks into
   their private output slice — no per-chunk pickling, no gather
   concatenate.

Chunk results are produced by the same ``_run_chunk`` the thread and
process pools use, so the assembled matrix (and the merged stats) are
bit-identical across all executors and both kernel backends.

Engine lifecycle (:class:`SharedMemoryPool`): workers come from the
persistent pool registry (:mod:`repro.parallel.pools`) and are **reused
across calls** — repeated ``spkadd`` calls pay the worker-startup cost
once (a ``forkserver`` spawn by default — see
:func:`repro.parallel.executor.mp_context`).  Workers key their cached
attachments by a per-call session id and drop the previous session's
mappings when a new one arrives, so steady-state worker memory is
bounded by one call's segments.  A broken pool (crashed worker) is
discarded from the registry and rebuilt on the next call;
:func:`repro.parallel.pools.shutdown_pools` releases the workers.

Segment lifecycle: every segment is created by the *parent* and tracked
in a :class:`SegmentRegistry`; input and scratch segments are unlinked
in a ``finally`` so none survives normal exit, a worker exception, or a
broken pool.  Workers only ever attach by name — handles travel as
picklable :class:`SharedArraySpec` tuples, which keeps the engine safe
under the ``spawn`` start method (Windows/macOS) as well as ``fork``.

Result placement is **zero-copy** by default: the finished CSC arrays
are returned as views into the output segment, kept alive by a
:class:`SharedResultOwner` whose finalizer unlinks the segment when the
last view dies — huge outputs never pay a final memcpy, and ``/dev/shm``
still ends empty once the result is garbage-collected.
``spkadd(..., materialize=True)`` (or ``REPRO_SHM_RESULTS=materialize``)
restores the private-copy behaviour for callers whose results must
outlive any shared-memory bookkeeping.

Resilience: both submit waves retry transiently failed chunks on a
rebuilt pool under the call's
:class:`~repro.parallel.resilience.ResiliencePolicy` — safe because
every staged write is **idempotent by construction** (each chunk owns a
fixed scratch slot and a disjoint output slice, so a retried chunk
rewrites its range bit-identically).  Segment names embed the creating
PID, so :func:`sweep_orphans` can unlink segments whose creator died
without running its ``finally`` (a SIGKILLed *parent*; worker deaths
are already covered by parent-side ownership); the sweep runs on pool
rebuild, before retry waves, and at interpreter exit.
"""

from __future__ import annotations

import atexit
import errno
import os
import secrets
import sys
import threading
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.formats.csc import CSCMatrix

#: every segment this engine creates is named with this prefix, so leak
#: checks (and humans inspecting /dev/shm) can attribute them.
SEGMENT_PREFIX = "repro_shm_"

#: environment variable pinning the engine's default result placement:
#: ``zero-copy`` (the default — segment-backed arrays, unlink on gc) or
#: ``materialize``/``copy`` (private copies, the pre-zero-copy contract).
SHM_RESULTS_ENV_VAR = "REPRO_SHM_RESULTS"

#: byte alignment of packed arrays inside a segment (>= any dtype's
#: itemsize here; keeps every view naturally aligned for NumPy).
_ALIGN = 16


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable handle to a 1-D array living in a named shared segment.

    Only metadata travels between processes — the receiving side attaches
    to the segment by ``name`` and wraps the bytes at ``offset`` in an
    ndarray of ``size`` elements of ``dtype``.  Many arrays share one
    segment (packing keeps the number of ``shm_open``/``mmap`` calls — the
    dominant fixed cost — independent of k and the chunk count).
    ``writable`` marks output buffers; input attachments are mapped
    read-only.
    """

    name: str
    dtype: str
    size: int
    offset: int = 0
    writable: bool = False

    def as_array(self, buf) -> np.ndarray:
        return np.ndarray(
            (self.size,),
            dtype=np.dtype(self.dtype),
            buffer=buf,
            offset=self.offset,
        )


def resolve_shm_results(materialize: Optional[bool] = None) -> bool:
    """True when shm results must be materialized (copied out of shared
    memory): explicit ``materialize=`` argument > ``REPRO_SHM_RESULTS``
    environment variable > zero-copy default.

    >>> resolve_shm_results(True)
    True
    """
    if materialize is not None:
        return bool(materialize)
    from repro import env

    result: bool = env.get(SHM_RESULTS_ENV_VAR)
    return result


def _new_segment_name() -> str:
    return f"{SEGMENT_PREFIX}{os.getpid():x}_{secrets.token_hex(6)}"


def list_live_segments() -> List[str]:
    """Names of engine-owned segments currently present in ``/dev/shm``.

    POSIX-only diagnostic used by the leak tests; returns ``[]`` where
    shared memory is not exposed as a filesystem.
    """
    root = "/dev/shm"
    if not os.path.isdir(root):
        return []
    return sorted(f for f in os.listdir(root) if f.startswith(SEGMENT_PREFIX))


def _segment_owner_pid(name: str) -> Optional[int]:
    """The PID baked into an engine segment name, or ``None`` if the
    name does not follow the ``repro_shm_<pidhex>_<token>`` scheme."""
    if not name.startswith(SEGMENT_PREFIX):
        return None
    pid_hex, _, token = name[len(SEGMENT_PREFIX):].partition("_")
    if not pid_hex or not token:
        return None
    try:
        return int(pid_hex, 16)
    except ValueError:
        return None


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


def sweep_orphans() -> List[str]:
    """Unlink engine segments in ``/dev/shm`` whose creator is dead.

    Segment names embed the creating PID
    (``repro_shm_<pidhex>_<token>``), so orphans — segments whose owner
    was SIGKILLed between ``shm_open`` and its ``finally`` — are
    identifiable without any shared bookkeeping.  This process's own
    live segments are never touched, and a PID that merely got recycled
    costs nothing worse than skipping a sweep (the check errs toward
    "alive").  Returns the names unlinked.

    Runs on broken-pool rebuild, before retry waves, and at interpreter
    exit; also public API for embedders supervising worker fleets.
    """
    own = os.getpid()
    swept = []
    for name in list_live_segments():
        pid = _segment_owner_pid(name)
        if pid is None or pid == own or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join("/dev/shm", name))
        except (FileNotFoundError, PermissionError):
            continue  # raced with another sweeper, or not ours to clean
        swept.append(name)
    return swept


# Registered *after* module import completes; runs before (LIFO) the
# pool registry's atexit shutdown, which is harmless — the sweep only
# touches dead-owner segments, never this process's own.
atexit.register(sweep_orphans)


class SegmentRegistry:
    """Parent-side owner of shared segments.

    Centralizes creation so cleanup is a single idempotent
    :meth:`unlink` — called in a ``finally`` by the engine, and again by
    ``__exit__`` when used as a context manager, covering worker-crash
    and mid-setup error paths.  ``fault_plan`` lets the chaos harness
    fail allocations; a real or injected ``ENOSPC`` surfaces as the
    typed :class:`~repro.parallel.resilience.ShmAllocationError` that
    sends the call down the fallback chain.
    """

    def __init__(self, fault_plan=None) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._views: Dict[SharedArraySpec, np.ndarray] = {}
        self._fault_plan = fault_plan

    # ------------------------------------------------------------ create
    def _create(self, nbytes: int) -> shared_memory.SharedMemory:
        from repro.parallel.resilience import ShmAllocationError

        if self._fault_plan is not None and self._fault_plan.take_enospc():
            raise ShmAllocationError(
                "injected ENOSPC: shared segment allocation failed",
                executor="shm",
            )
        try:
            seg = shared_memory.SharedMemory(
                create=True, name=_new_segment_name(), size=max(int(nbytes), 1)
            )
        except OSError as err:
            if err.errno == errno.ENOSPC:
                raise ShmAllocationError(
                    f"/dev/shm cannot hold a {nbytes}-byte segment: {err}",
                    executor="shm",
                ) from err
            raise
        self._segments[seg.name.lstrip("/")] = seg
        return seg

    def _pack(
        self, layouts: Sequence[Tuple[int, np.dtype]], *, writable: bool
    ) -> List[SharedArraySpec]:
        """One segment holding all ``(size, dtype)`` arrays, aligned."""
        offsets = []
        cursor = 0
        for size, dtype in layouts:
            offsets.append(cursor)
            cursor += -(-(int(size) * dtype.itemsize) // _ALIGN) * _ALIGN
        seg = self._create(cursor)
        name = seg.name.lstrip("/")
        specs = []
        for (size, dtype), offset in zip(layouts, offsets):
            spec = SharedArraySpec(
                name, dtype.str, int(size), offset, writable=writable
            )
            self._views[spec] = spec.as_array(seg.buf)
            specs.append(spec)
        return specs

    def publish(self, arrays: Sequence[np.ndarray]) -> List[SharedArraySpec]:
        """Copy ``arrays`` into one new read-only segment; returns the
        per-array attach handles."""
        arrays = [np.ascontiguousarray(a) for a in arrays]
        specs = self._pack(
            [(a.size, a.dtype) for a in arrays], writable=False
        )
        for spec, arr in zip(specs, arrays):
            self._views[spec][...] = arr
        return specs

    def allocate(
        self, layouts: Sequence[Tuple[int, np.dtype]]
    ) -> List[SharedArraySpec]:
        """One new writable segment holding a ``(size, dtype)`` array per
        entry of ``layouts``."""
        return self._pack(
            [(size, np.dtype(dtype)) for size, dtype in layouts],
            writable=True,
        )

    # ------------------------------------------------------------ access
    def view(self, spec: SharedArraySpec) -> np.ndarray:
        return self._views[spec]

    def read_out(self, spec: SharedArraySpec) -> np.ndarray:
        """Private copy of an array's contents (survives :meth:`unlink`)."""
        return self._views[spec].copy()

    def detach(self, name: str) -> shared_memory.SharedMemory:
        """Transfer ownership of segment ``name`` out of the registry.

        The registry forgets the segment (and drops its parent-side
        views), so :meth:`unlink` will no longer touch it — the caller
        becomes responsible for its lifetime, normally by wrapping it in
        a :class:`SharedResultOwner`.
        """
        seg = self._segments.pop(name)
        for spec in [s for s in self._views if s.name == name]:
            del self._views[spec]
        return seg

    # ----------------------------------------------------------- cleanup
    def unlink(self) -> None:
        """Drop views, close and unlink every owned segment (idempotent)."""
        self._views.clear()
        segments, self._segments = self._segments, {}
        for seg in segments.values():
            try:
                seg.close()
            except BufferError:  # pragma: no cover - a leaked external view
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SegmentRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()


class SharedResultOwner:
    """Keep-alive owner of a detached result segment (zero-copy results).

    The engine :meth:`adopt`\\ s the output ``indices``/``data`` arrays
    from the segment; each adopted array registers a ``weakref.finalize``
    back to this owner, and the finalize machinery in turn holds the
    owner alive for as long as any adopted array (or any NumPy view
    derived from one — views keep their base array alive) exists.  When
    the **last** adopted array is torn down, the segment is unlinked —
    the ``/dev/shm`` entry disappears — and its mapping closed.

    Ordering is safe by construction: the finalizer runs during the last
    array's deallocation, when nothing can read the buffer any more, and
    ``weakref.finalize`` also fires at interpreter exit, where only the
    unlink is performed (the OS reclaims mappings at process death, and
    closing under live late-shutdown references would dangle them).

    ``release()`` exists for explicit teardown in error paths and tests;
    it must only be called once no adopted view can be dereferenced
    again — closing a segment unmaps it even under live views.
    """

    def __init__(self, seg: shared_memory.SharedMemory) -> None:
        self._seg = seg
        self._lock = threading.Lock()
        self._outstanding = 0
        self._released = False

    @property
    def segment_name(self) -> str:
        """The ``/dev/shm`` entry this owner keeps alive."""
        return self._seg.name.lstrip("/")

    def adopt(self, spec: SharedArraySpec) -> np.ndarray:
        """Segment-backed array for ``spec``, tied to this owner's life."""
        arr = spec.as_array(self._seg.buf)
        with self._lock:
            self._outstanding += 1
        weakref.finalize(arr, self._drop)
        return arr

    def _drop(self) -> None:
        with self._lock:
            self._outstanding -= 1
            if self._outstanding > 0 or self._released:
                return
            self._released = True
        self._release_segment()

    def release(self) -> None:
        """Unlink and close now (idempotent); see the class docstring
        for when this is safe."""
        with self._lock:
            if self._released:
                return
            self._released = True
        self._release_segment()

    def _release_segment(self) -> None:
        try:
            self._seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        if sys.is_finalizing():
            # Interpreter shutdown: a late atexit handler could still
            # touch an adopted array; leave the mapping to the OS.
            return
        try:
            self._seg.close()
        except BufferError:  # pragma: no cover - an un-adopted export
            pass


class SegmentAttachments:
    """Worker-side cache of attached segments (spec -> ndarray view).

    Each worker process attaches to a given segment at most once; input
    views are mapped with ``writeable=False`` so a buggy kernel cannot
    corrupt the shared addends.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._views: Dict[SharedArraySpec, np.ndarray] = {}

    def attach(self, spec: SharedArraySpec) -> np.ndarray:
        view = self._views.get(spec)
        if view is None:
            seg = self._segments.get(spec.name)
            if seg is None:
                seg = shared_memory.SharedMemory(name=spec.name)
                self._segments[spec.name] = seg
            view = spec.as_array(seg.buf)
            if not spec.writable:
                view.flags.writeable = False
            self._views[spec] = view
        return view

    def close(self) -> None:
        """Release every mapping (view refs must be dropped first)."""
        self._views.clear()
        segments, self._segments = self._segments, {}
        for seg in segments.values():
            try:
                seg.close()
            except BufferError:  # pragma: no cover - view still referenced
                pass


# --------------------------------------------------------------------------
# Worker side.  Tasks carry a per-call *session* (input handles + kernel
# arguments, a few KB of pickled metadata); workers cache the attachments
# and reconstructed matrices for the session and drop them when a task
# from a newer session arrives.  Shipping the session with the task
# rather than via a pool initializer is what lets one long-lived pool
# serve many calls.
# --------------------------------------------------------------------------

_WORKER_SESSION: dict = {"id": None, "attach": None, "mats": None, "meta": None}


def _ensure_session(session: dict) -> dict:
    state = _WORKER_SESSION
    if state["id"] != session["id"]:
        state["mats"] = None  # drop matrix views before closing mappings
        if state["attach"] is not None:
            state["attach"].close()
        state["id"] = session["id"]
        state["attach"] = SegmentAttachments()
        state["meta"] = session
    return state


def _worker_mats(state: dict) -> Sequence[CSCMatrix]:
    if state["mats"] is None:
        att = state["attach"]
        state["mats"] = [
            CSCMatrix(
                info["shape"],
                att.attach(info["indptr"]),
                att.attach(info["indices"]),
                att.attach(info["data"]),
                sorted=info["sorted"],
                check=False,
            )
            for info in state["meta"]["mats"]
        ]
    return state["mats"]


def _compute_chunk(task) -> tuple:
    """Wave 1: run the kernel on columns ``[j0, j1)`` of the shared
    inputs and stage the result in this chunk's scratch slot.

    Returns the symbolic sizing of the chunk (exact per-column output
    counts) plus the chunk stats; the values themselves stay in shared
    memory and never cross the pipe.

    Idempotent: the chunk owns its scratch slot outright, so a retried
    task (after a worker death) restages the identical bytes over
    whatever a half-finished predecessor left behind.
    """
    session, j0, j1, scratch_indices, scratch_data, fault = task
    state = _ensure_session(session)
    if fault:
        from repro.parallel.faults import apply_chunk_fault

        apply_chunk_fault(fault)
    # Deferred: executor imports this module.
    from repro.parallel.executor import _run_chunk
    from repro.parallel.resilience import ChunkInvariantError

    views = [A.col_view(j0, j1) for A in _worker_mats(state)]
    _, sub, st, st_sym = _run_chunk(
        session["method"], j0, views, session["sorted_output"],
        session["kwargs"],
    )
    att = state["attach"]
    idx_buf = att.attach(scratch_indices)
    dat_buf = att.attach(scratch_data)
    if sub.nnz > idx_buf.size:
        raise ChunkInvariantError(
            f"chunk [{j0}, {j1}) produced {sub.nnz} entries, more than its "
            f"input-nnz bound {idx_buf.size} — kernel violated the "
            "structural-union invariant"
        )
    # Scratch dtypes match the kernel's by construction (the parent
    # sizes them from the same ``resolve_value_dtype`` /
    # ``resolve_index_dtype`` rules the kernels emit in), so any value
    # dtype — float32, exact int64, ... — stages without conversion.  A
    # widening cast is tolerated: chunk kernels resolve their *chunk's*
    # index bounds, which may come out one width below the call-level
    # resolution staged here.  A lossy cast (a kernel emitting wider
    # values or indices than the parent resolved) would silently
    # round/wrap, so it stays a hard error.
    if not np.can_cast(sub.data.dtype, dat_buf.dtype, casting="safe"):
        raise ChunkInvariantError(
            f"chunk [{j0}, {j1}) emitted {sub.data.dtype} values but the "
            f"shared scratch is {dat_buf.dtype}; the kernel disagrees "
            "with resolve_value_dtype — staging would lose precision"
        )
    if not np.can_cast(sub.indices.dtype, idx_buf.dtype, casting="safe"):
        raise ChunkInvariantError(
            f"chunk [{j0}, {j1}) emitted {sub.indices.dtype} indices but "
            f"the shared scratch is {idx_buf.dtype}; the kernel disagrees "
            "with resolve_index_dtype — staging would wrap indices"
        )
    idx_buf[: sub.nnz] = sub.indices
    dat_buf[: sub.nnz] = sub.data
    return j0, np.diff(sub.indptr), bool(sub.sorted), st, st_sym


def _scatter_chunks(task) -> int:
    """Wave 2: copy staged chunks into their slices of the output buffer.

    Each worker receives one batch (the copies are balanced by
    construction — chunks have near-equal nnz), so the scatter costs a
    single pool round-trip per worker.  Idempotent: every chunk's
    output slice is disjoint, so a retried batch rewrites its ranges
    bit-identically.
    """
    session, batch, fault = task
    state = _ensure_session(session)
    if fault:
        from repro.parallel.faults import apply_chunk_fault

        apply_chunk_fault(fault)
    att = state["attach"]
    done = 0
    for nnz, lo, scratch_indices, scratch_data, out_indices, out_data in batch:
        att.attach(out_indices)[lo : lo + nnz] = att.attach(scratch_indices)[:nnz]
        att.attach(out_data)[lo : lo + nnz] = att.attach(scratch_data)[:nnz]
        done += 1
    return done


# --------------------------------------------------------------------------
# Parent side.
# --------------------------------------------------------------------------


def _chunk_input_nnz(
    mats: Sequence[CSCMatrix], ranges: Sequence[Tuple[int, int]]
) -> List[int]:
    return [
        int(sum(int(A.indptr[j1]) - int(A.indptr[j0]) for A in mats))
        for j0, j1 in ranges
    ]


class SharedMemoryPool:
    """Persistent process pool + per-call segment sessions.

    Workers come from the pool registry (:mod:`repro.parallel.pools`)
    under kind ``"shm"``, so they survive across :meth:`run` calls —
    and across engine instances sharing a worker count and start method
    — amortizing process startup.  Calls on one engine are serialized
    by an internal lock, so the single default engine (every
    ``executor="shm"`` spkadd call) keeps the workers' attachment
    caches warm call after call.  Distinct engine *instances* sharing a
    registry key may interleave sessions on one pool: correct (workers
    re-key attachments by session id) but each switch re-attaches, so
    embedders wanting concurrent engines should give them distinct
    worker counts or contexts.  Because the pool may be shared,
    :meth:`shutdown` only drops this engine's reference (discarding the
    pool from the registry when it is broken); real teardown is
    :func:`repro.parallel.pools.shutdown_pools`, and the module-level
    default engine keeps its workers until that call or interpreter
    exit.
    """

    def __init__(self, mp_context=None) -> None:
        # None = the fork-safe repo default (forkserver where available):
        # this engine routinely coexists with thread pools in one
        # process, where a bare fork can inherit a locked mutex and
        # deadlock the worker.  The registry resolves the default.
        self._mp_context = mp_context
        self._pool: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()

    def _lease_pool(self, threads: int, deadline=None):
        """Context manager: the registry pool for this engine, checked
        out (eviction-pinned) for the duration of one wave."""
        from repro.parallel.pools import lease_pool

        return lease_pool("shm", threads, self._mp_context, deadline=deadline)

    def shutdown(self, *, discard: bool = False) -> None:
        """Release this engine's pool reference.

        A broken pool is always discarded from the registry (the next
        :meth:`run` gets a clean one).  A healthy pool is by default
        left registered — other engines sharing the
        ``(kind, threads, start-method)`` key may have work in flight
        on it, and cancelling that from an unrelated engine's teardown
        would be action at a distance.  ``discard=True`` discards it
        anyway: the targeted teardown for an engine whose context makes
        the pool de-facto private (e.g. a dedicated ``spawn`` engine),
        where leaving the workers registered would waste an LRU slot
        until :func:`repro.parallel.pools.shutdown_pools`.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            from repro.parallel.pools import discard_pool, pool_is_broken

            if discard or pool_is_broken(pool):
                discard_pool(pool)

    def run(
        self,
        mats: Sequence[CSCMatrix],
        method: str,
        ranges: Sequence[Tuple[int, int]],
        *,
        sorted_output: bool,
        kwargs: dict,
        threads: int,
        index_dtype=None,
        materialize: Optional[bool] = None,
        policy=None,
        deadline=None,
        fault_plan=None,
    ):
        """Execute ``method`` over ``ranges`` on the shared-memory pool.

        Returns ``(matrix, stat_items)`` with ``stat_items`` a list of
        ``(j0, stats, stats_symbolic)`` per chunk, chunk-identical to
        what the thread/process executors produce.  ``materialize``
        picks result placement (:func:`resolve_shm_results`): the
        default returns segment-backed zero-copy arrays, ``True`` copies
        them into private memory before the segment is unlinked.

        ``policy``/``deadline`` bound the call
        (:mod:`repro.parallel.resilience`; both default to the
        environment-resolved policy): chunks whose worker dies are
        retried on a rebuilt pool, and every wait honours the deadline.
        ``fault_plan`` injects chaos-harness faults.
        """
        # Resolve before any segment exists so a bad REPRO_SHM_RESULTS
        # fails fast and clean.
        materialize = resolve_shm_results(materialize)
        from repro.parallel.resilience import Deadline, resolve_policy

        if policy is None:
            policy = resolve_policy(deadline=deadline)
        deadline = Deadline.resolve(
            deadline if deadline is not None else policy.deadline_s
        )
        with self._lock:
            return self._run_locked(
                mats, method, ranges,
                sorted_output=sorted_output, kwargs=kwargs,
                threads=threads, index_dtype=index_dtype,
                materialize=materialize, policy=policy,
                deadline=deadline, fault_plan=fault_plan,
            )

    def _run_wave(
        self, fn, n_tasks: int, make_task, *, threads, policy, deadline,
        label: str,
    ):
        """Submit ``fn(make_task(i))`` for every task index, collecting
        with retry: a wave interrupted by a dead worker keeps its
        completed results, discards the poisoned pool, sweeps orphaned
        segments, and re-submits only the unfinished tasks to a rebuilt
        pool.  ``make_task`` is called per *attempt*, so consumed fault
        directives are not re-shipped with the retried task.
        """
        from repro.parallel.pools import discard_pool, pool_is_broken
        from repro.parallel.resilience import (
            RetriesExhausted,
            collect_resilient,
        )

        results: Dict = {}
        pending = list(range(n_tasks))
        attempt = 0
        while pending:
            deadline.check(f"shm {label} wave")
            transient = None
            # The lease spans one wave attempt: a leased pool cannot be
            # LRU-evicted out from under the call, and re-leasing after
            # a break hands back a freshly rebuilt pool (workers attach
            # to this call's segments by name, so a fresh pool resumes
            # the session transparently).
            with self._lease_pool(threads, deadline=deadline) as pool:
                self._pool = pool
                try:
                    futures = {
                        i: pool.submit(fn, make_task(i)) for i in pending
                    }
                    got, pending, transient = collect_resilient(
                        futures, deadline=deadline
                    )
                    results.update(got)
                except BrokenProcessPool as err:
                    # Broke at submit time (poisoned by an earlier
                    # wave): everything outstanding is retryable.
                    transient = err
                    pending = [i for i in pending if i not in results]
                finally:
                    if pool_is_broken(pool):
                        discard_pool(pool)
            if pending:
                attempt += 1
                if attempt > policy.max_retries:
                    raise RetriesExhausted(
                        f"shm executor: {len(pending)} {label} task(s) "
                        f"still failing transiently after "
                        f"{policy.max_retries} retries",
                        executor="shm",
                    ) from transient
                sweep_orphans()
                deadline.sleep(policy.backoff_s(attempt))
        return [results[i] for i in range(n_tasks)]

    def _run_locked(
        self, mats, method, ranges, *, sorted_output, kwargs, threads,
        index_dtype=None, materialize=False, policy=None, deadline=None,
        fault_plan=None,
    ):
        from repro.core.symbolic import chunk_output_layout
        from repro.kernels import resolve_index_dtype, resolve_value_dtype

        m, n = mats[0].shape
        # The kernels accumulate (and emit) in the dtypes these rules
        # resolve over the k addends; scratch and output segments are
        # sized from them, so float32 collections move half the value
        # bytes of float64, int32-resolved calls move half the index
        # bytes of int64, and int64 sums stage exactly.
        value_dtype = resolve_value_dtype(mats)
        idx_dtype = resolve_index_dtype(mats, index_dtype)
        registry = SegmentRegistry(fault_plan=fault_plan)
        try:
            deadline.check("shm input publish")
            input_specs = registry.publish(
                [arr for A in mats for arr in (A.indptr, A.indices, A.data)]
            )
            session = {
                "id": secrets.token_hex(8),
                "mats": [
                    {
                        "shape": A.shape,
                        "sorted": A.sorted,
                        "indptr": input_specs[3 * i],
                        "indices": input_specs[3 * i + 1],
                        "data": input_specs[3 * i + 2],
                    }
                    for i, A in enumerate(mats)
                ],
                "method": method,
                "sorted_output": sorted_output,
                "kwargs": kwargs,
            }
            # Scratch staging slots, sized by each chunk's summed input
            # nnz — an exact upper bound on its output nnz — in the
            # resolved index and value dtypes.
            scratch_specs = registry.allocate(
                [
                    layout
                    for nnz_in in _chunk_input_nnz(mats, ranges)
                    for layout in ((nnz_in, idx_dtype), (nnz_in, value_dtype))
                ]
            )
            scratch = list(zip(scratch_specs[0::2], scratch_specs[1::2]))

            def compute_task(i):
                j0, j1 = ranges[i]
                s_idx, s_dat = scratch[i]
                fault = (
                    fault_plan.take_chunk_fault(i, can_kill=True)
                    if fault_plan is not None else None
                )
                return (session, j0, j1, s_idx, s_dat, fault)

            col_nnz = np.zeros(n, dtype=np.int64)
            stat_items = []
            sorted_flags = []
            for j0, counts, sub_sorted, st, st_sym in self._run_wave(
                _compute_chunk, len(ranges), compute_task,
                threads=threads, policy=policy, deadline=deadline,
                label="compute",
            ):
                col_nnz[j0 : j0 + counts.size] = counts
                stat_items.append((j0, st, st_sym))
                sorted_flags.append(sub_sorted)
            indptr, offsets = chunk_output_layout(
                col_nnz, ranges, index_dtype=idx_dtype
            )
            total = int(indptr[-1])
            deadline.check("shm output allocation")
            out_indices, out_data = registry.allocate(
                [(total, indptr.dtype), (total, value_dtype)]
            )
            scatter_tasks = [
                (hi - lo, lo, s_idx, s_dat, out_indices, out_data)
                for (lo, hi), (s_idx, s_dat) in zip(offsets, scratch)
            ]
            batches = [
                scatter_tasks[i::threads]
                for i in range(threads)
                if scatter_tasks[i::threads]
            ]

            def scatter_task(b):
                fault = (
                    fault_plan.take_scatter_fault()
                    if fault_plan is not None else None
                )
                return (session, batches[b], fault)

            self._run_wave(
                _scatter_chunks, len(batches), scatter_task,
                threads=threads, policy=policy, deadline=deadline,
                label="scatter",
            )
            deadline.check("shm result assembly")
            owner: Optional[SharedResultOwner] = None
            if materialize:
                out_idx_arr = registry.read_out(out_indices)
                out_dat_arr = registry.read_out(out_data)
            else:
                # Zero-copy: hand the output segment to a keep-alive
                # owner and return views into it — the final memcpy
                # disappears, and the segment unlinks when the last view
                # is garbage-collected.  (indices and data share one
                # packed segment, so one detach covers both.)
                owner = SharedResultOwner(registry.detach(out_indices.name))
                out_idx_arr = owner.adopt(out_indices)
                out_dat_arr = owner.adopt(out_data)
            out = CSCMatrix(
                (m, n),
                indptr,
                out_idx_arr,
                out_dat_arr,
                sorted=all(sorted_flags),
                check=False,
            )
            out.buffer_owner = owner
        finally:
            registry.unlink()
        return out, stat_items


#: default engine used by ``executor="shm"`` — its workers persist
#: across calls (fork cost paid once per process / worker count).
_DEFAULT_ENGINE = SharedMemoryPool()


def shm_parallel_run(
    mats: Sequence[CSCMatrix],
    method: str,
    ranges: Sequence[Tuple[int, int]],
    *,
    sorted_output: bool,
    kwargs: dict,
    threads: int,
    index_dtype=None,
    materialize: Optional[bool] = None,
    policy=None,
    deadline=None,
    fault_plan=None,
):
    """Run on the module's default :class:`SharedMemoryPool` engine."""
    return _DEFAULT_ENGINE.run(
        mats, method, ranges,
        sorted_output=sorted_output, kwargs=kwargs, threads=threads,
        index_dtype=index_dtype, materialize=materialize,
        policy=policy, deadline=deadline, fault_plan=fault_plan,
    )
