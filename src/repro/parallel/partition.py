"""Partitioning primitives used by the kernels and the schedulers."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def row_partition_bounds(m: int, parts: int) -> np.ndarray:
    """Equal row-range boundaries for the sliding algorithms.

    Returns ``bounds`` of length ``parts+1`` with part ``p`` covering
    rows ``[bounds[p], bounds[p+1])`` — the paper's
    ``r1 = i*m/parts, r2 = (i+1)*m/parts`` (Algorithm 7 line 9).
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    return (np.arange(parts + 1, dtype=np.int64) * m) // parts


def split_even(n: int, chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into ``chunks`` contiguous near-equal pieces.

    This is the *static* OpenMP-style schedule: thread t gets columns
    ``[bounds[t], bounds[t+1])`` regardless of their cost.
    """
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    bounds = (np.arange(chunks + 1, dtype=np.int64) * n) // chunks
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(chunks)]


def split_weighted(weights: np.ndarray, chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(len(weights))`` into contiguous pieces of near-equal
    total weight (prefix-sum bisection).

    Used to build balanced column *blocks* when column costs are skewed
    (RMAT): each piece's weight is close to ``total/chunks``.  Contiguity
    is preserved so the CSC zero-copy block gather still applies.
    """
    weights = np.asarray(weights, dtype=np.float64)
    n = weights.shape[0]
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    prefix = np.concatenate([[0.0], np.cumsum(weights)])
    total = prefix[-1]
    if total == 0:
        return split_even(n, chunks)
    targets = np.linspace(0.0, total, chunks + 1)
    cuts = np.searchsorted(prefix, targets[1:-1], side="left")
    bounds = np.concatenate([[0], cuts, [n]]).astype(np.int64)
    # Enforce monotonicity (possible ties on zero-weight runs).
    np.maximum.accumulate(bounds, out=bounds)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(chunks)]
