"""Column schedules: static vs dynamic (by-nnz) load balancing.

The paper (Section III-A): "for matrices with skewed nonzero
distributions such as RMAT matrices ... a static scheduling of threads
hurts the parallel performance.  In the symbolic phase we use total
input non-zeros per column and in addition phase we use total output
non-zeros per column to balance loads dynamically."

We model OpenMP's behaviour: *static* hands thread t the t-th
contiguous slice of columns; *dynamic* hands out fixed-size chunks in
order to whichever thread finishes first (list scheduling), which with
cost-proportional weights approximates the paper's balancing.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.parallel.partition import split_even


@dataclass
class Schedule:
    """Assignment of contiguous column chunks to threads.

    ``assignments[t]`` is the list of ``(j0, j1)`` chunks given to
    thread ``t``, in execution order.
    """

    threads: int
    assignments: List[List[Tuple[int, int]]] = field(default_factory=list)
    policy: str = "static"

    def thread_cost(self, col_costs: np.ndarray, t: int) -> float:
        prefix = np.concatenate([[0.0], np.cumsum(col_costs)])
        return float(
            sum(prefix[j1] - prefix[j0] for j0, j1 in self.assignments[t])
        )

    def makespan(self, col_costs: np.ndarray) -> float:
        """Parallel completion time in cost units = max thread load."""
        prefix = np.concatenate([[0.0], np.cumsum(col_costs)])
        loads = [
            sum(prefix[j1] - prefix[j0] for j0, j1 in chunks)
            for chunks in self.assignments
        ]
        return float(max(loads)) if loads else 0.0

    def imbalance(self, col_costs: np.ndarray) -> float:
        """makespan / (total/threads) — 1.0 is perfect balance."""
        total = float(np.sum(col_costs))
        if total == 0:
            return 1.0
        return self.makespan(col_costs) * self.threads / total


def static_schedule(n_cols: int, threads: int) -> Schedule:
    """OpenMP ``schedule(static)``: one contiguous slice per thread."""
    chunks = split_even(n_cols, threads)
    return Schedule(threads, [[c] for c in chunks], policy="static")


def dynamic_schedule(
    col_costs: np.ndarray,
    threads: int,
    *,
    chunk: int = 1,
) -> Schedule:
    """OpenMP ``schedule(dynamic, chunk)`` driven by per-column costs.

    Chunks of ``chunk`` consecutive columns are dispatched in order to
    the earliest-finishing thread (simulated with a min-heap of thread
    completion times) — the standard work-queue model.
    """
    col_costs = np.asarray(col_costs, dtype=np.float64)
    n = col_costs.shape[0]
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    prefix = np.concatenate([[0.0], np.cumsum(col_costs)])
    assignments: List[List[Tuple[int, int]]] = [[] for _ in range(threads)]
    ready = [(0.0, t) for t in range(threads)]
    heapq.heapify(ready)
    j0 = 0
    while j0 < n:
        j1 = min(j0 + chunk, n)
        t_free, t = heapq.heappop(ready)
        assignments[t].append((j0, j1))
        heapq.heappush(ready, (t_free + float(prefix[j1] - prefix[j0]), t))
        j0 = j1
    return Schedule(threads, assignments, policy=f"dynamic[{chunk}]")


def schedule_makespan(
    col_costs: Sequence[float],
    threads: int,
    *,
    policy: str = "dynamic",
    chunk: int = 1,
) -> float:
    """Convenience: makespan of ``policy`` over ``col_costs``."""
    costs = np.asarray(col_costs, dtype=np.float64)
    if policy == "static":
        sched = static_schedule(costs.shape[0], threads)
    elif policy == "dynamic":
        sched = dynamic_schedule(costs, threads, chunk=chunk)
    else:
        raise ValueError(
            f"unknown policy {policy!r}; choose 'static' or 'dynamic'"
        )
    return sched.makespan(costs)
