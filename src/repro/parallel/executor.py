"""Executors: thread/process column parallelism + simulated scaling.

``parallel_spkadd`` runs any SpKAdd method over column chunks on a
worker pool — the paper's synchronization-free scheme (each worker gets
column views of every addend and a private accumulator).  Two pool
flavours:

``executor="thread"``
    ``ThreadPoolExecutor`` over zero-copy column views (CSC keeps
    columns contiguous).  NumPy kernels release the GIL for large array
    operations, so real (if modest, in Python) speedups are observed.

``executor="process"``
    ``ProcessPoolExecutor``; column chunks are shipped to workers as
    pickled views (the pickle materializes each chunk's slice) and
    results are stitched back with the same ``_concat_results``.  This
    sidesteps the GIL entirely, which matters for the instrumented
    backend whose probing rounds are Python-bound.  The pool is
    **persistent**: calls route through the registry in
    :mod:`repro.parallel.pools`, so repeated calls reuse warm forkserver
    workers instead of paying a pool spawn per call
    (:func:`repro.parallel.pools.shutdown_pools` releases them).

``executor="shm"``
    The zero-copy shared-memory engine (:mod:`repro.parallel.shm`):
    inputs are published to ``multiprocessing.shared_memory`` segments
    once, a symbolic sizing pass determines the exact output layout, and
    workers scatter their chunks straight into one preallocated shared
    CSC buffer — no per-chunk pickling, no gather concatenate.

``executor="serial"``
    The degenerate pool: chunks run in a plain in-process loop.  Exists
    as the floor of the resilience layer's fallback chain (nothing can
    crash but the caller), and as an explicit choice for debugging.

``executor=None`` (or ``"auto"``) consults the ``REPRO_EXECUTOR``
environment variable, then defaults to ``"thread"``.

Resilience (:mod:`repro.parallel.resilience`): every parallel call runs
under a :class:`~repro.parallel.resilience.ResiliencePolicy` — chunks
whose worker dies are retried on a rebuilt pool (bounded, with
backoff), a per-call ``deadline=`` / ``REPRO_DEADLINE`` bounds the
whole call, and an executor found *unusable* (boot timeout, retry
budget exhausted, ``/dev/shm`` full) degrades down the chain
``shm → process → thread → serial`` with a one-shot warning
(``REPRO_FALLBACK`` controls the chain).

The *shape* of scaling behaviour at paper fidelity comes from
``simulate_parallel_time``, which the machine cost model uses for Fig 3.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Optional, Sequence, Tuple

import numpy as np

from repro import env
from repro.core.stats import KernelStats
from repro.formats.csc import CSCMatrix
from repro.parallel.partition import split_weighted
from repro.parallel.scheduler import dynamic_schedule, static_schedule

_TWO_PHASE = {"hash", "sliding_hash"}

#: environment variable overriding the default executor choice.
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"

#: names accepted by ``executor=``.
EXECUTORS = ("thread", "process", "shm", "serial")

#: executors whose workers run in separate processes; they all reject
#: ``trace_sink`` (worker-side appends never reach the caller's list).
MULTIPROCESS_EXECUTORS = frozenset({"process", "shm"})

#: environment variable overriding the multiprocessing start method of
#: both process-based executors (``fork`` / ``forkserver`` / ``spawn``).
MP_START_ENV_VAR = "REPRO_MP_START"


#: serializes the fork-server boot's PYTHONPATH patch-and-restore.
_FORKSERVER_BOOT_LOCK = threading.Lock()

#: set once the fork server has been booted with the preload landed;
#: later pool acquisitions skip the boot (and its brief env mutation)
#: entirely.
_FORKSERVER_BOOTED = False


def _package_root() -> str:
    """Directory containing the ``repro`` package (the ``src`` dir of a
    checkout, or ``site-packages`` of an install)."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _ensure_forkserver_running(deadline=None) -> None:
    """Boot the fork server with this package importable, bounded.

    CPython's fork server is launched as a bare ``python -c`` process:
    it receives the parent's ``sys.path`` but (through 3.11) never
    applies it before importing the preload modules, and the import
    error is swallowed.  So when the repo is reached via runtime
    ``sys.path`` manipulation — a source checkout, exactly how the
    benchmark driver and CI run — the preload silently failed and every
    fresh worker re-imported numpy + the repro stack at fork time
    (~1s per pool spawn, observed; ~100ms with the preload landed).
    Prepending the package root to ``PYTHONPATH`` just while the server
    boots makes the preload land in every deployment mode.  The boot
    runs **once per process**: the patch-and-restore is serialized by a
    module lock (concurrent acquisitions cannot interleave their
    snapshots and corrupt the real ``PYTHONPATH``) and a booted flag
    keeps later pool acquisitions off this path entirely.  (If the
    server is later killed, multiprocessing's own lazy
    ``ensure_running`` revives it — without the preload, slower forks,
    but correct.)

    The boot is **bounded**: it runs on a helper thread joined with a
    timeout (``REPRO_BOOT_TIMEOUT``, further clipped by the call's
    deadline).  A wedged fork server used to hang ``get_pool`` forever;
    now it raises a typed
    :class:`~repro.parallel.resilience.PoolBootTimeout`, which the
    fallback chain turns into a thread- or serial-stage answer.
    """
    global _FORKSERVER_BOOTED
    if _FORKSERVER_BOOTED:
        return
    from repro.parallel import faults
    from repro.parallel.resilience import (
        Deadline,
        PoolBootTimeout,
        resolve_boot_timeout,
    )

    deadline = Deadline.resolve(deadline)
    timeout = resolve_boot_timeout()
    rem = deadline.remaining()
    bounded = timeout if rem is None else min(timeout, rem)
    plan = faults.plan_for_call()
    hang_s = plan.take_boot_hang() if plan is not None else 0.0
    done = threading.Event()
    boot_error: list = []

    def boot() -> None:
        global _FORKSERVER_BOOTED
        try:
            from multiprocessing import forkserver

            if hang_s:
                time.sleep(hang_s)
            with _FORKSERVER_BOOT_LOCK:
                if not _FORKSERVER_BOOTED:
                    old = os.environ.get("PYTHONPATH")
                    os.environ["PYTHONPATH"] = os.pathsep.join(
                        [_package_root()] + ([old] if old else [])
                    )
                    try:
                        forkserver.ensure_running()
                    finally:
                        if old is None:
                            del os.environ["PYTHONPATH"]
                        else:
                            os.environ["PYTHONPATH"] = old
                    _FORKSERVER_BOOTED = True
        except BaseException as err:  # surfaced to the waiting caller
            boot_error.append(err)
        finally:
            done.set()

    thread = threading.Thread(
        target=boot, name="repro-forkserver-boot", daemon=True
    )
    thread.start()
    if not done.wait(bounded):
        # The boot thread keeps running; if it eventually succeeds the
        # booted flag spares future calls.  This call gives up now.
        deadline.check("forkserver boot")
        raise PoolBootTimeout(
            f"fork server did not boot within {bounded:.1f}s "
            f"({BOOT_TIMEOUT_HINT})",
            executor="process",
        )
    if boot_error:
        raise boot_error[0]


#: referenced from the boot-timeout message without importing resilience
#: at module scope.
BOOT_TIMEOUT_HINT = "REPRO_BOOT_TIMEOUT overrides the bound"


def mp_context(deadline=None):
    """Multiprocessing context for the process-based executors.

    Defaults to ``forkserver`` where available: a bare ``fork`` from a
    process that also runs thread pools (exactly what a mixed
    thread/process SpKAdd workload does) can fork while another thread
    holds a lock, deadlocking the child — the rare CI hang observed in
    PR 3.  The fork server is single-threaded, so its forks are safe;
    workers still share pages with it (cheap startup), unlike ``spawn``.
    ``REPRO_MP_START`` overrides (e.g. ``fork`` to recover the old
    behaviour, ``spawn`` to mimic Windows/macOS).  ``deadline`` bounds
    the (first-call-only) forkserver boot.
    """
    name = env.get(MP_START_ENV_VAR)
    if not name:
        methods = multiprocessing.get_all_start_methods()
        name = "forkserver" if "forkserver" in methods else None
    ctx = multiprocessing.get_context(name)
    if name == "forkserver":
        # Preload this module (transitively numpy + the repro core) in
        # the fork server, so each worker forks from a warm interpreter
        # instead of re-importing the stack — without this, a fresh
        # per-call process pool pays ~1s of import per worker.
        ctx.set_forkserver_preload(["repro.parallel.executor"])
        _ensure_forkserver_running(deadline)
    return ctx


def resolve_executor(name: Optional[str] = None) -> str:
    """Resolve an executor name: explicit argument > ``REPRO_EXECUTOR``
    environment variable > ``"thread"``.

    An unknown name is rejected with an error that says *where* the bad
    name came from — a misconfigured ``REPRO_EXECUTOR`` on a CI leg
    reads differently from a typo at the call site.

    >>> resolve_executor("shm")
    'shm'
    """
    source = "executor argument"
    if name is None or name == "auto":
        configured = env.get(EXECUTOR_ENV_VAR)
        if configured:
            name = configured
            source = f"{EXECUTOR_ENV_VAR} environment variable"
        else:
            name = "thread"
    if name not in EXECUTORS:
        raise ValueError(
            f"unknown executor {name!r} (from the {source}); "
            f"choose from {EXECUTORS}"
        )
    return name


def _total_col_nnz(mats: Sequence[CSCMatrix]) -> np.ndarray:
    out = mats[0].col_nnz().astype(np.int64)
    for A in mats[1:]:
        out = out + A.col_nnz()
    return out


def _concat_results(mats, parts, index_dtype=None):
    """Stitch per-chunk result matrices (disjoint column ranges) back
    into one CSC matrix.

    Chunk kernels resolve their index width from *chunk* bounds, so a
    chunk may come back narrower than the call-level width; the
    concatenation allocates at the width resolved over the full call
    (plus the caller's override) so every executor emits one dtype.
    """
    from repro.kernels import resolve_index_dtype, resolve_value_dtype

    m = mats[0].shape[0]
    n = mats[0].shape[1]
    idt = resolve_index_dtype(mats, index_dtype)
    indptr = np.zeros(n + 1, dtype=idt)
    chunks = sorted(parts, key=lambda p: p[0])
    data = []
    total = sum(sub.nnz for _, sub in chunks)
    indices = np.empty(total, dtype=idt)
    offset = 0
    for j0, sub in chunks:
        w = sub.shape[1]
        # Rebase in int64 (chunk pointers + a global offset can exceed a
        # narrow chunk width mid-expression), then narrow explicitly to
        # the resolved width.  The narrowing is lossless by invariant,
        # not by the cast itself: the call-level resolution guard picked
        # ``idt`` to hold the summed input nnz, an upper bound on every
        # rebased pointer entry.  The explicit astype states that
        # invariant at the narrowing site instead of burying it in a
        # silent unsafe setitem.
        rebased = sub.indptr[1:].astype(np.int64, copy=False) + offset
        indptr[j0 + 1 : j0 + w + 1] = rebased.astype(idt, copy=False)
        indices[offset : offset + sub.nnz] = sub.indices
        offset += sub.nnz
        data.append(sub.data)
    # forward-fill empty gaps (there are none when chunks cover [0, n))
    np.maximum.accumulate(indptr, out=indptr)
    return CSCMatrix(
        (m, n),
        indptr,
        indices,
        np.concatenate(data) if data
        else np.empty(0, dtype=resolve_value_dtype(mats)),
        sorted=all(s.sorted for _, s in chunks),
        check=False,
    )


def _run_chunk(
    method: str,
    j0: int,
    views: Sequence[CSCMatrix],
    sorted_output: bool,
    kwargs: dict,
) -> Tuple[int, CSCMatrix, KernelStats, Optional[KernelStats]]:
    """Execute one column chunk.  Module-level so it pickles for the
    process pool; the thread pool calls it directly."""
    from repro.core.api import _REGISTRY

    runner = _REGISTRY[method]
    st = KernelStats()
    if method in _TWO_PHASE:
        out, st, st_sym = runner(
            views, sorted_output=sorted_output, stats=st, **kwargs
        )
        return j0, out, st, st_sym
    out = runner(views, stats=st, **kwargs)
    return j0, out, st, None


def _run_chunk_faulted(fault, method, j0, views, sorted_output, kwargs):
    """:func:`_run_chunk` behind an injection point — submitted instead
    of the plain runner when the call's fault plan targets this chunk."""
    from repro.parallel.faults import apply_chunk_fault

    apply_chunk_fault(fault)
    return _run_chunk(method, j0, views, sorted_output, kwargs)


#: set once the first executor fallback of the process has been
#: reported; later degradations are silent (the warning is a heads-up,
#: not a per-call log channel).
_FALLBACK_WARNED = False


def _warn_fallback(from_stage: str, to_stage: str, err) -> None:
    global _FALLBACK_WARNED
    if _FALLBACK_WARNED:
        return
    _FALLBACK_WARNED = True
    warnings.warn(
        f"executor {from_stage!r} is unusable ({err}); falling back to "
        f"{to_stage!r} for this and future affected calls (set "
        "REPRO_FALLBACK=off to fail instead; this warning is shown once "
        "per process)",
        RuntimeWarning,
        stacklevel=3,
    )


def _submit_chunk(pool, mats, method, ranges, i, sorted_output, kwargs, plan,
                  *, can_kill):
    """Submit chunk ``i`` of ``ranges`` to ``pool``, attaching any fault
    the plan holds for it (faults are consumed: a retried chunk comes
    back clean)."""
    j0, j1 = ranges[i]
    views = [A.col_view(j0, j1) for A in mats]
    fault = (
        plan.take_chunk_fault(i, can_kill=can_kill)
        if plan is not None else None
    )
    if fault:
        return pool.submit(
            _run_chunk_faulted, fault, method, j0, views, sorted_output,
            kwargs,
        )
    return pool.submit(_run_chunk, method, j0, views, sorted_output, kwargs)


def _process_chunks(mats, method, ranges, *, sorted_output, kwargs, threads,
                    policy, deadline, plan):
    """Chunk execution on the persistent pickling process pool, with
    chunk-level retry: a wave interrupted by a dead worker keeps its
    completed results, discards the poisoned pool, and re-submits only
    the unfinished chunks to a rebuilt one."""
    from repro.parallel.pools import discard_pool, lease_pool, pool_is_broken
    from repro.parallel.resilience import RetriesExhausted, collect_resilient

    results: dict = {}
    pending = list(range(len(ranges)))
    attempt = 0
    while pending:
        deadline.check("process-pool chunk execution")
        transient = None
        with lease_pool("process", threads, deadline=deadline) as pool:
            try:
                futures = {
                    i: _submit_chunk(
                        pool, mats, method, ranges, i, sorted_output,
                        kwargs, plan, can_kill=True,
                    )
                    for i in pending
                }
                got, pending, transient = collect_resilient(
                    futures, deadline=deadline
                )
                results.update(got)
            except BrokenProcessPool as err:
                # The pool broke at submit time (poisoned by an earlier
                # wave): everything outstanding is retryable.
                transient = err
                pending = [i for i in pending if i not in results]
            finally:
                if pool_is_broken(pool):
                    # Drop the corpse so the next lease forks clean.
                    discard_pool(pool)
        if pending:
            attempt += 1
            if attempt > policy.max_retries:
                raise RetriesExhausted(
                    f"process executor: {len(pending)} chunk(s) still "
                    f"failing transiently after {policy.max_retries} "
                    "retries",
                    executor="process",
                ) from transient
            from repro.parallel.shm import sweep_orphans

            sweep_orphans()
            deadline.sleep(policy.backoff_s(attempt))
    return [results[i] for i in range(len(ranges))]


def _thread_chunks(mats, method, ranges, *, sorted_output, kwargs, threads,
                   policy, deadline, plan):
    """Chunk execution on a thread pool.  Threads cannot crash like
    workers, but injected transients are retried and the deadline is
    enforced on every wait — the default executor honours
    ``REPRO_DEADLINE`` too."""
    from repro.parallel.resilience import RetriesExhausted, collect_resilient

    results: dict = {}
    pending = list(range(len(ranges)))
    attempt = 0
    pool = ThreadPoolExecutor(max_workers=threads)
    try:
        while pending:
            deadline.check("thread-pool chunk execution")
            futures = {
                i: _submit_chunk(
                    pool, mats, method, ranges, i, sorted_output, kwargs,
                    plan, can_kill=False,
                )
                for i in pending
            }
            got, pending, transient = collect_resilient(
                futures, deadline=deadline
            )
            results.update(got)
            if pending:
                attempt += 1
                if attempt > policy.max_retries:
                    raise RetriesExhausted(
                        f"thread executor: {len(pending)} chunk(s) still "
                        f"failing transiently after {policy.max_retries} "
                        "retries",
                        executor="thread",
                    ) from transient
                deadline.sleep(policy.backoff_s(attempt))
    except BaseException:
        # Do not join chunks still running (a delayed chunk must not
        # hold a DeadlineExceeded past the deadline); they finish on
        # daemonless pool threads and are discarded.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    return [results[i] for i in range(len(ranges))]


def _serial_chunks(mats, method, ranges, *, sorted_output, kwargs,
                   policy, deadline, plan):
    """The fallback floor: chunks run in-process, one after another.
    No pool exists to break; injected transients are retried in place
    and the deadline is checked between chunks (a running kernel cannot
    be interrupted)."""
    from repro.parallel.faults import InjectedFault, apply_chunk_fault
    from repro.parallel.resilience import RetriesExhausted

    results = []
    for i, (j0, j1) in enumerate(ranges):
        views = [A.col_view(j0, j1) for A in mats]
        attempt = 0
        while True:
            deadline.check("serial chunk execution")
            fault = (
                plan.take_chunk_fault(i, can_kill=False)
                if plan is not None else None
            )
            try:
                apply_chunk_fault(fault)
                results.append(
                    _run_chunk(method, j0, views, sorted_output, kwargs)
                )
                break
            except InjectedFault as err:
                attempt += 1
                if attempt > policy.max_retries:
                    raise RetriesExhausted(
                        f"serial executor: chunk {i} still failing "
                        f"transiently after {policy.max_retries} retries",
                        executor="serial",
                    ) from err
                deadline.sleep(policy.backoff_s(attempt))
    return results


def _execute_stage(stage, mats, method, ranges, *, sorted_output, kwargs,
                   threads, index_dtype, materialize, policy, deadline,
                   plan):
    """Run the call on one fallback stage.

    Returns ``(out, stat_items, parts)``: the shm stage assembles its
    own output matrix (``parts`` is None); the others return per-chunk
    matrices for :func:`_concat_results`.
    """
    if stage == "shm":
        from repro.parallel.shm import shm_parallel_run

        out, stat_items = shm_parallel_run(
            mats, method, ranges,
            sorted_output=sorted_output, kwargs=kwargs, threads=threads,
            index_dtype=index_dtype, materialize=materialize,
            policy=policy, deadline=deadline, fault_plan=plan,
        )
        return out, stat_items, None
    common = dict(
        sorted_output=sorted_output, kwargs=kwargs,
        policy=policy, deadline=deadline, plan=plan,
    )
    if stage == "process":
        results = _process_chunks(
            mats, method, ranges, threads=threads, **common
        )
    elif stage == "thread":
        results = _thread_chunks(
            mats, method, ranges, threads=threads, **common
        )
    else:
        results = _serial_chunks(mats, method, ranges, **common)
    stat_items = [(j0, st, st_sym) for j0, _, st, st_sym in results]
    parts = [(j0, sub) for j0, sub, _, _ in results]
    return None, stat_items, parts


def parallel_spkadd(
    mats: Sequence[CSCMatrix],
    method: str = "hash",
    *,
    threads: int = 2,
    sorted_output: bool = True,
    chunks_per_thread: int = 4,
    executor: Optional[str] = None,
    index_dtype=None,
    materialize: Optional[bool] = None,
    deadline=None,
    resilience=None,
    **kwargs,
):
    """Column-parallel SpKAdd (paper Section III-A).

    Columns are divided into ``threads * chunks_per_thread`` contiguous
    chunks of near-equal *input nnz* (the dynamic-balancing weight) and
    executed on a thread, process, shared-memory, or serial pool
    (``executor=``; ``None``/``"auto"`` consults ``REPRO_EXECUTOR`` then
    uses ``"thread"``).  Per-chunk stats are merged; the result is
    bit-identical to the sequential method.  ``index_dtype`` pins the
    output index width (default: the call-level int32-when-it-fits
    rule, identical to the serial kernels').  ``materialize`` controls
    shm result placement (see :func:`repro.parallel.shm.resolve_shm_results`);
    the thread and process executors always return private arrays.

    The call runs under a :class:`~repro.parallel.resilience.ResiliencePolicy`
    (``resilience=``, default resolved from the environment): chunks
    whose worker dies are retried on a rebuilt pool, ``deadline=`` (or
    ``REPRO_DEADLINE``) bounds the whole call with a typed
    :class:`~repro.parallel.resilience.DeadlineExceeded`, and an
    executor found unusable degrades down the fallback chain
    ``shm → process → thread → serial`` with a one-shot warning.
    *Deterministic* chunk errors keep PR 5's fail-fast contract: the
    first one cancels everything still queued and propagates
    immediately, on every stage.
    """
    # Deferred: repro.core.api imports this module's caller chain.
    from repro.core.api import BACKEND_AWARE_METHODS, SpKAddResult, _REGISTRY
    from repro.parallel import faults
    from repro.parallel.resilience import (
        Deadline,
        ExecutorUnusable,
        resolve_policy,
    )

    if method not in _REGISTRY:
        raise ValueError(f"unknown method {method!r}")
    # Reject malformed worker counts loudly instead of silently clamping
    # to one chunk: a gateway forwarding client-supplied knobs relies on
    # this to turn a bad request into a typed rejection, not a serial
    # call that quietly ignores what was asked.
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if chunks_per_thread < 1:
        raise ValueError(
            f"chunks_per_thread must be >= 1, got {chunks_per_thread}"
        )
    executor = resolve_executor(executor)
    if executor in MULTIPROCESS_EXECUTORS and kwargs.get("trace_sink") is not None:
        raise ValueError(
            f"trace_sink is not supported with executor={executor!r}: traces "
            "appended in worker processes never reach the caller's list; "
            "use executor='thread'"
        )
    if method not in BACKEND_AWARE_METHODS:
        kwargs.pop("backend", None)
    elif index_dtype is not None:
        # Hash-family chunk kernels accept the override directly; other
        # methods' chunks self-resolve and the concatenation / shm
        # output buffer enforces the call-level width.
        kwargs.setdefault("index_dtype", index_dtype)
    if method == "sliding_hash" and "cache_bytes" in kwargs:
        # The sliding cache-budget rule needs the worker count.
        kwargs.setdefault("threads", threads)
    n = mats[0].shape[1]
    weights = _total_col_nnz(mats)
    n_chunks = max(min(threads * chunks_per_thread, n), 1)
    ranges = [
        (j0, j1) for j0, j1 in split_weighted(weights, n_chunks) if j1 > j0
    ]

    policy = resolve_policy(resilience, deadline=deadline)
    dl = Deadline(policy.deadline_s)
    plan = faults.plan_for_call()
    chain = policy.chain_for(executor)

    out: Optional[CSCMatrix] = None
    parts = None
    stat_items = None
    for pos, stage in enumerate(chain):
        dl.check(f"start of {stage!r} executor stage")
        try:
            out, stat_items, parts = _execute_stage(
                stage, mats, method, ranges,
                sorted_output=sorted_output, kwargs=kwargs,
                threads=threads, index_dtype=index_dtype,
                materialize=materialize, policy=policy, deadline=dl,
                plan=plan,
            )
            break
        except ExecutorUnusable as err:
            # DeadlineExceeded is NOT caught: an expired budget fails
            # the call; only a broken *stage* falls through to the next.
            if pos + 1 >= len(chain):
                raise
            _warn_fallback(stage, chain[pos + 1], err)

    dl.check("result assembly")
    merged = KernelStats(algorithm=f"{method}[T={threads}]")
    merged_sym: Optional[KernelStats] = (
        KernelStats(algorithm=f"{method}_symbolic[T={threads}]")
        if method in _TWO_PHASE
        else None
    )

    def splice(target: KernelStats, j0: int, chunk: KernelStats) -> None:
        """Chunk col-arrays cover [j0, j0+width); place them into the
        full-length arrays before scalar merging."""
        for name in ("col_in_nnz", "col_out_nnz", "col_ops"):
            part = getattr(chunk, name)
            if part is None:
                continue
            full = getattr(target, name)
            if full is None:
                full = np.zeros(n, dtype=np.asarray(part).dtype)
                setattr(target, name, full)
            full[j0 : j0 + len(part)] = part
            setattr(chunk, name, None)

    for j0, st, st_sym in stat_items:
        splice(merged, j0, st)
        merged.merge(st)
        if merged_sym is not None and st_sym is not None:
            splice(merged_sym, j0, st_sym)
            merged_sym.merge(st_sym)
    merged.k = len(mats)
    merged.n_cols = n
    if out is None:
        out = _concat_results(mats, parts, index_dtype)
    return SpKAddResult(out, merged, merged_sym, method=method)


# ---------------------------------------------------------------------------
# Asynchronous submission (the overlap seam).
# ---------------------------------------------------------------------------

_SUBMIT_POOL: Optional[ThreadPoolExecutor] = None
_SUBMIT_POOL_LOCK = threading.Lock()


def _submit_pool() -> ThreadPoolExecutor:
    global _SUBMIT_POOL
    with _SUBMIT_POOL_LOCK:
        if _SUBMIT_POOL is None:
            _SUBMIT_POOL = ThreadPoolExecutor(
                max_workers=min(32, (os.cpu_count() or 4) * 2),
                thread_name_prefix="spkadd-submit",
            )
        return _SUBMIT_POOL


def submit_spkadd(mats: Sequence[CSCMatrix], method: str = "hash", **kwargs):
    """Run :func:`repro.spkadd` asynchronously; returns a ``Future``.

    The public overlap seam: the call is driven by a small shared
    daemon of submitter threads, so the caller is not blocked on chunk
    execution *or* result assembly — ``future.result()`` yields the
    finished :class:`~repro.core.api.SpKAddResult`.  The promoted SUMMA
    pipeline uses this to keep local multiplies running while merges
    are in flight on the worker pools; any pipeline that wants to
    overlap a merge with its own compute can do the same.

    Accepts exactly the keyword surface of :func:`repro.spkadd`
    (``threads=``, ``executor=``, ``backend=``, ``deadline=``,
    ``resilience=``, ...).  Because the kernel work of a parallel call
    happens in pool workers (which release or sidestep the GIL), the
    submitter thread spends its life waiting, not computing; the pool
    is shared, bounded, and created lazily.  Submitted tasks are
    independent — a queued task never waits on another queued task, so
    the bounded pool cannot deadlock.
    """
    from repro.core.api import spkadd

    return _submit_pool().submit(spkadd, mats, method, **kwargs)


def simulate_parallel_time(
    col_costs: np.ndarray,
    threads: int,
    *,
    policy: str = "dynamic",
    chunk: int = 8,
) -> float:
    """Makespan (cost units) of scheduling per-column costs on T threads.

    ``policy="static"`` reproduces the load imbalance the paper blames
    for poor RMAT scaling; ``"dynamic"`` reproduces its fix.
    """
    costs = np.asarray(col_costs, dtype=np.float64)
    if threads <= 1:
        return float(costs.sum())
    if policy == "static":
        return static_schedule(costs.shape[0], threads).makespan(costs)
    return dynamic_schedule(costs, threads, chunk=chunk).makespan(costs)
