"""Resilience policy for the parallel executors: retries, deadlines,
fallback.

PR 5 made failures *fail fast* (the first poisoned chunk cancels its
siblings); this module supplies the complementary half — **recover,
degrade, and bound** — so a long-running pipeline built on the warm pool
substrate survives the failures that substrate will inevitably see:

* **chunk-level retry** — a chunk whose worker dies
  (``BrokenProcessPool``) or that fails with an injected transient
  (:class:`~repro.parallel.faults.InjectedFault`) is re-submitted to a
  rebuilt pool, bounded by :attr:`ResiliencePolicy.max_retries` with
  exponential backoff and jitter.  Deterministic chunk errors (a kernel
  bug, a bad kwarg) are *never* retried — they keep PR 5's fail-fast
  contract.
* **deadlines** — one :class:`Deadline` per call, enforced across pool
  boot, chunk execution, retry backoff, and result assembly; expiry
  raises :class:`DeadlineExceeded`, cancels sibling futures, and lets
  the engines' ``finally`` blocks release leases and segments.
* **graceful degradation** — when an executor is *unusable* (forkserver
  boot timeout, retry budget exhausted, ``/dev/shm`` full) the call
  falls down an explicit chain ``shm → process → thread → serial`` with
  a one-shot warning.  ``REPRO_FALLBACK`` selects the stages allowed
  (or ``off`` to disable); :class:`ExecutorUnusable` is the marker every
  stage raises to hand the call to the next one.

Everything here is engine-agnostic: the executors own their submit
loops and call :func:`collect_resilient` /
:meth:`ResiliencePolicy.backoff_s` / :meth:`Deadline.check`.
"""

from __future__ import annotations

import dataclasses
import random
import time
from concurrent.futures import FIRST_EXCEPTION, Future, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Tuple, Union

from repro import env
from repro.env import DEFAULT_BOOT_TIMEOUT_S
from repro.parallel.faults import InjectedFault

#: environment variable supplying a default per-call deadline (seconds).
DEADLINE_ENV_VAR = "REPRO_DEADLINE"

#: environment variable overriding the chunk retry budget.
MAX_RETRIES_ENV_VAR = "REPRO_MAX_RETRIES"

#: environment variable controlling the degradation chain: ``auto``/
#: unset = the full default chain, ``off`` disables fallback, a comma
#: list (e.g. ``"thread,serial"``) restricts the stages a call may
#: degrade to.
FALLBACK_ENV_VAR = "REPRO_FALLBACK"

#: environment variable bounding the forkserver boot wait (seconds).
#: (Its default, :data:`DEFAULT_BOOT_TIMEOUT_S`, is declared in the
#: :mod:`repro.env` knob table and re-exported here.)
BOOT_TIMEOUT_ENV_VAR = "REPRO_BOOT_TIMEOUT"

#: the degradation chain, most- to least-capable.  Fallback always
#: moves rightward: an executor only ever degrades toward ``serial``,
#: whose plain in-process loop has no pool to break.
FALLBACK_STAGES = ("shm", "process", "thread", "serial")


# ---------------------------------------------------------------------------
# Typed failures.
# ---------------------------------------------------------------------------


class ResilienceError(RuntimeError):
    """Base class of the resilience layer's typed failures."""


class DeadlineExceeded(ResilienceError, TimeoutError):
    """The per-call deadline expired.

    Never swallowed by the fallback chain: a caller that bounded the
    call's time gets the bound honoured, not a slower executor.
    """


class ExecutorUnusable(ResilienceError):
    """An executor stage cannot serve this call; try the next stage.

    ``executor`` names the stage that gave up (diagnostics and the
    fallback warning use it).
    """

    def __init__(self, message: str, *, executor: str = "") -> None:
        super().__init__(message)
        self.executor = executor


class PoolBootTimeout(ExecutorUnusable, TimeoutError):
    """The forkserver did not boot within its bounded wait."""


class ChunkInvariantError(ResilienceError):
    """A worker chunk hit a sizing/dtype invariant violation.

    Deterministic by construction (the symbolic bound or resolved dtype
    was wrong, not the worker), so it keeps PR 5's fail-fast contract:
    never retried, never degraded around.  Module-level so it pickles
    cleanly across the process-pool boundary.
    """


class PoolLifecycleError(ResilienceError):
    """A pool lease/reservation was used outside its lifecycle (e.g.
    released twice, or used after release)."""


class RetriesExhausted(ExecutorUnusable):
    """Transient chunk failures outlived the retry budget."""


class ShmAllocationError(ExecutorUnusable):
    """A shared-memory segment could not be allocated (``/dev/shm``
    full, or an injected ENOSPC)."""


# ---------------------------------------------------------------------------
# Deadline.
# ---------------------------------------------------------------------------


class Deadline:
    """A monotonic per-call time budget; ``seconds=None`` is unlimited.

    One instance travels down the whole call (executor → pools → shm
    waves), so every bounded wait shares the same clock and the call as
    a whole — boot + chunks + retries + assembly — honours one budget.
    """

    __slots__ = ("seconds", "_t_end")

    def __init__(self, seconds: Optional[float] = None) -> None:
        self.seconds = None if seconds is None else float(seconds)
        if self.seconds is not None and self.seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds!r}")
        self._t_end = (
            None if self.seconds is None else time.monotonic() + self.seconds
        )

    @classmethod
    def resolve(cls, value: Union["Deadline", float, None]) -> "Deadline":
        """Coerce ``None`` (unlimited) / seconds / a ``Deadline``."""
        if isinstance(value, Deadline):
            return value
        return cls(value)

    def remaining(self) -> Optional[float]:
        """Seconds left (>= 0), or ``None`` when unlimited."""
        if self._t_end is None:
            return None
        return max(self._t_end - time.monotonic(), 0.0)

    @property
    def expired(self) -> bool:
        return self._t_end is not None and time.monotonic() >= self._t_end

    def check(self, what: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired:
            raise DeadlineExceeded(
                f"deadline of {self.seconds}s exceeded during {what}"
            )

    def sleep(self, seconds: float, what: str = "retry backoff") -> None:
        """Sleep, but never past the deadline (expiry raises)."""
        rem = self.remaining()
        if rem is not None and seconds >= rem:
            time.sleep(rem)
            raise DeadlineExceeded(
                f"deadline of {self.seconds}s exceeded during {what}"
            )
        if seconds > 0:
            time.sleep(seconds)


# ---------------------------------------------------------------------------
# Policy.
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs of the resilient execution layer (one instance per call).

    ``fallback=None`` means the full default chain; an explicit tuple
    restricts the stages a call may degrade to (order is always the
    canonical :data:`FALLBACK_STAGES` order); ``()`` disables fallback
    entirely — an unusable executor then raises instead of degrading.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 1.0
    backoff_jitter: float = 0.25
    deadline_s: Optional[float] = None
    fallback: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )
        if self.fallback is not None:
            bad = [s for s in self.fallback if s not in FALLBACK_STAGES]
            if bad:
                raise ValueError(
                    f"unknown fallback stage(s) {bad}; "
                    f"choose from {FALLBACK_STAGES}"
                )

    @classmethod
    def disabled(cls) -> "ResiliencePolicy":
        """No retries, no deadline, no fallback — the minimal-overhead
        configuration the bench guard compares against."""
        return cls(max_retries=0, deadline_s=None, fallback=())

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based): exponential from
        ``backoff_base_s``, capped, with +/- ``backoff_jitter`` jitter
        so simultaneous retries don't stampede a rebuilt pool."""
        base = min(
            self.backoff_base_s * (2.0 ** (attempt - 1)), self.backoff_cap_s
        )
        if self.backoff_jitter:
            base *= 1.0 + random.uniform(
                -self.backoff_jitter, self.backoff_jitter
            )
        return max(base, 0.0)

    def chain_for(self, executor: str) -> Tuple[str, ...]:
        """The degradation chain starting at ``executor``.

        >>> ResiliencePolicy().chain_for("process")
        ('process', 'thread', 'serial')
        """
        if self.fallback is not None and not self.fallback:
            return (executor,)
        allowed = (
            set(self.fallback) if self.fallback is not None
            else set(FALLBACK_STAGES)
        )
        allowed.add(executor)
        order = [s for s in FALLBACK_STAGES if s in allowed]
        return tuple(order[order.index(executor):])


def resolve_policy(
    policy: Optional[ResiliencePolicy] = None,
    deadline: Union[Deadline, float, None] = None,
) -> ResiliencePolicy:
    """Resolve the call's policy: explicit argument > environment >
    defaults; an explicit ``deadline`` (seconds) overrides the policy's.

    Environment knobs: ``REPRO_MAX_RETRIES``, ``REPRO_DEADLINE``,
    ``REPRO_FALLBACK``, ``REPRO_BOOT_TIMEOUT`` — each error names its
    source so a misconfigured CI leg reads differently from a bad call
    site.  Every knob is validated **eagerly** here, even the ones only
    a later degradation would consume (a bad ``REPRO_BOOT_TIMEOUT``
    surfaces on the first call of a thread-only run, not mid-fallback
    when a process pool finally boots) and even when an explicit
    ``policy`` shadows the environment values.
    """
    validate_resilience_env()
    if policy is None:
        policy = ResiliencePolicy(
            max_retries=env.get(MAX_RETRIES_ENV_VAR),
            deadline_s=env.get(DEADLINE_ENV_VAR),
            fallback=env.get(FALLBACK_ENV_VAR),
        )
    if deadline is not None:
        if isinstance(deadline, Deadline):
            deadline = deadline.seconds
        if deadline is not None and float(deadline) <= 0:
            raise ValueError(
                f"deadline_s must be positive, got {deadline} "
                "(from the deadline= argument)"
            )
        policy = dataclasses.replace(
            policy,
            deadline_s=None if deadline is None else float(deadline),
        )
    return policy


def validate_resilience_env() -> None:
    """Eagerly parse and range-check every resilience environment knob.

    Called on every :func:`resolve_policy` (i.e. at the first parallel
    call), so ``REPRO_BOOT_TIMEOUT=abc`` or ``REPRO_MAX_RETRIES=-3``
    fails the run immediately with an error naming the variable —
    instead of being carried silently until the one code path that
    happens to read it (the forkserver boot, a retry loop) explodes
    mid-degradation.  The parsers and range checks themselves live in
    the :mod:`repro.env` knob table; this is the resilience-scoped view
    of :func:`repro.env.validate`.
    """
    env.validate(
        MAX_RETRIES_ENV_VAR,
        DEADLINE_ENV_VAR,
        FALLBACK_ENV_VAR,
        BOOT_TIMEOUT_ENV_VAR,
    )


def resolve_boot_timeout() -> float:
    """The forkserver boot bound (``REPRO_BOOT_TIMEOUT`` or default)."""
    value: float = env.get(BOOT_TIMEOUT_ENV_VAR)
    return value


# ---------------------------------------------------------------------------
# Future collection with transient-failure classification.
# ---------------------------------------------------------------------------

#: exception types the retry layer treats as transient: the chunk did
#: not fail — its *execution environment* did.
TRANSIENT_ERRORS = (BrokenProcessPool, InjectedFault)


def collect_resilient(
    futures: Dict, *, deadline: Optional[Deadline] = None
) -> Tuple[Dict, List, Optional[BaseException]]:
    """Collect ``{key: Future}`` fail-fast, with deadline and
    transient-failure classification.

    Returns ``(results, pending, transient_error)``: ``results`` maps
    the keys that completed successfully, ``pending`` lists the keys
    that must be re-submitted (non-empty only after a transient
    failure — a dead worker or an injected fault), and
    ``transient_error`` is the failure that caused them (exception
    chaining for :class:`RetriesExhausted`).

    Deterministic chunk errors re-raise immediately after cancelling
    the futures still queued (PR 5's fail-fast contract, unchanged).
    Deadline expiry cancels everything still pending and raises
    :class:`DeadlineExceeded`; chunks already *running* cannot be
    interrupted, but the caller stops waiting on them — their writes
    land in segments whose names are already unlinked, which POSIX
    keeps valid until the worker drops its mapping.
    """
    deadline = Deadline.resolve(deadline)
    by_future = {f: key for key, f in futures.items()}
    results: Dict = {}
    pending: List = []
    transient: Optional[BaseException] = None
    not_done = set(futures.values())
    while not_done:
        done, not_done = wait(
            not_done, timeout=deadline.remaining(),
            return_when=FIRST_EXCEPTION,
        )
        hard: Optional[BaseException] = None
        for fut in done:
            key = by_future[fut]
            if fut.cancelled():
                pending.append(key)
                continue
            err = fut.exception()
            if err is None:
                results[key] = fut.result()
            elif isinstance(err, TRANSIENT_ERRORS):
                pending.append(key)
                transient = err
            else:
                hard = err
        if hard is not None:
            for fut in not_done:
                fut.cancel()
            raise hard
        if pending:
            # Transient failure: stop the wave, hand back what must be
            # re-run (cancelled-or-running siblings included — a future
            # still running on a broken pool resolves uselessly).
            for fut in not_done:
                fut.cancel()
                pending.append(by_future[fut])
            break
        if not_done:
            # No failures and futures left over: the wait timed out.
            for fut in not_done:
                fut.cancel()
            raise DeadlineExceeded(
                f"deadline of {deadline.seconds}s exceeded waiting on "
                f"{len(not_done)} of {len(futures)} chunk task(s)"
            )
    # Preserve submission order for deterministic retry batches.
    order = {key: i for i, key in enumerate(futures)}
    pending = sorted(set(pending), key=order.__getitem__)
    return results, pending, transient


__all__ = [
    "BOOT_TIMEOUT_ENV_VAR",
    "ChunkInvariantError",
    "DEADLINE_ENV_VAR",
    "DEFAULT_BOOT_TIMEOUT_S",
    "Deadline",
    "PoolLifecycleError",
    "DeadlineExceeded",
    "ExecutorUnusable",
    "FALLBACK_ENV_VAR",
    "FALLBACK_STAGES",
    "MAX_RETRIES_ENV_VAR",
    "PoolBootTimeout",
    "ResilienceError",
    "ResiliencePolicy",
    "RetriesExhausted",
    "ShmAllocationError",
    "TRANSIENT_ERRORS",
    "collect_resilient",
    "resolve_boot_timeout",
    "resolve_policy",
    "validate_resilience_env",
]
