"""Persistent worker-pool lifecycle service.

Before this module existed the repo had two pool lifecycles: the shm
engine (:class:`repro.parallel.shm.SharedMemoryPool`) kept its workers
alive across calls, while ``executor="process"`` built — and tore down —
a fresh ``ProcessPoolExecutor`` on *every* ``parallel_spkadd`` call.
Even with the forkserver's warm-interpreter forks that per-call spawn
dominates small and medium calls, and it is exactly the cost CombBLAS-
style systems amortize by keeping worker state resident.

This module unifies both behind one registry of **persistent process
pools keyed by ``(kind, threads, start-method)``**:

* ``kind`` separates independent consumers (``"process"`` for the
  pickling executor, ``"shm"`` for the shared-memory engine) so their
  workers never share task queues;
* ``threads`` is the worker count — pools of different widths coexist;
* the start method (``fork``/``forkserver``/``spawn``) comes from the
  multiprocessing context the consumer resolves, so an engine pinned to
  ``spawn`` never collides with the forkserver default.

Lifecycle guarantees:

* **Reuse** — :func:`get_pool` returns the same executor for the same
  key until it is discarded, so repeated calls pay the pool spawn once.
* **Health** — a pool observed broken (``BrokenProcessPool``) is
  discarded via :func:`discard_pool`; :meth:`PoolRegistry.get` also
  drops any pool that is already marked broken, so the next call always
  receives a working pool instead of a poisoned one.
* **Teardown** — :func:`shutdown_pools` releases every registered pool
  (optionally filtered by ``kind``); the module registers it with
  ``atexit`` so embedders who never call it still exit cleanly, and
  :class:`PoolRegistry` doubles as a context manager for scoped private
  lifecycles (``with PoolRegistry() as reg: ...``).

:func:`collect_fail_fast` is the shared future-collection policy: the
first chunk failure cancels everything still queued and propagates
immediately, instead of draining every sibling future first.
"""

from __future__ import annotations

import atexit
import contextlib
import threading
from concurrent.futures import FIRST_EXCEPTION, Future, ProcessPoolExecutor, wait
from typing import Dict, List, Optional, Sequence, Tuple

#: registry key: (consumer kind, worker count, multiprocessing start method).
PoolKey = Tuple[str, int, str]


def pool_is_broken(pool: ProcessPoolExecutor) -> bool:
    """Whether a pool has been poisoned by a dead worker.

    CPython marks this via the private ``_broken`` attribute; every
    health check in the package goes through this one helper so the
    private-API dependency is localized (and greppable) if the
    attribute ever changes.
    """
    return bool(getattr(pool, "_broken", False))

#: default cap on resident pools per kind: a sweep over worker counts
#: (autotuning, the test suite's thread axes) must not leave one idle
#: pool per width alive until exit.  Least-recently-used pools beyond
#: the cap are released; their already-queued work is left to drain.
DEFAULT_MAX_POOLS_PER_KIND = 2


class PoolRegistry:
    """Registry of persistent :class:`ProcessPoolExecutor` instances.

    Thread-safe; one registry instance owns its pools exclusively.  The
    module-level default registry (reached through :func:`get_pool`)
    serves both built-in executors; embedders who want an isolated
    lifecycle can instantiate their own and use it as a context manager.
    Residency is bounded: at most ``max_pools_per_kind`` pools stay
    resident per ``kind``, evicted least-recently-used.
    """

    def __init__(
        self, max_pools_per_kind: int = DEFAULT_MAX_POOLS_PER_KIND
    ) -> None:
        # dict order doubles as the LRU order: re-inserted on access.
        self._pools: Dict[PoolKey, ProcessPoolExecutor] = {}
        # live lease count per pool object: a leased pool is mid-call
        # and must never be evicted (its caller will submit more work).
        self._leases: Dict[ProcessPoolExecutor, int] = {}
        # pools removed by shutdown() while leased: closed gracefully by
        # the releasing lease instead of cancelled mid-call.
        self._doomed: set = set()
        self._lock = threading.Lock()
        self._max_per_kind = max(int(max_pools_per_kind), 1)

    def get(
        self, kind: str, threads: int, mp_context=None, *, deadline=None
    ) -> ProcessPoolExecutor:
        """The persistent pool for ``(kind, threads, start-method)``,
        created on first use and reused until discarded or evicted.

        ``mp_context=None`` resolves the repo default
        (:func:`repro.parallel.executor.mp_context` — forkserver where
        available; ``deadline`` bounds its first-call boot).  A pool
        found already broken is replaced with a fresh one before being
        handed out.  Callers that submit work in multiple waves should
        prefer :meth:`lease`, which additionally pins the pool against
        LRU eviction for the duration.
        """
        return self._acquire(
            kind, threads, mp_context, leased=False, deadline=deadline
        )

    @contextlib.contextmanager
    def lease(self, kind: str, threads: int, mp_context=None, *, deadline=None):
        """Context manager checking the pool out for one call.

        While leased, the pool cannot be LRU-evicted by concurrent
        acquisitions of other widths — without this, a caller could see
        its pool shut down between two submit waves and fail with
        ``RuntimeError`` despite healthy workers.
        """
        pool = self._acquire(
            kind, threads, mp_context, leased=True, deadline=deadline
        )
        try:
            yield pool
        finally:
            # If shutdown() arrived mid-call the releasing lease closes
            # the doomed pool now that the call is over.
            self._release_lease(pool)

    def _acquire(
        self, kind, threads, mp_context, *, leased: bool, deadline=None
    ) -> ProcessPoolExecutor:
        if mp_context is None:
            # Deferred: executor imports this module.
            from repro.parallel.executor import mp_context as default_context

            mp_context = default_context(deadline=deadline)
        key = (str(kind), int(threads), mp_context.get_start_method())
        evicted = []
        rebuilt = False
        with self._lock:
            pool = self._pools.pop(key, None)
            if pool is not None and pool_is_broken(pool):
                # Health rebuild: a crashed worker poisons the whole
                # executor; hand out a fresh pool, never the corpse.
                pool.shutdown(wait=False, cancel_futures=True)
                self._leases.pop(pool, None)
                pool = None
                rebuilt = True
            if pool is None:
                pool = ProcessPoolExecutor(
                    max_workers=int(threads), mp_context=mp_context
                )
            self._pools[key] = pool  # (re-)insert at the LRU tail
            if leased:
                self._leases[pool] = self._leases.get(pool, 0) + 1
            same_kind = [k for k in self._pools if k[0] == key[0]]
            excess = len(same_kind) - self._max_per_kind
            for old_key in same_kind:  # oldest first; `key` is the tail
                if excess <= 0:
                    break
                old = self._pools[old_key]
                if old_key == key or self._leases.get(old, 0):
                    continue  # never evict the caller's or a leased pool
                evicted.append(self._pools.pop(old_key))
                excess -= 1
        for old in evicted:
            # No cancel: futures already submitted to an evicted pool
            # complete — the workers drain the queue and then exit.
            old.shutdown(wait=False)
        if rebuilt:
            # A worker died hard; it may have orphaned shared segments
            # (e.g. the shm engine's scratch mid-write).  Sweep outside
            # the registry lock — unlinking is slow-path filesystem work.
            from repro.parallel.shm import sweep_orphans

            sweep_orphans()
        return pool

    def reserve(
        self, kind: str, threads: int, mp_context=None, *, deadline=None
    ) -> "PoolReservation":
        """A standing lease pinning ``(kind, threads)``'s pool resident.

        Long-lived consumers — the serve gateway above all — want their
        warm workers to *stay* warm: without a reservation, unrelated
        calls sweeping other worker counts can LRU-evict the gateway's
        pool between requests, putting a pool spawn back on the next
        request's latency.  The reservation holds a lease (the same
        pinning one in-flight call gets) for as long as it is open;
        :meth:`PoolReservation.pool` re-acquires transparently after
        the pool breaks, and :meth:`PoolReservation.release` ends the
        pin (the pool stays registered, just evictable again).
        """
        return PoolReservation(
            self, kind, threads, mp_context, deadline=deadline
        )

    def _release_lease(self, pool: ProcessPoolExecutor) -> None:
        """Drop one lease count (shared by lease() and reservations)."""
        to_close = None
        with self._lock:
            n = self._leases.get(pool, 0)
            if n <= 1:
                self._leases.pop(pool, None)
                if pool in self._doomed:
                    self._doomed.discard(pool)
                    to_close = pool
            else:
                self._leases[pool] = n - 1
        if to_close is not None:
            to_close.shutdown(wait=False)

    def discard(self, pool: ProcessPoolExecutor, *, wait: bool = False) -> None:
        """Drop ``pool`` from the registry and shut it down.

        Call sites use this when they observe ``BrokenProcessPool``; the
        next :meth:`get` for the key builds a clean replacement.  Safe to
        call with a pool the registry no longer holds (already replaced).
        Lease-aware like :meth:`shutdown`: while another call still
        holds a lease on the pool, it is only unregistered here and
        closed by the releasing lease — a healthy concurrent call is
        never cancelled from under its caller.
        """
        with self._lock:
            for key, p in list(self._pools.items()):
                if p is pool:
                    del self._pools[key]
            if self._leases.get(pool, 0):
                self._doomed.add(pool)
                return
            self._doomed.discard(pool)
        pool.shutdown(wait=wait, cancel_futures=True)

    def shutdown(self, *, kind: Optional[str] = None, wait: bool = True) -> None:
        """Release every registered pool (``kind`` filters by consumer).

        Graceful: a pool currently leased by an in-flight call is only
        *unregistered* here — the releasing lease closes it when the
        call completes, so concurrent SpKAdd calls are never cancelled
        out from under their caller (``wait=True`` therefore does not
        wait for leased pools).  Subsequent :meth:`get` calls rebuild
        pools on demand, so this is safe at any point — embedders
        should call the module-level :func:`shutdown_pools` before
        forking their own processes or at service shutdown.
        """
        with self._lock:
            removed = [
                (key, pool)
                for key, pool in self._pools.items()
                if kind is None or key[0] == kind
            ]
            for key, _ in removed:
                del self._pools[key]
            immediate = []
            for _, pool in removed:
                if self._leases.get(pool, 0):
                    self._doomed.add(pool)
                else:
                    immediate.append(pool)
        for pool in immediate:
            pool.shutdown(wait=wait, cancel_futures=True)

    def active(self) -> Dict[PoolKey, ProcessPoolExecutor]:
        """Snapshot of the live pools (introspection / soak tests)."""
        with self._lock:
            return dict(self._pools)

    def __enter__(self) -> "PoolRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class PoolReservation:
    """Standing lease on one registry pool (see :meth:`PoolRegistry.reserve`).

    Usable as a context manager; :meth:`pool` hands out the reserved
    executor and transparently re-reserves when the current pool has
    been broken (the registry rebuilds it, the reservation re-pins the
    replacement).  Thread-safe: the gateway touches it from compute
    threads while the event loop may be shutting it down.
    """

    def __init__(
        self, registry: PoolRegistry, kind: str, threads: int,
        mp_context=None, *, deadline=None,
    ) -> None:
        self._registry = registry
        self._kind = kind
        self._threads = int(threads)
        self._mp_context = mp_context
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False
        self._acquire(deadline=deadline)

    def _acquire(self, *, deadline=None) -> ProcessPoolExecutor:
        from repro.parallel.resilience import PoolLifecycleError

        pool = self._registry._acquire(
            self._kind, self._threads, self._mp_context, leased=True,
            deadline=deadline,
        )
        with self._lock:
            if self._closed:
                # Raced with release(): don't hold a lease forever.
                self._registry._release_lease(pool)
                raise PoolLifecycleError(
                    f"reservation {(self._kind, self._threads)} already "
                    "released; create a new one with reserve_pool()"
                )
            old, self._pool = self._pool, pool
        if old is not None and old is not pool:
            self._registry._release_lease(old)
        return pool

    def pool(self, *, deadline=None) -> ProcessPoolExecutor:
        """The reserved pool, re-acquired if the current one broke."""
        with self._lock:
            pool = self._pool
        if pool is not None and not pool_is_broken(pool):
            return pool
        return self._acquire(deadline=deadline)

    @property
    def key(self) -> Tuple[str, int]:
        return (self._kind, self._threads)

    def release(self) -> None:
        """End the pin (idempotent); the pool stays registered."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            self._registry._release_lease(pool)

    def __enter__(self) -> "PoolReservation":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


def collect_fail_fast(futures: Sequence[Future], *, deadline=None) -> List:
    """Results of ``futures`` in submission order, failing fast.

    Waits with ``FIRST_EXCEPTION``: the moment any future raises, every
    future still pending is cancelled and the error propagates — the
    caller does not sit through the surviving chunks before hearing
    about the poisoned one.  (Chunks already *running* cannot be
    cancelled; their results are simply never collected.)  ``deadline``
    (seconds or a :class:`~repro.parallel.resilience.Deadline`) bounds
    the wait: expiry cancels the stragglers and raises
    :class:`~repro.parallel.resilience.DeadlineExceeded`.
    """
    from repro.parallel.resilience import Deadline, DeadlineExceeded

    deadline = Deadline.resolve(deadline)
    done, pending = wait(
        futures, timeout=deadline.remaining(), return_when=FIRST_EXCEPTION
    )
    failed = next(
        (f for f in done if not f.cancelled() and f.exception() is not None),
        None,
    )
    if failed is not None:
        for f in pending:
            f.cancel()
        failed.result()  # re-raises with the worker traceback attached
    if pending:
        # No failure and futures left over: the bounded wait timed out.
        for f in pending:
            f.cancel()
        raise DeadlineExceeded(
            f"deadline of {deadline.seconds}s exceeded waiting on "
            f"{len(pending)} of {len(futures)} task(s)"
        )
    return [f.result() for f in futures]


#: the default registry serving ``executor="process"`` and the shm engine.
_DEFAULT_REGISTRY = PoolRegistry()


def get_pool(
    kind: str, threads: int, mp_context=None, *, deadline=None
) -> ProcessPoolExecutor:
    """Persistent pool from the default registry (see :class:`PoolRegistry`)."""
    return _DEFAULT_REGISTRY.get(kind, threads, mp_context, deadline=deadline)


def lease_pool(kind: str, threads: int, mp_context=None, *, deadline=None):
    """Check a persistent pool out of the default registry for one call
    (context manager; pins the pool against LRU eviction — see
    :meth:`PoolRegistry.lease`)."""
    return _DEFAULT_REGISTRY.lease(kind, threads, mp_context, deadline=deadline)


def reserve_pool(
    kind: str, threads: int, mp_context=None, *, deadline=None
) -> PoolReservation:
    """Pin a persistent pool in the default registry for a long-lived
    consumer (see :meth:`PoolRegistry.reserve`)."""
    return _DEFAULT_REGISTRY.reserve(
        kind, threads, mp_context, deadline=deadline
    )


def discard_pool(pool: ProcessPoolExecutor, *, wait: bool = False) -> None:
    """Drop a (typically broken) pool from the default registry."""
    _DEFAULT_REGISTRY.discard(pool, wait=wait)


def shutdown_pools(*, kind: Optional[str] = None, wait: bool = True) -> None:
    """Release the default registry's pools (all kinds, or one ``kind``).

    The public teardown API: embedders call this at service shutdown,
    before ``os.fork``, or to reclaim idle workers; the next SpKAdd call
    transparently rebuilds what it needs.  Registered with ``atexit``.
    """
    _DEFAULT_REGISTRY.shutdown(kind=kind, wait=wait)


def active_pools() -> Dict[PoolKey, ProcessPoolExecutor]:
    """Snapshot of the default registry's live pools."""
    return _DEFAULT_REGISTRY.active()


atexit.register(shutdown_pools)
