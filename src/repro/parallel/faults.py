"""Fault injection for the resilient execution layer.

The resilience machinery in :mod:`repro.parallel.resilience` promises
recovery from worker crashes, bounded waits, and graceful degradation —
promises that are worthless untested.  This module provides the
injection points the chaos suite (``tests/test_resilience.py``) drives:

``kill_chunk=N``
    SIGKILL the worker while it runs chunk ordinal ``N`` (the realistic
    mid-merge crash: the pool breaks, staged scratch may be half
    written).  On the thread/serial stages — where killing the "worker"
    would kill the caller — the same directive degrades to raising
    :class:`InjectedFault` in the chunk, which the retry layer treats
    as the same class of transient failure.
``delay_chunk=N:SECONDS``
    Sleep inside the worker before running chunk ``N`` (drives the
    deadline tests: a hung chunk must not hold the call past its
    deadline).
``scatter_raise``
    Raise :class:`InjectedFault` in the shm engine's first scatter
    batch (exercises idempotent re-scatter).
``enospc``
    The next shared-segment allocation fails as if ``/dev/shm`` were
    full (drives the shm → process fallback).
``boot_hang=SECONDS``
    The forkserver boot sleeps this long before starting (drives
    :class:`~repro.parallel.resilience.PoolBootTimeout`).

Faults are **consumed**: each directive carries a count (default 1) and
stops firing once spent, so an injected crash is followed by a clean
retry — exactly the transient-failure shape the layer is built for.
Inject programmatically::

    from repro.parallel import faults
    with faults.inject(kill_chunk=1):
        repro.spkadd(mats, threads=4, executor="shm")

or per-process via ``REPRO_FAULTS`` (comma-separated directives, parsed
afresh — with fresh counters — for every parallel call)::

    REPRO_FAULTS="kill_chunk=0,delay_chunk=2:0.1" python -m repro demo ...

The plan travels *with the task*: the parent takes each fault at submit
time and ships a tiny picklable dict to the worker, so injection works
identically on persistent pools (whose workers never re-read the
environment) and across fork/forkserver/spawn start methods.
"""

from __future__ import annotations

import contextlib
import os
import signal
import threading
import time
from typing import Dict, Optional

#: environment variable carrying a fault plan (see the module docstring
#: for the directive grammar).  Parsed per parallel call, so every call
#: of a chaos run experiences the configured faults with fresh counters.
FAULTS_ENV_VAR = "REPRO_FAULTS"


class InjectedFault(RuntimeError):
    """An error raised by an injection point.

    The retry layer classifies this — like a dead worker — as a
    *transient* failure: the chunk is retried instead of failing the
    call, which is what lets one chaos harness exercise the recovery
    path on every executor, including the ones whose workers cannot be
    killed (thread, serial).
    """


class FaultPlan:
    """One call's worth of injectable faults, with consumption counters.

    Parent-side only: the executors ``take_*`` faults at submit time and
    ship the returned primitive dicts to the workers.  Counters are
    guarded by a lock (submission may happen from concurrent calls when
    a plan is installed process-wide).
    """

    def __init__(
        self,
        *,
        kill_chunk: Optional[int] = None,
        kill_count: int = 1,
        delay_chunk: Optional[int] = None,
        delay_s: float = 0.0,
        delay_count: int = 1,
        scatter_raise: int = 0,
        enospc: int = 0,
        boot_hang_s: float = 0.0,
    ) -> None:
        self.kill_chunk = kill_chunk
        self.delay_chunk = delay_chunk
        self.delay_s = float(delay_s)
        self.boot_hang_s = float(boot_hang_s)
        self._kill_left = int(kill_count) if kill_chunk is not None else 0
        self._delay_left = int(delay_count) if delay_chunk is not None else 0
        self._scatter_left = int(scatter_raise)
        self._enospc_left = int(enospc)
        self._boot_hang_taken = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------- takes
    def take_chunk_fault(
        self, ordinal: int, *, can_kill: bool
    ) -> Optional[Dict]:
        """The fault dict to ship with chunk ``ordinal``, or ``None``.

        ``can_kill`` is False on stages running chunks in the caller's
        own process (thread, serial), where a kill directive degrades to
        an in-chunk :class:`InjectedFault` raise.
        """
        fault: Dict = {}
        with self._lock:
            if self._delay_left > 0 and ordinal == self.delay_chunk:
                self._delay_left -= 1
                fault["delay_s"] = self.delay_s
            if self._kill_left > 0 and ordinal == self.kill_chunk:
                self._kill_left -= 1
                if can_kill:
                    fault["kill"] = True
                else:
                    fault["raise"] = f"injected kill on chunk {ordinal}"
        return fault or None

    def take_scatter_fault(self) -> Optional[Dict]:
        with self._lock:
            if self._scatter_left <= 0:
                return None
            self._scatter_left -= 1
        return {"raise": "injected scatter failure"}

    def take_enospc(self) -> bool:
        with self._lock:
            if self._enospc_left <= 0:
                return False
            self._enospc_left -= 1
        return True

    def take_boot_hang(self) -> float:
        with self._lock:
            if self._boot_hang_taken or not self.boot_hang_s:
                return 0.0
            self._boot_hang_taken = True
        return self.boot_hang_s


# ---------------------------------------------------------------------------
# Plan installation / resolution (parent side).
# ---------------------------------------------------------------------------

_INSTALLED: Optional[FaultPlan] = None


@contextlib.contextmanager
def inject(**kwargs):
    """Install a :class:`FaultPlan` for the duration of the block.

    Counters persist across calls inside the block (a ``kill_chunk``
    with the default count of 1 fires in the first call only).
    """
    global _INSTALLED
    plan = FaultPlan(**kwargs)
    previous, _INSTALLED = _INSTALLED, plan
    try:
        yield plan
    finally:
        _INSTALLED = previous


def installed() -> Optional[FaultPlan]:
    """The programmatically installed plan, if any (no env parsing)."""
    return _INSTALLED


def plan_for_call() -> Optional[FaultPlan]:
    """The fault plan governing one parallel call.

    A programmatic :func:`inject` plan wins (shared counters across the
    block's calls); otherwise ``REPRO_FAULTS`` is parsed afresh — fresh
    counters — so every call of an env-driven chaos run is faulted.
    """
    if _INSTALLED is not None:
        return _INSTALLED
    from repro import env

    return env.get(FAULTS_ENV_VAR)


def parse_plan(raw: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` directive string into a plan.

    >>> parse_plan("kill_chunk=1,delay_chunk=0:0.5").kill_chunk
    1
    """
    kwargs: Dict = {}
    for item in raw.split(","):
        item = item.strip()
        if not item:
            continue
        name, _, value = item.partition("=")
        name = name.strip().lower()
        value = value.strip()
        try:
            if name == "kill_chunk":
                ordinal, _, count = value.partition(":")
                kwargs["kill_chunk"] = int(ordinal)
                if count:
                    kwargs["kill_count"] = int(count)
            elif name == "delay_chunk":
                ordinal, _, seconds = value.partition(":")
                kwargs["delay_chunk"] = int(ordinal)
                kwargs["delay_s"] = float(seconds) if seconds else 0.1
            elif name == "scatter_raise":
                kwargs["scatter_raise"] = int(value) if value else 1
            elif name == "enospc":
                kwargs["enospc"] = int(value) if value else 1
            elif name == "boot_hang":
                kwargs["boot_hang_s"] = float(value)
            else:
                raise ValueError(f"unknown fault directive {name!r}")
        except ValueError as err:
            raise ValueError(
                f"bad fault directive {item!r} in the {FAULTS_ENV_VAR} "
                f"environment variable: {err}"
            ) from None
    return FaultPlan(**kwargs)


# ---------------------------------------------------------------------------
# Worker side.
# ---------------------------------------------------------------------------


def apply_chunk_fault(fault: Optional[Dict]) -> None:
    """Apply a fault dict shipped with a chunk task (worker side).

    Order matters: a combined delay+kill fault sleeps first, modelling
    a worker that dies mid-computation rather than at task pickup.
    """
    if not fault:
        return
    delay = fault.get("delay_s")
    if delay:
        time.sleep(float(delay))
    if fault.get("kill"):
        # SIGKILL ourselves: no atexit, no finally blocks — the honest
        # crash the resilience layer must recover from.
        if hasattr(signal, "SIGKILL"):
            os.kill(os.getpid(), signal.SIGKILL)
        os._exit(1)  # non-POSIX fallback: still an abrupt death
    message = fault.get("raise")
    if message:
        raise InjectedFault(message)
