"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``        run SpKAdd methods on a generated workload, print stats
``table3``      regenerate Table III (model vs paper)
``table4``      regenerate Table IV
``fig2``        winner maps (``--pattern er|rmat``)
``fig3``        scaling curves (``--workload a_er|b_rmat|c_eukarya``)
``fig4``        hash-table-size sweep (``--panel a..f``)
``table5``      cache-miss comparison
``fig6``        distributed SpGEMM breakdown (``--dataset``)
``platforms``   print the Table II machine specs

Scale is controlled by ``REPRO_SCALE_M`` / ``REPRO_SCALE_N`` (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import sys


def _cmd_demo(args) -> int:
    import repro
    from repro.generators import erdos_renyi_collection, rmat_collection

    gen = erdos_renyi_collection if args.pattern == "er" else rmat_collection
    mats = gen(args.m, args.n, d=args.d, k=args.k, seed=args.seed)
    from repro.parallel.executor import resolve_executor

    executor = resolve_executor(args.executor)
    value_dtype = None if args.value_dtype == "auto" else args.value_dtype
    index_dtype = None if args.index_dtype == "auto" else args.index_dtype
    # argparse default False -> None keeps the REPRO_SHM_RESULTS pin live.
    materialize = True if args.materialize else None
    if executor == "shm":
        # Resolve (and so validate) the placement only when it applies:
        # a bad REPRO_SHM_RESULTS must not break non-shm runs.
        from repro.parallel.shm import resolve_shm_results

        placement = resolve_shm_results(materialize)
    else:
        placement = "n/a"
    print(f"{args.pattern.upper()} workload: k={args.k}, "
          f"{args.m}x{args.n}, d={args.d} "
          f"[backend={args.backend}, executor={executor}, "
          f"threads={args.threads}, value_dtype={args.value_dtype}, "
          f"index_dtype={args.index_dtype}, "
          f"materialize={placement}]")
    from repro.core.api import BACKEND_AWARE_METHODS

    resilience = None
    if args.max_retries is not None or args.fallback != "auto":
        from repro.parallel.resilience import ResiliencePolicy

        fallback = None
        if args.fallback == "off":
            fallback = ()
        elif args.fallback != "auto":
            fallback = tuple(
                s.strip() for s in args.fallback.split(",") if s.strip()
            )
        resilience = ResiliencePolicy(
            max_retries=(
                args.max_retries if args.max_retries is not None else 2
            ),
            fallback=fallback,
        )
    for method in repro.available_methods():
        res = repro.spkadd(
            mats, method=method, threads=args.threads,
            executor=executor,
            value_dtype=value_dtype,
            index_dtype=index_dtype,
            materialize=materialize,
            deadline=args.deadline,
            resilience=resilience,
            backend=args.backend if method in BACKEND_AWARE_METHODS else None,
        )
        print(f"  {method:20s} nnz={res.matrix.nnz:<9d} "
              f"dtype={res.matrix.data.dtype} "
              f"idx={res.matrix.indices.dtype} {res.stats.summary()}")
    return 0


def _cmd_table(args, which: str) -> int:
    from repro.experiments.tables34 import run_table3, run_table4

    grid = run_table3() if which == "3" else run_table4()
    print(grid.to_text())
    return 0


def _cmd_fig2(args) -> int:
    from repro.experiments.fig2 import run_fig2

    print(run_fig2(args.pattern, n_cols=args.n_cols).to_text())
    return 0


def _cmd_fig3(args) -> int:
    from repro.experiments.fig3 import run_fig3

    res = run_fig3(args.workload)
    print(res.to_text())
    print("speedup at max threads:",
          {k: round(v, 1) for k, v in res.speedup_at_max.items()})
    return 0


def _cmd_fig4(args) -> int:
    from repro.experiments.config import ReproScale
    from repro.experiments.fig4 import run_fig4

    sweep = run_fig4(args.panel)
    print(sweep.to_text())
    sc = ReproScale.from_env()
    print(f"optimum: {sweep.optimum_entries} reduced-scale entries "
          f"({sweep.optimum_entries * sc.scale_m} at paper scale)")
    return 0


def _cmd_table5(args) -> int:
    from repro.experiments.table5 import run_table5, table5_text

    print(table5_text(run_table5(max_accesses=args.max_accesses)))
    return 0


def _cmd_fig6(args) -> int:
    from repro.experiments.fig6 import run_fig6

    res = run_fig6(args.dataset, m=args.m, grid_side=args.grid)
    print(res.to_text())
    print(f"spkadd speedup vs heap: {res.spkadd_speedup_vs_heap:.1f}x; "
          f"unsorted multiply saving: "
          f"{res.multiply_saving_unsorted * 100:.0f}%")
    return 0


def _cmd_platforms(_args) -> int:
    from repro.experiments.platforms import table2_text

    print(table2_text())
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro",
        description="SpKAdd reproduction command line",
    )
    sub = p.add_subparsers(dest="command", required=True)

    d = sub.add_parser("demo", help="run all SpKAdd methods on a workload")
    d.add_argument("--pattern", choices=["er", "rmat"], default="er")
    d.add_argument("--m", type=int, default=1 << 14)
    d.add_argument("--n", type=int, default=64)
    d.add_argument("--d", type=float, default=16.0)
    d.add_argument("--k", type=int, default=16)
    d.add_argument("--seed", type=int, default=0)
    d.add_argument("--backend", choices=["auto", "fast", "instrumented"],
                   default="auto",
                   help="accumulation engine for hash-family methods "
                        "(auto = REPRO_BACKEND env var, then 'fast')")
    d.add_argument("--executor",
                   choices=["auto", "thread", "process", "shm", "serial"],
                   default="auto",
                   help="worker pool flavour when --threads > 1: thread, "
                        "process (pickled chunks), shm (zero-copy "
                        "shared memory), or serial (in-process loop, the "
                        "fallback floor); auto = REPRO_EXECUTOR env var, "
                        "then 'thread'")
    d.add_argument("--threads", type=int, default=1)
    d.add_argument("--deadline", type=float, default=None,
                   help="per-call time budget in seconds for parallel "
                        "calls; expiry raises DeadlineExceeded "
                        "(REPRO_DEADLINE sets the session default)")
    d.add_argument("--max-retries", type=int, default=None,
                   help="chunk retry budget for transient failures (dead "
                        "workers, injected faults); default 2, "
                        "REPRO_MAX_RETRIES sets the session default")
    d.add_argument("--fallback", default="auto",
                   help="executor degradation chain: 'auto' (full "
                        "shm>process>thread>serial chain), 'off' (fail "
                        "instead of degrading), or a comma list of "
                        "allowed stages (REPRO_FALLBACK sets the "
                        "session default)")
    d.add_argument("--value-dtype",
                   choices=["auto", "float32", "float64", "int32", "int64"],
                   default="auto",
                   help="value dtype override for the sum (auto = preserve "
                        "the inputs' dtype; integer requests accumulate in "
                        "exact 64-bit integers)")
    d.add_argument("--materialize", action="store_true",
                   help="copy shm-executor results out of shared memory "
                        "into private arrays (default: zero-copy "
                        "segment-backed results that unlink on gc; "
                        "REPRO_SHM_RESULTS pins the session default)")
    d.add_argument("--index-dtype", choices=["auto", "int32", "int64"],
                   default="auto",
                   help="index width override for the output (auto = the "
                        "paper's rule: int32 whenever dimensions and nnz "
                        "fit, int64 otherwise; REPRO_INDEX_DTYPE sets the "
                        "session default; an int32 request that cannot "
                        "hold the call promotes instead of wrapping)")
    d.set_defaults(func=_cmd_demo)

    sub.add_parser("table3", help="Table III").set_defaults(
        func=lambda a: _cmd_table(a, "3"))
    sub.add_parser("table4", help="Table IV").set_defaults(
        func=lambda a: _cmd_table(a, "4"))

    f2 = sub.add_parser("fig2", help="winner maps")
    f2.add_argument("--pattern", choices=["er", "rmat"], default="er")
    f2.add_argument("--n-cols", type=int, default=8)
    f2.set_defaults(func=_cmd_fig2)

    f3 = sub.add_parser("fig3", help="scaling curves")
    f3.add_argument("--workload",
                    choices=["a_er", "b_rmat", "c_eukarya"], default="a_er")
    f3.set_defaults(func=_cmd_fig3)

    f4 = sub.add_parser("fig4", help="hash-table-size sweep")
    f4.add_argument("--panel", choices=list("abcdef"), default="b")
    f4.set_defaults(func=_cmd_fig4)

    t5 = sub.add_parser("table5", help="cache-miss comparison")
    t5.add_argument("--max-accesses", type=int, default=400_000)
    t5.set_defaults(func=_cmd_table5)

    f6 = sub.add_parser("fig6", help="distributed SpGEMM breakdown")
    f6.add_argument("--dataset",
                    choices=["isolates", "metaclust50"], default="isolates")
    f6.add_argument("--m", type=int, default=8192)
    f6.add_argument("--grid", type=int, default=2)
    f6.set_defaults(func=_cmd_fig6)

    sub.add_parser("platforms", help="Table II specs").set_defaults(
        func=_cmd_platforms)
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
