"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``        run SpKAdd methods on a generated workload, print stats
``table3``      regenerate Table III (model vs paper)
``table4``      regenerate Table IV
``fig2``        winner maps (``--pattern er|rmat``)
``fig3``        scaling curves (``--workload a_er|b_rmat|c_eukarya``)
``fig4``        hash-table-size sweep (``--panel a..f``)
``table5``      cache-miss comparison
``fig6``        distributed SpGEMM breakdown (``--dataset``)
``platforms``   print the Table II machine specs
``serve``       run the SpKAdd gateway on a unix socket (see README
                "Serving"); ``--selftest`` runs a burst through an
                ephemeral server and exits nonzero on any mismatch

Scale is controlled by ``REPRO_SCALE_M`` / ``REPRO_SCALE_N`` (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import sys


def _positive_int(value: str) -> int:
    """argparse type for worker/chunk counts: reject 0 and negatives at
    the parser instead of letting them clamp to a silent serial run."""
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be an integer >= 1, got {value!r}"
        ) from None
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def _cmd_demo(args) -> int:
    import repro
    from repro.generators import erdos_renyi_collection, rmat_collection

    gen = erdos_renyi_collection if args.pattern == "er" else rmat_collection
    mats = gen(args.m, args.n, d=args.d, k=args.k, seed=args.seed)
    from repro.parallel.executor import resolve_executor

    executor = resolve_executor(args.executor)
    value_dtype = None if args.value_dtype == "auto" else args.value_dtype
    index_dtype = None if args.index_dtype == "auto" else args.index_dtype
    # argparse default False -> None keeps the REPRO_SHM_RESULTS pin live.
    materialize = True if args.materialize else None
    if executor == "shm":
        # Resolve (and so validate) the placement only when it applies:
        # a bad REPRO_SHM_RESULTS must not break non-shm runs.
        from repro.parallel.shm import resolve_shm_results

        placement = resolve_shm_results(materialize)
    else:
        placement = "n/a"
    print(f"{args.pattern.upper()} workload: k={args.k}, "
          f"{args.m}x{args.n}, d={args.d} "
          f"[backend={args.backend}, executor={executor}, "
          f"threads={args.threads}, value_dtype={args.value_dtype}, "
          f"index_dtype={args.index_dtype}, "
          f"materialize={placement}]")
    from repro.core.api import BACKEND_AWARE_METHODS

    resilience = None
    if args.max_retries is not None or args.fallback != "auto":
        from repro.parallel.resilience import ResiliencePolicy

        fallback = None
        if args.fallback == "off":
            fallback = ()
        elif args.fallback != "auto":
            fallback = tuple(
                s.strip() for s in args.fallback.split(",") if s.strip()
            )
        resilience = ResiliencePolicy(
            max_retries=(
                args.max_retries if args.max_retries is not None else 2
            ),
            fallback=fallback,
        )
    for method in repro.available_methods():
        res = repro.spkadd(
            mats, method=method, threads=args.threads,
            executor=executor,
            value_dtype=value_dtype,
            index_dtype=index_dtype,
            materialize=materialize,
            deadline=args.deadline,
            resilience=resilience,
            backend=args.backend if method in BACKEND_AWARE_METHODS else None,
        )
        print(f"  {method:20s} nnz={res.matrix.nnz:<9d} "
              f"dtype={res.matrix.data.dtype} "
              f"idx={res.matrix.indices.dtype} {res.stats.summary()}")
    return 0


def _cmd_table(args, which: str) -> int:
    from repro.experiments.tables34 import run_table3, run_table4

    grid = run_table3() if which == "3" else run_table4()
    print(grid.to_text())
    return 0


def _cmd_fig2(args) -> int:
    from repro.experiments.fig2 import run_fig2

    print(run_fig2(args.pattern, n_cols=args.n_cols).to_text())
    return 0


def _cmd_fig3(args) -> int:
    from repro.experiments.fig3 import run_fig3

    res = run_fig3(args.workload)
    print(res.to_text())
    print("speedup at max threads:",
          {k: round(v, 1) for k, v in res.speedup_at_max.items()})
    return 0


def _cmd_fig4(args) -> int:
    from repro.experiments.config import ReproScale
    from repro.experiments.fig4 import run_fig4

    sweep = run_fig4(args.panel)
    print(sweep.to_text())
    sc = ReproScale.from_env()
    print(f"optimum: {sweep.optimum_entries} reduced-scale entries "
          f"({sweep.optimum_entries * sc.scale_m} at paper scale)")
    return 0


def _cmd_table5(args) -> int:
    from repro.experiments.table5 import run_table5, table5_text

    print(table5_text(run_table5(max_accesses=args.max_accesses)))
    return 0


def _cmd_fig6(args) -> int:
    from repro.experiments.fig6 import run_fig6

    res = run_fig6(args.dataset, m=args.m, grid_side=args.grid)
    print(res.to_text())
    print(f"spkadd speedup vs heap: {res.spkadd_speedup_vs_heap:.1f}x; "
          f"unsorted multiply saving: "
          f"{res.multiply_saving_unsorted * 100:.0f}%")
    return 0


def _cmd_platforms(_args) -> int:
    from repro.experiments.platforms import table2_text

    print(table2_text())
    return 0


def _cmd_serve(args) -> int:
    from repro.serve import GatewayConfig

    config = GatewayConfig(
        socket_path=args.socket,
        threads=args.threads,
        executor=args.executor,
        small_nnz=args.small_nnz,
        batch_window_s=args.batch_window_ms / 1000.0,
        batch_max=args.batch_max,
        max_queue=args.max_queue,
        deadline_s=args.deadline,
        parallel_calls=args.parallel_calls,
    )
    if args.selftest:
        return _serve_selftest(config, burst=args.burst)

    import asyncio
    import signal

    from repro.serve.server import GatewayServer

    async def _main() -> None:
        server = GatewayServer(config)
        await server.start()
        print(f"repro gateway listening on {config.socket_path} "
              f"[executor={server.executor}, threads={config.threads}, "
              f"batch_window={config.batch_window_s * 1000:.0f}ms, "
              f"batch_max={config.batch_max}, "
              f"max_queue={config.max_queue}]", flush=True)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, server.request_stop)
        await server.serve_until_stopped()

    asyncio.run(_main())
    return 0


def _serve_selftest(config, burst: int) -> int:
    """Boot an ephemeral gateway, storm it with ``burst`` concurrent
    small requests plus one large one, and verify every response is
    bit-identical to a serial ``spkadd`` — the CI smoke for the
    service path.  Returns a process exit code."""
    import threading

    import numpy as np

    import repro
    from repro.generators import erdos_renyi_collection
    from repro.serve import GatewayClient, start_in_thread

    k_each = 4
    failures: list = []
    barrier = threading.Barrier(burst)

    def worker(seed: int) -> None:
        try:
            mats = erdos_renyi_collection(512, 24, d=4.0, k=k_each,
                                          seed=seed)
            expect = repro.spkadd(mats).matrix
            barrier.wait(timeout=60)
            with GatewayClient(config.socket_path) as gw:
                got = gw.submit(mats)
            if not (np.array_equal(got.indptr, expect.indptr)
                    and np.array_equal(got.indices, expect.indices)
                    and np.array_equal(got.data, expect.data)
                    and got.indices.dtype == expect.indices.dtype
                    and got.data.dtype == expect.data.dtype):
                failures.append(f"seed {seed}: response != serial spkadd")
        except Exception as err:  # noqa: BLE001 - selftest reports all
            failures.append(f"seed {seed}: {type(err).__name__}: {err}")

    with start_in_thread(config):
        threads = [
            threading.Thread(target=worker, args=(seed,))
            for seed in range(burst)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Exercise the large lane too: well past small_nnz -> solo call.
        big = erdos_renyi_collection(1 << 14, 64, d=16.0, k=8, seed=991)
        expect = repro.spkadd(big).matrix
        with GatewayClient(config.socket_path) as gw:
            got = gw.submit(big)
            stats = gw.stats()
        if not (np.array_equal(got.indices, expect.indices)
                and np.array_equal(got.data, expect.data)):
            failures.append("large request: response != serial spkadd")

    print(f"selftest: {stats['completed']} completed, "
          f"{stats['batches']} fused calls "
          f"(fused_k_max={stats['fused_k_max']}), "
          f"{stats['solo_calls']} solo calls, shed={stats['shed']}, "
          f"errors={stats['errored']}")
    if stats["completed"] != burst + 1:
        failures.append(
            f"expected {burst + 1} completions, saw {stats['completed']}"
        )
    if burst >= 8 and stats["fused_k_max"] <= k_each:
        failures.append(
            f"no fusion observed: fused_k_max={stats['fused_k_max']} "
            f"<= per-request k={k_each}"
        )
    if stats["solo_calls"] < 1:
        failures.append("large request did not take the solo lane")
    for line in failures:
        print(f"selftest FAIL: {line}")
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro",
        description="SpKAdd reproduction command line",
    )
    sub = p.add_subparsers(dest="command", required=True)

    d = sub.add_parser("demo", help="run all SpKAdd methods on a workload")
    d.add_argument("--pattern", choices=["er", "rmat"], default="er")
    d.add_argument("--m", type=int, default=1 << 14)
    d.add_argument("--n", type=int, default=64)
    d.add_argument("--d", type=float, default=16.0)
    d.add_argument("--k", type=int, default=16)
    d.add_argument("--seed", type=int, default=0)
    d.add_argument("--backend", choices=["auto", "fast", "instrumented"],
                   default="auto",
                   help="accumulation engine for hash-family methods "
                        "(auto = REPRO_BACKEND env var, then 'fast')")
    d.add_argument("--executor",
                   choices=["auto", "thread", "process", "shm", "serial"],
                   default="auto",
                   help="worker pool flavour when --threads > 1: thread, "
                        "process (pickled chunks), shm (zero-copy "
                        "shared memory), or serial (in-process loop, the "
                        "fallback floor); auto = REPRO_EXECUTOR env var, "
                        "then 'thread'")
    d.add_argument("--threads", type=_positive_int, default=1)
    d.add_argument("--deadline", type=float, default=None,
                   help="per-call time budget in seconds for parallel "
                        "calls; expiry raises DeadlineExceeded "
                        "(REPRO_DEADLINE sets the session default)")
    d.add_argument("--max-retries", type=int, default=None,
                   help="chunk retry budget for transient failures (dead "
                        "workers, injected faults); default 2, "
                        "REPRO_MAX_RETRIES sets the session default")
    d.add_argument("--fallback", default="auto",
                   help="executor degradation chain: 'auto' (full "
                        "shm>process>thread>serial chain), 'off' (fail "
                        "instead of degrading), or a comma list of "
                        "allowed stages (REPRO_FALLBACK sets the "
                        "session default)")
    d.add_argument("--value-dtype",
                   choices=["auto", "float32", "float64", "int32", "int64"],
                   default="auto",
                   help="value dtype override for the sum (auto = preserve "
                        "the inputs' dtype; integer requests accumulate in "
                        "exact 64-bit integers)")
    d.add_argument("--materialize", action="store_true",
                   help="copy shm-executor results out of shared memory "
                        "into private arrays (default: zero-copy "
                        "segment-backed results that unlink on gc; "
                        "REPRO_SHM_RESULTS pins the session default)")
    d.add_argument("--index-dtype", choices=["auto", "int32", "int64"],
                   default="auto",
                   help="index width override for the output (auto = the "
                        "paper's rule: int32 whenever dimensions and nnz "
                        "fit, int64 otherwise; REPRO_INDEX_DTYPE sets the "
                        "session default; an int32 request that cannot "
                        "hold the call promotes instead of wrapping)")
    d.set_defaults(func=_cmd_demo)

    sub.add_parser("table3", help="Table III").set_defaults(
        func=lambda a: _cmd_table(a, "3"))
    sub.add_parser("table4", help="Table IV").set_defaults(
        func=lambda a: _cmd_table(a, "4"))

    f2 = sub.add_parser("fig2", help="winner maps")
    f2.add_argument("--pattern", choices=["er", "rmat"], default="er")
    f2.add_argument("--n-cols", type=int, default=8)
    f2.set_defaults(func=_cmd_fig2)

    f3 = sub.add_parser("fig3", help="scaling curves")
    f3.add_argument("--workload",
                    choices=["a_er", "b_rmat", "c_eukarya"], default="a_er")
    f3.set_defaults(func=_cmd_fig3)

    f4 = sub.add_parser("fig4", help="hash-table-size sweep")
    f4.add_argument("--panel", choices=list("abcdef"), default="b")
    f4.set_defaults(func=_cmd_fig4)

    t5 = sub.add_parser("table5", help="cache-miss comparison")
    t5.add_argument("--max-accesses", type=int, default=400_000)
    t5.set_defaults(func=_cmd_table5)

    f6 = sub.add_parser("fig6", help="distributed SpGEMM breakdown")
    f6.add_argument("--dataset",
                    choices=["isolates", "metaclust50"], default="isolates")
    f6.add_argument("--m", type=int, default=8192)
    f6.add_argument("--grid", type=int, default=2)
    f6.set_defaults(func=_cmd_fig6)

    sub.add_parser("platforms", help="Table II specs").set_defaults(
        func=_cmd_platforms)

    s = sub.add_parser("serve", help="run the SpKAdd gateway")
    s.add_argument("--socket", default="/tmp/repro-gateway.sock",
                   help="unix socket path to listen on")
    s.add_argument("--threads", type=_positive_int, default=2,
                   help="worker count of the gateway's kernel calls")
    s.add_argument("--executor",
                   choices=["thread", "process", "shm", "serial"],
                   default="shm",
                   help="executor for the gateway's kernel calls; shm "
                        "and process pre-boot a dedicated pool pinned "
                        "against registry eviction")
    s.add_argument("--small-nnz", type=int, default=1 << 15,
                   help="requests at or under this summed input nnz are "
                        "micro-batched into one fused high-k call")
    s.add_argument("--batch-window-ms", type=float, default=2.0,
                   help="how long the first small request of a batch "
                        "waits for batch-mates")
    s.add_argument("--batch-max", type=_positive_int, default=16,
                   help="max requests fused into one kernel call")
    s.add_argument("--max-queue", type=_positive_int, default=64,
                   help="admission limit on requests in flight; beyond "
                        "it the gateway sheds with a typed error")
    s.add_argument("--deadline", type=float, default=None,
                   help="default per-request budget in seconds "
                        "(requests may carry their own)")
    s.add_argument("--parallel-calls", type=_positive_int, default=2,
                   help="kernel calls allowed to run concurrently")
    s.add_argument("--selftest", action="store_true",
                   help="start an ephemeral server, run a concurrent "
                        "burst against it, verify bit-identity and "
                        "fusion, exit nonzero on failure")
    s.add_argument("--burst", type=_positive_int, default=16,
                   help="concurrent clients in --selftest mode")
    s.set_defaults(func=_cmd_serve)
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
