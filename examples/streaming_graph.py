#!/usr/bin/env python
"""Streaming graph accumulation (intro motivation + Section V extension).

Edge batches of a temporal graph arrive as sparse adjacency matrices;
the running graph is their sum (edge weight = occurrence count).  The
in-memory SpKAdd assumes all batches fit in memory; the streaming
accumulator (the paper's suggested batched scheme) holds only
``batch_size`` matrices plus the running sum.

Run:  python examples/streaming_graph.py
"""

import numpy as np

import repro
from repro.core.streaming import StreamingAccumulator
from repro.formats.ops import matrices_equal
from repro.generators import graph_stream_batches


def main() -> None:
    n_vertices, windows, edges = 1 << 11, 48, 5_000
    print(f"Streaming graph: {windows} windows of {edges} edges over "
          f"{n_vertices} vertices (skewed endpoints)")
    batches = graph_stream_batches(
        n_vertices=n_vertices, batches=windows,
        edges_per_batch=edges, skew=1.2, seed=1,
    )

    # Reference: all-at-once k-way sum.
    full = repro.spkadd(batches, method="hash")
    G = full.matrix
    total_in = sum(b.nnz for b in batches)
    print(f"accumulated graph: {G.nnz} weighted edges from {total_in} "
          f"batch entries (cf={total_in / G.nnz:.2f} — hubs recur)")

    # Streaming: bounded residency.
    for batch_size in (4, 16):
        acc = StreamingAccumulator(batch_size=batch_size)
        for b in batches:
            acc.push(b)
        result = acc.result()
        assert matrices_equal(result, G, atol=1e-9)
        resident = batch_size + 1  # buffered batches + running sum
        print(f"batch_size={batch_size:3d}: verified; "
              f"ops={acc.stats.ops:.3g}; "
              f"peak residency ~{resident} matrices "
              f"(vs {windows} for in-memory SpKAdd)")

    # Top hubs by accumulated in-weight.
    col_weight = np.zeros(n_vertices)
    cols = np.repeat(np.arange(n_vertices), np.diff(G.indptr))
    np.add.at(col_weight, cols, G.data)
    top = np.argsort(col_weight)[-5:][::-1]
    print("top-5 hub columns by accumulated weight:",
          ", ".join(f"v{int(v)}({col_weight[v]:.0f})" for v in top))


if __name__ == "__main__":
    main()
