#!/usr/bin/env python
"""Distributed sparse SUMMA SpGEMM with pluggable SpKAdd (Figs 5 and 6).

Squares a protein-similarity-like matrix on a simulated process grid,
printing the SUMMA stage structure of Fig 5 and the computation-phase
comparison of Fig 6: heap SpKAdd vs sorted-hash vs unsorted-hash.

The Fig 5/6 sections run on the **promoted** production path — fast
kernels, shm merge executor, concurrent rank pipelines with
multiply/merge overlap (``ExecutionPlan.production()``) — and the
result is verified bit-for-bit against the serial paper plan: the
refactor's central contract.

Run:  python examples/distributed_spgemm.py
"""

import time

from repro.distributed import (
    ExecutionPlan,
    ProcessGrid,
    summa_spgemm,
    spgemm_phase_times,
)
from repro.distributed.comm import CommLog
from repro.experiments.fig6 import _square_surrogate
from repro.formats.convert import from_scipy, to_scipy
from repro.formats.ops import matrices_equal
from repro.machine import CORI_KNL
from repro.parallel.pools import shutdown_pools


def main() -> None:
    m, d = 4096, 6.0
    grid = ProcessGrid(2, 2)
    # stages = the SpKAdd fan-in k; the paper runs 64-128 stages (sqrt of
    # the process count).  Small stage counts are heap's winning regime
    # (Fig 2, k=4); the hash advantage appears at realistic scale.
    stages = 32
    A = _square_surrogate(m, d, sigma=1.0, seed=11)
    print(f"C = A @ A with A {m}x{m}, nnz={A.nnz}, on a "
          f"{grid.rows}x{grid.cols} process grid, {stages} SUMMA stages")
    print(f"=> every process reduces k={stages} intermediate products "
          "with SpKAdd\n")

    # Fig 5: the stage structure, on the promoted execution plan (fast
    # kernels, shm merges, rank concurrency + overlap).
    log = CommLog()
    t0 = time.perf_counter()
    res = summa_spgemm(
        A, A, grid=grid, stages=stages, spkadd_method="hash", comm=log,
        plan=ExecutionPlan.production(),
    )
    promoted_s = time.perf_counter() - t0
    print("SUMMA broadcasts (Fig 5 dataflow):")
    for s in range(min(stages, 2)):
        events = [e for e in log.events if e.stage == s]
        for e in events[:4]:
            print(f"  stage {s}: {e.kind} root=rank{e.root} "
                  f"group={e.group_size} bytes={e.bytes}")
        print(f"  ... ({len(events)} broadcasts in stage {s})")
    print(f"total communication: {log.total_bytes / 1e6:.2f} MB "
          f"(excluded from Fig 6's computation times)\n")

    # Verify against a direct single-matrix SpGEMM, and bit-for-bit
    # against the serial paper plan (the promotion contract).
    direct = from_scipy((to_scipy(A) @ to_scipy(A)).tocsc(), "csc")
    assembled = res.assemble()
    t0 = time.perf_counter()
    paper = summa_spgemm(
        A, A, grid=grid, stages=stages, spkadd_method="hash"
    ).assemble()
    paper_s = time.perf_counter() - t0
    assert assembled.indptr.tobytes() == paper.indptr.tobytes()
    assert assembled.indices.tobytes() == paper.indices.tobytes()
    assert assembled.data.tobytes() == paper.data.tobytes()
    assembled.sort_indices()
    assert matrices_equal(assembled, direct, atol=1e-9)
    print(f"verified: promoted result == direct SpGEMM (nnz={assembled.nnz}) "
          "and bit-identical to the serial paper plan")
    print(f"wall time: promoted fast/shm {promoted_s:.3f}s vs paper "
          f"serial/instrumented {paper_s:.3f}s "
          f"({paper_s / max(promoted_s, 1e-9):.1f}x)\n")

    # Fig 6: the three computation configurations.
    machine = CORI_KNL  # tables of this small demo fit real caches
    print(f"{'config':16s} {'multiply(s)':>12s} {'spkadd(s)':>10s} "
          f"{'total(s)':>9s}")
    results = {}
    for name, method, sorted_im in [
        ("heap", "heap", True),
        ("sorted_hash", "hash", True),
        ("unsorted_hash", "hash", False),
    ]:
        r = summa_spgemm(
            A, A, grid=grid, stages=stages,
            spkadd_method=method, sorted_intermediates=sorted_im,
            spkadd_kwargs={"block_cols": 1} if method == "hash" else None,
        )
        t = spgemm_phase_times(r, machine, threads_per_process=8)
        results[name] = t
        print(f"{name:16s} {t.local_multiply:12.4f} {t.spkadd:10.4f} "
              f"{t.computation:9.4f}")

    speedup = results["heap"].spkadd / results["unsorted_hash"].spkadd
    saved = 1 - (results["unsorted_hash"].local_multiply
                 / results["sorted_hash"].local_multiply)
    print(f"\nhash SpKAdd is {speedup:.1f}x faster than heap; skipping the "
          f"intermediate sort saves {saved:.0%} of local multiply "
          "(paper: ~10x and ~20%)")
    shutdown_pools()


if __name__ == "__main__":
    main()
