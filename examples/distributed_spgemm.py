#!/usr/bin/env python
"""Distributed sparse SUMMA SpGEMM with pluggable SpKAdd (Figs 5 and 6).

Squares a protein-similarity-like matrix on a simulated process grid,
printing the SUMMA stage structure of Fig 5 and the computation-phase
comparison of Fig 6: heap SpKAdd vs sorted-hash vs unsorted-hash.

Run:  python examples/distributed_spgemm.py
"""

from repro.distributed import ProcessGrid, summa_spgemm, spgemm_phase_times
from repro.distributed.comm import CommLog
from repro.experiments.fig6 import _square_surrogate
from repro.formats.convert import from_scipy, to_scipy
from repro.formats.ops import matrices_equal
from repro.machine import CORI_KNL


def main() -> None:
    m, d = 4096, 6.0
    grid = ProcessGrid(2, 2)
    # stages = the SpKAdd fan-in k; the paper runs 64-128 stages (sqrt of
    # the process count).  Small stage counts are heap's winning regime
    # (Fig 2, k=4); the hash advantage appears at realistic scale.
    stages = 32
    A = _square_surrogate(m, d, sigma=1.0, seed=11)
    print(f"C = A @ A with A {m}x{m}, nnz={A.nnz}, on a "
          f"{grid.rows}x{grid.cols} process grid, {stages} SUMMA stages")
    print(f"=> every process reduces k={stages} intermediate products "
          "with SpKAdd\n")

    # Fig 5: the stage structure.
    log = CommLog()
    res = summa_spgemm(
        A, A, grid=grid, stages=stages, spkadd_method="hash", comm=log
    )
    print("SUMMA broadcasts (Fig 5 dataflow):")
    for s in range(min(stages, 2)):
        events = [e for e in log.events if e.stage == s]
        for e in events[:4]:
            print(f"  stage {s}: {e.kind} root=rank{e.root} "
                  f"group={e.group_size} bytes={e.bytes}")
        print(f"  ... ({len(events)} broadcasts in stage {s})")
    print(f"total communication: {log.total_bytes / 1e6:.2f} MB "
          f"(excluded from Fig 6's computation times)\n")

    # Verify against a direct single-matrix SpGEMM.
    direct = from_scipy((to_scipy(A) @ to_scipy(A)).tocsc(), "csc")
    assembled = res.assemble()
    assembled.sort_indices()
    assert matrices_equal(assembled, direct, atol=1e-9)
    print(f"verified: distributed result == direct SpGEMM "
          f"(nnz={assembled.nnz})\n")

    # Fig 6: the three computation configurations.
    machine = CORI_KNL  # tables of this small demo fit real caches
    print(f"{'config':16s} {'multiply(s)':>12s} {'spkadd(s)':>10s} "
          f"{'total(s)':>9s}")
    results = {}
    for name, method, sorted_im in [
        ("heap", "heap", True),
        ("sorted_hash", "hash", True),
        ("unsorted_hash", "hash", False),
    ]:
        r = summa_spgemm(
            A, A, grid=grid, stages=stages,
            spkadd_method=method, sorted_intermediates=sorted_im,
            spkadd_kwargs={"block_cols": 1} if method == "hash" else None,
        )
        t = spgemm_phase_times(r, machine, threads_per_process=8)
        results[name] = t
        print(f"{name:16s} {t.local_multiply:12.4f} {t.spkadd:10.4f} "
              f"{t.computation:9.4f}")

    speedup = results["heap"].spkadd / results["unsorted_hash"].spkadd
    saved = 1 - (results["unsorted_hash"].local_multiply
                 / results["sorted_hash"].local_multiply)
    print(f"\nhash SpKAdd is {speedup:.1f}x faster than heap; skipping the "
          f"intermediate sort saves {saved:.0%} of local multiply "
          "(paper: ~10x and ~20%)")


if __name__ == "__main__":
    main()
