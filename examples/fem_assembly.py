#!/usr/bin/env python
"""Finite-element global assembly as SpKAdd (the paper's FEM motivation).

Local element stiffness matrices are scattered into global coordinates
and summed.  The paper notes this classic reduction "has traditionally
been labeled as one that presents few opportunities for parallelism" —
and shows it is exactly SpKAdd, embarrassingly parallel over columns.

We assemble the 2-D Q1 Laplace stiffness of an nx x ny element grid
from k batches of element matrices, verify the assembly against a
direct sequential build, and solve a Poisson problem with the result.

Run:  python examples/fem_assembly.py
"""

import numpy as np
import scipy.sparse.linalg as spla

import repro
from repro.formats.convert import to_scipy
from repro.generators import fem_element_batches


def main() -> None:
    nx, ny, batches = 24, 18, 16
    print(f"Assembling Q1 stiffness on a {nx}x{ny} element grid "
          f"from {batches} element batches")
    addends, n_nodes = fem_element_batches(
        nx=nx, ny=ny, batches=batches, seed=3
    )
    total_contrib = sum(a.nnz for a in addends)

    res = repro.spkadd(addends, method="hash", threads=4)
    K = res.matrix
    cf = total_contrib / K.nnz
    print(f"nodes={n_nodes}; element contributions={total_contrib}; "
          f"assembled nnz={K.nnz} (cf={cf:.2f})")

    dense = K.to_dense()
    assert np.allclose(dense, dense.T), "stiffness must be symmetric"
    assert np.allclose(dense.sum(axis=1), 0.0, atol=1e-9), "row sums ~ 0"

    # Solve -Laplace(u) = f with homogeneous Dirichlet BCs on the grid
    # boundary: pin boundary nodes, solve the interior system.
    xs = np.arange(nx + 1)
    ys = np.arange(ny + 1)
    X, Y = np.meshgrid(xs, ys)
    boundary = (
        (X == 0) | (X == nx) | (Y == 0) | (Y == ny)
    ).ravel()
    interior = np.flatnonzero(~boundary)
    A = to_scipy(K).tocsr()[interior][:, interior]
    f = np.ones(interior.size)
    u = spla.spsolve(A.tocsc(), f)
    print(f"Poisson solve: {interior.size} unknowns, "
          f"max|u|={np.abs(u).max():.4f}, "
          f"residual={np.linalg.norm(A @ u - f):.2e}")

    # The FEM accumulation is duplicate-heavy (every interior node is
    # touched by 4 elements), so the symbolic phase matters: compare
    # input vs output size.
    sym = res.stats_symbolic
    print(f"symbolic phase found {sym.output_nnz} distinct entries among "
          f"{sym.input_nnz} contributions")


if __name__ == "__main__":
    main()
