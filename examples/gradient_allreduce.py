#!/usr/bin/env python
"""Sparse allreduce of sparsified gradients (the paper's DL motivation).

k workers each keep the top fraction of their gradient for one weight
matrix; the allreduce must sum k sparse matrices.  Because workers train
on correlated data, their kept coordinates overlap (compression factor
> 1) — exactly the regime where a fused k-way SpKAdd beats folding the
updates pairwise.

Run:  python examples/gradient_allreduce.py
"""

import time

import numpy as np

import repro
from repro.formats.ops import matrices_equal
from repro.generators import gradient_update_collection


def main() -> None:
    rows, cols, k = 512, 256, 32
    density, correlated = 0.02, 0.6
    print(
        f"Simulating {k} workers, weight matrix {rows}x{cols}, "
        f"top-{density:.0%} sparsification, {correlated:.0%} shared support"
    )
    updates = gradient_update_collection(
        rows=rows, cols=cols, k=k, density=density,
        correlated=correlated, seed=7,
    )
    total_in = sum(u.nnz for u in updates)

    # The reduction: hash SpKAdd (one pass) vs pairwise folding.
    t0 = time.perf_counter()
    # instrumented backend: this example compares abstract *work*, which
    # only the paper-faithful probing engine meters.
    fused = repro.spkadd(updates, method="hash", backend="instrumented")
    t_fused = time.perf_counter() - t0
    t0 = time.perf_counter()
    folded = repro.spkadd(updates, method="scipy_incremental")
    t_folded = time.perf_counter() - t0
    assert matrices_equal(_canon(fused.matrix), _canon(folded.matrix),
                          atol=1e-9)

    agg = fused.matrix
    cf = total_in / agg.nnz
    print(f"aggregate update: nnz={agg.nnz} (inputs {total_in}), cf={cf:.2f}")
    print(f"hash SpKAdd work:     {fused.stats.ops:.0f} ops "
          f"({t_fused * 1e3:.1f} ms wall)")
    print(f"pairwise fold work:   {folded.stats.ops:.0f} element touches "
          f"({t_folded * 1e3:.1f} ms wall)")
    print(f"work ratio pairwise/hash: "
          f"{folded.stats.ops / max(fused.stats.ops, 1):.1f}x")

    # Apply the averaged update to the dense weights.
    weights = np.zeros((rows, cols))
    lr = 0.1
    weights -= lr / k * agg.to_dense()
    print(f"applied averaged update; |dW| max = {np.abs(weights).max():.3e}")

    # Server-side streaming variant: updates arrive in batches of 8.
    from repro.core.streaming import StreamingAccumulator

    acc = StreamingAccumulator(batch_size=8)
    for u in updates:
        acc.push(u)
    assert matrices_equal(_canon(acc.result()), _canon(agg), atol=1e-9)
    print("streaming accumulator (batch=8) verified against in-memory sum.")


def _canon(mat):
    out = mat.copy()
    out.sort_indices()
    return out


if __name__ == "__main__":
    main()
