#!/usr/bin/env python
"""Quickstart: add a collection of sparse matrices with every algorithm.

Generates k Erdős–Rényi matrices, sums them with each SpKAdd method,
verifies the results agree, and prints the measured work statistics —
the quantities behind the paper's Table I.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.formats.ops import matrices_equal
from repro.generators import erdos_renyi_collection
from repro.machine import INTEL_SKYLAKE_8160
from repro.machine.costmodel import CostModel


def main() -> None:
    m, n, d, k = 1 << 14, 64, 32, 32
    print(f"Workload: {k} ER matrices, {m}x{n}, ~{d} nonzeros/column each")
    mats = erdos_renyi_collection(m, n, d=d, k=k, seed=42)
    total_in = sum(A.nnz for A in mats)

    reference = None
    cost_model = CostModel(INTEL_SKYLAKE_8160.scaled(256), threads=8)
    print(f"{'method':20s} {'nnz(B)':>8s} {'cf':>6s} {'ops':>10s} "
          f"{'probes':>8s} {'IO MB':>7s} {'sim ms':>8s}")
    from repro.core.api import BACKEND_AWARE_METHODS

    for method in repro.available_methods():
        # Paper-style statistics need the instrumented accumulation
        # engine; the facade's default "fast" backend reports no slot ops.
        kw = (
            {"backend": "instrumented"}
            if method in BACKEND_AWARE_METHODS else {}
        )
        res = repro.spkadd(mats, method=method, **kw)
        B = res.matrix.copy()
        B.sort_indices()
        if reference is None:
            reference = B
        assert matrices_equal(B, reference), f"{method} disagrees!"
        sim = cost_model.time_two_phase(res.stats, res.stats_symbolic)
        print(
            f"{method:20s} {B.nnz:8d} {total_in / B.nnz:6.3f} "
            f"{res.stats.ops:10.0f} {res.stats.probes:8.0f} "
            f"{res.stats.total_bytes / 1e6:7.2f} {sim.total * 1e3:8.3f}"
        )

    # The headline: the hash algorithm touches each input entry once
    # (work-optimal), while pairwise addition re-reads partial sums.
    hash_res = repro.spkadd(mats, method="hash", backend="instrumented")
    inc_res = repro.spkadd(mats, method="2way_incremental")
    print(
        f"\n2-way incremental reads {inc_res.stats.input_nnz / total_in:.1f}x "
        f"the input; hash reads it exactly "
        f"{hash_res.stats.input_nnz / total_in:.0f}x "
        f"(plus once in the symbolic phase)."
    )

    # Parallel execution is bit-identical.
    par = repro.spkadd(mats, method="hash", threads=4)
    assert matrices_equal(par.matrix, reference)
    print("4-thread run verified identical to sequential.")


if __name__ == "__main__":
    main()
